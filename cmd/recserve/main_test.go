package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

func testServer(t *testing.T) (*httptest.Server, *recommend.System) {
	t.Helper()
	kv := kvstore.NewLocal(16)
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(kv, params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: id, Type: "movie", Length: 30 * time.Minute})
	}
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b"} {
			sys.Ingest(context.Background(), feedback.Action{
				UserID: u, VideoID: v, Type: feedback.PlayTime,
				ViewTime: 30 * time.Minute, VideoLength: 30 * time.Minute,
				Timestamp: base.Add(time.Duration(min) * time.Minute),
			})
			min++
		}
	}
	srv := httptest.NewServer(newMux(sys, kv, nil))
	t.Cleanup(srv.Close)
	return srv, sys
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp := getJSON(t, srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var body struct {
		Videos []struct {
			ID    string
			Score float64
		}
		Seeds     int
		LatencyUS int64 `json:"latency_us"`
	}
	// A visitor with no history, watching "a": the co-watched "b" should
	// surface.
	resp := getJSON(t, srv.URL+"/recommend?user=visitor&video=a&n=2", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(body.Videos) == 0 {
		t.Fatal("no videos returned")
	}
	for _, v := range body.Videos {
		if v.ID == "a" {
			t.Error("current video recommended")
		}
	}
}

func TestRecommendRequiresUser(t *testing.T) {
	srv, _ := testServer(t)
	resp := getJSON(t, srv.URL+"/recommend", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestSimilarEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var entries []struct {
		ID    string
		Score float64
	}
	resp := getJSON(t, srv.URL+"/similar?video=a&n=5", &entries)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(entries) == 0 || entries[0].ID != "b" {
		t.Errorf("similar(a) = %+v, want b first", entries)
	}
	if resp := getJSON(t, srv.URL+"/similar", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing video param: status = %d, want 400", resp.StatusCode)
	}
}

func TestActionIngestEndpoint(t *testing.T) {
	srv, sys := testServer(t)
	line := "1457308800000\tu9\tc\tclick\t0\t0\n"
	resp, err := http.Post(srv.URL+"/action", "text/tab-separated-values", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Ingested int
	}
	json.NewDecoder(resp.Body).Decode(&body)
	if body.Ingested != 1 {
		t.Errorf("ingested = %d, want 1", body.Ingested)
	}
	recent, _ := sys.History.RecentVideos(context.Background(), "u9", 5)
	if len(recent) != 1 || recent[0] != "c" {
		t.Errorf("history after POST = %v", recent)
	}
	// Malformed body is a 400.
	resp2, err := http.Post(srv.URL+"/action", "text/plain", strings.NewReader("garbage\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", resp2.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/recommend?user=u1&n=3", nil) // generate a latency sample
	var stats map[string]any
	resp := getJSON(t, srv.URL+"/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if _, ok := stats["kv"]; !ok {
		t.Error("stats missing kv section for a local store")
	}
	lat, ok := stats["serving_latency"].(map[string]any)
	if !ok || lat["count"].(float64) < 1 {
		t.Errorf("stats missing latency samples: %v", stats["serving_latency"])
	}
}

func TestQueryIntDefaults(t *testing.T) {
	req := httptest.NewRequest("GET", "/x?n=abc&m=-3&k=7", nil)
	if got := queryInt(req, "n", 10); got != 10 {
		t.Errorf("non-numeric = %d, want default", got)
	}
	if got := queryInt(req, "m", 10); got != 10 {
		t.Errorf("negative = %d, want default", got)
	}
	if got := queryInt(req, "k", 10); got != 7 {
		t.Errorf("valid = %d, want 7", got)
	}
	if got := queryInt(req, "absent", 5); got != 5 {
		t.Errorf("absent = %d, want default", got)
	}
}
