package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

func testServer(t *testing.T) (*httptest.Server, *recommend.System) {
	t.Helper()
	kv := kvstore.NewLocal(16)
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(kv, params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: id, Type: "movie", Length: 30 * time.Minute})
	}
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b"} {
			sys.Ingest(context.Background(), feedback.Action{
				UserID: u, VideoID: v, Type: feedback.PlayTime,
				ViewTime: 30 * time.Minute, VideoLength: 30 * time.Minute,
				Timestamp: base.Add(time.Duration(min) * time.Minute),
			})
			min++
		}
	}
	srv := httptest.NewServer(newMux(sys, &storeStack{kv: kv, local: kv}, nil))
	t.Cleanup(srv.Close)
	return srv, sys
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	resp := getJSON(t, srv.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var body struct {
		Videos []struct {
			ID    string
			Score float64
		}
		Seeds     int
		LatencyUS int64 `json:"latency_us"`
	}
	// A visitor with no history, watching "a": the co-watched "b" should
	// surface.
	resp := getJSON(t, srv.URL+"/recommend?user=visitor&video=a&n=2", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(body.Videos) == 0 {
		t.Fatal("no videos returned")
	}
	for _, v := range body.Videos {
		if v.ID == "a" {
			t.Error("current video recommended")
		}
	}
}

func TestRecommendRequiresUser(t *testing.T) {
	srv, _ := testServer(t)
	resp := getJSON(t, srv.URL+"/recommend", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestSimilarEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	var entries []struct {
		ID    string
		Score float64
	}
	resp := getJSON(t, srv.URL+"/similar?video=a&n=5", &entries)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(entries) == 0 || entries[0].ID != "b" {
		t.Errorf("similar(a) = %+v, want b first", entries)
	}
	if resp := getJSON(t, srv.URL+"/similar", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing video param: status = %d, want 400", resp.StatusCode)
	}
}

func TestActionIngestEndpoint(t *testing.T) {
	srv, sys := testServer(t)
	line := "1457308800000\tu9\tc\tclick\t0\t0\n"
	resp, err := http.Post(srv.URL+"/action", "text/tab-separated-values", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Ingested int
	}
	json.NewDecoder(resp.Body).Decode(&body)
	if body.Ingested != 1 {
		t.Errorf("ingested = %d, want 1", body.Ingested)
	}
	recent, _ := sys.History.RecentVideos(context.Background(), "u9", 5)
	if len(recent) != 1 || recent[0] != "c" {
		t.Errorf("history after POST = %v", recent)
	}
	// Malformed body is a 400.
	resp2, err := http.Post(srv.URL+"/action", "text/plain", strings.NewReader("garbage\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status = %d, want 400", resp2.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	getJSON(t, srv.URL+"/recommend?user=u1&n=3", nil) // generate a latency sample
	var stats map[string]any
	resp := getJSON(t, srv.URL+"/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if _, ok := stats["kv"]; !ok {
		t.Error("stats missing kv section for a local store")
	}
	lat, ok := stats["serving_latency"].(map[string]any)
	if !ok || lat["count"].(float64) < 1 {
		t.Errorf("stats missing latency samples: %v", stats["serving_latency"])
	}
}

// TestRecommendDegradedField drives the serving stack into the demographic
// fallback over HTTP: a total blackout of the model/simtable namespace must
// still produce 200s, with the degraded marker set in the JSON body.
func TestRecommendDegradedField(t *testing.T) {
	faulty := kvstore.NewFaulty(kvstore.NewLocal(16), 7)
	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	opts.CacheCapacity = -1 // the blackout must reach every model read
	sys, err := recommend.NewSystem(faulty, params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: id, Type: "movie", Length: 30 * time.Minute})
	}
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	for i, v := range []string{"a", "b", "c"} {
		sys.Ingest(context.Background(), feedback.Action{
			UserID: "u1", VideoID: v, Type: feedback.PlayTime,
			ViewTime: 30 * time.Minute, VideoLength: 30 * time.Minute,
			Timestamp: base.Add(time.Duration(i) * time.Minute),
		})
	}
	srv := httptest.NewServer(newMux(sys, &storeStack{kv: faulty}, nil))
	t.Cleanup(srv.Close)

	var body struct {
		Videos   []struct{ ID string }
		Degraded bool
	}
	if resp := getJSON(t, srv.URL+"/recommend?user=u2&n=2", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d", resp.StatusCode)
	}
	if body.Degraded {
		t.Error("healthy response marked degraded")
	}

	faulty.SetSchedule([]kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}})
	body.Degraded = false
	body.Videos = nil
	if resp := getJSON(t, srv.URL+"/recommend?user=u2&n=2", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("blackout status = %d, want 200 via demographic fallback", resp.StatusCode)
	}
	if !body.Degraded {
		t.Error("blackout response not marked degraded")
	}
	if len(body.Videos) == 0 {
		t.Error("degraded response served no videos")
	}
}

// TestStatsResilienceSection spins up two real kvservers, points the full
// replicated client stack at them, and checks /stats reports the per-backend
// breaker states and the replication counters.
func TestStatsResilienceSection(t *testing.T) {
	ctx := context.Background()
	var addrs []string
	for i := 0; i < 2; i++ {
		ksrv, err := kvstore.NewServer(ctx, kvstore.NewLocal(4), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ksrv.Close() })
		addrs = append(addrs, ksrv.Addr())
	}
	st, closeStore, err := buildStore(ctx, strings.Join(addrs, ","), kvstore.DefaultResilienceConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(closeStore)
	if st.replicated == nil || len(st.resilients) != 2 {
		t.Fatalf("buildStore composed %d resilient backends, replicated=%v", len(st.resilients), st.replicated != nil)
	}
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(st.kv, params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(sys, st, nil))
	t.Cleanup(srv.Close)

	var stats map[string]any
	if resp := getJSON(t, srv.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res, ok := stats["resilience"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing resilience section: %v", stats)
	}
	backends, ok := res["backends"].([]any)
	if !ok || len(backends) != 2 {
		t.Fatalf("resilience backends = %v, want 2 entries", res["backends"])
	}
	first, ok := backends[0].(map[string]any)
	if !ok || first["breaker_state"] != "closed" {
		t.Errorf("backend 0 breaker_state = %v, want closed", first["breaker_state"])
	}
	if _, ok := res["read_fallbacks"]; !ok {
		t.Error("resilience section missing read_fallbacks for a replicated store")
	}
}

func TestQueryIntDefaults(t *testing.T) {
	req := httptest.NewRequest("GET", "/x?n=abc&m=-3&k=7", nil)
	if got := queryInt(req, "n", 10); got != 10 {
		t.Errorf("non-numeric = %d, want default", got)
	}
	if got := queryInt(req, "m", 10); got != 10 {
		t.Errorf("negative = %d, want default", got)
	}
	if got := queryInt(req, "k", 10); got != 7 {
		t.Errorf("valid = %d, want 7", got)
	}
	if got := queryInt(req, "absent", 5); got != 5 {
		t.Errorf("absent = %d, want default", got)
	}
}

// TestExploreEndpoints serves an exploring system and checks the HTTP
// surface: /recommend carries the explored flag and per-slot arm names, and
// /stats exposes the bandit posteriors.
func TestExploreEndpoints(t *testing.T) {
	kv := kvstore.NewLocal(16)
	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	opts.Explore = true
	opts.ExploreSeed = 7
	sys, err := recommend.NewSystem(kv, params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: id, Type: "movie", Length: 30 * time.Minute})
	}
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b", "c"} {
			sys.Ingest(context.Background(), feedback.Action{
				UserID: u, VideoID: v, Type: feedback.PlayTime,
				ViewTime: 30 * time.Minute, VideoLength: 30 * time.Minute,
				Timestamp: base.Add(time.Duration(min) * time.Minute),
			})
			min++
		}
	}
	srv := httptest.NewServer(newMux(sys, &storeStack{kv: kv, local: kv}, nil))
	t.Cleanup(srv.Close)

	var body struct {
		Videos []struct {
			ID string
		}
		Explored bool
		Arms     []string
	}
	resp := getJSON(t, srv.URL+"/recommend?user=u1&video=a&n=3", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !body.Explored {
		t.Error("explored = false on an exploring system")
	}
	if len(body.Arms) != len(body.Videos) {
		t.Fatalf("%d arm names for %d videos", len(body.Arms), len(body.Videos))
	}
	for _, a := range body.Arms {
		switch a {
		case "mf", "sim", "hot":
		default:
			t.Errorf("unknown arm name %q", a)
		}
	}

	var stats map[string]any
	if resp := getJSON(t, srv.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	arms, ok := stats["bandit"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing bandit section: %v", stats)
	}
	var totalPulls float64
	for _, name := range []string{"mf", "sim", "hot"} {
		arm, ok := arms[name].(map[string]any)
		if !ok {
			t.Fatalf("bandit section missing %s arm: %v", name, arms)
		}
		pulls, _ := arm["pulls"].(float64)
		totalPulls += pulls
		if _, ok := arm["posterior_mean"]; !ok {
			t.Errorf("%s arm stats missing posterior_mean", name)
		}
	}
	if totalPulls != float64(len(body.Videos)) {
		t.Errorf("total pulls %v, want one per served slot (%d)", totalPulls, len(body.Videos))
	}
}

// TestShardedStack builds the embedded -shards mem:2 tier, serves the full
// HTTP surface over it, migrates a slot through POST /rebalance under live
// state, and checks /stats reports the sharding section with the bumped map
// version.
func TestShardedStack(t *testing.T) {
	st, closeStore, err := buildShardedStore(context.Background(), "mem:2", kvstore.DefaultResilienceConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(closeStore)
	if st.sharded == nil || st.coord == nil || len(st.groups) != 2 {
		t.Fatalf("buildShardedStore composed %d groups, sharded=%v", len(st.groups), st.sharded != nil)
	}
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(st.kv, params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: id, Type: "movie", Length: 30 * time.Minute})
	}
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b"} {
			sys.Ingest(context.Background(), feedback.Action{
				UserID: u, VideoID: v, Type: feedback.PlayTime,
				ViewTime: 30 * time.Minute, VideoLength: 30 * time.Minute,
				Timestamp: base.Add(time.Duration(min) * time.Minute),
			})
			min++
		}
	}
	srv := httptest.NewServer(newMux(sys, st, nil))
	t.Cleanup(srv.Close)

	var rec struct {
		Videos []struct{ ID string }
	}
	if resp := getJSON(t, srv.URL+"/recommend?user=visitor&video=a&n=2", &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend status = %d", resp.StatusCode)
	}
	if len(rec.Videos) == 0 {
		t.Fatal("sharded store served no videos")
	}

	// Move one slot owned by group 0 to group 1, then serve again: routing
	// must follow the new map with no visible difference.
	m, _ := st.coord.View()
	slot := -1
	for s := 0; s < kvstore.NumShardSlots; s++ {
		if m.GroupFor(s) == 0 {
			slot = s
			break
		}
	}
	resp, err := http.Post(srv.URL+"/rebalance?slot="+strconv.Itoa(slot)+"&to=g1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance status = %d", resp.StatusCode)
	}
	var moved struct {
		MapVersion uint64 `json:"map_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&moved); err != nil {
		t.Fatal(err)
	}
	if moved.MapVersion != 2 {
		t.Errorf("map_version after rebalance = %d, want 2", moved.MapVersion)
	}
	if resp := getJSON(t, srv.URL+"/recommend?user=visitor&video=a&n=2", &rec); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rebalance recommend status = %d", resp.StatusCode)
	}

	// Bad rebalance requests are 400s; unknown target group is a 500.
	if resp := postStatus(t, srv.URL+"/rebalance?slot=9999&to=g1"); resp != http.StatusBadRequest {
		t.Errorf("out-of-range slot: status = %d, want 400", resp)
	}
	if resp := postStatus(t, srv.URL+"/rebalance?slot=0"); resp != http.StatusBadRequest {
		t.Errorf("missing target: status = %d, want 400", resp)
	}
	if resp := postStatus(t, srv.URL+"/rebalance?slot="+strconv.Itoa(slot)+"&to=nope"); resp != http.StatusInternalServerError {
		t.Errorf("unknown group: status = %d, want 500", resp)
	}

	var stats map[string]any
	if resp := getJSON(t, srv.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	sh, ok := stats["sharding"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing sharding section: %v", stats)
	}
	if v, _ := sh["map_version"].(float64); v != 2 {
		t.Errorf("sharding map_version = %v, want 2", sh["map_version"])
	}
	groups, ok := sh["groups"].([]any)
	if !ok || len(groups) != 2 {
		t.Fatalf("sharding groups = %v, want 2 entries", sh["groups"])
	}
}

// postStatus POSTs with an empty body and returns just the status code.
func postStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestBuildShardedStoreRejectsBadSpecs pins the -shards spec validation.
func TestBuildShardedStoreRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"mem:0", "mem:257", "mem:x", ";", "a,;b"} {
		if _, _, err := buildShardedStore(context.Background(), spec, kvstore.DefaultResilienceConfig()); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
