// Command recserve runs the full real-time recommendation pipeline as an
// HTTP service: it generates (or loads) an action stream, feeds it through
// the Figure 2 topology in the background, and serves recommendation
// requests against the live state — the deployment shape of §5, collapsed
// onto one machine.
//
// Endpoints:
//
//	GET /recommend?user=u00001&n=10[&video=v00042]   ranked recommendations
//	POST /action    body: TSV action line             ingest one action
//	GET /similar?video=v00042&n=10                    similar-video table
//	GET /stats                                        pipeline counters
//	POST /rebalance?slot=N&to=group                   migrate a shard slot (-shards only)
//	GET /healthz                                      liveness
//
// Usage:
//
//	recserve -addr :8080 [-data ./data] [-replay] [-kv addr1,addr2,...] [-shards mem:N|'p1,b1;p2,b2'] [-snapshot state.snap]
//
// With -kv, each remote backend is wrapped in the resilient client stack
// (per-attempt deadline, bounded retries with jittered backoff, per-backend
// circuit breaker — tune with -kv-timeout/-kv-retries/-breaker-threshold/
// -breaker-cooldown), and multiple comma-separated addresses compose under
// write-all/read-first-healthy replication. When every personalized read
// path is down, /recommend answers from the demographic hot lists with
// "degraded": true instead of an error.
//
// With -shards, the storage tier is horizontally partitioned instead: the
// key space splits into 256 hash slots owned by primary/backup shard groups
// ("mem:N" embeds N in-process pairs; "p1,b1;p2,b2" dials remote kvservers,
// each behind the resilient client stack). /stats reports the shard map and
// per-group counters, and POST /rebalance migrates a slot between groups
// under live traffic with the freeze→transfer→flip handoff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/storm"
	"vidrec/internal/topology"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "HTTP listen address")
		data   = flag.String("data", "", "TSV data directory from recgen (empty: generate a small workload)")
		replay = flag.Bool("replay", true, "stream the workload through the topology at startup")
		kvAddr = flag.String("kv", "", "remote kvstore server address(es), comma-separated for replication (empty: embedded store)")
		shards = flag.String("shards", "", "sharded storage tier: mem:N for N embedded primary/backup groups, or 'p1,b1;p2,b2' remote group addresses (first per group is primary); exclusive with -kv")
		snap   = flag.String("snapshot", "", "snapshot file for the embedded store: loaded at startup if present, saved on shutdown")

		kvTimeout  = flag.Duration("kv-timeout", kvstore.DefaultResilienceConfig().OpTimeout, "per-attempt deadline on remote kvstore operations (0 disables)")
		kvRetries  = flag.Int("kv-retries", kvstore.DefaultResilienceConfig().MaxRetries, "retries after a failed remote kvstore attempt")
		brkThresh  = flag.Int("breaker-threshold", kvstore.DefaultResilienceConfig().Breaker.Threshold, "consecutive failures that trip a backend's circuit breaker (0 disables)")
		brkCooldwn = flag.Duration("breaker-cooldown", kvstore.DefaultResilienceConfig().Breaker.Cooldown, "open-breaker cooldown before a half-open probe")

		explore    = flag.Bool("explore", false, "serve with bandit exploration: re-rank slates across the blended candidate sources and learn from click feedback")
		explorePol = flag.String("explore-policy", bandit.PolicyThompson, "exploration policy: thompson or epsilon-greedy")
		exploreEps = flag.Float64("explore-epsilon", recommend.DefaultOptions().ExploreEpsilon, "exploration rate for the epsilon-greedy policy")
		exploreSd  = flag.Uint64("explore-seed", 1, "seed for the exploration policy's RNG (replayable slates)")

		quantized = flag.Bool("quantized", false, "rank with int8-quantized item vectors (the sub-10µs serving fast path)")
		ann       = flag.Bool("ann", false, "add LSH approximate-nearest-neighbour candidate retrieval as a third candidate source")
		annSeed   = flag.Uint64("ann-seed", recommend.DefaultOptions().ANNSeed, "seed for the LSH hyperplanes (replayable probes)")
	)
	flag.Parse()
	opts := recommend.DefaultOptions()
	opts.Explore = *explore
	opts.ExplorePolicy = *explorePol
	opts.ExploreEpsilon = *exploreEps
	opts.ExploreSeed = *exploreSd
	opts.Quantized = *quantized
	opts.ANN = *ann
	opts.ANNSeed = *annSeed
	rcfg := kvstore.DefaultResilienceConfig()
	rcfg.OpTimeout = *kvTimeout
	rcfg.MaxRetries = *kvRetries
	rcfg.Breaker.Threshold = *brkThresh
	rcfg.Breaker.Cooldown = *brkCooldwn
	// Root context for the process: cancelled on the first SIGINT/SIGTERM.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *shards != "" && *kvAddr != "" {
		fmt.Fprintln(os.Stderr, "recserve: -shards and -kv are mutually exclusive")
		os.Exit(2)
	}
	if err := run(ctx, *addr, *data, *replay, *kvAddr, *shards, *snap, rcfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "recserve:", err)
		os.Exit(1)
	}
}

// storeStack is the assembled storage tier plus the layer handles /stats
// reports from: the resilient decorators (one per remote backend) and the
// replication counters when more than one backend is configured.
type storeStack struct {
	kv         kvstore.Store
	local      *kvstore.Local       // non-nil only for the embedded store
	resilients []*kvstore.Resilient // one per remote backend
	replicated *kvstore.Replicated  // non-nil only with >1 backend
	addrs      []string

	// Sharded tier (non-nil only with -shards): the router the pipeline
	// writes through, its coordinator, and the shard groups for /stats and
	// the /rebalance endpoint.
	sharded *kvstore.Sharded
	coord   *kvstore.Coordinator
	groups  []*kvstore.ShardGroup
}

// buildStore assembles the storage tier: the embedded sharded store when no
// address is given, otherwise one resilient client per comma-separated
// address, composed under write-all/read-first-healthy replication when
// there is more than one.
func buildStore(ctx context.Context, kvAddr string, rcfg kvstore.ResilienceConfig) (*storeStack, func(), error) {
	if kvAddr == "" {
		local := kvstore.NewLocal(64)
		return &storeStack{kv: local, local: local}, func() {}, nil
	}
	addrs := strings.Split(kvAddr, ",")
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	st := &storeStack{}
	backends := make([]kvstore.Store, 0, len(addrs))
	for i, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			closeAll()
			return nil, nil, fmt.Errorf("empty address in -kv list %q", kvAddr)
		}
		dialCtx, dialCancel := context.WithTimeout(ctx, 10*time.Second)
		cli, err := kvstore.DialContext(dialCtx, a)
		dialCancel()
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		closers = append(closers, func() { _ = cli.Close() }) // process exit: pooled conns die either way
		r := kvstore.NewResilient(cli, rcfg, uint64(i)+1)
		st.resilients = append(st.resilients, r)
		st.addrs = append(st.addrs, a)
		backends = append(backends, r)
	}
	if len(backends) == 1 {
		st.kv = backends[0]
		return st, closeAll, nil
	}
	repl, err := kvstore.NewReplicated(backends...)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	st.kv = repl
	st.replicated = repl
	return st, closeAll, nil
}

// buildShardedStore assembles the partitioned tier from a -shards spec:
// "mem:N" builds N embedded primary/backup pairs; otherwise each
// semicolon-separated entry is one shard group's comma-separated replica
// addresses (first is the initial primary), every dialed backend wrapped in
// the same resilient client stack -kv uses.
func buildShardedStore(ctx context.Context, spec string, rcfg kvstore.ResilienceConfig) (*storeStack, func(), error) {
	var closers []func()
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}
	st := &storeStack{}
	if n, ok := strings.CutPrefix(spec, "mem:"); ok {
		count, err := strconv.Atoi(n)
		if err != nil || count < 1 || count > 256 {
			return nil, nil, fmt.Errorf("bad -shards %q: mem:N needs N in 1..256", spec)
		}
		for gi := 0; gi < count; gi++ {
			g, err := kvstore.NewShardGroup(fmt.Sprintf("g%d", gi), kvstore.NewLocal(16), kvstore.NewLocal(16))
			if err != nil {
				return nil, nil, err
			}
			st.groups = append(st.groups, g)
		}
	} else {
		for gi, groupSpec := range strings.Split(spec, ";") {
			var replicas []kvstore.Store
			for _, a := range strings.Split(groupSpec, ",") {
				a = strings.TrimSpace(a)
				if a == "" {
					closeAll()
					return nil, nil, fmt.Errorf("empty address in -shards group %d", gi)
				}
				dialCtx, dialCancel := context.WithTimeout(ctx, 10*time.Second)
				cli, err := kvstore.DialContext(dialCtx, a)
				dialCancel()
				if err != nil {
					closeAll()
					return nil, nil, err
				}
				closers = append(closers, func() { _ = cli.Close() }) // process exit: pooled conns die either way
				r := kvstore.NewResilient(cli, rcfg, uint64(gi*8+len(replicas))+1)
				st.resilients = append(st.resilients, r)
				st.addrs = append(st.addrs, a)
				replicas = append(replicas, r)
			}
			g, err := kvstore.NewShardGroup(fmt.Sprintf("g%d", gi), replicas...)
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			st.groups = append(st.groups, g)
		}
	}
	coord, err := kvstore.NewCoordinator(st.groups...)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	// The client id stamps every write for exactly-once dedup; distinct
	// recserve processes must not share one, so derive it from the pid.
	router, err := kvstore.NewSharded(coord, uint64(os.Getpid())<<8|1)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	st.kv, st.coord, st.sharded = router, coord, router
	return st, closeAll, nil
}

func run(ctx context.Context, addr, dataDir string, replay bool, kvAddr, shards, snapshot string, rcfg kvstore.ResilienceConfig, opts recommend.Options) error {
	var st *storeStack
	var closeStore func()
	var err error
	if shards != "" {
		st, closeStore, err = buildShardedStore(ctx, shards, rcfg)
	} else {
		st, closeStore, err = buildStore(ctx, kvAddr, rcfg)
	}
	if err != nil {
		return err
	}
	defer closeStore()
	kv, local := st.kv, st.local
	if snapshot != "" && local != nil {
		if err := local.LoadSnapshot(ctx, snapshot); err != nil {
			log.Printf("snapshot not loaded (%v); starting cold", err)
		} else {
			n, _ := local.Len(ctx) // fails only once ctx is cancelled
			log.Printf("warm start: %d keys from %s", n, snapshot)
			replay = false // state restored; no need to re-stream
		}
	}

	params := core.DefaultParams()
	sys, err := recommend.NewSystem(kv, params, simtable.DefaultConfig(), opts)
	if err != nil {
		return err
	}

	actions, err := loadWorkload(ctx, sys, dataDir)
	if err != nil {
		return err
	}

	var replayMetrics map[string]storm.MetricsSnapshot
	if replay && len(actions) > 0 {
		log.Printf("replaying %d actions through the topology...", len(actions))
		start := time.Now()
		topo, err := topology.Build(sys,
			func(int) topology.Source { return topology.SliceSource(actions) },
			topology.DefaultParallelism())
		if err != nil {
			return err
		}
		if err := topo.Run(ctx); err != nil {
			return err
		}
		log.Printf("replay done in %v", time.Since(start).Round(time.Millisecond))
		replayMetrics = make(map[string]storm.MetricsSnapshot)
		for _, name := range topo.Components() {
			m, _ := topo.MetricsFor(name) // name comes from Components, always known
			replayMetrics[name] = m
		}
	}

	mux := newMux(sys, st, replayMetrics)
	// BaseContext hands every request handler the process root context, so
	// request-scoped store calls are cancelled by shutdown as well as by
	// client disconnects.
	srv := &http.Server{
		Addr:        addr,
		Handler:     mux,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Print("shutting down")
		if snapshot != "" && local != nil {
			if err := local.SaveSnapshot(snapshot); err != nil {
				log.Printf("snapshot save failed: %v", err)
			} else {
				log.Printf("state saved to %s", snapshot)
			}
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

// newMux builds the HTTP API over an assembled system. replayMetrics may be
// nil when no startup replay ran.
func newMux(sys *recommend.System, st *storeStack, replayMetrics map[string]storm.MetricsSnapshot) *http.ServeMux {
	kv := st.kv
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = fmt.Fprintln(w, "ok") // best-effort: a vanished client needs no liveness reply
	})
	mux.HandleFunc("GET /recommend", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		if user == "" {
			http.Error(w, "missing user parameter", http.StatusBadRequest)
			return
		}
		n := queryInt(r, "n", 10)
		res, err := sys.Recommend(r.Context(), recommend.Request{
			UserID:       user,
			CurrentVideo: r.URL.Query().Get("video"),
			N:            n,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body := map[string]any{
			"videos":     res.Videos,
			"seeds":      res.Seeds,
			"candidates": res.Candidates,
			"hot_merged": res.HotMerged,
			"degraded":   res.Degraded,
			"explored":   res.Explored,
			"latency_us": res.Latency.Microseconds(),
		}
		if res.Arms != nil {
			arms := make([]string, len(res.Arms))
			for i, a := range res.Arms {
				arms[i] = a.String()
			}
			body["arms"] = arms
		}
		writeJSON(w, body)
	})
	mux.HandleFunc("GET /similar", func(w http.ResponseWriter, r *http.Request) {
		video := r.URL.Query().Get("video")
		if video == "" {
			http.Error(w, "missing video parameter", http.StatusBadRequest)
			return
		}
		tables, err := sys.Tables.For(demographic.GlobalGroup)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		entries, err := tables.Similar(r.Context(), video, queryInt(r, "n", 10), sys.Now())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, entries)
	})
	mux.HandleFunc("POST /action", func(w http.ResponseWriter, r *http.Request) {
		defer func() { _ = r.Body.Close() }() // net/http closes the body anyway; this just frees it early
		parsed, err := readBodyActions(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		for _, a := range parsed {
			if err := sys.Ingest(r.Context(), a); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		writeJSON(w, map[string]int{"ingested": len(parsed)})
	})
	if st.sharded != nil {
		// Operator-driven slot migration: move one slot to a named group with
		// the freeze→transfer→flip handoff, under live traffic.
		mux.HandleFunc("POST /rebalance", func(w http.ResponseWriter, r *http.Request) {
			slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
			if err != nil || slot < 0 || slot >= kvstore.NumShardSlots {
				http.Error(w, fmt.Sprintf("slot must be in 0..%d", kvstore.NumShardSlots-1), http.StatusBadRequest)
				return
			}
			to := r.URL.Query().Get("to")
			if to == "" {
				http.Error(w, "missing to parameter (target group name)", http.StatusBadRequest)
				return
			}
			moved, err := st.coord.Rebalance(r.Context(), slot, to)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, map[string]any{
				"slot": slot, "to": to, "moved_keys": moved,
				"map_version": st.coord.Stats().Version,
			})
		})
	}
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		lat := sys.Latency.Snapshot()
		stats := map[string]any{
			"now": sys.Now(),
			"serving_latency": map[string]any{
				"count":   lat.Count,
				"mean_us": lat.Mean.Microseconds(),
				"p50_us":  lat.P50.Microseconds(),
				"p99_us":  lat.P99.Microseconds(),
				"max_us":  lat.Max.Microseconds(),
			},
		}
		if replayMetrics != nil {
			stats["replay_topology"] = replayMetrics
		}
		if sys.Options().Explore {
			st, err := sys.Bandit.State(r.Context())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			arms := make(map[string]any, bandit.NumArms)
			for i := 0; i < bandit.NumArms; i++ {
				a := bandit.Arm(i)
				arms[a.String()] = map[string]any{
					"pulls":          st.Pulls[a],
					"wins":           st.Wins[a],
					"posterior_mean": st.Posterior(a).Mean(),
				}
			}
			stats["bandit"] = arms
		}
		if local, ok := kv.(*kvstore.Local); ok {
			snap := local.Stats().Snapshot()
			keys, _ := local.Len(r.Context()) // fails only on a cancelled request
			stats["kv"] = map[string]any{
				"keys": keys, "gets": snap.Gets, "sets": snap.Sets,
				"hit_rate": snap.HitRate(),
			}
		}
		if st.sharded != nil {
			cs := st.coord.Stats()
			rs := st.sharded.Stats()
			groups := make([]map[string]any, 0, len(st.groups))
			for _, g := range st.groups {
				gs := g.Stats()
				groups = append(groups, map[string]any{
					"name":        g.Name(),
					"primary":     g.PrimaryIndex(),
					"replicas":    g.Replicas(),
					"owned_slots": g.OwnedSlots(),
					"promotes":    gs.Promotes,
					"sync_skips":  gs.SyncSkips,
					"dedup_hits":  gs.DedupHits,
				})
			}
			stats["sharding"] = map[string]any{
				"map_version":   cs.Version,
				"rebalances":    cs.Rebalances,
				"moved_keys":    cs.MovedKeys,
				"redirects":     rs.Redirects,
				"frozen_waits":  rs.FrozenWaits,
				"map_refreshes": rs.MapRefreshes,
				"groups":        groups,
			}
		}
		if len(st.resilients) > 0 {
			backends := make([]map[string]any, 0, len(st.resilients))
			for i, res := range st.resilients {
				s := res.Stats()
				backends = append(backends, map[string]any{
					"addr":             st.addrs[i],
					"retries":          s.Retries,
					"exhausted":        s.Exhausted,
					"breaker_state":    res.Breaker().State().String(),
					"breaker_trips":    s.Breaker.Trips,
					"breaker_resets":   s.Breaker.Resets,
					"breaker_rejected": s.Breaker.Rejections,
				})
			}
			resilience := map[string]any{"backends": backends}
			if st.replicated != nil {
				rs := st.replicated.Stats()
				resilience["read_fallbacks"] = rs.ReadFallbacks
				resilience["write_skips"] = rs.WriteSkips
			}
			stats["resilience"] = resilience
		}
		writeJSON(w, stats)
	})
	return mux
}

// loadWorkload reads TSV data from recgen, or generates a small workload
// when no directory is given. Catalog and profiles are loaded into the
// system either way.
func loadWorkload(ctx context.Context, sys *recommend.System, dir string) ([]feedback.Action, error) {
	if dir == "" {
		cfg := dataset.DefaultConfig()
		cfg.Users = 500
		cfg.Videos = 200
		cfg.Days = 3
		cfg.EventsPerDay = 5000
		d, err := dataset.Generate(cfg)
		if err != nil {
			return nil, err
		}
		if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
			return nil, err
		}
		if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
			return nil, err
		}
		return d.AllActions(), nil
	}

	videos, err := readTSV(filepath.Join(dir, "catalog.tsv"), dataset.ReadCatalog)
	if err != nil {
		return nil, err
	}
	for _, v := range videos {
		if err := sys.Catalog.Put(ctx, v); err != nil {
			return nil, err
		}
	}

	profiles, err := readTSV(filepath.Join(dir, "profiles.tsv"), dataset.ReadProfiles)
	if err != nil {
		return nil, err
	}
	for _, p := range profiles {
		if err := sys.Profiles.Put(ctx, p); err != nil {
			return nil, err
		}
	}

	return readTSV(filepath.Join(dir, "actions.tsv"), dataset.ReadActions)
}

// readTSV opens path and parses it with parse. The file is opened read-only,
// so its Close result carries no data-loss information and is dropped.
func readTSV[T any](path string, parse func(io.Reader) ([]T, error)) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only descriptor
	return parse(f)
}

func readBodyActions(r *http.Request) ([]feedback.Action, error) {
	return dataset.ReadActions(r.Body)
}

func queryInt(r *http.Request, key string, def int) int {
	v := strings.TrimSpace(r.URL.Query().Get(key))
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("recserve: encode response: %v", err)
	}
}
