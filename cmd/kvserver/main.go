// Command kvserver runs the distributed memory-based key-value store as a
// standalone TCP service (§5.1's storage tier). Point recserve at it with
// -kv to split the pipeline across processes:
//
//	kvserver -addr 127.0.0.1:7700 &
//	recserve -kv 127.0.0.1:7700
//
// For failover drills, -chaos-fail-rate makes the backing store fail that
// fraction of operations (seeded, so a drill replays): run two kvservers,
// one with chaos, point recserve's replicated client stack at both, and
// watch /stats count the retries, breaker trips, and read fallbacks.
//
// With -shard-groups N, the served store is the horizontally partitioned
// tier behind one endpoint: N primary/backup shard groups under a
// coordinator, fronted by a sharded router — every write carries CID/SeqNo
// dedup and survives a primary failure by backup promotion. Chaos composes:
// the injector then sits on group 0's primary, so a drill exercises the
// promotion path instead of the whole store.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"vidrec/internal/kvstore"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7700", "TCP listen address")
		shards      = flag.Int("shards", 64, "shard count (rounded up to a power of two)")
		shardGroups = flag.Int("shard-groups", 0, "serve the partitioned tier: N in-process primary/backup shard groups behind a sharded router (0: plain store)")
		report      = flag.Duration("report", time.Minute, "stats reporting interval (0 disables)")
		chaosRate   = flag.Float64("chaos-fail-rate", 0, "fraction of operations to fail for resilience drills (0 disables)")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed for the chaos fault injector")
	)
	flag.Parse()
	if *chaosRate < 0 || *chaosRate > 1 {
		fmt.Fprintln(os.Stderr, "kvserver: -chaos-fail-rate must be in [0, 1]")
		os.Exit(2)
	}
	if *shardGroups < 0 || *shardGroups > 256 {
		fmt.Fprintln(os.Stderr, "kvserver: -shard-groups must be in 0..256")
		os.Exit(2)
	}

	// Root context for the process: cancelled on the first SIGINT/SIGTERM,
	// which fails any backing-store call still in flight during shutdown.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	backing := kvstore.NewLocal(*shards)
	var store kvstore.Store = backing
	var chaos *kvstore.Faulty
	if *chaosRate > 0 {
		chaos = kvstore.NewFaulty(backing, *chaosSeed)
		chaos.SetSchedule([]kvstore.FaultPhase{{FailRate: *chaosRate}})
		store = chaos
	}
	if *shardGroups > 0 {
		// Shard-group mode: `backing` (with its chaos wrapper, if any) becomes
		// group 0's primary; every other replica is a fresh Local. The served
		// store is the router, so clients get slot routing, dedup, and
		// promotion semantics over the same wire protocol.
		groups := make([]*kvstore.ShardGroup, *shardGroups)
		for gi := range groups {
			primary := store
			if gi > 0 {
				primary = kvstore.NewLocal(*shards)
			}
			g, err := kvstore.NewShardGroup(fmt.Sprintf("g%d", gi), primary, kvstore.NewLocal(*shards))
			if err != nil {
				fmt.Fprintln(os.Stderr, "kvserver:", err)
				os.Exit(1)
			}
			groups[gi] = g
		}
		coord, err := kvstore.NewCoordinator(groups...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver:", err)
			os.Exit(1)
		}
		router, err := kvstore.NewSharded(coord, uint64(os.Getpid())<<8|1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver:", err)
			os.Exit(1)
		}
		store = router
	}
	srv, err := kvstore.NewServer(ctx, store, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	switch {
	case *shardGroups > 0:
		log.Printf("kvstore serving on %s with %d shard groups (%d slots), chaos fail rate %.3f",
			srv.Addr(), *shardGroups, kvstore.NumShardSlots, *chaosRate)
	case chaos != nil:
		log.Printf("kvstore serving on %s with %d shards, chaos fail rate %.3f (seed %d)",
			srv.Addr(), backing.Shards(), *chaosRate, *chaosSeed)
	default:
		log.Printf("kvstore serving on %s with %d shards", srv.Addr(), backing.Shards())
	}

	stopReport := make(chan struct{})
	var reportWG sync.WaitGroup
	if *report > 0 {
		reportWG.Add(1)
		go func() {
			defer reportWG.Done()
			ticker := time.NewTicker(*report)
			defer ticker.Stop()
			for {
				select {
				case <-stopReport:
					return
				case <-ticker.C:
					snap := backing.Stats().Snapshot()
					keys, _ := backing.Len(ctx) // fails only once ctx is cancelled
					if chaos != nil {
						log.Printf("keys=%d gets=%d sets=%d hit_rate=%.3f chaos_injected=%d",
							keys, snap.Gets, snap.Sets, snap.HitRate(), chaos.Injected())
					} else {
						log.Printf("keys=%d gets=%d sets=%d hit_rate=%.3f",
							keys, snap.Gets, snap.Sets, snap.HitRate())
					}
				}
			}
		}()
	}

	<-ctx.Done()
	log.Print("shutting down")
	close(stopReport)
	reportWG.Wait()
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
