// Command kvserver runs the distributed memory-based key-value store as a
// standalone TCP service (§5.1's storage tier). Point recserve at it with
// -kv to split the pipeline across processes:
//
//	kvserver -addr 127.0.0.1:7700 &
//	recserve -kv 127.0.0.1:7700
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"vidrec/internal/kvstore"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7700", "TCP listen address")
		shards = flag.Int("shards", 64, "shard count (rounded up to a power of two)")
		report = flag.Duration("report", time.Minute, "stats reporting interval (0 disables)")
	)
	flag.Parse()

	backing := kvstore.NewLocal(*shards)
	srv, err := kvstore.NewServer(backing, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	log.Printf("kvstore serving on %s with %d shards", srv.Addr(), backing.Shards())

	stopReport := make(chan struct{})
	var reportWG sync.WaitGroup
	if *report > 0 {
		reportWG.Add(1)
		go func() {
			defer reportWG.Done()
			ticker := time.NewTicker(*report)
			defer ticker.Stop()
			for {
				select {
				case <-stopReport:
					return
				case <-ticker.C:
					snap := backing.Stats().Snapshot()
					keys, _ := backing.Len() // Local.Len cannot fail
					log.Printf("keys=%d gets=%d sets=%d hit_rate=%.3f",
						keys, snap.Gets, snap.Sets, snap.HitRate())
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	close(stopReport)
	reportWG.Wait()
	if err := srv.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
