package main

import (
	"os"
	"path/filepath"
	"testing"

	"vidrec/internal/dataset"
)

func TestRunWritesReadableTSVs(t *testing.T) {
	dir := t.TempDir()
	cfg := dataset.DefaultConfig()
	cfg.Users = 50
	cfg.Videos = 30
	cfg.Days = 1
	cfg.EventsPerDay = 300
	if err := run(cfg, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"actions.tsv", "catalog.tsv", "profiles.tsv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// Everything written must parse back and match the generator.
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	af, err := os.Open(filepath.Join(dir, "actions.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	actions, err := dataset.ReadActions(af)
	if err != nil {
		t.Fatal(err)
	}
	if want := d.AllActions(); len(actions) != len(want) {
		t.Errorf("actions round trip: %d vs %d", len(actions), len(want))
	}
	cf, err := os.Open(filepath.Join(dir, "catalog.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	videos, err := dataset.ReadCatalog(cf)
	if err != nil {
		t.Fatal(err)
	}
	if len(videos) != cfg.Videos {
		t.Errorf("catalog round trip: %d vs %d", len(videos), cfg.Videos)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.Users = 0
	if err := run(cfg, t.TempDir()); err == nil {
		t.Error("invalid config accepted")
	}
}
