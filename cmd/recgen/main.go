// Command recgen generates a synthetic Tencent-Video-shaped action stream
// (the substitution for the paper's proprietary production logs) and writes
// it to TSV files: actions, video catalog, and user profiles.
//
// Usage:
//
//	recgen -out ./data -users 2000 -videos 600 -days 7 -events 40000 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vidrec/internal/dataset"
)

func main() {
	var (
		out    = flag.String("out", "data", "output directory")
		users  = flag.Int("users", 2000, "number of users")
		videos = flag.Int("videos", 600, "number of videos")
		types  = flag.Int("types", 12, "number of video categories")
		days   = flag.Int("days", 7, "stream length in days")
		events = flag.Int("events", 40000, "selection events per day")
		seed   = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	cfg.Users = *users
	cfg.Videos = *videos
	cfg.Types = *types
	cfg.Days = *days
	cfg.EventsPerDay = *events
	cfg.Seed = *seed

	if err := run(cfg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "recgen:", err)
		os.Exit(1)
	}
}

func run(cfg dataset.Config, out string) error {
	d, err := dataset.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	actions := d.AllActions()
	if err := writeFile(filepath.Join(out, "actions.tsv"), func(f *os.File) error {
		return dataset.WriteActions(f, actions)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "catalog.tsv"), func(f *os.File) error {
		return dataset.WriteCatalog(f, d.Videos())
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(out, "profiles.tsv"), func(f *os.File) error {
		return dataset.WriteProfiles(f, d.Users())
	}); err != nil {
		return err
	}

	st := dataset.ComputeStats(actions, nil)
	fmt.Printf("wrote %s: %d actions, %d users, %d videos (sparsity %.2f%%)\n",
		out, st.Actions, st.Users, st.Videos, st.Sparsity*100)
	return nil
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // the write error is already being returned
		return err
	}
	return f.Close()
}
