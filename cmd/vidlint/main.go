// Command vidlint is vidrec's in-tree static analyzer: it loads and
// type-checks every package in the module using only the standard library
// and runs the thirteen discipline passes registered in internal/lint — the
// per-function concurrency/error checks (lockcheck, atomiccheck, errcheck,
// goroutinecheck, clockcheck), the call-graph dataflow suite (lockorder,
// numcheck, ctxcheck), the serving-budget suite (alloccheck, leakcheck),
// and the flowcheck CFG/dataflow suite (nilcheck, wirecheck, blockcheck).
//
// Usage:
//
//	vidlint [-format text|json] [-tests] [-pass name[,name...]]
//	        [-baseline file] [-prune] [-write-baseline file] [-stats]
//	        [packages]
//
// With no package arguments (or "./..."), the whole module is linted.
// Package arguments are module-relative directory prefixes, e.g.
// "internal/kvstore". -baseline suppresses the findings recorded in the
// given file (missing file = empty baseline); -write-baseline records the
// current findings there instead of failing, which is how a new pass lands
// before its backlog is burned down. The baseline can only shrink after
// that: entries that no longer match anything are an error (run -prune to
// rewrite the file down to the matched set), and -write-baseline refuses to
// regrow an existing baseline with new findings — new findings are fixed or
// hatched, never re-baselined. -stats prints a per-pass table of finding,
// baselined, and escape-hatch counts. The exit status is 1 when new findings
// (or stale baseline entries) are reported, 2 when loading or type-checking
// fails, and 0 on a clean tree — so `go run ./cmd/vidlint ./...` slots
// directly into CI and the Makefile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vidrec/internal/lint"
)

func main() {
	var (
		format   = flag.String("format", "text", "output format: text or json")
		jsonOut  = flag.Bool("json", false, "shorthand for -format json")
		tests    = flag.Bool("tests", false, "also lint _test.go files")
		passList = flag.String("pass", "", "comma-separated passes to run (default: all)")
		list     = flag.Bool("list", false, "list registered passes and exit")
		baseline = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		prune    = flag.Bool("prune", false, "rewrite the -baseline file keeping only entries that still match")
		writeBl  = flag.String("write-baseline", "", "write current findings to this baseline file and exit clean")
		stats    = flag.Bool("stats", false, "print per-pass finding/baselined/hatch counts")
	)
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "vidlint: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	if *prune && *baseline == "" {
		fmt.Fprintln(os.Stderr, "vidlint: -prune requires -baseline")
		os.Exit(2)
	}

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes, err := selectPasses(*passList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	units, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}
	units = filterUnits(units, flag.Args())

	all := lint.Run(units, passes)
	if *writeBl != "" {
		// The shrink-only rule: regenerating an existing baseline must not
		// smuggle new findings into it. Only a fresh file (a new pass's
		// initial backlog) may introduce entries.
		old, err := lint.LoadBaseline(*writeBl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
		if grown := old.NewKeys(all); old.Len() > 0 && len(grown) > 0 {
			fmt.Fprintf(os.Stderr, "vidlint: refusing to grow baseline %s with %d new finding(s); fix or hatch them:\n", *writeBl, len(grown))
			for _, k := range grown {
				fmt.Fprintf(os.Stderr, "  %s\n", strings.ReplaceAll(k, "\t", "  "))
			}
			os.Exit(1)
		}
		if err := lint.WriteBaseline(*writeBl, all); err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "vidlint: wrote %d finding(s) to %s\n", len(all), *writeBl)
		return
	}

	findings := all
	stale := []string{}
	if *baseline != "" {
		bl, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
		findings = bl.Filter(all)
		if n := len(all) - len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "vidlint: %d baselined finding(s) suppressed\n", n)
		}
		stale = bl.Stale()
		if *prune {
			dropped, err := bl.Prune(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vidlint:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "vidlint: pruned %d stale entr(y/ies) from %s\n", dropped, *baseline)
			stale = nil
		}
	}

	if *format == "json" {
		out := struct {
			Findings []lint.Finding   `json:"findings"`
			Stale    []string         `json:"stale_baseline,omitempty"`
			Stats    []lint.PassStats `json:"stats,omitempty"`
		}{Findings: findings, Stale: stale}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		if *stats {
			out.Stats = lint.CollectStats(units, passes, all, findings)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		for _, k := range stale {
			fmt.Printf("%s: stale baseline entry (finding no longer produced) — run vidlint -prune\n", strings.ReplaceAll(k, "\t", " "))
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "vidlint: %d finding(s)\n", n)
		}
		if *stats {
			printStats(lint.CollectStats(units, passes, all, findings))
		}
	}
	if len(findings) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
}

// printStats renders the per-pass table for `make lint-stats`.
func printStats(stats []lint.PassStats) {
	fmt.Printf("%-16s %8s %10s %8s\n", "pass", "findings", "baselined", "hatches")
	var tf, tb, th int
	for _, s := range stats {
		fmt.Printf("%-16s %8d %10d %8d\n", s.Pass, s.Findings, s.Baselined, s.Hatches)
		tf += s.Findings
		tb += s.Baselined
		th += s.Hatches
	}
	fmt.Printf("%-16s %8d %10d %8d\n", "total", tf, tb, th)
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectPasses(spec string) ([]*lint.Pass, error) {
	if spec == "" {
		return lint.Passes(), nil
	}
	var out []*lint.Pass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		p := lint.PassByName(name)
		if p == nil {
			return nil, fmt.Errorf("unknown pass %q (use -list)", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// filterUnits keeps units matching the module-relative prefixes in args.
// "./..." (or no args) keeps everything; "./x/..." and "x" both mean the
// subtree at x.
func filterUnits(units []*lint.Unit, args []string) []*lint.Unit {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			return units
		}
		prefixes = append(prefixes, filepath.ToSlash(a))
	}
	if len(prefixes) == 0 {
		return units
	}
	var out []*lint.Unit
	for _, u := range units {
		for _, p := range prefixes {
			if u.RelPath == p || strings.HasPrefix(u.RelPath, p+"/") {
				out = append(out, u)
				break
			}
		}
	}
	return out
}
