// Command vidlint is vidrec's in-tree static analyzer: it loads and
// type-checks every package in the module using only the standard library
// and runs the discipline passes registered in internal/lint — the
// per-function concurrency/error checks (lockcheck, atomiccheck, errcheck,
// goroutinecheck) and the dataflow suite (lockorder, numcheck, ctxcheck).
//
// Usage:
//
//	vidlint [-json] [-tests] [-pass name[,name...]] [-baseline file]
//	        [-write-baseline file] [packages]
//
// With no package arguments (or "./..."), the whole module is linted.
// Package arguments are module-relative directory prefixes, e.g.
// "internal/kvstore". -baseline suppresses the findings recorded in the
// given file (missing file = empty baseline); -write-baseline records the
// current findings there instead of failing, which is how a new pass lands
// before its backlog is burned down. The exit status is 1 when new findings
// are reported, 2 when loading or type-checking fails, and 0 on a clean
// tree — so `go run ./cmd/vidlint ./...` slots directly into CI and the
// Makefile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vidrec/internal/lint"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		tests    = flag.Bool("tests", false, "also lint _test.go files")
		passList = flag.String("pass", "", "comma-separated passes to run (default: all)")
		list     = flag.Bool("list", false, "list registered passes and exit")
		baseline = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBl  = flag.String("write-baseline", "", "write current findings to this baseline file and exit clean")
	)
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-16s %s\n", p.Name, p.Doc)
		}
		return
	}

	passes, err := selectPasses(*passList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}
	loader.IncludeTests = *tests
	units, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vidlint:", err)
		os.Exit(2)
	}
	units = filterUnits(units, flag.Args())

	findings := lint.Run(units, passes)
	if *writeBl != "" {
		if err := lint.WriteBaseline(*writeBl, findings); err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "vidlint: wrote %d finding(s) to %s\n", len(findings), *writeBl)
		return
	}
	if *baseline != "" {
		bl, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
		before := len(findings)
		findings = bl.Filter(findings)
		if n := before - len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "vidlint: %d baselined finding(s) suppressed\n", n)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "vidlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "vidlint: %d finding(s)\n", n)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectPasses(spec string) ([]*lint.Pass, error) {
	if spec == "" {
		return lint.Passes(), nil
	}
	var out []*lint.Pass
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		p := lint.PassByName(name)
		if p == nil {
			return nil, fmt.Errorf("unknown pass %q (use -list)", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// filterUnits keeps units matching the module-relative prefixes in args.
// "./..." (or no args) keeps everything; "./x/..." and "x" both mean the
// subtree at x.
func filterUnits(units []*lint.Unit, args []string) []*lint.Unit {
	var prefixes []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "...")
		a = strings.TrimSuffix(a, "/")
		a = strings.TrimPrefix(a, "./")
		if a == "" || a == "." {
			return units
		}
		prefixes = append(prefixes, filepath.ToSlash(a))
	}
	if len(prefixes) == 0 {
		return units
	}
	var out []*lint.Unit
	for _, u := range units {
		for _, p := range prefixes {
			if u.RelPath == p || strings.HasPrefix(u.RelPath, p+"/") {
				out = append(out, u)
				break
			}
		}
	}
	return out
}
