// Command benchjson converts `go test -bench` output into a machine-readable
// JSON summary, so benchmark numbers can be committed and diffed across
// revisions (EXPERIMENTS.md documents the BENCH_PR4.json instance).
//
// It reads the benchmark output on stdin, echoes it to stdout unchanged (so
// it can sit at the end of a pipe without hiding the run), and writes a JSON
// file with one record per benchmark line. If the output file already exists,
// its "baseline" and "note" fields are preserved verbatim — the baseline is
// the pre-optimisation measurement a change is judged against, and a fresh
// run must never silently overwrite it.
//
// Usage:
//
//	go test -bench 'BenchmarkRecommend' -benchmem . | go run ./cmd/benchjson -out BENCH_PR4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the on-disk schema. Baseline holds the pre-change measurements the
// current numbers are compared against; it is carried over from an existing
// file, never regenerated.
type File struct {
	Note       string      `json:"note,omitempty"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "JSON file to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	benches, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (did the run fail?)")
		os.Exit(1)
	}
	if err := writeFile(*out, benches); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench scans `go test -bench` output, echoing every line to echo and
// collecting benchmark result lines. A result line is
//
//	BenchmarkName[-P]  N  1234 ns/op [5678 B/op] [9 allocs/op] [extra metrics]
//
// Unknown per-op metrics (MB/s, actions/s, ...) are ignored. The -P
// GOMAXPROCS suffix is stripped so names compare across machines.
func parseBench(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			if _, err := fmt.Fprintln(echo, line); err != nil {
				return nil, err
			}
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "BenchmarkFoo ... FAIL" or unrelated prose
		}
		b := Benchmark{Name: stripProcSuffix(fields[0])}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				seen = true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if seen {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS from a benchmark name
// ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar"). Names without the suffix
// (GOMAXPROCS=1 runs omit it) pass through unchanged.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// writeFile merges the fresh benchmarks into path, preserving any existing
// baseline and note.
func writeFile(path string, benches []Benchmark) error {
	var f File
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			return fmt.Errorf("existing %s is not valid JSON (refusing to clobber): %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Benchmarks = benches
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
