// Command benchjson converts `go test -bench` output into a machine-readable
// JSON summary, so benchmark numbers can be committed and diffed across
// revisions (EXPERIMENTS.md documents the BENCH_PR4.json instance).
//
// It reads the benchmark output on stdin, echoes it to stdout unchanged (so
// it can sit at the end of a pipe without hiding the run), and writes a JSON
// file with one record per benchmark line. If the output file already exists,
// its "baseline" and "note" fields are preserved verbatim — the baseline is
// the pre-optimisation measurement a change is judged against, and a fresh
// run must never silently overwrite it.
//
// Usage:
//
//	go test -bench 'BenchmarkRecommend' -benchmem . | go run ./cmd/benchjson -out BENCH_PR4.json
//
// The -compare mode turns two such files into a regression gate:
//
//	go run ./cmd/benchjson -compare old.json new.json -max-regress 10 -require score=q8,ann=on
//
// exits nonzero when any benchmark present in both files is slower by more
// than -max-regress percent ns/op, or grows allocs/op by more than 0.5% (the
// allocation budget is exact on the single-digit warm paths — AllocsPerRun
// pins and alloccheck hold it to an integer, and 0.5% of a handful rounds to
// zero so any growth fails — while the slack forgives the ±1 wobble of the
// hundreds-of-allocs cold paths). -require takes a comma-
// separated list of substrings that must each match at least one benchmark
// name in the NEW file — the gate's proof that expected columns (a new
// serving variant, say) actually ran rather than silently vanishing from
// the matrix. `make bench-gate` wires this against the committed
// BENCH_PR9.json record.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// File is the on-disk schema. Baseline holds the pre-change measurements the
// current numbers are compared against; it is carried over from an existing
// file, never regenerated.
type File struct {
	Note       string      `json:"note,omitempty"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "JSON file to write (required unless -compare)")
	compare := flag.Bool("compare", false, "compare mode: benchjson -compare old.json new.json [-max-regress pct] [-require substrings]")
	maxRegress := flag.Float64("max-regress", 10, "compare mode: maximum allowed ns/op regression, percent")
	require := flag.String("require", "", "compare mode: comma-separated substrings that must each match a benchmark name in new.json")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-max-regress pct] [-require substrings]")
			os.Exit(2)
		}
		// Accept trailing flags after the file operands (the documented
		// invocation puts -max-regress last; package flag stops at the
		// first positional otherwise).
		trailing := flag.NewFlagSet("compare", flag.ExitOnError)
		mr := trailing.Float64("max-regress", *maxRegress, "maximum allowed ns/op regression, percent")
		req := trailing.String("require", *require, "comma-separated substrings that must each match a benchmark name in new.json")
		if err := trailing.Parse(args[2:]); err != nil {
			os.Exit(2)
		}
		regressions, err := compareFiles(args[0], args[1], *mr, requiredSubstrings(*req), os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s (allowed: +%.1f%% ns/op, +0.5%% allocs/op)\n",
				regressions, args[0], *mr)
			os.Exit(1)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}
	benches, err := parseBench(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin (did the run fail?)")
		os.Exit(1)
	}
	if err := writeFile(*out, benches); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench scans `go test -bench` output, echoing every line to echo and
// collecting benchmark result lines. A result line is
//
//	BenchmarkName[-P]  N  1234 ns/op [5678 B/op] [9 allocs/op] [extra metrics]
//
// Unknown per-op metrics (MB/s, actions/s, ...) are ignored. The -P
// GOMAXPROCS suffix is stripped so names compare across machines.
func parseBench(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			if _, err := fmt.Fprintln(echo, line); err != nil {
				return nil, err
			}
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "BenchmarkFoo ... FAIL" or unrelated prose
		}
		b := Benchmark{Name: stripProcSuffix(fields[0])}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				seen = true
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if seen {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS from a benchmark name
// ("BenchmarkFoo/bar-8" → "BenchmarkFoo/bar"). Names without the suffix
// (GOMAXPROCS=1 runs omit it) pass through unchanged.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// requiredSubstrings splits a -require value into its substring list,
// dropping empty segments so a bare or trailing comma is harmless.
func requiredSubstrings(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// compareFiles gates newPath against oldPath: every benchmark present in
// both files must stay within maxRegress percent on ns/op and must not grow
// allocs/op by more than 0.5%. It prints one delta line per compared benchmark to w and
// returns the regression count. Benchmarks only one side has are noted and
// skipped — a narrower fresh run still gates on what it measured — but an
// empty intersection is an error, not a pass. Each entry of required must
// match (substring) at least one benchmark name in newPath; a miss is an
// error — it means an expected column never ran.
//
// Duplicate names within a file (a `go test -count=N` run recorded with
// -out) collapse to the best observation — minimum ns/op, minimum allocs/op
// — because scheduler noise only ever adds time, so the minimum is the
// closest sample to the code's true cost.
func compareFiles(oldPath, newPath string, maxRegress float64, required []string, w io.Writer) (int, error) {
	readBenches := func(path string) (map[string]Benchmark, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]Benchmark, len(f.Benchmarks))
		for _, b := range f.Benchmarks {
			prev, seen := m[b.Name]
			if !seen {
				m[b.Name] = b
				continue
			}
			if b.NsPerOp < prev.NsPerOp {
				prev.NsPerOp = b.NsPerOp
			}
			if b.BytesPerOp < prev.BytesPerOp {
				prev.BytesPerOp = b.BytesPerOp
			}
			if b.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = b.AllocsPerOp
			}
			m[b.Name] = prev
		}
		return m, nil
	}
	oldB, err := readBenches(oldPath)
	if err != nil {
		return 0, err
	}
	newB, err := readBenches(newPath)
	if err != nil {
		return 0, err
	}
	for _, sub := range required {
		found := false
		for name := range newB {
			if strings.Contains(name, sub) {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("required benchmark %q missing from %s", sub, newPath)
		}
	}

	names := make([]string, 0, len(oldB))
	for name := range oldB {
		names = append(names, name)
	}
	sort.Strings(names)

	var werr error
	emit := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}

	regressions, compared := 0, 0
	for _, name := range names {
		o := oldB[name]
		n, ok := newB[name]
		if !ok {
			emit("%s: only in %s, skipped\n", name, oldPath)
			continue
		}
		compared++
		pct := 0.0
		if o.NsPerOp > 0 {
			pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		verdict := "ok"
		if pct > maxRegress {
			verdict = fmt.Sprintf("REGRESSION (ns/op +%.1f%% > +%.1f%%)", pct, maxRegress)
			regressions++
		}
		// Alloc growth beyond 0.5% of the old count fails. The slack is
		// invisible on the pinned single-digit warm budgets (0.5% of 3
		// allocs rounds to zero, so any growth still fails) and only
		// forgives the ±1 run-to-run wobble of the hundreds-of-allocs cold
		// paths, where map growth timing shifts an alloc across the op
		// boundary.
		if growth := n.AllocsPerOp - o.AllocsPerOp; growth > 0 && growth > o.AllocsPerOp/200 {
			verdict = fmt.Sprintf("REGRESSION (allocs/op %v -> %v)", o.AllocsPerOp, n.AllocsPerOp)
			regressions++
		}
		emit("%s: %.0f -> %.0f ns/op (%+.1f%%), %v -> %v allocs/op: %s\n",
			name, o.NsPerOp, n.NsPerOp, pct, o.AllocsPerOp, n.AllocsPerOp, verdict)
	}
	newNames := make([]string, 0, len(newB))
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			newNames = append(newNames, name)
		}
	}
	sort.Strings(newNames)
	for _, name := range newNames {
		emit("%s: new benchmark, no old record\n", name)
	}
	if werr != nil {
		return 0, werr
	}
	if compared == 0 {
		return 0, fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath)
	}
	return regressions, nil
}

// writeFile merges the fresh benchmarks into path, preserving any existing
// baseline and note.
func writeFile(path string, benches []Benchmark) error {
	var f File
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			return fmt.Errorf("existing %s is not valid JSON (refusing to clobber): %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f.Benchmarks = benches
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
