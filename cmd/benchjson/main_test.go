package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: vidrec
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkRecommend/store=local/cache=warm-8         	   26000	     41000 ns/op	   23204 B/op	     140 allocs/op
BenchmarkRecommend/store=local/cache=cold         	    9000	    120000 ns/op	   70100 B/op	     590 allocs/op
BenchmarkTopologyThroughput/parallelism-4-8 	       2	 600000000 ns/op	        6600 actions/s
PASS
ok  	vidrec	12.092s
`

func TestParseBench(t *testing.T) {
	var echo strings.Builder
	got, err := parseBench(strings.NewReader(sampleOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sampleOutput {
		t.Error("input not echoed verbatim")
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	warm := got[0]
	if warm.Name != "BenchmarkRecommend/store=local/cache=warm" {
		t.Errorf("proc suffix not stripped: %q", warm.Name)
	}
	if warm.NsPerOp != 41000 || warm.BytesPerOp != 23204 || warm.AllocsPerOp != 140 {
		t.Errorf("warm = %+v", warm)
	}
	// GOMAXPROCS=1 runs omit the -P suffix; the sub-benchmark's own -4 must
	// survive while the trailing -8 is stripped elsewhere.
	if got[1].Name != "BenchmarkRecommend/store=local/cache=cold" {
		t.Errorf("suffix-less name mangled: %q", got[1].Name)
	}
	if got[2].Name != "BenchmarkTopologyThroughput/parallelism-4" {
		t.Errorf("name = %q, want trailing -8 stripped but -4 kept", got[2].Name)
	}
	if got[2].BytesPerOp != 0 || got[2].AllocsPerOp != 0 {
		t.Errorf("unknown metric leaked into B/op or allocs/op: %+v", got[2])
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	in := "BenchmarkBroken\nBenchmarkAlso broken ns/op\nnothing here\n"
	got, err := parseBench(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}

func TestWriteFilePreservesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	seed := File{
		Note:     "pre-change numbers",
		Baseline: []Benchmark{{Name: "BenchmarkRecommend/store=local/cache=warm", NsPerOp: 107300, BytesPerOp: 69661, AllocsPerOp: 579}},
	}
	data, err := json.Marshal(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := []Benchmark{{Name: "BenchmarkRecommend/store=local/cache=warm", NsPerOp: 41000}}
	if err := writeFile(path, fresh); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got File
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.Note != seed.Note || len(got.Baseline) != 1 || got.Baseline[0].NsPerOp != 107300 {
		t.Errorf("baseline not preserved: %+v", got)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 41000 {
		t.Errorf("fresh benchmarks not written: %+v", got)
	}

	// A corrupt existing file must not be clobbered.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(bad, fresh); err == nil {
		t.Error("writeFile clobbered a corrupt file without error")
	}
}

func writeBenchFile(t *testing.T, name string, benches []Benchmark) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(File{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareFiles(t *testing.T) {
	oldPath := writeBenchFile(t, "old.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 18},
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 5},
		{Name: "BenchmarkGone", NsPerOp: 10, AllocsPerOp: 1},
	})

	// Within the window, no alloc growth: clean.
	clean := writeBenchFile(t, "clean.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1080, AllocsPerOp: 18}, // +8%
		{Name: "BenchmarkB", NsPerOp: 1500, AllocsPerOp: 4},  // faster, fewer
		{Name: "BenchmarkNew", NsPerOp: 7, AllocsPerOp: 0},   // no old record
	})
	var out strings.Builder
	n, err := compareFiles(oldPath, clean, 10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("clean run reported %d regressions:\n%s", n, out.String())
	}
	for _, want := range []string{"BenchmarkGone: only in", "BenchmarkNew: new benchmark"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// Over the ns/op window on one, alloc growth on the other: two findings.
	slow := writeBenchFile(t, "slow.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 18}, // +20% ns/op
		{Name: "BenchmarkB", NsPerOp: 2000, AllocsPerOp: 6},  // +1 alloc
	})
	out.Reset()
	n, err = compareFiles(oldPath, slow, 10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("regressions = %d, want 2:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (ns/op +20.0%") {
		t.Errorf("ns/op regression not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (allocs/op 5 -> 6)") {
		t.Errorf("alloc regression not reported:\n%s", out.String())
	}

	// A -count=3 fresh run collapses to its best repeat: one noisy sample
	// above the window must not trip the gate when another is inside it.
	repeats := writeBenchFile(t, "repeats.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1300, AllocsPerOp: 18},
		{Name: "BenchmarkA", NsPerOp: 1050, AllocsPerOp: 18},
		{Name: "BenchmarkA", NsPerOp: 1250, AllocsPerOp: 18},
		{Name: "BenchmarkB", NsPerOp: 1900, AllocsPerOp: 5},
	})
	out.Reset()
	n, err = compareFiles(oldPath, repeats, 10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("best-of repeats reported %d regressions:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "1000 -> 1050 ns/op") {
		t.Errorf("minimum repeat not used:\n%s", out.String())
	}

	// The 0.5% alloc slack forgives the ±1 run-to-run wobble of
	// hundreds-of-allocs cold paths but stays exact on single-digit warm
	// budgets (already pinned above: 5 -> 6 fails).
	coldOld := writeBenchFile(t, "cold-old.json", []Benchmark{
		{Name: "BenchmarkCold", NsPerOp: 100000, AllocsPerOp: 770},
	})
	coldWobble := writeBenchFile(t, "cold-wobble.json", []Benchmark{
		{Name: "BenchmarkCold", NsPerOp: 100000, AllocsPerOp: 771}, // +0.13%
	})
	out.Reset()
	n, err = compareFiles(coldOld, coldWobble, 10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("±1 cold alloc wobble tripped the gate:\n%s", out.String())
	}
	coldGrown := writeBenchFile(t, "cold-grown.json", []Benchmark{
		{Name: "BenchmarkCold", NsPerOp: 100000, AllocsPerOp: 780}, // +1.3%
	})
	out.Reset()
	n, err = compareFiles(coldOld, coldGrown, 10, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("real cold alloc growth not caught (n=%d):\n%s", n, out.String())
	}

	// Disjoint benchmark sets cannot silently pass.
	disjoint := writeBenchFile(t, "disjoint.json", []Benchmark{
		{Name: "BenchmarkZ", NsPerOp: 1},
	})
	if _, err := compareFiles(oldPath, disjoint, 10, nil, &out); err == nil {
		t.Error("disjoint files compared without error")
	}
}

func TestCompareFilesRequire(t *testing.T) {
	oldPath := writeBenchFile(t, "old.json", []Benchmark{
		{Name: "BenchmarkRecommend/store=local/cache=warm", NsPerOp: 1000, AllocsPerOp: 18},
	})
	fresh := writeBenchFile(t, "fresh.json", []Benchmark{
		{Name: "BenchmarkRecommend/store=local/cache=warm", NsPerOp: 900, AllocsPerOp: 18},
		{Name: "BenchmarkRecommend/store=local/cache=warm/score=q8", NsPerOp: 300, AllocsPerOp: 2},
	})

	// Present substrings pass; the gate still compares the intersection.
	var out strings.Builder
	n, err := compareFiles(oldPath, fresh, 10, []string{"score=q8", "cache=warm"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("require with present columns reported %d regressions:\n%s", n, out.String())
	}

	// A missing required column is an error, not a skipped comparison.
	if _, err := compareFiles(oldPath, fresh, 10, []string{"ann=on"}, &out); err == nil {
		t.Error("missing required column compared without error")
	} else if !strings.Contains(err.Error(), "ann=on") {
		t.Errorf("error does not name the missing column: %v", err)
	}
}

func TestRequiredSubstrings(t *testing.T) {
	if got := requiredSubstrings(""); got != nil {
		t.Errorf("empty value parsed to %v, want nil", got)
	}
	got := requiredSubstrings(" score=q8, ann=on,,")
	if len(got) != 2 || got[0] != "score=q8" || got[1] != "ann=on" {
		t.Errorf("parsed %v, want [score=q8 ann=on]", got)
	}
}

func TestWriteFileFreshStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	if err := writeFile(path, []Benchmark{{Name: "BenchmarkX", NsPerOp: 1}}); err != nil {
		t.Fatal(err)
	}
	var got File
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Baseline != nil {
		t.Errorf("fresh file = %+v", got)
	}
}
