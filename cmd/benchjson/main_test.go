package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: vidrec
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkRecommend/store=local/cache=warm-8         	   26000	     41000 ns/op	   23204 B/op	     140 allocs/op
BenchmarkRecommend/store=local/cache=cold         	    9000	    120000 ns/op	   70100 B/op	     590 allocs/op
BenchmarkTopologyThroughput/parallelism-4-8 	       2	 600000000 ns/op	        6600 actions/s
PASS
ok  	vidrec	12.092s
`

func TestParseBench(t *testing.T) {
	var echo strings.Builder
	got, err := parseBench(strings.NewReader(sampleOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sampleOutput {
		t.Error("input not echoed verbatim")
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(got), got)
	}
	warm := got[0]
	if warm.Name != "BenchmarkRecommend/store=local/cache=warm" {
		t.Errorf("proc suffix not stripped: %q", warm.Name)
	}
	if warm.NsPerOp != 41000 || warm.BytesPerOp != 23204 || warm.AllocsPerOp != 140 {
		t.Errorf("warm = %+v", warm)
	}
	// GOMAXPROCS=1 runs omit the -P suffix; the sub-benchmark's own -4 must
	// survive while the trailing -8 is stripped elsewhere.
	if got[1].Name != "BenchmarkRecommend/store=local/cache=cold" {
		t.Errorf("suffix-less name mangled: %q", got[1].Name)
	}
	if got[2].Name != "BenchmarkTopologyThroughput/parallelism-4" {
		t.Errorf("name = %q, want trailing -8 stripped but -4 kept", got[2].Name)
	}
	if got[2].BytesPerOp != 0 || got[2].AllocsPerOp != 0 {
		t.Errorf("unknown metric leaked into B/op or allocs/op: %+v", got[2])
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	in := "BenchmarkBroken\nBenchmarkAlso broken ns/op\nnothing here\n"
	got, err := parseBench(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}

func TestWriteFilePreservesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	seed := File{
		Note:     "pre-change numbers",
		Baseline: []Benchmark{{Name: "BenchmarkRecommend/store=local/cache=warm", NsPerOp: 107300, BytesPerOp: 69661, AllocsPerOp: 579}},
	}
	data, err := json.Marshal(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh := []Benchmark{{Name: "BenchmarkRecommend/store=local/cache=warm", NsPerOp: 41000}}
	if err := writeFile(path, fresh); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got File
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.Note != seed.Note || len(got.Baseline) != 1 || got.Baseline[0].NsPerOp != 107300 {
		t.Errorf("baseline not preserved: %+v", got)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 41000 {
		t.Errorf("fresh benchmarks not written: %+v", got)
	}

	// A corrupt existing file must not be clobbered.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(bad, fresh); err == nil {
		t.Error("writeFile clobbered a corrupt file without error")
	}
}

func TestWriteFileFreshStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	if err := writeFile(path, []Benchmark{{Name: "BenchmarkX", NsPerOp: 1}}); err != nil {
		t.Fatal(err)
	}
	var got File
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Baseline != nil {
		t.Errorf("fresh file = %+v", got)
	}
}
