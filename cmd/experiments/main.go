// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic workload. Each subcommand prints the
// same rows/series the paper reports; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	experiments [-scale small|paper] [-days N] <experiment>
//
// where <experiment> is one of:
//
//	table1 table2 table3 table4 table5 fig3 fig4 fig5 fig7 grid
//	ablation-freshness ablation-decay ablation-diversity all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vidrec/internal/experiments"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "workload scale: small or paper")
		days      = flag.Int("days", 10, "A/B test length in days (fig7/table5)")
		csvDir    = flag.String("csv", "", "also write figure series as CSV into this directory (fig3/fig4/fig5/fig7)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <table1|table2|table3|table4|table5|fig3|fig4|fig5|fig7|grid|ablation-freshness|ablation-decay|ablation-diversity|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var scale experiments.Scale
	switch *scaleName {
	case "small":
		scale = experiments.SmallScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	if err := run(flag.Arg(0), scale, *days, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// writeCSV saves a figure's series into dir/<name>.csv when dir is set.
func writeCSV(dir, name string, r csvWriter) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteCSV(f); err != nil {
		_ = f.Close() // the write error is already being returned
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("[series written to %s]\n", path)
	return nil
}

func run(name string, scale experiments.Scale, days int, csvDir string) error {
	started := time.Now()
	switch name {
	case "table1":
		fmt.Println(experiments.Table1())
	case "table2":
		fmt.Println(experiments.Table2())
	case "table3":
		res, err := experiments.RunTable3(scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "table4":
		res, err := experiments.RunTable4(scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "table5":
		res, err := experiments.RunTable5(scale, days)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig3":
		res, err := experiments.RunFig3(scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeCSV(csvDir, "fig3", res); err != nil {
			return err
		}
	case "fig4":
		res, err := experiments.RunFig4(scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeCSV(csvDir, "fig4", res); err != nil {
			return err
		}
	case "fig5":
		res, err := experiments.RunFig5(scale)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeCSV(csvDir, "fig5", res); err != nil {
			return err
		}
	case "fig7":
		res, err := experiments.RunFig7(scale, days)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeCSV(csvDir, "fig7", res); err != nil {
			return err
		}
	case "ablation-freshness":
		res, err := experiments.RunFreshness(scale, days)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablation-decay":
		res, err := experiments.RunDecayAblation(scale, days)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablation-diversity":
		res, err := experiments.RunDiversityAblation(scale, days)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "grid":
		res, err := experiments.RunGridSearch(scale,
			[]float64{0.02, 0.05, 0.1}, []float64{0, 0.01, 0.02, 0.05})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "all":
		for _, sub := range []string{
			"table1", "table2", "table3", "table4",
			"fig3", "fig4", "fig5", "fig7", "table5",
		} {
			if err := run(sub, scale, days, csvDir); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	fmt.Printf("[%s done in %v]\n", name, time.Since(started).Round(time.Millisecond))
	return nil
}
