package vidrec

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§6) — each regenerates the experiment at a reduced,
// bench-friendly scale through exactly the code paths cmd/experiments uses —
// plus micro-benchmarks for the production claims (millisecond serving,
// high-throughput model updates, topology scalability).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks take seconds per iteration by design; use
// -benchtime=1x for a quick pass.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/demographic"
	"vidrec/internal/experiments"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/topology"
)

// benchScale is a further-reduced workload so each experiment iteration
// stays in low single-digit seconds.
func benchScale() experiments.Scale {
	s := experiments.SmallScale()
	s.Dataset.Users = 300
	s.Dataset.Videos = 120
	s.Dataset.EventsPerDay = 3000
	s.Replicas = 1
	return s
}

// --- Experiment benchmarks: Tables ---

func BenchmarkTable3DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Actions == 0 {
			b.Fatal("empty dataset")
		}
	}
}

func BenchmarkTable4GroupStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkTable2GridSearch(b *testing.B) {
	s := benchScale()
	s.Dataset.EventsPerDay = 1500
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunGridSearch(s, []float64{0.05}, []float64{0.04}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5CTRLifts(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(s, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Fig7.Report.Variants) != 4 {
			b.Fatal("missing variants")
		}
	}
}

// --- Experiment benchmarks: Figures ---

func BenchmarkFig3GlobalVsGroups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig4RecallAtN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkFig5AvgRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Ranks) == 0 {
			b.Fatal("no ranks")
		}
	}
}

func BenchmarkFig7OnlineCTR(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(s, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Total["rMF"].Impressions == 0 {
			b.Fatal("rMF served nothing")
		}
	}
}

// --- Ablation benchmarks (design choices DESIGN.md calls out) ---

func BenchmarkAblationFreshness(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFreshness(s, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Total["rMF-online"].Impressions == 0 {
			b.Fatal("online variant served nothing")
		}
	}
}

func BenchmarkAblationDecay(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDecayAblation(s, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Total["decay-24h"].Impressions == 0 {
			b.Fatal("decay variant served nothing")
		}
	}
}

// --- Production micro-benchmarks (§6's deployment claims) ---

func benchActions(n int) []feedback.Action {
	cfg := dataset.DefaultConfig()
	cfg.Users = 500
	cfg.Videos = 200
	cfg.Days = 1
	cfg.EventsPerDay = n
	d, err := dataset.Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d.AllActions()
}

// BenchmarkMFProcessAction measures single-step online model updates
// (Algorithm 1) end to end through the key-value store.
func BenchmarkMFProcessAction(b *testing.B) {
	actions := benchActions(20000)
	m, err := core.NewModel("bench", kvstore.NewLocal(64), core.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ProcessAction(context.Background(), actions[i%len(actions)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMFStep measures the pure SGD arithmetic without storage.
func BenchmarkMFStep(b *testing.B) {
	p := core.DefaultParams()
	s := core.State{
		UserVec: make([]float64, p.Factors),
		ItemVec: make([]float64, p.Factors),
	}
	for i := range s.UserVec {
		s.UserVec[i] = 0.01 * float64(i%7)
		s.ItemVec[i] = 0.02 * float64(i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = p.Step(s, 0.5, 1, 2.5)
	}
}

// BenchmarkScoreCandidates measures the serving hot path: one user against
// 200 candidate videos (Eq. 2 each).
func BenchmarkScoreCandidates(b *testing.B) {
	actions := benchActions(5000)
	m, _ := core.NewModel("bench", kvstore.NewLocal(64), core.DefaultParams())
	for _, a := range actions {
		m.ProcessAction(context.Background(), a)
	}
	candidates := make([]string, 200)
	for i := range candidates {
		candidates[i] = fmt.Sprintf("v%05d", i)
	}
	user := actions[0].UserID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ScoreCandidates(context.Background(), user, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimTableUpdate measures one incremental similar-table write.
func BenchmarkSimTableUpdate(b *testing.B) {
	t, err := simtable.New("bench", kvstore.NewLocal(64), simtable.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	base := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := fmt.Sprintf("v%03d", i%100)
		other := fmt.Sprintf("v%03d", (i+1+i%37)%100)
		if owner == other {
			other = "vx"
		}
		if err := t.UpdateDirected(context.Background(), owner, other, 0.5, base.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimTableQuery measures a similar-video lookup with decay.
func BenchmarkSimTableQuery(b *testing.B) {
	t, _ := simtable.New("bench", kvstore.NewLocal(64), simtable.DefaultConfig())
	base := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		t.UpdateDirected(context.Background(), "seed", fmt.Sprintf("v%03d", i), 0.9-0.01*float64(i), base)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Similar(context.Background(), "seed", 20, base.Add(time.Hour)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngest measures the sequential full-pipeline state transition per
// action (model + history + hot + similar tables).
func BenchmarkIngest(b *testing.B) {
	actions := benchActions(20000)
	sys, err := recommend.NewSystem(kvstore.NewLocal(64), core.DefaultParams(),
		simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Ingest(context.Background(), actions[i%len(actions)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendLatency measures end-to-end request serving on a warm
// system — the paper's "latency of milliseconds" claim.
func BenchmarkRecommendLatency(b *testing.B) {
	cfg := dataset.DefaultConfig()
	cfg.Users = 400
	cfg.Videos = 150
	cfg.Days = 1
	cfg.EventsPerDay = 8000
	d, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := recommend.NewSystem(kvstore.NewLocal(64), core.DefaultParams(),
		simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	d.FillCatalog(context.Background(), sys.Catalog)
	d.FillProfiles(context.Background(), sys.Profiles)
	for _, a := range d.AllActions() {
		if err := sys.Ingest(context.Background(), a); err != nil {
			b.Fatal(err)
		}
	}
	users := d.Users()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Recommend(context.Background(), recommend.Request{UserID: users[i%len(users)].ID, N: 10})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkRecommend measures end-to-end request serving across the
// deployment matrix the serving fast path targets: embedded vs networked vs
// replicated vs sharded store × cold vs warm decoded-value cache. Warm is
// the production steady state (every read served from the object cache);
// cold flushes the cache before each request, so every object is fetched and
// decoded again. The replicated column runs the full resilient stack — one
// Resilient decorator per backend under write-all/read-first-healthy — and
// prices what the fault tolerance costs on the healthy path. The sharded
// column routes every request through the slot table into two primary/backup
// shard groups under a coordinator, pricing the partitioned tier's routing,
// dedup stamping, and synchronous replication. The dataset
// shape matches BenchmarkRecommendLatency so numbers stay comparable across
// revisions; `make bench` records this matrix in BENCH_PR10.json. The local
// store additionally runs the serving fast-path variants PR9 introduced —
// int8 quantized scoring (score=q8) and LSH candidate retrieval (ann=on) —
// against the same dataset; the unsuffixed names remain the float/ann-off
// configurations so the matrix stays comparable with earlier baselines.
func BenchmarkRecommend(b *testing.B) {
	cfg := dataset.DefaultConfig()
	cfg.Users = 400
	cfg.Videos = 150
	cfg.Days = 1
	cfg.EventsPerDay = 8000
	d, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	users := d.Users()

	build := func(b *testing.B, kv kvstore.Store, opts recommend.Options) *recommend.System {
		sys, err := recommend.NewSystem(kv, core.DefaultParams(),
			simtable.DefaultConfig(), opts)
		if err != nil {
			b.Fatal(err)
		}
		d.FillCatalog(context.Background(), sys.Catalog)
		d.FillProfiles(context.Background(), sys.Profiles)
		for _, a := range d.AllActions() {
			if err := sys.Ingest(context.Background(), a); err != nil {
				b.Fatal(err)
			}
		}
		return sys
	}

	run := func(sys *recommend.System, cold bool) func(b *testing.B) {
		return func(b *testing.B) {
			// Collect the garbage the builds and earlier sub-benchmarks left
			// behind: ResetTimer excludes setup time but not the GC debt it
			// created, and on small machines a collection landing inside the
			// timed loop dominates a microsecond-scale op. Twice, because a
			// single runtime.GC returns with the sweep still lazy — the next
			// allocations (our timed loop) would pay to sweep the dead spans
			// the cold variants left; starting a second cycle forces sweep
			// termination of the first. Before priming, not after — a GC
			// empties the scratch pools, and priming is what refills them
			// for the warm measurement.
			runtime.GC()
			runtime.GC()
			// Prime every rotating user once so the warm case measures
			// steady-state cache hits rather than first-touch misses.
			for i := range users {
				if _, err := sys.Recommend(context.Background(), recommend.Request{UserID: users[i].ID, N: 10}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if cold {
					b.StopTimer()
					sys.FlushCaches()
					b.StartTimer()
				}
				if _, err := sys.Recommend(context.Background(), recommend.Request{UserID: users[i%len(users)].ID, N: 10}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("store=local", func(b *testing.B) {
		sys := build(b, kvstore.NewLocal(64), recommend.DefaultOptions())
		b.Run("cache=warm", run(sys, false))
		b.Run("cache=cold", run(sys, true))

		q8Opts := recommend.DefaultOptions()
		q8Opts.Quantized = true
		sysQ8 := build(b, kvstore.NewLocal(64), q8Opts)
		b.Run("cache=warm/score=q8", run(sysQ8, false))
		b.Run("cache=cold/score=q8", run(sysQ8, true))

		annOpts := recommend.DefaultOptions()
		annOpts.ANN = true
		sysANN := build(b, kvstore.NewLocal(64), annOpts)
		b.Run("cache=warm/ann=on", run(sysANN, false))

		bothOpts := recommend.DefaultOptions()
		bothOpts.Quantized = true
		bothOpts.ANN = true
		sysBoth := build(b, kvstore.NewLocal(64), bothOpts)
		b.Run("cache=warm/score=q8/ann=on", run(sysBoth, false))
	})
	b.Run("store=net", func(b *testing.B) {
		srv, err := kvstore.NewServer(context.Background(), kvstore.NewLocal(64), "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := kvstore.DialContext(context.Background(), srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		sys := build(b, cli, recommend.DefaultOptions())
		b.Run("cache=warm", run(sys, false))
		b.Run("cache=cold", run(sys, true))
	})
	b.Run("store=replicated", func(b *testing.B) {
		cfg := kvstore.DefaultResilienceConfig()
		repl, err := kvstore.NewReplicated(
			kvstore.NewResilient(kvstore.NewLocal(64), cfg, 1),
			kvstore.NewResilient(kvstore.NewLocal(64), cfg, 2),
		)
		if err != nil {
			b.Fatal(err)
		}
		sys := build(b, repl, recommend.DefaultOptions())
		b.Run("cache=warm", run(sys, false))
		b.Run("cache=cold", run(sys, true))
	})
	b.Run("store=sharded", func(b *testing.B) {
		groups := make([]*kvstore.ShardGroup, 2)
		for gi := range groups {
			g, err := kvstore.NewShardGroup(fmt.Sprintf("g%d", gi),
				kvstore.NewLocal(64), kvstore.NewLocal(64))
			if err != nil {
				b.Fatal(err)
			}
			groups[gi] = g
		}
		coord, err := kvstore.NewCoordinator(groups...)
		if err != nil {
			b.Fatal(err)
		}
		router, err := kvstore.NewSharded(coord, 1)
		if err != nil {
			b.Fatal(err)
		}
		sys := build(b, router, recommend.DefaultOptions())
		b.Run("cache=warm", run(sys, false))
		b.Run("cache=cold", run(sys, true))
	})
}

// BenchmarkTopologyThroughput streams a fixed workload through the Figure 2
// topology at two parallelism levels and reports actions/second.
func BenchmarkTopologyThroughput(b *testing.B) {
	actions := benchActions(4000)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := recommend.NewSystem(kvstore.NewLocal(64), core.DefaultParams(),
					simtable.DefaultConfig(), recommend.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				par := topology.Parallelism{
					Spout: 1, ComputeMF: p, MFStorage: p, UserHistory: p,
					GetItemPairs: p, ItemPairSim: p, ResultStorage: p,
				}
				topo, err := topology.Build(sys,
					func(int) topology.Source { return topology.SliceSource(actions) }, par)
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				if err := topo.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(actions))/time.Since(start).Seconds(), "actions/s")
			}
		})
	}
}

// BenchmarkKVStoreLocal measures the embedded store's core operations.
func BenchmarkKVStoreLocal(b *testing.B) {
	s := kvstore.NewLocal(64)
	val := kvstore.EncodeFloats(make([]float64, 40))
	b.Run("set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Set(context.Background(), fmt.Sprintf("k%d", i%4096), val)
		}
	})
	b.Run("get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Get(context.Background(), fmt.Sprintf("k%d", i%4096))
		}
	})
}

// BenchmarkKVStoreNetwork measures a full TCP round trip to the networked
// store deployment.
func BenchmarkKVStoreNetwork(b *testing.B) {
	srv, err := kvstore.NewServer(context.Background(), kvstore.NewLocal(64), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := kvstore.DialContext(context.Background(), srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	val := kvstore.EncodeFloats(make([]float64, 40))
	cli.Set(context.Background(), "k", val)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cli.Get(context.Background(), "k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotTracker measures demographic hot-list maintenance.
func BenchmarkHotTracker(b *testing.B) {
	h, err := demographic.NewHotTracker("bench", kvstore.NewLocal(16), 24*time.Hour, 100)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(context.Background(), demographic.GlobalGroup, fmt.Sprintf("v%03d", i%300), 1.5,
			base.Add(time.Duration(i)*time.Second))
	}
}
