// Package vidrec is a from-scratch Go reproduction of "Real-time Video
// Recommendation Exploration" (Huang, Cui, Jiang, Hong, Zhang, Xie —
// SIGMOD 2016): Tencent Video's production real-time recommender.
//
// The system comprises an online adjustable matrix-factorization model for
// implicit feedback (internal/core), similar-video tables fusing CF, type
// and time-decay similarity (internal/simtable), real-time top-N
// recommendation generation with demographic filtering (internal/recommend,
// internal/demographic), a Storm-style stream-processing engine
// (internal/storm) running the paper's Figure 2 topology
// (internal/topology) over a distributed in-memory key-value store
// (internal/kvstore), the three production baselines Hot/AR/SimHash
// (internal/baseline), a synthetic Tencent-shaped workload generator
// (internal/dataset), and the paper's full offline and online evaluation
// harness (internal/eval, internal/abtest, internal/experiments).
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and README.md to get
// started. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation section at a reduced scale.
package vidrec
