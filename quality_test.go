package vidrec

// Recall-parity guard for the PR9 serving fast paths: int8-quantized
// scoring and LSH candidate retrieval buy latency, and this test pins what
// they are allowed to cost in quality. Two full systems train over the same
// §6.1-style corpus — one float, one quantized+ANN — and both serve the
// held-out test day through the real Recommend path (candidate generation,
// exclusions, hot-list merge included). The fast path must keep recall@10
// within two percent of the float path, relative — the contract DESIGN.md
// states and the quantization error analysis in vecmath predicts with
// margin to spare.

import (
	"context"
	"testing"

	"vidrec/internal/core"
	"vidrec/internal/eval"
	"vidrec/internal/experiments"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// recallTolerance is the maximum relative recall@10 loss the quantized+ANN
// serving path may show against float serving.
const recallTolerance = 0.02

func TestQuantizedRecallParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two full systems; skipped in -short")
	}
	scale := experiments.SmallScale()
	scale.Dataset.Users = 180
	scale.Dataset.Videos = 100
	scale.Dataset.Days = 4
	scale.Dataset.EventsPerDay = 2500
	scale.TrainDays = 3
	scale.MinUserActions = 8
	scale.MinVideoActions = 8
	corpus, err := experiments.Prepare(scale)
	if err != nil {
		t.Fatal(err)
	}

	build := func(opts recommend.Options) *recommend.System {
		sys, err := recommend.NewSystem(kvstore.NewLocal(64), core.DefaultParams(),
			simtable.DefaultConfig(), opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := corpus.Data.FillCatalog(ctx, sys.Catalog); err != nil {
			t.Fatal(err)
		}
		if err := corpus.Data.FillProfiles(ctx, sys.Profiles); err != nil {
			t.Fatal(err)
		}
		for _, a := range corpus.Train {
			if err := sys.Ingest(ctx, a); err != nil {
				t.Fatal(err)
			}
		}
		return sys
	}

	serve := func(sys *recommend.System) eval.Recommender {
		return eval.RecommenderFunc(func(userID string, n int) ([]string, error) {
			res, err := sys.Recommend(context.Background(), recommend.Request{UserID: userID, N: n})
			if err != nil {
				return nil, err
			}
			ids := make([]string, len(res.Videos))
			for i, e := range res.Videos {
				ids[i] = e.ID
			}
			return ids, nil
		})
	}

	fastOpts := recommend.DefaultOptions()
	fastOpts.Quantized = true
	fastOpts.ANN = true

	floatSys := build(recommend.DefaultOptions())
	fastSys := build(fastOpts)

	ts := eval.BuildTestSet(corpus.Test, feedback.DefaultWeights())
	const topN = 10
	floatRecall, err := eval.RecallAtN(serve(floatSys), ts, topN)
	if err != nil {
		t.Fatal(err)
	}
	fastRecall, err := eval.RecallAtN(serve(fastSys), ts, topN)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recall@%d: float=%.4f quantized+ann=%.4f", topN, floatRecall, fastRecall)
	if floatRecall <= 0 {
		t.Fatal("float recall is zero — the corpus gives the parity check nothing to compare")
	}
	if loss := (floatRecall - fastRecall) / floatRecall; loss > recallTolerance {
		t.Errorf("quantized+ANN serving loses %.2f%% recall@%d vs float (%.4f vs %.4f), tolerance %.0f%%",
			loss*100, topN, fastRecall, floatRecall, recallTolerance*100)
	}
}
