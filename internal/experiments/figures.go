package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"vidrec/internal/abtest"
	"vidrec/internal/baseline"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// Fig3Row holds one model variant's global-vs-group comparison.
type Fig3Row struct {
	Rule          core.UpdateRule
	GlobalRecall  float64
	GroupRecall   float64 // mean over the three largest groups
	GlobalAvgRank float64
	GroupAvgRank  float64
}

// Fig3Result reproduces Figure 3: the effectiveness of demographic training,
// comparing globally trained models against group-trained ones for all three
// update-rule variants. Metrics are averaged over Scale.Replicas
// independently seeded datasets.
type Fig3Result struct {
	Rows   []Fig3Row
	Groups []string
	// Replicas is how many datasets the averages cover.
	Replicas int
}

// RunFig3 trains each variant once globally and once per demographic group
// (the three largest), evaluating each group model on its own group's test
// actions, averaged over the scale's replicas.
func RunFig3(s Scale) (*Fig3Result, error) {
	agg := &Fig3Result{Replicas: s.replicas()}
	for _, rule := range Rules() {
		agg.Rows = append(agg.Rows, Fig3Row{Rule: rule})
	}
	for rep := 0; rep < s.replicas(); rep++ {
		one, err := runFig3Once(s.withSeed(rep))
		if err != nil {
			return nil, err
		}
		if rep == 0 {
			agg.Groups = one.Groups
		}
		for i := range agg.Rows {
			agg.Rows[i].GlobalRecall += one.Rows[i].GlobalRecall
			agg.Rows[i].GroupRecall += one.Rows[i].GroupRecall
			agg.Rows[i].GlobalAvgRank += one.Rows[i].GlobalAvgRank
			agg.Rows[i].GroupAvgRank += one.Rows[i].GroupAvgRank
		}
	}
	n := float64(s.replicas())
	for i := range agg.Rows {
		agg.Rows[i].GlobalRecall /= n
		agg.Rows[i].GroupRecall /= n
		agg.Rows[i].GlobalAvgRank /= n
		agg.Rows[i].GroupAvgRank /= n
	}
	return agg, nil
}

func runFig3Once(s Scale) (*Fig3Result, error) {
	c, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	trainByGroup := dataset.GroupBy(c.Train, c.Data.GroupOf)
	testByGroup := dataset.GroupBy(c.Test, c.Data.GroupOf)
	groups := dataset.LargestGroups(trainByGroup, 3)
	if len(groups) == 0 {
		return nil, fmt.Errorf("experiments: no demographic groups in the cleaned data")
	}
	res := &Fig3Result{Groups: groups}
	for _, rule := range Rules() {
		var row Fig3Row
		row.Rule = rule

		m, err := TrainModel("global", rule, s.Dataset.Factors, c.Train)
		if err != nil {
			return nil, err
		}
		w := m.Params().Weights

		// Both models are evaluated per group on the same test users and
		// the same candidate corpus (the group's training videos): the
		// only difference is which actions trained the model — training
		// locality, the variable Figure 3 isolates.
		var gRecall, gRank, glRecall, glRank, weightSum float64
		for _, g := range groups {
			ts := eval.BuildTestSet(testByGroup[g], w)

			globalMetrics, err := eval.Evaluate(
				NewModelRecommender(m, trainByGroup[g], w), ts, s.TopN)
			if err != nil {
				return nil, err
			}
			gm, err := TrainModel("group-"+g, rule, s.Dataset.Factors, trainByGroup[g])
			if err != nil {
				return nil, err
			}
			metrics, err := eval.Evaluate(
				NewModelRecommender(gm, trainByGroup[g], w), ts, s.TopN)
			if err != nil {
				return nil, err
			}
			wgt := float64(metrics.UsersEvaluated)
			gRecall += metrics.Recall * wgt
			gRank += metrics.AvgRank * wgt
			glRecall += globalMetrics.Recall * wgt
			glRank += globalMetrics.AvgRank * wgt
			weightSum += wgt
		}
		if weightSum > 0 {
			row.GroupRecall = gRecall / weightSum
			row.GroupAvgRank = gRank / weightSum
			row.GlobalRecall = glRecall / weightSum
			row.GlobalAvgRank = glRank / weightSum
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints Figure 3's bars as rows with improvement percentages.
func (r *Fig3Result) Render() string {
	header := []string{"Model", "recall(global)", "recall(groups)", "recall gain(%)",
		"avgrank(global)", "avgrank(groups)", "avgrank gain(%)"}
	var rows [][]string
	for _, row := range r.Rows {
		recallGain := 0.0
		if row.GlobalRecall > 0 {
			recallGain = (row.GroupRecall - row.GlobalRecall) / row.GlobalRecall * 100
		}
		rankGain := 0.0
		if row.GlobalAvgRank > 0 {
			rankGain = (row.GlobalAvgRank - row.GroupAvgRank) / row.GlobalAvgRank * 100
		}
		rows = append(rows, []string{
			row.Rule.String(),
			fmt.Sprintf("%.4f", row.GlobalRecall),
			fmt.Sprintf("%.4f", row.GroupRecall),
			fmt.Sprintf("%+.1f", recallGain),
			fmt.Sprintf("%.4f", row.GlobalAvgRank),
			fmt.Sprintf("%.4f", row.GroupAvgRank),
			fmt.Sprintf("%+.1f", rankGain),
		})
	}
	return fmt.Sprintf("Figure 3: Comparison of Global vs Groups (mean of %d runs; run-1 groups: %s)\n",
		r.Replicas, strings.Join(r.Groups, ", ")) + renderTable(header, rows)
}

// Fig4Result reproduces Figure 4: recall@N for N = 1..TopN for the three
// model variants, per demographic-group rank (Group1 = each replica's
// largest group), averaged over Scale.Replicas datasets.
type Fig4Result struct {
	// Groups labels the group ranks; the names are the first replica's.
	Groups []string
	// Curves[group][rule] is recall@1..TopN.
	Curves map[string]map[core.UpdateRule][]float64
	TopN   int
	// Replicas is how many datasets the averages cover.
	Replicas int
}

// RunFig4 trains each variant per group and sweeps recall@N, averaging
// curves across replicas by group rank.
func RunFig4(s Scale) (*Fig4Result, error) {
	res := &Fig4Result{
		Curves:   make(map[string]map[core.UpdateRule][]float64),
		TopN:     s.TopN,
		Replicas: s.replicas(),
	}
	for rep := 0; rep < s.replicas(); rep++ {
		rs := s.withSeed(rep)
		c, err := Prepare(rs)
		if err != nil {
			return nil, err
		}
		trainByGroup := dataset.GroupBy(c.Train, c.Data.GroupOf)
		testByGroup := dataset.GroupBy(c.Test, c.Data.GroupOf)
		groups := dataset.LargestGroups(trainByGroup, 3)
		if len(groups) == 0 {
			return nil, fmt.Errorf("experiments: no demographic groups in the cleaned data")
		}
		if rep == 0 {
			res.Groups = groups
			for _, g := range groups {
				res.Curves[g] = make(map[core.UpdateRule][]float64)
				for _, rule := range Rules() {
					res.Curves[g][rule] = make([]float64, s.TopN)
				}
			}
		}
		for gi, g := range groups {
			if gi >= len(res.Groups) {
				break
			}
			slot := res.Groups[gi]
			for _, rule := range Rules() {
				m, err := TrainModel("fig4", rule, rs.Dataset.Factors, trainByGroup[g])
				if err != nil {
					return nil, err
				}
				w := m.Params().Weights
				curve, err := eval.RecallCurve(
					NewModelRecommender(m, trainByGroup[g], w),
					eval.BuildTestSet(testByGroup[g], w), s.TopN)
				if err != nil {
					return nil, err
				}
				for n := range curve {
					res.Curves[slot][rule][n] += curve[n] / float64(s.replicas())
				}
			}
		}
	}
	return res, nil
}

// Render prints one recall@N series block per group, as Figure 4's three
// panels.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: recall@N Comparison of Alternative Models\n")
	for gi, g := range r.Groups {
		fmt.Fprintf(&b, "(%c) Group%d [%s]\n", 'a'+gi, gi+1, g)
		header := []string{"N"}
		for _, rule := range Rules() {
			header = append(header, rule.String())
		}
		var rows [][]string
		for n := 1; n <= r.TopN; n++ {
			row := []string{fmt.Sprintf("%d", n)}
			for _, rule := range Rules() {
				row = append(row, fmt.Sprintf("%.4f", r.Curves[g][rule][n-1]))
			}
			rows = append(rows, row)
		}
		b.WriteString(renderTable(header, rows))
	}
	return b.String()
}

// Fig5Result reproduces Figure 5: the rank metric for the three variants per
// demographic-group rank, averaged over Scale.Replicas datasets.
type Fig5Result struct {
	// Groups labels the group ranks; the names are the first replica's.
	Groups []string
	// Ranks[group][rule] is avg rank at TopN.
	Ranks map[string]map[core.UpdateRule]float64
	// Replicas is how many datasets the averages cover.
	Replicas int
}

// RunFig5 trains each variant per group and reports avg rank (Eq. 14),
// averaged across replicas by group rank.
func RunFig5(s Scale) (*Fig5Result, error) {
	res := &Fig5Result{
		Ranks:    make(map[string]map[core.UpdateRule]float64),
		Replicas: s.replicas(),
	}
	for rep := 0; rep < s.replicas(); rep++ {
		rs := s.withSeed(rep)
		c, err := Prepare(rs)
		if err != nil {
			return nil, err
		}
		trainByGroup := dataset.GroupBy(c.Train, c.Data.GroupOf)
		testByGroup := dataset.GroupBy(c.Test, c.Data.GroupOf)
		groups := dataset.LargestGroups(trainByGroup, 3)
		if len(groups) == 0 {
			return nil, fmt.Errorf("experiments: no demographic groups in the cleaned data")
		}
		if rep == 0 {
			res.Groups = groups
			for _, g := range groups {
				res.Ranks[g] = make(map[core.UpdateRule]float64)
			}
		}
		for gi, g := range groups {
			if gi >= len(res.Groups) {
				break
			}
			slot := res.Groups[gi]
			for _, rule := range Rules() {
				m, err := TrainModel("fig5", rule, rs.Dataset.Factors, trainByGroup[g])
				if err != nil {
					return nil, err
				}
				w := m.Params().Weights
				metrics, err := eval.Evaluate(
					NewModelRecommender(m, trainByGroup[g], w),
					eval.BuildTestSet(testByGroup[g], w), s.TopN)
				if err != nil {
					return nil, err
				}
				res.Ranks[slot][rule] += metrics.AvgRank / float64(s.replicas())
			}
		}
	}
	return res, nil
}

// Render prints Figure 5's grouped bars as a table.
func (r *Fig5Result) Render() string {
	header := []string{"Group"}
	for _, rule := range Rules() {
		header = append(header, rule.String())
	}
	var rows [][]string
	for gi, g := range r.Groups {
		row := []string{fmt.Sprintf("Group%d [%s]", gi+1, g)}
		for _, rule := range Rules() {
			row = append(row, fmt.Sprintf("%.4f", r.Ranks[g][rule]))
		}
		rows = append(rows, row)
	}
	return "Figure 5: rank Comparison of Alternative Models\n" + renderTable(header, rows)
}

// Fig7Result reproduces Figure 7: CTR of the four production methods over a
// simulated multi-day A/B test.
type Fig7Result struct {
	Report *abtest.Report
	Days   int
}

// RunFig7 assembles the four §6.2 methods — Hot, AR, SimHash and rMF — and
// runs the A/B simulation over the given number of days.
func RunFig7(s Scale, days int) (*Fig7Result, error) {
	if days <= 0 {
		days = 10
	}
	abCfg := abtest.DefaultConfig()
	abCfg.Days = days
	abCfg.N = s.TopN
	// The online test streams the dataset's full length; extend the
	// dataset's day count to cover warmup plus the test period.
	cfg := s.Dataset
	cfg.Days = days + abCfg.WarmupDays
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}

	hot, err := baseline.NewHot(kvstore.NewLocal(16), 24*time.Hour, 200)
	if err != nil {
		return nil, err
	}
	ar := baseline.NewAR()
	simhash := baseline.NewSimHash()

	params := core.DefaultParams()
	params.Factors = s.Dataset.Factors
	sys, err := recommend.NewSystem(kvstore.NewLocal(64), params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		return nil, err
	}
	// Offline experiment harness: no caller-supplied deadline to inherit.
	ctx := context.Background()
	if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
		return nil, err
	}
	if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
		return nil, err
	}
	// The system's clock follows its ingest stream: requests interleaved
	// with organic traffic see the state as of the triggering action.
	variants := []abtest.Variant{
		{
			Name:        "Hot",
			Recommender: hot,
			Ingest:      hot.Record,
			SetNow:      hot.SetNow,
		},
		{
			Name:        "AR",
			Recommender: ar,
			TrainDaily:  ar.Train,
		},
		{
			Name:        "SimHash",
			Recommender: simhash,
			TrainDaily:  simhash.Train,
		},
		{
			Name:        "rMF",
			Recommender: recommend.EvalAdapter{S: sys, Ctx: ctx},
			Ingest:      ingestWith(ctx, sys),
		},
	}
	report, err := abtest.Run(d, variants, abCfg)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Report: report, Days: days}, nil
}

// Render prints the daily CTR series (Figure 7) and period totals.
func (r *Fig7Result) Render() string {
	header := []string{"Day"}
	header = append(header, r.Report.Variants...)
	var rows [][]string
	for day := 0; day < len(r.Report.Daily); day++ {
		row := []string{fmt.Sprintf("%d", day+1)}
		for _, name := range r.Report.Variants {
			row = append(row, fmt.Sprintf("%.4f", r.Report.Daily[day][name].CTR()))
		}
		rows = append(rows, row)
	}
	total := []string{"all"}
	for _, name := range r.Report.Variants {
		total = append(total, fmt.Sprintf("%.4f", r.Report.Total[name].CTR()))
	}
	rows = append(rows, total)
	return "Figure 7: Online CTR of comparative methods (A/B test)\n" + renderTable(header, rows)
}
