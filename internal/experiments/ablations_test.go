package experiments

import (
	"strings"
	"testing"
)

func ablationScale() Scale {
	s := SmallScale()
	s.Dataset.Users = 250
	s.Dataset.Videos = 100
	s.Dataset.EventsPerDay = 2000
	return s
}

func TestFreshnessAblationOnlineWins(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B simulation")
	}
	res, err := RunFreshness(ablationScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	online := res.Report.Total["rMF-online"].CTR()
	batch := res.Report.Total["MF-daily-batch"].CTR()
	if online <= batch {
		t.Errorf("online CTR %v not above daily-batch %v (the paper's core motivation)", online, batch)
	}
	out := res.Render()
	if !strings.Contains(out, "freshness lift") {
		t.Error("Render missing lift line")
	}
}

func TestDiversityAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B simulation")
	}
	res, err := RunDiversityAblation(ablationScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithFiltering.UsersEvaluated == 0 || res.WithoutFiltering.UsersEvaluated == 0 {
		t.Fatalf("diversity not measured: %+v", res)
	}
	// Demographic filtering must not collapse accuracy (it is a diversity
	// mechanism, not a ranking one)...
	if res.CTRWith < 0.85*res.CTRWithout {
		t.Errorf("filtering cost too much CTR: %v vs %v", res.CTRWith, res.CTRWithout)
	}
	// ...and must keep intra-list type diversity at least comparable
	// (§5.2.1 claims it broadens lists; exact margins are scale-noisy).
	if res.WithFiltering.MeanTypesPerList < res.WithoutFiltering.MeanTypesPerList-0.5 {
		t.Errorf("filtering reduced per-list diversity: %v vs %v",
			res.WithFiltering.MeanTypesPerList, res.WithoutFiltering.MeanTypesPerList)
	}
	if !strings.Contains(res.Render(), "coverage") {
		t.Error("Render missing columns")
	}
}

func TestDecayAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("A/B simulation")
	}
	res, err := RunDecayAblation(ablationScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Both variants must serve traffic; the decayed variant must not be
	// meaningfully worse (the time factor exists to help under drift, and
	// at worst is neutral on short horizons).
	withDecay := res.Report.Total["decay-24h"].CTR()
	without := res.Report.Total["decay-off"].CTR()
	if withDecay == 0 || without == 0 {
		t.Fatalf("variant served nothing: %v / %v", withDecay, without)
	}
	if withDecay < 0.9*without {
		t.Errorf("decay-24h CTR %v well below decay-off %v", withDecay, without)
	}
	if !strings.Contains(res.Render(), "decay-24h") {
		t.Error("Render missing variant names")
	}
}
