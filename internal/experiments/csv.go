package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exports for the figure series, so the reproduced curves can be plotted
// directly against the paper's. Each writer emits one flat table with a
// header row.

// WriteCSV emits Figure 3's rows: model, scope (global/groups), recall,
// avgrank.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "scope", "recall", "avgrank"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{row.Rule.String(), "global", csvFloat(row.GlobalRecall), csvFloat(row.GlobalAvgRank)}); err != nil {
			return err
		}
		if err := cw.Write([]string{row.Rule.String(), "groups", csvFloat(row.GroupRecall), csvFloat(row.GroupAvgRank)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits Figure 4's curves: group, model, n, recall.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "model", "n", "recall"}); err != nil {
		return err
	}
	for _, g := range r.Groups {
		for _, rule := range Rules() {
			for n, v := range r.Curves[g][rule] {
				rec := []string{g, rule.String(), strconv.Itoa(n + 1), csvFloat(v)}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits Figure 5's bars: group, model, avgrank.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "model", "avgrank"}); err != nil {
		return err
	}
	for _, g := range r.Groups {
		for _, rule := range Rules() {
			if err := cw.Write([]string{g, rule.String(), csvFloat(r.Ranks[g][rule])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits Figure 7's daily series: day, method, impressions, clicks,
// ctr.
func (r *Fig7Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"day", "method", "impressions", "clicks", "ctr"}); err != nil {
		return err
	}
	for day, rec := range r.Report.Daily {
		for _, name := range r.Report.Variants {
			d := rec[name]
			row := []string{
				strconv.Itoa(day + 1), name,
				strconv.Itoa(d.Impressions), strconv.Itoa(d.Clicks), csvFloat(d.CTR()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvFloat(v float64) string { return fmt.Sprintf("%.6f", v) }
