package experiments

import (
	"strings"
	"testing"

	"vidrec/internal/core"
)

// The experiment tests assert the *shapes* the paper reports (DESIGN.md §2):
// who wins, in which direction, within sane ranges — not absolute values,
// which depend on the synthetic substrate.

// testScale shrinks the workload for the cheap experiments (tables, grid,
// online test); the model-ablation figures use full SmallScale because their
// orderings only stabilize with enough test users per group.
func testScale() Scale {
	s := SmallScale()
	s.Dataset.Users = 250
	s.Dataset.Videos = 100
	s.Dataset.EventsPerDay = 2500
	return s
}

func TestPrepareProtocol(t *testing.T) {
	c, err := Prepare(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train) == 0 || len(c.Test) == 0 {
		t.Fatal("empty split")
	}
	// Train strictly precedes test.
	lastTrain := c.Train[len(c.Train)-1].Timestamp
	firstTest := c.Test[0].Timestamp
	if lastTrain.After(firstTest) {
		t.Errorf("train action at %v after first test action %v", lastTrain, firstTest)
	}
}

func TestTable1RendersAllActions(t *testing.T) {
	out := Table1()
	for _, want := range []string{"impress", "click", "play", "playtime", "comment", "[1.5,2.5]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2RendersParameters(t *testing.T) {
	out := Table2()
	for _, want := range []string{"f", "lambda", "40", "0.05", "2.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	res, err := RunTable3(testScale())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Users == 0 || st.Videos == 0 || st.Actions == 0 || st.TestActions == 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	// The synthetic universe is far denser than Tencent's (small-universe
	// effect, documented in EXPERIMENTS.md); the bound only catches
	// degenerate generation. The paper-relevant density *shape* — groups
	// denser than global — is asserted by TestTable4GroupsDenser.
	if st.Sparsity <= 0 || st.Sparsity > 20 {
		t.Errorf("sparsity %v outside plausible range", st.Sparsity)
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Error("Render missing caption")
	}
}

func TestTable4GroupsDenser(t *testing.T) {
	res, err := RunTable4(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	denser := 0
	for _, g := range res.Groups {
		if g.Stats.Sparsity > res.Global.Sparsity {
			denser++
		}
	}
	if denser < (len(res.Groups)+1)/2 {
		t.Errorf("only %d/%d groups denser than global (%.4f)", denser, len(res.Groups), res.Global.Sparsity)
	}
	if !strings.Contains(res.Render(), "Sparsity") {
		t.Error("Render missing sparsity column")
	}
}

func TestFig3DemographicTrainingHelps(t *testing.T) {
	res, err := RunFig3(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	var combine Fig3Row
	for _, row := range res.Rows {
		if row.Rule == core.RuleCombine {
			combine = row
		}
		if row.GlobalAvgRank < 0 || row.GlobalAvgRank > 1 || row.GroupAvgRank < 0 || row.GroupAvgRank > 1 {
			t.Errorf("%v avg ranks out of [0,1]: %+v", row.Rule, row)
		}
	}
	// The paper's headline: group training beats global for the ultimate
	// model ("the performance of group-models is steadily superior").
	if combine.GroupRecall <= combine.GlobalRecall {
		t.Errorf("CombineModel group recall %v not above global %v",
			combine.GroupRecall, combine.GlobalRecall)
	}
	out := res.Render()
	if !strings.Contains(out, "CombineModel") {
		t.Error("Render missing model names")
	}
}

func TestFig4CombineBeatsBinary(t *testing.T) {
	res, err := RunFig4(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	// Average over groups and N: the adjustable CombineModel must beat the
	// fixed-rate BinaryModel (§6.1.2's headline), and must not fall
	// meaningfully behind ConfModel (on this substrate Conf is stronger
	// than in the paper — see EXPERIMENTS.md's deviation note — so only a
	// tolerance bound is asserted for that pair).
	avg := func(rule core.UpdateRule) float64 {
		var sum float64
		var n int
		for _, g := range res.Groups {
			for _, v := range res.Curves[g][rule] {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	combine, binary, conf := avg(core.RuleCombine), avg(core.RuleBinary), avg(core.RuleConfidence)
	if combine <= binary {
		t.Errorf("CombineModel mean recall %v not above BinaryModel %v", combine, binary)
	}
	if combine < 0.6*conf {
		t.Errorf("CombineModel mean recall %v collapsed versus ConfModel %v", combine, conf)
	}
	for _, g := range res.Groups {
		for rule, curve := range res.Curves[g] {
			if len(curve) != res.TopN {
				t.Errorf("group %s rule %v curve length %d", g, rule, len(curve))
			}
		}
	}
}

func TestFig5RanksMidList(t *testing.T) {
	res, err := RunFig5(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	var combineSum, binarySum float64
	n := 0
	for _, g := range res.Groups {
		for rule, rank := range res.Ranks[g] {
			if rank < 0 || rank > 1 {
				t.Errorf("group %s rule %v rank %v out of [0,1]", g, rule, rank)
			}
			// The paper reports ranks "around 0.5" — recommended videos
			// sit mid-list in users' true interest ordering.
			if rank < 0.15 || rank > 0.85 {
				t.Errorf("group %s rule %v rank %v far from the paper's ~0.5 band", g, rule, rank)
			}
			switch rule {
			case core.RuleCombine:
				combineSum += rank
				n++
			case core.RuleBinary:
				binarySum += rank
			}
		}
	}
	// Lower rank is better; the adjustable model must not lose to the
	// fixed-rate one beyond noise.
	if combineSum > binarySum*1.1 {
		t.Errorf("CombineModel total rank %v well above BinaryModel %v", combineSum, binarySum)
	}
	_ = n
}

func TestFig7OnlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("online simulation is the slowest experiment")
	}
	s := testScale()
	res, err := RunFig7(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if len(rep.Daily) != 4 {
		t.Fatalf("days = %d, want 4", len(rep.Daily))
	}
	rmf := rep.Total["rMF"].CTR()
	hot := rep.Total["Hot"].CTR()
	if rmf <= hot {
		t.Errorf("rMF CTR %v not above Hot %v (paper's headline online result)", rmf, hot)
	}
	for _, name := range rep.Variants {
		if rep.Total[name].Impressions == 0 {
			t.Errorf("variant %s served nothing", name)
		}
	}
	if !strings.Contains(res.Render(), "rMF") {
		t.Error("Render missing method names")
	}
}

func TestTable5LiftsDeriveFromFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("online simulation is the slowest experiment")
	}
	res, err := RunTable5(testScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	lifts := res.Fig7.Report.Lifts()
	if len(lifts) == 0 {
		t.Fatal("no pairwise lifts")
	}
	out := res.Render()
	if !strings.Contains(out, "vs") {
		t.Error("Render missing comparisons")
	}
}

func TestGridSearchFindsFiniteOptimum(t *testing.T) {
	s := testScale()
	s.Dataset.EventsPerDay = 1200
	res, err := RunGridSearch(s, []float64{0.02, 0.08}, []float64{0, 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	if res.Best.Recall <= 0 {
		t.Errorf("best recall %v not positive", res.Best.Recall)
	}
	if !strings.Contains(res.Render(), "best") {
		t.Error("Render missing best marker")
	}
}
