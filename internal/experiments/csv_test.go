package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"vidrec/internal/abtest"
	"vidrec/internal/core"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFig3CSV(t *testing.T) {
	res := &Fig3Result{
		Rows: []Fig3Row{
			{Rule: core.RuleBinary, GlobalRecall: 0.1, GroupRecall: 0.2, GlobalAvgRank: 0.5, GroupAvgRank: 0.4},
		},
		Groups:   []string{"g1"},
		Replicas: 1,
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 { // header + global + groups
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[1][0] != "BinaryModel" || rows[1][1] != "global" || !strings.HasPrefix(rows[1][2], "0.1") {
		t.Errorf("row = %v", rows[1])
	}
	if rows[2][1] != "groups" || !strings.HasPrefix(rows[2][3], "0.4") {
		t.Errorf("row = %v", rows[2])
	}
}

func TestFig4CSV(t *testing.T) {
	res := &Fig4Result{
		Groups: []string{"g1"},
		Curves: map[string]map[core.UpdateRule][]float64{
			"g1": {
				core.RuleBinary:     {0.1, 0.2},
				core.RuleConfidence: {0.3, 0.4},
				core.RuleCombine:    {0.5, 0.6},
			},
		},
		TopN: 2,
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+3*2 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	if rows[1][0] != "g1" || rows[1][2] != "1" {
		t.Errorf("first data row = %v", rows[1])
	}
}

func TestFig5CSV(t *testing.T) {
	res := &Fig5Result{
		Groups: []string{"g1", "g2"},
		Ranks: map[string]map[core.UpdateRule]float64{
			"g1": {core.RuleBinary: 0.5, core.RuleConfidence: 0.4, core.RuleCombine: 0.3},
			"g2": {core.RuleBinary: 0.6, core.RuleConfidence: 0.5, core.RuleCombine: 0.4},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+2*3 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
}

func TestFig7CSV(t *testing.T) {
	report := &abtest.Report{
		Variants: []string{"Hot", "rMF"},
		Daily: []map[string]abtest.DayCTR{
			{"Hot": {Impressions: 10, Clicks: 1}, "rMF": {Impressions: 10, Clicks: 2}},
			{"Hot": {Impressions: 10, Clicks: 2}, "rMF": {Impressions: 10, Clicks: 3}},
		},
		Total: map[string]abtest.DayCTR{
			"Hot": {Impressions: 20, Clicks: 3},
			"rMF": {Impressions: 20, Clicks: 5},
		},
	}
	res := &Fig7Result{Report: report, Days: 2}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 1+2*2 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[2][1] != "rMF" || rows[2][4] != "0.200000" {
		t.Errorf("rMF day-1 row = %v", rows[2])
	}
}
