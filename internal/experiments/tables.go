package experiments

import (
	"context"
	"fmt"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

// Table1 renders the user-action weight settings in force (the paper's
// Table 1 plus the heavier engagement actions of §3.2).
func Table1() string {
	w := feedback.DefaultWeights()
	header := []string{"Action", "Weight"}
	var rows [][]string
	for _, at := range feedback.ActionTypes() {
		weight := fmt.Sprintf("%.1f", w.Static[at])
		if at == feedback.PlayTime {
			lo := w.Weight(feedback.Action{Type: feedback.PlayTime, ViewTime: 1, VideoLength: 10})
			hi := w.Weight(feedback.Action{Type: feedback.PlayTime, ViewTime: 10, VideoLength: 10})
			weight = fmt.Sprintf("[%.1f,%.1f]", lo, hi)
		}
		rows = append(rows, []string{at.String(), weight})
	}
	return "Table 1: User Action Weight Settings\n" + renderTable(header, rows)
}

// Table2 renders the hyper-parameter settings (the paper's Table 2; values
// legible in the paper are used verbatim, the rest grid-searched on the
// synthetic workload — see RunGridSearch).
func Table2() string {
	p := core.DefaultParams()
	s := simtable.DefaultConfig()
	header := []string{"f", "lambda", "a", "b", "eta0", "alpha", "beta", "xi"}
	rows := [][]string{{
		fmt.Sprintf("%d", p.Factors),
		fmt.Sprintf("%g", p.Lambda),
		fmt.Sprintf("%g", p.Weights.A),
		fmt.Sprintf("%g", p.Weights.B),
		fmt.Sprintf("%g", p.Eta0),
		fmt.Sprintf("%g", p.Alpha),
		fmt.Sprintf("%g", s.Beta),
		s.Xi.String(),
	}}
	return "Table 2: Parameter Settings\n" + renderTable(header, rows)
}

// Table3Result is the dataset statistics of the cleaned one-week workload.
type Table3Result struct {
	Stats dataset.Stats
}

// RunTable3 reproduces Table 3: generate a week of actions, apply the
// cleaning rule, split 6+1 days, and report counts.
func RunTable3(s Scale) (*Table3Result, error) {
	c, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Stats: dataset.ComputeStats(c.Train, c.Test)}, nil
}

// Render prints the paper's Table 3 row.
func (r *Table3Result) Render() string {
	st := r.Stats
	return "Table 3: DataSet Statistics\n" + renderTable(
		[]string{"Users", "Videos", "Actions", "Test Actions", "Sparsity(%)"},
		[][]string{{
			fmt.Sprintf("%d", st.Users),
			fmt.Sprintf("%d", st.Videos),
			fmt.Sprintf("%d", st.Actions),
			fmt.Sprintf("%d", st.TestActions),
			fmt.Sprintf("%.2f", st.Sparsity*100),
		}},
	)
}

// GroupStats is one demographic group's row of Table 4.
type GroupStats struct {
	Group string
	Stats dataset.Stats
}

// Table4Result compares the global matrix with the three largest
// demographic groups.
type Table4Result struct {
	Global dataset.Stats
	Groups []GroupStats
}

// RunTable4 reproduces Table 4: per-group dataset statistics and sparsity
// for the three largest demographic groups.
func RunTable4(s Scale) (*Table4Result, error) {
	c, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Global: dataset.ComputeStats(c.Train, c.Test)}
	trainByGroup := dataset.GroupBy(c.Train, c.Data.GroupOf)
	testByGroup := dataset.GroupBy(c.Test, c.Data.GroupOf)
	for _, g := range dataset.LargestGroups(trainByGroup, 3) {
		res.Groups = append(res.Groups, GroupStats{
			Group: g,
			Stats: dataset.ComputeStats(trainByGroup[g], testByGroup[g]),
		})
	}
	if len(res.Groups) == 0 {
		return nil, fmt.Errorf("experiments: no demographic groups in the cleaned data")
	}
	return res, nil
}

// Render prints the paper's Table 4 rows (plus the global row for
// reference).
func (r *Table4Result) Render() string {
	header := []string{"", "#Users", "#Videos", "#Actions", "Sparsity(%)"}
	row := func(name string, st dataset.Stats) []string {
		return []string{
			name,
			fmt.Sprintf("%d", st.Users),
			fmt.Sprintf("%d", st.Videos),
			fmt.Sprintf("%d", st.Actions),
			fmt.Sprintf("%.2f", st.Sparsity*100),
		}
	}
	rows := [][]string{row("Global", r.Global)}
	for i, g := range r.Groups {
		rows = append(rows, row(fmt.Sprintf("Group%d (%s)", i+1, g.Group), g.Stats))
	}
	return "Table 4: DataSet Statistics of Groups\n" + renderTable(header, rows)
}

// GridPoint is one hyper-parameter combination's offline score.
type GridPoint struct {
	Eta0, Alpha float64
	Recall      float64
	AvgRank     float64
}

// GridSearchResult records a sweep over (η0, α), the two knobs the paper
// determines "by experiments" for the adjustable updating strategy.
type GridSearchResult struct {
	Points []GridPoint
	Best   GridPoint
}

// RunGridSearch evaluates CombineModel across an (η0, α) grid on the
// offline protocol — the procedure behind Table 2's "determined by using
// grid search".
func RunGridSearch(s Scale, eta0s, alphas []float64) (*GridSearchResult, error) {
	c, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	res := &GridSearchResult{}
	res.Best.Recall = -1
	for _, eta0 := range eta0s {
		for _, alpha := range alphas {
			params := core.DefaultParams()
			params.Rule = core.RuleCombine
			params.Factors = s.Dataset.Factors
			params.Eta0 = eta0
			params.Alpha = alpha
			m, err := trainWithParams("grid", params, c.Train)
			if err != nil {
				return nil, err
			}
			rec := NewModelRecommender(m, c.Train, params.Weights)
			ts := eval.BuildTestSet(c.Test, params.Weights)
			metrics, err := eval.Evaluate(rec, ts, s.TopN)
			if err != nil {
				return nil, err
			}
			pt := GridPoint{Eta0: eta0, Alpha: alpha, Recall: metrics.Recall, AvgRank: metrics.AvgRank}
			res.Points = append(res.Points, pt)
			if pt.Recall > res.Best.Recall {
				res.Best = pt
			}
		}
	}
	return res, nil
}

// Render prints the grid as rows with the winner marked.
func (r *GridSearchResult) Render() string {
	header := []string{"eta0", "alpha", "recall@N", "avgrank", ""}
	var rows [][]string
	for _, p := range r.Points {
		mark := ""
		if p == r.Best {
			mark = "<- best"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Eta0),
			fmt.Sprintf("%g", p.Alpha),
			fmt.Sprintf("%.4f", p.Recall),
			fmt.Sprintf("%.4f", p.AvgRank),
			mark,
		})
	}
	return "Grid search over (eta0, alpha) — Table 2 procedure\n" + renderTable(header, rows)
}

// Table5Result is the pairwise CTR improvement table derived from the
// online test (the paper's Table 5).
type Table5Result struct {
	Fig7 *Fig7Result
}

// RunTable5 runs the online A/B simulation and derives pairwise lifts.
func RunTable5(s Scale, days int) (*Table5Result, error) {
	fig7, err := RunFig7(s, days)
	if err != nil {
		return nil, err
	}
	return &Table5Result{Fig7: fig7}, nil
}

// Render prints the pairwise improvement rows.
func (r *Table5Result) Render() string {
	header := []string{"Comparison", "CTR improvement(%)"}
	var rows [][]string
	for _, l := range r.Fig7.Report.Lifts() {
		rows = append(rows, []string{
			fmt.Sprintf("%s vs %s", l.Better, l.Worse),
			fmt.Sprintf("%+.1f", l.Lift*100),
		})
	}
	return "Table 5: Performance improvement for methods comparison\n" + renderTable(header, rows)
}

// trainWithParams trains a model with explicit params over actions.
func trainWithParams(name string, params core.Params, actions []feedback.Action) (*core.Model, error) {
	m, err := core.NewModel(name, kvstore.NewLocal(64), params)
	if err != nil {
		return nil, err
	}
	for _, a := range actions {
		if _, err := m.ProcessAction(context.Background(), a); err != nil {
			return nil, err
		}
	}
	return m, nil
}
