package experiments

import (
	"context"
	"strconv"
	"time"

	"vidrec/internal/abtest"
	"vidrec/internal/baseline"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// Ablation experiments for the design choices DESIGN.md calls out. These go
// beyond the paper's published figures but test its central claims directly.

// FreshnessResult compares the real-time pipeline against the identical
// factorization retrained offline once per day — the class of system the
// paper's introduction criticizes ("most of the recommendation models are
// offline and the model training is carried out at regular time
// intervals"). Intraday requests hit the offline model cold for everything
// that happened since midnight; the online model is current to the last
// action.
type FreshnessResult struct {
	Report *abtest.Report
	Days   int
}

// RunFreshness A/B-tests online rMF against daily-batch MF on live traffic.
func RunFreshness(s Scale, days int) (*FreshnessResult, error) {
	// Offline experiment harness: no caller-supplied deadline to inherit.
	ctx := context.Background()
	if days <= 0 {
		days = 6
	}
	abCfg := abtest.DefaultConfig()
	abCfg.Days = days
	abCfg.N = s.TopN
	cfg := s.Dataset
	cfg.Days = days + abCfg.WarmupDays
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}

	params := core.DefaultParams()
	params.Factors = s.Dataset.Factors

	sys, err := recommend.NewSystem(kvstore.NewLocal(64), params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
		return nil, err
	}
	if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
		return nil, err
	}
	batch := baseline.NewBatchMF(params)
	batch.Passes = 2
	reservoir, err := baseline.NewReservoirMF(params, 5000, cfg.Seed)
	if err != nil {
		return nil, err
	}

	variants := []abtest.Variant{
		{
			Name:        "rMF-online",
			Recommender: recommend.EvalAdapter{S: sys, Ctx: ctx},
			Ingest:      ingestWith(ctx, sys),
		},
		{
			Name:        "MF-daily-batch",
			Recommender: batch,
			TrainDaily:  batch.Train,
		},
		{
			// The reservoir approach of the paper's related work [12, 13]:
			// online updates plus periodic replay of a uniform history
			// sample.
			Name:        "MF-reservoir",
			Recommender: reservoir,
			Ingest:      reservoir.Ingest,
		},
	}
	report, err := abtest.Run(d, variants, abCfg)
	if err != nil {
		return nil, err
	}
	return &FreshnessResult{Report: report, Days: days}, nil
}

// Render prints the daily CTR series and the freshness lift.
func (r *FreshnessResult) Render() string {
	header := []string{"Day"}
	header = append(header, r.Report.Variants...)
	var rows [][]string
	for day := 0; day < len(r.Report.Daily); day++ {
		row := []string{itoa(day + 1)}
		for _, name := range r.Report.Variants {
			row = append(row, f4(r.Report.Daily[day][name].CTR()))
		}
		rows = append(rows, row)
	}
	total := []string{"all"}
	for _, name := range r.Report.Variants {
		total = append(total, f4(r.Report.Total[name].CTR()))
	}
	rows = append(rows, total)
	out := "Ablation: real-time vs daily-batch MF (CTR)\n" + renderTable(header, rows)
	lift := r.Report.Improvement("rMF-online", "MF-daily-batch")
	out += "freshness lift: " + f1(lift*100) + "%\n"
	return out
}

// DecayResult is the similar-table time-factor ablation: the same pipeline
// with and without Eq. 11's damping, under a drifting trend distribution.
// Without the time factor, yesterday's co-watch pairs crowd the tables and
// recommendations lag the trend.
type DecayResult struct {
	Report *abtest.Report
	Days   int
}

// RunDecayAblation A/B-tests the production similar-table decay (ξ = 24h)
// against effectively disabled decay (ξ = 10000h).
func RunDecayAblation(s Scale, days int) (*DecayResult, error) {
	// Offline experiment harness: no caller-supplied deadline to inherit.
	ctx := context.Background()
	if days <= 0 {
		days = 6
	}
	abCfg := abtest.DefaultConfig()
	abCfg.Days = days
	abCfg.N = s.TopN
	cfg := s.Dataset
	cfg.Days = days + abCfg.WarmupDays
	// Strong trend drift makes forgetting matter.
	cfg.TrendDriftPerDay = 0.15
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	params.Factors = s.Dataset.Factors

	mkSystem := func(xi time.Duration) (*recommend.System, error) {
		simCfg := simtable.DefaultConfig()
		simCfg.Xi = xi
		sys, err := recommend.NewSystem(kvstore.NewLocal(64), params, simCfg, recommend.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
			return nil, err
		}
		if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
			return nil, err
		}
		return sys, nil
	}
	withDecay, err := mkSystem(24 * time.Hour)
	if err != nil {
		return nil, err
	}
	noDecay, err := mkSystem(10000 * time.Hour)
	if err != nil {
		return nil, err
	}
	variants := []abtest.Variant{
		{Name: "decay-24h", Recommender: recommend.EvalAdapter{S: withDecay, Ctx: ctx}, Ingest: ingestWith(ctx, withDecay)},
		{Name: "decay-off", Recommender: recommend.EvalAdapter{S: noDecay, Ctx: ctx}, Ingest: ingestWith(ctx, noDecay)},
	}
	report, err := abtest.Run(d, variants, abCfg)
	if err != nil {
		return nil, err
	}
	return &DecayResult{Report: report, Days: days}, nil
}

// Render prints the decay ablation series.
func (r *DecayResult) Render() string {
	header := []string{"Day"}
	header = append(header, r.Report.Variants...)
	var rows [][]string
	for day := 0; day < len(r.Report.Daily); day++ {
		row := []string{itoa(day + 1)}
		for _, name := range r.Report.Variants {
			row = append(row, f4(r.Report.Daily[day][name].CTR()))
		}
		rows = append(rows, row)
	}
	total := []string{"all"}
	for _, name := range r.Report.Variants {
		total = append(total, f4(r.Report.Total[name].CTR()))
	}
	rows = append(rows, total)
	return "Ablation: similar-table time factor (Eq. 11) under trend drift (CTR)\n" +
		renderTable(header, rows)
}

// DiversityResult tests §5.2.1's diversity claim: demographic filtering
// "broadens the span of recommendations". The same trained pipeline serves
// the same users with the hot-video merge on and off; diversity metrics and
// CTR are compared.
type DiversityResult struct {
	WithFiltering, WithoutFiltering eval.DiversityStats
	CTRWith, CTRWithout             float64
	Days                            int
}

// RunDiversityAblation trains two otherwise-identical systems and measures
// list diversity and CTR with demographic filtering on and off.
func RunDiversityAblation(s Scale, days int) (*DiversityResult, error) {
	// Offline experiment harness: no caller-supplied deadline to inherit.
	ctx := context.Background()
	if days <= 0 {
		days = 3
	}
	abCfg := abtest.DefaultConfig()
	abCfg.Days = days
	abCfg.N = s.TopN
	cfg := s.Dataset
	cfg.Days = days + abCfg.WarmupDays
	d, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	params.Factors = s.Dataset.Factors

	mkSystem := func(filtering bool) (*recommend.System, error) {
		opts := recommend.DefaultOptions()
		opts.DemographicFiltering = filtering
		sys, err := recommend.NewSystem(kvstore.NewLocal(64), params, simtable.DefaultConfig(), opts)
		if err != nil {
			return nil, err
		}
		if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
			return nil, err
		}
		if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
			return nil, err
		}
		return sys, nil
	}
	withF, err := mkSystem(true)
	if err != nil {
		return nil, err
	}
	withoutF, err := mkSystem(false)
	if err != nil {
		return nil, err
	}
	report, err := abtest.Run(d, []abtest.Variant{
		{Name: "filtering-on", Recommender: recommend.EvalAdapter{S: withF, Ctx: ctx}, Ingest: ingestWith(ctx, withF)},
		{Name: "filtering-off", Recommender: recommend.EvalAdapter{S: withoutF, Ctx: ctx}, Ingest: ingestWith(ctx, withoutF)},
	}, abCfg)
	if err != nil {
		return nil, err
	}

	// Diversity over a uniform user sample against each trained system.
	users := make([]string, 0, 200)
	for i, u := range d.Users() {
		if i >= 200 {
			break
		}
		users = append(users, u.ID)
	}
	typeOf := func(video string) string {
		typ, _ := withF.Catalog.Type(ctx, video)
		return typ
	}
	res := &DiversityResult{
		Days:       days,
		CTRWith:    report.Total["filtering-on"].CTR(),
		CTRWithout: report.Total["filtering-off"].CTR(),
	}
	res.WithFiltering, err = eval.MeasureDiversity(
		recommend.EvalAdapter{S: withF, Ctx: ctx}, users, s.TopN, cfg.Videos, typeOf)
	if err != nil {
		return nil, err
	}
	res.WithoutFiltering, err = eval.MeasureDiversity(
		recommend.EvalAdapter{S: withoutF, Ctx: ctx}, users, s.TopN, cfg.Videos, typeOf)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render prints the diversity comparison.
func (r *DiversityResult) Render() string {
	header := []string{"", "coverage", "types/list", "gini(exposure)", "CTR"}
	row := func(name string, ds eval.DiversityStats, ctr float64) []string {
		return []string{name, f4(ds.CatalogCoverage), f4(ds.MeanTypesPerList), f4(ds.Gini), f4(ctr)}
	}
	rows := [][]string{
		row("filtering-on", r.WithFiltering, r.CTRWith),
		row("filtering-off", r.WithoutFiltering, r.CTRWithout),
	}
	return "Ablation: demographic filtering diversity (§5.2.1)\n" + renderTable(header, rows)
}

func itoa(n int) string { return strconv.Itoa(n) }

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// ingestWith adapts a System's context-threaded Ingest to the ctx-free
// abtest.Variant hook.
func ingestWith(ctx context.Context, sys *recommend.System) func(feedback.Action) error {
	return func(a feedback.Action) error { return sys.Ingest(ctx, a) }
}
