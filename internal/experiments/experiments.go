// Package experiments implements every table and figure of the paper's
// evaluation (§6) as reusable drivers shared by cmd/experiments and the
// repository-level benchmarks. Each RunX function is deterministic in its
// scale's seed and returns a structured result with a Render method that
// prints the same rows/series the paper reports.
//
// See DESIGN.md §2 for the experiment index and the expected result shapes.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/topn"
)

// Scale sizes an experiment's synthetic workload. The offline protocol
// (clean → split → train → test) follows §6.1 at any scale.
type Scale struct {
	Dataset dataset.Config
	// MinUserActions / MinVideoActions are the cleaning thresholds; the
	// paper uses 50 at production volume.
	MinUserActions, MinVideoActions int
	// TrainDays is the training prefix; the rest of the stream is test.
	TrainDays int
	// TopN is the recommendation list length for recall@N sweeps.
	TopN int
	// Replicas is how many independently seeded datasets the model-ablation
	// figures (3-5) average over. The paper runs once on a production-scale
	// dataset; at laptop scale, replica averaging is the statistically
	// equivalent way to stabilize the orderings.
	Replicas int
}

// replicas returns the replica count, defaulting to 1.
func (s Scale) replicas() int {
	if s.Replicas <= 0 {
		return 1
	}
	return s.Replicas
}

// withSeed returns a copy of the scale with the dataset seed offset by i.
func (s Scale) withSeed(i int) Scale {
	s.Dataset.Seed += uint64(i) * 7919
	return s
}

// SmallScale is sized for unit tests and benchmarks: runs in seconds while
// preserving the workload's statistical shape.
func SmallScale() Scale {
	cfg := dataset.DefaultConfig()
	cfg.Users = 600
	cfg.Videos = 200
	cfg.Days = 7
	cfg.EventsPerDay = 8000
	return Scale{
		Dataset:         cfg,
		MinUserActions:  20,
		MinVideoActions: 20,
		TrainDays:       6,
		TopN:            10,
		Replicas:        3,
	}
}

// PaperScale mimics the paper's protocol proportions at a laptop-feasible
// volume (the original is a week of Tencent production traffic).
func PaperScale() Scale {
	cfg := dataset.DefaultConfig() // 2000 users, 600 videos, 7 days
	return Scale{
		Dataset:         cfg,
		MinUserActions:  50,
		MinVideoActions: 50,
		TrainDays:       6,
		TopN:            10,
		Replicas:        3,
	}
}

// Corpus is a prepared offline experiment input: cleaned and split actions
// plus the generating dataset for ground-truth queries.
type Corpus struct {
	Data  *dataset.Dataset
	Train []feedback.Action
	Test  []feedback.Action
}

// Prepare generates, cleans and splits a workload per §6.1's protocol.
func Prepare(s Scale) (*Corpus, error) {
	d, err := dataset.Generate(s.Dataset)
	if err != nil {
		return nil, err
	}
	all := d.AllActions()
	cleaned := dataset.FilterActive(all, s.MinUserActions, s.MinVideoActions)
	train, test := dataset.SplitByDay(cleaned, s.Dataset.Start, s.TrainDays)
	if len(train) == 0 || len(test) == 0 {
		return nil, fmt.Errorf("experiments: degenerate split (train %d, test %d) — scale too small for the cleaning thresholds", len(train), len(test))
	}
	return &Corpus{Data: d, Train: train, Test: test}, nil
}

// TrainModel trains one online MF model variant over a stream of actions,
// one single-step update per action (Algorithm 1), and returns it.
func TrainModel(name string, rule core.UpdateRule, factors int, actions []feedback.Action) (*core.Model, error) {
	params := core.DefaultParams()
	params.Rule = rule
	params.Factors = factors
	m, err := core.NewModel(name, kvstore.NewLocal(64), params)
	if err != nil {
		return nil, err
	}
	for _, a := range actions {
		if _, err := m.ProcessAction(context.Background(), a); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// ModelRecommender ranks a fixed candidate corpus with a trained model,
// excluding each user's training-time watches. It isolates model quality
// for the §6.1 ablations (the full pipeline's candidate generation is
// evaluated separately, via the online test).
type ModelRecommender struct {
	model   *core.Model
	videos  []string
	watched map[string]map[string]bool
}

// NewModelRecommender builds a recommender over the videos appearing in the
// training actions.
func NewModelRecommender(m *core.Model, train []feedback.Action, w feedback.Weights) *ModelRecommender {
	videoSet := make(map[string]bool)
	watched := make(map[string]map[string]bool)
	for _, a := range train {
		videoSet[a.VideoID] = true
		if w.Weight(a) <= 0 {
			continue
		}
		wm := watched[a.UserID]
		if wm == nil {
			wm = make(map[string]bool)
			watched[a.UserID] = wm
		}
		wm[a.VideoID] = true
	}
	videos := make([]string, 0, len(videoSet))
	for v := range videoSet {
		videos = append(videos, v)
	}
	sort.Strings(videos)
	return &ModelRecommender{model: m, videos: videos, watched: watched}
}

// Recommend implements eval.Recommender.
func (r *ModelRecommender) Recommend(userID string, n int) ([]string, error) {
	scores, err := r.model.ScoreCandidates(context.Background(), userID, r.videos)
	if err != nil {
		return nil, err
	}
	list := topn.NewList(n)
	seen := r.watched[userID]
	for i, v := range r.videos {
		if seen[v] {
			continue
		}
		list.Update(v, scores[i])
	}
	entries := list.All()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}

// Rules lists the three §6.1.2 model variants in presentation order.
func Rules() []core.UpdateRule {
	return []core.UpdateRule{core.RuleBinary, core.RuleConfidence, core.RuleCombine}
}

// evaluateRule trains one rule on actions and evaluates it against a test
// set, returning recall@TopN and avg rank.
func evaluateRule(rule core.UpdateRule, factors int, train, test []feedback.Action, topN int) (eval.Metrics, error) {
	m, err := TrainModel("exp", rule, factors, train)
	if err != nil {
		return eval.Metrics{}, err
	}
	w := m.Params().Weights
	rec := NewModelRecommender(m, train, w)
	ts := eval.BuildTestSet(test, w)
	return eval.Evaluate(rec, ts, topN)
}

// renderTable pretty-prints rows with aligned columns for terminal output.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
