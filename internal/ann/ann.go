// Package ann provides the serving path's approximate-nearest-neighbour
// candidate source: a random-hyperplane LSH index over the item factor
// vectors the online MF model publishes.
//
// Each of a small number of tables hashes a vector to a signature of sign
// bits — one per random hyperplane — and buckets items by signature. Vectors
// with high cosine similarity agree on most hyperplane sides, so they collide
// in at least one table with high probability. A probe computes the query's
// signature per table and returns the union of the matching buckets: no
// per-candidate dot products, because the downstream Eq. 2 scorer ranks
// whatever the probe surfaces. That keeps probe cost at Tables×Bits dot
// products regardless of catalog size.
//
// The index is incremental: Upsert re-buckets an item whenever the model
// stores a new vector for it (the Model item-vector hook calls it on every
// publish), so the index tracks online training in real time instead of
// being rebuilt in batches. Items are identified by intern slots from the
// shared serving interner, so probe results merge into the candidate set
// without any string hashing.
package ann

import (
	"fmt"
	"sync"

	"vidrec/internal/intern"
	"vidrec/internal/topn"
	"vidrec/internal/vecmath"
)

// Config sizes the index.
type Config struct {
	// Dims is the factor-vector dimensionality (Params.Factors). Upserts
	// with a different length are dropped and counted, never mis-hashed.
	Dims int
	// Tables is the number of independent hash tables. More tables raise
	// recall (more chances to collide) and probe cost linearly.
	Tables int
	// Bits is the signature width per table. More bits make smaller, purer
	// buckets: recall per table drops, precision rises.
	Bits int
	// Seed derives the hyperplanes deterministically; equal seeds (and
	// sizes) give byte-identical index behaviour across runs.
	Seed uint64
	// BucketCap bounds one bucket's size; a full bucket evicts its oldest
	// entry on insert. Bounds probe cost and memory under skewed hashes.
	BucketCap int
}

// Defaults for unset Config fields: 4 tables × 12 bits keeps buckets sparse
// for catalog sizes in the tens of thousands, and 128 entries bounds a
// degenerate bucket at well under one candidate batch per table.
const (
	DefaultTables    = 4
	DefaultBits      = 12
	DefaultBucketCap = 128
)

func (c Config) withDefaults() Config {
	if c.Tables <= 0 {
		c.Tables = DefaultTables
	}
	if c.Bits <= 0 {
		c.Bits = DefaultBits
	}
	if c.BucketCap <= 0 {
		c.BucketCap = DefaultBucketCap
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Dims <= 0 {
		return fmt.Errorf("ann: dims must be positive, got %d", c.Dims)
	}
	if c.Bits > 32 {
		return fmt.Errorf("ann: at most 32 bits per signature, got %d", c.Bits)
	}
	return nil
}

// Index is the LSH index. It is safe for concurrent use: probes take a read
// lock, upserts a write lock.
type Index struct {
	cfg    Config
	it     *intern.Table
	planes []float64 // cfg.Tables*cfg.Bits hyperplanes, cfg.Dims each

	mu      sync.RWMutex
	present []bool      // per slot: is the item indexed
	sigs    []uint32    // per slot × table (stride cfg.Tables): current signature
	vecs    [][]float64 // per slot: cloned vector (for exact Neighbors ranking)
	norms   []float64   // per slot: cached ‖vec‖, computed once at upsert
	buckets []map[uint32][]int32
	count   int
	dropped uint64
}

// New builds an empty index over the shared interner. The hyperplanes are
// derived from cfg.Seed with a SplitMix64 stream: components are uniform in
// [-1, 1), which for sign-hash purposes behaves like any rotationally-rough
// random direction and costs no transcendental math.
func New(cfg Config, it *intern.Table) (*Index, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if it == nil {
		return nil, fmt.Errorf("ann: interner must not be nil")
	}
	n := cfg.Tables * cfg.Bits * cfg.Dims
	idx := &Index{
		cfg:     cfg,
		it:      it,
		planes:  make([]float64, n),
		buckets: make([]map[uint32][]int32, cfg.Tables),
	}
	for i := range idx.planes {
		idx.planes[i] = 2*splitmix(cfg.Seed+uint64(i)+1) - 1
	}
	for t := range idx.buckets {
		idx.buckets[t] = make(map[uint32][]int32)
	}
	return idx, nil
}

// splitmix returns a uniform float64 in [0, 1) from the SplitMix64 finalizer.
func splitmix(x uint64) float64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// signature hashes vec for table t: bit j is the side of hyperplane (t, j).
func (x *Index) signature(t int, vec []float64) uint32 {
	var sig uint32
	base := t * x.cfg.Bits * x.cfg.Dims
	for j := 0; j < x.cfg.Bits; j++ {
		if vecmath.Dot(x.planes[base+j*x.cfg.Dims:base+(j+1)*x.cfg.Dims], vec) >= 0 {
			sig |= 1 << uint(j)
		}
	}
	return sig
}

// Upsert indexes (or re-buckets) one item vector. The vector is cloned —
// callers keep ownership — and its norm is cached for exact ranking. A
// vector whose length is not cfg.Dims is dropped and counted.
func (x *Index) Upsert(id string, vec []float64) {
	if len(vec) != x.cfg.Dims {
		x.mu.Lock()
		x.dropped++
		x.mu.Unlock()
		return
	}
	slot := x.it.Slot(id)
	x.mu.Lock()
	defer x.mu.Unlock()
	x.growLocked(slot)
	if cap(x.vecs[slot]) < len(vec) {
		x.vecs[slot] = make([]float64, len(vec)) // alloccheck: first index of an item; updates reuse the clone
	} else {
		x.vecs[slot] = x.vecs[slot][:len(vec)]
	}
	copy(x.vecs[slot], vec)
	x.norms[slot] = vecmath.Norm(vec)
	wasPresent := x.present[slot]
	x.present[slot] = true
	if !wasPresent {
		x.count++
	}
	for t := 0; t < x.cfg.Tables; t++ {
		sig := x.signature(t, vec)
		old := x.sigs[int(slot)*x.cfg.Tables+t]
		if wasPresent && old == sig {
			continue
		}
		if wasPresent {
			x.removeLocked(t, old, slot)
		}
		x.sigs[int(slot)*x.cfg.Tables+t] = sig
		b := x.buckets[t][sig]
		if len(b) >= x.cfg.BucketCap {
			// Evict the oldest entry: it stays reachable through the other
			// tables, and bounded buckets bound probe cost.
			copy(b, b[1:])
			b = b[:len(b)-1]
		}
		x.buckets[t][sig] = append(b, slot) // alloccheck: bucket growth amortizes over publishes, capped by BucketCap
	}
}

func (x *Index) growLocked(slot int32) {
	for int(slot) >= len(x.present) {
		x.present = append(x.present, false) // alloccheck: catalog-bounded index growth, amortized
		x.norms = append(x.norms, 0)         // alloccheck: catalog-bounded index growth, amortized
		x.vecs = append(x.vecs, nil)         // alloccheck: catalog-bounded index growth, amortized
		for t := 0; t < x.cfg.Tables; t++ {
			x.sigs = append(x.sigs, 0) // alloccheck: catalog-bounded index growth, amortized
		}
	}
}

// removeLocked deletes slot from table t's bucket sig, preserving insertion
// order. Bounded by BucketCap.
func (x *Index) removeLocked(t int, sig uint32, slot int32) {
	b := x.buckets[t][sig]
	for i, s := range b {
		if s == slot {
			copy(b[i:], b[i+1:])
			x.buckets[t][sig] = b[:len(b)-1]
			return
		}
	}
}

// Probe returns the union of the query's matching buckets across all tables,
// appended to dst (reused when it has capacity). The result may contain the
// same slot more than once — one entry per table it collided in — because the
// serving path deduplicates candidates anyway and skipping the extra pass
// here keeps the probe at pure hash-and-append cost. No candidate dot
// products happen here; the downstream scorer ranks.
//
// hotpath: one probe per request on the ANN serving path; allocation-free warm
func (x *Index) Probe(vec []float64, dst []int32) []int32 {
	dst = dst[:0]
	if len(vec) != x.cfg.Dims {
		return dst
	}
	x.mu.RLock()
	for t := 0; t < x.cfg.Tables; t++ {
		for _, slot := range x.buckets[t][x.signature(t, vec)] {
			dst = append(dst, slot) // alloccheck: grow-once; callers pass pooled scratch sized to prior probes
		}
	}
	x.mu.RUnlock()
	return dst
}

// Neighbors is the exact-ranking diagnostic: probe, deduplicate, rank every
// surfaced item by true cosine similarity against the query (using the norms
// cached at upsert), and return the top k as (id, cosine) entries. It is not
// on the serving path — tests and recall evaluation use it to measure what
// the probe surfaces.
func (x *Index) Neighbors(vec []float64, k int) []topn.Entry {
	if k <= 0 || len(vec) != x.cfg.Dims {
		return nil
	}
	nq := vecmath.Norm(vec)
	var slots []int32
	var scores []float64
	seen := make(map[int32]struct{})
	x.mu.RLock()
	for t := 0; t < x.cfg.Tables; t++ {
		for _, slot := range x.buckets[t][x.signature(t, vec)] {
			if _, dup := seen[slot]; dup {
				continue
			}
			seen[slot] = struct{}{}
			slots = append(slots, slot)
			scores = append(scores, vecmath.CosineNormed(vec, x.vecs[slot], nq, x.norms[slot]))
		}
	}
	x.mu.RUnlock()
	ids := x.it.IDs(slots, nil)
	r := topn.NewRanker(k)
	for i, id := range ids {
		r.Push(id, scores[i])
	}
	return r.All()
}

// Len returns the number of indexed items.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.count
}

// Dropped returns how many upserts were rejected for a dimension mismatch.
func (x *Index) Dropped() uint64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.dropped
}
