package ann

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"vidrec/internal/intern"
	"vidrec/internal/vecmath"
)

func randVec(rng *rand.Rand, dims int) []float64 {
	v := make([]float64, dims)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestProbeFindsSelf pins the LSH invariant that makes the index usable at
// all: an indexed vector probed with itself hashes to its own signature in
// every table, so it is always surfaced.
func TestProbeFindsSelf(t *testing.T) {
	it := intern.New()
	idx, err := New(Config{Dims: 8, Seed: 7}, it)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	vecs := make(map[string][]float64)
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("v%03d", i)
		vecs[id] = randVec(rng, 8)
		idx.Upsert(id, vecs[id])
	}
	if idx.Len() != 200 {
		t.Fatalf("Len = %d, want 200", idx.Len())
	}
	for id, v := range vecs {
		slot := it.Slot(id)
		found := false
		for _, s := range idx.Probe(v, nil) {
			if s == slot {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("probe with %s's own vector did not surface it", id)
		}
	}
}

// TestUpsertRebuckets pins incremental maintenance: after an item's vector is
// replaced by its negation (every sign bit flips, so every signature
// changes), probing with the old vector must no longer surface it, and
// probing with the new one must.
func TestUpsertRebuckets(t *testing.T) {
	it := intern.New()
	idx, err := New(Config{Dims: 8, Seed: 3}, it)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	old := randVec(rng, 8)
	idx.Upsert("flip", old)
	neg := make([]float64, len(old))
	for i, x := range old {
		neg[i] = -x
	}
	idx.Upsert("flip", neg)
	if idx.Len() != 1 {
		t.Fatalf("Len after re-upsert = %d, want 1", idx.Len())
	}
	slot := it.Slot("flip")
	for _, s := range idx.Probe(old, nil) {
		if s == slot {
			t.Fatal("probe with the superseded vector still surfaces the item")
		}
	}
	found := false
	for _, s := range idx.Probe(neg, nil) {
		if s == slot {
			found = true
		}
	}
	if !found {
		t.Fatal("probe with the current vector does not surface the item")
	}
}

// TestDeterministic pins that two indexes with equal config and insert
// sequence produce identical probe results — the hyperplanes are a pure
// function of the seed.
func TestDeterministic(t *testing.T) {
	build := func() (*Index, []float64) {
		it := intern.New()
		idx, err := New(Config{Dims: 12, Seed: 99, Tables: 3, Bits: 8}, it)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(8, 9))
		for i := 0; i < 300; i++ {
			idx.Upsert(fmt.Sprintf("v%03d", i), randVec(rng, 12))
		}
		return idx, randVec(rng, 12)
	}
	a, qa := build()
	b, qb := build()
	pa, pb := a.Probe(qa, nil), b.Probe(qb, nil)
	if len(pa) != len(pb) {
		t.Fatalf("probe lengths differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("probe slot %d differs: %d vs %d", i, pa[i], pb[i])
		}
	}
	if len(pa) == 0 {
		t.Fatal("probe surfaced nothing; seeds or sizing are degenerate")
	}
}

// TestNeighborsExactOrder pins the diagnostic API: neighbors come back in
// exact descending cosine order, computed with the cached norms.
func TestNeighborsExactOrder(t *testing.T) {
	it := intern.New()
	idx, err := New(Config{Dims: 8, Seed: 11, Tables: 6, Bits: 4}, it)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 4))
	vecs := make(map[string][]float64)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("v%03d", i)
		vecs[id] = randVec(rng, 8)
		idx.Upsert(id, vecs[id])
	}
	q := randVec(rng, 8)
	got := idx.Neighbors(q, 10)
	if len(got) == 0 {
		t.Fatal("no neighbors surfaced")
	}
	prev := got[0].Score
	for _, e := range got {
		if e.Score > prev {
			t.Fatalf("neighbors out of order: %v", got)
		}
		prev = e.Score
		want := vecmath.Cosine(q, vecs[e.ID])
		if e.Score != want {
			t.Fatalf("neighbor %s score %v, exact cosine %v", e.ID, e.Score, want)
		}
	}
}

// TestBucketCapEvicts pins the bound: identical vectors all share one bucket
// per table, and the bucket never exceeds BucketCap.
func TestBucketCapEvicts(t *testing.T) {
	it := intern.New()
	idx, err := New(Config{Dims: 4, Seed: 1, Tables: 1, Bits: 4, BucketCap: 8}, it)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2, 3, 4}
	for i := 0; i < 20; i++ {
		idx.Upsert(fmt.Sprintf("v%02d", i), v)
	}
	got := idx.Probe(v, nil)
	if len(got) != 8 {
		t.Fatalf("bucket holds %d entries, want BucketCap=8", len(got))
	}
	// Oldest entries were evicted: the survivors are the 8 most recent.
	if got[0] != it.Slot("v12") || got[7] != it.Slot("v19") {
		t.Fatalf("unexpected survivors: %v", got)
	}
}

// TestDimMismatchDropped pins that wrong-width vectors never enter the index.
func TestDimMismatchDropped(t *testing.T) {
	it := intern.New()
	idx, err := New(Config{Dims: 4, Seed: 1}, it)
	if err != nil {
		t.Fatal(err)
	}
	idx.Upsert("bad", []float64{1, 2})
	if idx.Len() != 0 || idx.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 0/1", idx.Len(), idx.Dropped())
	}
	if got := idx.Probe([]float64{1, 2}, nil); len(got) != 0 {
		t.Fatalf("wrong-width probe returned %v", got)
	}
}

// TestConfigValidate covers the rejection paths.
func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{Dims: 0}, intern.New()); err == nil {
		t.Fatal("Dims 0 accepted")
	}
	if _, err := New(Config{Dims: 4, Bits: 40}, intern.New()); err == nil {
		t.Fatal("Bits 40 accepted")
	}
	if _, err := New(Config{Dims: 4}, nil); err == nil {
		t.Fatal("nil interner accepted")
	}
}

// TestProbeAllocationFree pins the serving contract: a warm probe into reused
// scratch performs zero allocations.
func TestProbeAllocationFree(t *testing.T) {
	it := intern.New()
	idx, err := New(Config{Dims: 8, Seed: 21}, it)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 1))
	for i := 0; i < 500; i++ {
		idx.Upsert(fmt.Sprintf("v%03d", i), randVec(rng, 8))
	}
	q := randVec(rng, 8)
	dst := idx.Probe(q, nil)
	dst = append(dst[:0], make([]int32, 256)...)[:0] // pre-grow scratch past any probe result
	n := testing.AllocsPerRun(100, func() {
		dst = idx.Probe(q, dst)
	})
	if n != 0 {
		t.Fatalf("warm probe allocates %v per run, want 0", n)
	}
}
