package recommend

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

// TestDegradedWarmAllocs pins the allocation count of the degraded
// (demographic-fallback) serving path under a model blackout with a warm
// read cache, cross-checking alloccheck's static claims for System.degraded:
// the per-request cost is the failed personalized attempt (seed handling,
// the exclusion closure, the miss-path accumulators that fail into the
// blackout) plus the fallback itself, whose only allocations are the hatched
// ones — the hot list's damped copy-out, the filtered videos slice, and the
// Result. Availability under faults must not cost unbounded garbage: if this
// bound creeps, the fallback is allocating outside its hatched budget.
func TestDegradedWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates closures the serving path keeps on the stack, inflating the count")
	}
	ctx := context.Background()
	faulty := kvstore.NewFaulty(kvstore.NewLocal(16), 7)
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := NewSystem(faulty, params, simtable.DefaultConfig(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b", "c", "d", "e"} {
		if err := sys.Catalog.Put(ctx, catalog.Video{ID: v, Type: "movie", Length: time.Minute}); err != nil {
			t.Fatal(err)
		}
	}
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b"} {
			if err := sys.Ingest(ctx, watch(u, v, min)); err != nil {
				t.Fatal(err)
			}
			min++
		}
	}
	for _, v := range []string{"c", "d", "e"} {
		if err := sys.Ingest(ctx, watch("u4", v, min)); err != nil {
			t.Fatal(err)
		}
		min++
	}
	// Black out the model/simtable namespace; history, hot lists, and
	// profiles (all under "sys.") stay healthy, so every request degrades.
	faulty.SetSchedule([]kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}})
	req := Request{UserID: "u1", N: 3}
	// First degraded request warms the fallback's cache entries.
	res, err := sys.Recommend(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expected degraded response under model blackout")
	}
	avg := testing.AllocsPerRun(500, func() {
		res, err := sys.Recommend(ctx, req)
		if err != nil || !res.Degraded {
			t.Fatal("degraded request failed")
		}
	})
	// 18 measured: the degraded path matches the warm personalized budget.
	if avg > 18 {
		t.Fatalf("warm degraded Recommend allocates %v objects/op, want <= 18", avg)
	}
}
