package recommend_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"vidrec/internal/kvstore"
)

// The sharded golden pins storage-tier transparency at the serving API: the
// exact workload and request mix of golden_topn.json, replayed through a
// three-group sharded cluster (primary/backup pairs under a Coordinator,
// fronted by a Sharded router) with a four-slot rebalance in the middle of
// the replay. The file must be byte-identical to the local-store golden —
// partitioning, synchronous replication, and a live slot migration may not
// move a single score bit. Refresh with the same convention:
//
//	go test ./internal/recommend -run Golden -update
const goldenShardedPath = "testdata/golden_sharded.json"

// buildShardedStore assembles the 3×2 sharded cluster the golden replays
// against, returning the router and a rebalance hook the test fires
// mid-replay.
func buildShardedStore(t *testing.T) (*kvstore.Sharded, func()) {
	t.Helper()
	groups := make([]*kvstore.ShardGroup, 3)
	for gi := range groups {
		g, err := kvstore.NewShardGroup(fmt.Sprintf("g%d", gi), kvstore.NewLocal(16), kvstore.NewLocal(16))
		if err != nil {
			t.Fatalf("build group %d: %v", gi, err)
		}
		groups[gi] = g
	}
	coord, err := kvstore.NewCoordinator(groups...)
	if err != nil {
		t.Fatalf("build coordinator: %v", err)
	}
	router, err := kvstore.NewSharded(coord, 7)
	if err != nil {
		t.Fatalf("build router: %v", err)
	}
	rebalance := func() {
		ctx := context.Background()
		m, _ := coord.View()
		moved := 0
		for s := 0; s < kvstore.NumShardSlots && moved < 4; s++ {
			if m.GroupFor(s) != 0 {
				continue
			}
			if _, err := coord.Rebalance(ctx, s, groups[1].Name()); err != nil {
				t.Fatalf("rebalance slot %d: %v", s, err)
			}
			moved++
		}
	}
	return router, rebalance
}

func TestGoldenSharded(t *testing.T) {
	router, rebalance := buildShardedStore(t)
	got := buildGoldenOnWithHook(t, router, rebalance)
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenShardedPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenShardedPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", goldenShardedPath, len(got.Results))
		return
	}

	want, err := os.ReadFile(goldenShardedPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(data, want) {
		var old goldenFile
		if err := json.Unmarshal(want, &old); err != nil {
			t.Fatalf("golden file is not valid JSON: %v", err)
		}
		t.Errorf("sharded serving output diverged from %s — if the change is intended, refresh with -update", goldenShardedPath)
		logGoldenDiff(t, old, got)
	}

	// The transparency claim itself: the sharded golden must be byte-for-byte
	// the local-store golden. A sharded-only divergence would pass the pinned
	// comparison above while silently breaking storage-tier transparency.
	local, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read local golden: %v", err)
	}
	if !bytes.Equal(want, local) {
		t.Errorf("%s and %s differ — the sharded tier is not transparent to serving", goldenShardedPath, goldenPath)
	}
}
