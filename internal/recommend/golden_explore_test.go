package recommend_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// The explored golden test pins the bandit re-ranked serving output for a
// fixed seed and reward history: the same synthetic replay as golden_topn,
// served in Explore mode with a fixed policy seed, with simulated clicks fed
// back between slates so the posteriors actually move mid-run. Any change to
// the policy's sampling, the arm pools, the fallback order, or the reward
// codec shows up as a golden diff. Refresh deliberately with
//
//	go test ./internal/recommend -run GoldenExplore -update

const goldenExplorePath = "testdata/golden_explore.json"

// goldenExploreResult extends the golden record with per-slot arm tags and
// the reward state the slate was served under.
type goldenExploreResult struct {
	User         string        `json:"user"`
	CurrentVideo string        `json:"current_video,omitempty"`
	Videos       []goldenEntry `json:"videos"`
	Arms         []string      `json:"arms"`
	Seeds        int           `json:"seeds"`
	Candidates   int           `json:"candidates"`
	HotMerged    int           `json:"hot_merged"`
}

type goldenExploreFile struct {
	Seed        uint64                `json:"seed"`
	ExploreSeed uint64                `json:"explore_seed"`
	Policy      string                `json:"policy"`
	Actions     int                   `json:"actions"`
	Results     []goldenExploreResult `json:"results"`
	FinalPulls  []float64             `json:"final_pulls"`
	FinalWins   []float64             `json:"final_wins"`
}

func buildGoldenExplore(t *testing.T) goldenExploreFile {
	t.Helper()
	ctx := context.Background()
	ds, err := dataset.Generate(dataset.Config{
		Seed:             7,
		Users:            24,
		Videos:           48,
		Types:            6,
		Factors:          4,
		Days:             1,
		EventsPerDay:     80,
		ZipfExponent:     1.05,
		TrendDriftPerDay: 0.08,
		GroupInfluence:   0.6,
		RegisteredShare:  0.65,
		Start:            time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	opts.Explore = true
	opts.ExplorePolicy = bandit.PolicyThompson
	opts.ExploreSeed = 20160307
	sys, err := recommend.NewSystem(kvstore.NewLocal(16), params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatalf("build system: %v", err)
	}
	if err := ds.FillCatalog(ctx, sys.Catalog); err != nil {
		t.Fatalf("fill catalog: %v", err)
	}
	if err := ds.FillProfiles(ctx, sys.Profiles); err != nil {
		t.Fatalf("fill profiles: %v", err)
	}

	out := goldenExploreFile{
		Seed:        ds.Config().Seed,
		ExploreSeed: opts.ExploreSeed,
		Policy:      bandit.PolicyThompson,
	}
	stream := ds.Stream()
	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		if err := sys.Ingest(ctx, a); err != nil {
			t.Fatalf("ingest action %d: %v", out.Actions, err)
		}
		out.Actions++
	}

	// The same fixed request mix as golden_topn, but after each slate the
	// user "clicks" its first entry — the click re-enters Ingest, Take
	// credits the arm that filled slot 0, and the next slate is sampled
	// from moved posteriors. The file therefore pins the whole loop:
	// sample → attribute → reward → sample.
	users := ds.Users()
	videos := ds.Videos()
	clickAt := sys.Now().Add(time.Minute)
	for i := 0; i < 8; i++ {
		u := users[(i*3)%len(users)].ID
		reqs := []recommend.Request{
			{UserID: u, N: 5},
			{UserID: u, N: 5, CurrentVideo: videos[(i*7)%len(videos)].Meta.ID},
		}
		for _, req := range reqs {
			res, err := sys.Recommend(ctx, req)
			if err != nil {
				t.Fatalf("recommend %+v: %v", req, err)
			}
			if !res.Explored {
				t.Fatalf("explore-mode response not marked Explored: %+v", req)
			}
			g := goldenExploreResult{
				User:         req.UserID,
				CurrentVideo: req.CurrentVideo,
				Seeds:        res.Seeds,
				Candidates:   res.Candidates,
				HotMerged:    res.HotMerged,
				Videos:       make([]goldenEntry, 0, len(res.Videos)),
				Arms:         make([]string, 0, len(res.Arms)),
			}
			for _, e := range res.Videos {
				g.Videos = append(g.Videos, goldenEntry{ID: e.ID, Score: roundScore(e.Score)})
			}
			for _, a := range res.Arms {
				g.Arms = append(g.Arms, a.String())
			}
			out.Results = append(out.Results, g)

			if len(res.Videos) > 0 {
				clickAt = clickAt.Add(time.Second)
				click := feedback.Action{
					UserID:    req.UserID,
					VideoID:   res.Videos[0].ID,
					Type:      feedback.Click,
					Timestamp: clickAt,
				}
				if err := sys.Ingest(ctx, click); err != nil {
					t.Fatalf("feedback click: %v", err)
				}
			}
		}
	}

	st, err := sys.Bandit.State(ctx)
	if err != nil {
		t.Fatalf("final bandit state: %v", err)
	}
	out.FinalPulls = append(out.FinalPulls, st.Pulls[:]...)
	out.FinalWins = append(out.FinalWins, st.Wins[:]...)
	return out
}

func TestGoldenExplore(t *testing.T) {
	got := buildGoldenExplore(t)
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenExplorePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenExplorePath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", goldenExplorePath, len(got.Results))
		return
	}

	want, err := os.ReadFile(goldenExplorePath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("explored serving output diverged from %s — if the change is intended, refresh with -update", goldenExplorePath)
	}
}

// TestGoldenExploreIsDeterministic proves the satellite's determinism claim
// directly: two full same-seed explore runs — sampling, attribution, reward
// feedback and all — produce byte-identical slates, arm tags, and final
// posterior counters.
func TestGoldenExploreIsDeterministic(t *testing.T) {
	a, err := json.Marshal(buildGoldenExplore(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buildGoldenExplore(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two same-seed explore replays disagree — the bandit is consulting unseeded randomness or the wall clock")
	}
}
