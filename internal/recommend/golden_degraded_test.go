package recommend_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// The degraded golden test pins the fallback path the same way golden_topn
// pins the personalized one: replay the fixed dataset on a healthy store,
// then black out the model/simtable namespace ("sys/...") completely and run
// the same 16-request mix. Every response must be served — Degraded, from the
// demographic hot lists — and the exact lists are compared byte-for-byte
// against testdata/golden_degraded.json. Refresh deliberately with
//
//	go test ./internal/recommend -run GoldenDegraded -update
const goldenDegradedPath = "testdata/golden_degraded.json"

func buildGoldenDegraded(t *testing.T) goldenFile {
	t.Helper()
	ctx := context.Background()
	ds, err := dataset.Generate(dataset.Config{
		Seed:             7,
		Users:            24,
		Videos:           48,
		Types:            6,
		Factors:          4,
		Days:             1,
		EventsPerDay:     80,
		ZipfExponent:     1.05,
		TrendDriftPerDay: 0.08,
		GroupInfluence:   0.6,
		RegisteredShare:  0.65,
		Start:            time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	params := core.DefaultParams()
	params.Factors = 8
	// The cache is disabled so the blackout deterministically reaches every
	// model read — with a cache, which requests degrade would depend on what
	// earlier requests happened to leave cached.
	opts := recommend.DefaultOptions()
	opts.CacheCapacity = -1
	faulty := kvstore.NewFaulty(kvstore.NewLocal(16), 7)
	sys, err := recommend.NewSystem(faulty, params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatalf("build system: %v", err)
	}
	if err := ds.FillCatalog(ctx, sys.Catalog); err != nil {
		t.Fatalf("fill catalog: %v", err)
	}
	if err := ds.FillProfiles(ctx, sys.Profiles); err != nil {
		t.Fatalf("fill profiles: %v", err)
	}

	out := goldenFile{Seed: ds.Config().Seed}
	stream := ds.Stream()
	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		if err := sys.Ingest(ctx, a); err != nil {
			t.Fatalf("ingest action %d: %v", out.Actions, err)
		}
		out.Actions++
	}

	// Total model/simtable outage; serving-side namespaces stay reachable.
	faulty.SetSchedule([]kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}})

	// The same request mix as the personalized golden — the availability
	// claim is per-request: zero errors under total model outage.
	users := ds.Users()
	videos := ds.Videos()
	for i := 0; i < 8; i++ {
		u := users[(i*3)%len(users)].ID
		reqs := []recommend.Request{
			{UserID: u, N: 5},
			{UserID: u, N: 5, CurrentVideo: videos[(i*7)%len(videos)].Meta.ID},
		}
		for _, req := range reqs {
			res, err := sys.Recommend(ctx, req)
			if err != nil {
				t.Fatalf("recommend %+v under model blackout: %v", req, err)
			}
			if !res.Degraded {
				t.Fatalf("recommend %+v: not marked Degraded under total model outage", req)
			}
			g := goldenResult{
				User:         req.UserID,
				CurrentVideo: req.CurrentVideo,
				Seeds:        res.Seeds,
				Candidates:   res.Candidates,
				HotMerged:    res.HotMerged,
				Degraded:     res.Degraded,
				Videos:       make([]goldenEntry, 0, len(res.Videos)),
			}
			for _, e := range res.Videos {
				g.Videos = append(g.Videos, goldenEntry{ID: e.ID, Score: roundScore(e.Score)})
			}
			out.Results = append(out.Results, g)
		}
	}
	return out
}

func TestGoldenDegraded(t *testing.T) {
	got := buildGoldenDegraded(t)
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenDegradedPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDegradedPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", goldenDegradedPath, len(got.Results))
		return
	}

	want, err := os.ReadFile(goldenDegradedPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(data, want) {
		var old goldenFile
		if err := json.Unmarshal(want, &old); err != nil {
			t.Fatalf("golden file is not valid JSON: %v", err)
		}
		t.Errorf("degraded serving output diverged from %s — if the change is intended, refresh with -update", goldenDegradedPath)
		logGoldenDiff(t, old, got)
	}
}

func TestGoldenDegradedIsDeterministic(t *testing.T) {
	a, err := json.Marshal(buildGoldenDegraded(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buildGoldenDegraded(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two same-seed degraded replays disagree — golden comparisons would be flaky")
	}
}
