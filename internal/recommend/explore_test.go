package recommend

import (
	"context"
	"testing"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

func exploreOptions(policy string) Options {
	o := DefaultOptions()
	o.Explore = true
	o.ExplorePolicy = policy
	o.ExploreSeed = 42
	return o
}

// seedExploreSystem builds a system with enough co-watch structure that all
// three arms have non-empty pools for user u1.
func seedExploreSystem(t *testing.T, s *System) {
	t.Helper()
	ctx := context.Background()
	seedCatalog(t, s,
		vid("a", "movie"), vid("b", "movie"), vid("c", "movie"), vid("d", "news"),
		vid("e", "news"), vid("f", "movie"), vid("g", "movie"), vid("h", "news"))
	min := 0
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		for _, v := range []string{"a", "b", "c"} {
			if err := s.Ingest(ctx, watch(u, v, min)); err != nil {
				t.Fatal(err)
			}
			min++
		}
	}
	for _, v := range []string{"d", "e", "f", "g", "h"} {
		if err := s.Ingest(ctx, watch("u5", v, min)); err != nil {
			t.Fatal(err)
		}
		min++
	}
}

func TestExploreOptionsValidate(t *testing.T) {
	bad := exploreOptions("ucb") // not a policy we ship
	if bad.Validate() == nil {
		t.Error("unknown explore policy accepted")
	}
	bad = exploreOptions(bandit.PolicyEpsilonGreedy)
	bad.ExploreEpsilon = 1.5
	if bad.Validate() == nil {
		t.Error("epsilon outside [0,1] accepted")
	}
	// Explore off: the explore knobs are inert and unvalidated.
	off := DefaultOptions()
	off.ExplorePolicy = "ucb"
	if err := off.Validate(); err != nil {
		t.Errorf("inert explore knobs rejected: %v", err)
	}
	for _, p := range []string{"", bandit.PolicyThompson, bandit.PolicyEpsilonGreedy} {
		if err := exploreOptions(p).Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
}

// TestExploreSlate pins the re-ranked slate's structural invariants: marked
// Explored, arm tags parallel and valid, no duplicate videos, nothing the
// user already watched, pulls recorded and attributions written.
func TestExploreSlate(t *testing.T) {
	ctx := context.Background()
	s := testSystem(t, exploreOptions(bandit.PolicyThompson))
	seedExploreSystem(t, s)

	res, err := s.Recommend(ctx, Request{UserID: "u1", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Explored || res.Degraded {
		t.Fatalf("explore response flags: Explored=%v Degraded=%v", res.Explored, res.Degraded)
	}
	if len(res.Arms) != len(res.Videos) || len(res.Videos) == 0 {
		t.Fatalf("arms/videos mismatch: %d arms, %d videos", len(res.Arms), len(res.Videos))
	}
	seen := map[string]bool{}
	hot := 0
	for i, e := range res.Videos {
		if seen[e.ID] {
			t.Errorf("duplicate video %s in explored slate", e.ID)
		}
		seen[e.ID] = true
		for _, w := range []string{"a", "b", "c"} {
			if e.ID == w {
				t.Errorf("watched video %s re-served", e.ID)
			}
		}
		if !res.Arms[i].Valid() {
			t.Errorf("slot %d tagged with invalid arm %d", i, uint8(res.Arms[i]))
		}
		if res.Arms[i] == bandit.ArmHot {
			hot++
		}
	}
	if res.HotMerged != hot {
		t.Errorf("HotMerged = %d, want %d (count of hot-armed slots)", res.HotMerged, hot)
	}

	st, err := s.Bandit.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for a := 0; a < bandit.NumArms; a++ {
		total += st.Pulls[a]
	}
	if total != float64(len(res.Videos)) {
		t.Errorf("recorded pulls %v, want %d (one per served slot)", total, len(res.Videos))
	}
	attrs, err := s.Bandit.Attributions(ctx, "u1")
	if err != nil || len(attrs) != len(res.Videos) {
		t.Fatalf("attributions = %v, %v; want one per slot", attrs, err)
	}
}

// TestExploreRewardLoop drives the full sequential loop: serve explored,
// click a served video, and watch the credited arm's posterior move while
// the attribution is consumed.
func TestExploreRewardLoop(t *testing.T) {
	ctx := context.Background()
	s := testSystem(t, exploreOptions(bandit.PolicyThompson))
	seedExploreSystem(t, s)

	res, err := s.Recommend(ctx, Request{UserID: "u1", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	clicked := res.Videos[0].ID
	clickedArm := res.Arms[0]
	action := watch("u1", clicked, 100)
	// A full watch carries Eq. 6's ceiling weight (2.5), scaling to 0.625.
	wantReward := bandit.RewardFromWeight(s.Weights().Weight(action))
	if wantReward <= 0 || wantReward > 1 {
		t.Fatalf("test premise broken: full-watch reward = %v", wantReward)
	}
	if err := s.Ingest(ctx, action); err != nil {
		t.Fatal(err)
	}
	st, err := s.Bandit.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wins[clickedArm] != wantReward {
		t.Errorf("credited arm %v has wins %v, want %v", clickedArm, st.Wins[clickedArm], wantReward)
	}
	// The slot's credit is consumed: acting on it again earns nothing.
	if err := s.Ingest(ctx, watch("u1", clicked, 101)); err != nil {
		t.Fatal(err)
	}
	if st, _ = s.Bandit.State(ctx); st.Wins[clickedArm] != wantReward {
		t.Errorf("repeat action re-credited the arm: wins %v", st.Wins[clickedArm])
	}
	// An action on an unserved video credits nothing either.
	if err := s.Ingest(ctx, watch("u1", "h", 102)); err != nil {
		t.Fatal(err)
	}
	stAfter, _ := s.Bandit.State(ctx)
	if stAfter.Wins != st.Wins {
		t.Errorf("unattributed action moved wins: %v -> %v", st.Wins, stAfter.Wins)
	}
}

// TestExploreEpsilonGreedy runs the other policy end to end.
func TestExploreEpsilonGreedy(t *testing.T) {
	ctx := context.Background()
	opts := exploreOptions(bandit.PolicyEpsilonGreedy)
	opts.ExploreEpsilon = 0.5
	s := testSystem(t, opts)
	seedExploreSystem(t, s)
	res, err := s.Recommend(ctx, Request{UserID: "u1", N: 4})
	if err != nil || !res.Explored {
		t.Fatalf("epsilon-greedy explore failed: %v (explored %v)", err, res != nil && res.Explored)
	}
}

// TestDegradedNeverExplores pins the composition with the PR5 fallback: when
// the personalized path (and with it the explore re-rank) fails under a
// model blackout, the degraded response is served un-explored and the bandit
// records nothing — Degraded responses never sample.
func TestDegradedNeverExplores(t *testing.T) {
	ctx := context.Background()
	faulty := kvstore.NewFaulty(kvstore.NewLocal(16), 7)
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := NewSystem(faulty, params, simtable.DefaultConfig(), exploreOptions(bandit.PolicyThompson))
	if err != nil {
		t.Fatal(err)
	}
	seedExploreSystem(t, sys)
	faulty.SetSchedule([]kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}})

	res, err := sys.Recommend(ctx, Request{UserID: "u1", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Explored || res.Arms != nil {
		t.Fatalf("blackout response: Degraded=%v Explored=%v Arms=%v", res.Degraded, res.Explored, res.Arms)
	}
	faulty.SetSchedule(nil)
	st, err := sys.Bandit.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st != (bandit.State{}) {
		t.Errorf("degraded serving touched bandit state: %+v", st)
	}
	if attrs, _ := sys.Bandit.Attributions(ctx, "u1"); attrs != nil {
		t.Errorf("degraded serving wrote attributions: %v", attrs)
	}
}

// TestExploreDeterministicSlates: two systems with identical options, state,
// and seed serve identical explored slates — request-level replay, under the
// same contract the golden file pins end to end.
func TestExploreDeterministicSlates(t *testing.T) {
	ctx := context.Background()
	serve := func() ([]string, []bandit.Arm) {
		s := testSystem(t, exploreOptions(bandit.PolicyThompson))
		seedExploreSystem(t, s)
		var ids []string
		var arms []bandit.Arm
		for i := 0; i < 5; i++ {
			res, err := s.Recommend(ctx, Request{UserID: "u1", N: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range res.Videos {
				ids = append(ids, e.ID)
			}
			arms = append(arms, res.Arms...)
		}
		return ids, arms
	}
	ids1, arms1 := serve()
	ids2, arms2 := serve()
	if len(ids1) != len(ids2) {
		t.Fatalf("slate lengths differ: %d vs %d", len(ids1), len(ids2))
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] || arms1[i] != arms2[i] {
			t.Fatalf("slot %d differs across same-seed systems: %s/%v vs %s/%v",
				i, ids1[i], arms1[i], ids2[i], arms2[i])
		}
	}
}

// TestExploreWarmAllocs pins the explore path's own allocation budget with a
// warm cache, the way TestDegradedWarmAllocs pins the fallback's: the warm
// exploit cost (18) plus the explore layer's hatched allocations — the
// escaping slate and arm slices, the pull-charge update, and the attribution
// record write. If this bound creeps, exploration is allocating outside its
// hatched budget.
func TestExploreWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates closures the serving path keeps on the stack, inflating the count")
	}
	ctx := context.Background()
	s := testSystem(t, exploreOptions(bandit.PolicyThompson))
	seedExploreSystem(t, s)
	req := Request{UserID: "u1", N: 4}
	if _, err := s.Recommend(ctx, req); err != nil { // warm the cache
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		res, err := s.Recommend(ctx, req)
		if err != nil || !res.Explored {
			t.Fatal("explored request failed")
		}
	})
	// 38 measured: the warm exploit work plus the cached state read, the
	// pull-charge update (closure + state encode + shard copy), and the
	// attribution write (record build + entry encode + shard copy).
	if avg > 38 {
		t.Fatalf("warm explored Recommend allocates %v objects/op, want <= 38", avg)
	}
}
