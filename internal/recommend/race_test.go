//go:build race

package recommend

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation forces otherwise stack-allocated closures
// to the heap and so inflates AllocsPerRun counts on the end-to-end path.
const raceEnabled = true
