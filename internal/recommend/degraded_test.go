package recommend

// Degraded-serving tests: when the model/simtable namespace ("sys/...") is
// unreachable but the serving-side data (history, hot lists, profiles — all
// under "sys.") is healthy, every request must be answered from the
// demographic fallback instead of erroring.

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

// degradedSystem builds a system over a Faulty store with the read cache
// disabled, so a key-prefix blackout deterministically reaches every model
// read instead of being absorbed by earlier requests' cached decodes.
func degradedSystem(t *testing.T, opts Options) (*System, *kvstore.Faulty) {
	t.Helper()
	faulty := kvstore.NewFaulty(kvstore.NewLocal(16), 7)
	params := core.DefaultParams()
	params.Factors = 8
	opts.CacheCapacity = -1
	sys, err := NewSystem(faulty, params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b", "c", "d", "e"} {
		if err := sys.Catalog.Put(context.Background(), catalog.Video{ID: v, Type: "movie", Length: time.Minute}); err != nil {
			t.Fatal(err)
		}
	}
	// Warmup traffic heats the hot list and gives u1 a history of {a, b}.
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b"} {
			if err := sys.Ingest(context.Background(), watch(u, v, min)); err != nil {
				t.Fatal(err)
			}
			min++
		}
	}
	for _, v := range []string{"c", "d", "e"} {
		if err := sys.Ingest(context.Background(), watch("u4", v, min)); err != nil {
			t.Fatal(err)
		}
		min++
	}
	return sys, faulty
}

// modelBlackout fails every operation touching the model/simtable namespace
// while leaving history, hot lists, profiles, and the catalog reachable.
func modelBlackout(faulty *kvstore.Faulty) {
	faulty.SetSchedule([]kvstore.FaultPhase{{FailRate: 1, KeyPrefix: "sys/"}})
}

func TestDegradedFallbackOnModelOutage(t *testing.T) {
	sys, faulty := degradedSystem(t, DefaultOptions())
	modelBlackout(faulty)

	res, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 3})
	if err != nil {
		t.Fatalf("Recommend under model blackout = %v, want degraded response", err)
	}
	if !res.Degraded {
		t.Fatal("response not marked Degraded under total model outage")
	}
	if len(res.Videos) == 0 {
		t.Fatal("degraded response is empty despite a heated hot list")
	}
	if res.HotMerged != len(res.Videos) {
		t.Errorf("HotMerged = %d, want %d (every slot is demographic)", res.HotMerged, len(res.Videos))
	}
	// u1 watched a and b; the fallback must not re-serve them.
	for _, e := range res.Videos {
		if e.ID == "a" || e.ID == "b" {
			t.Errorf("degraded list re-serves watched video %q", e.ID)
		}
	}
}

func TestDegradedExcludesCurrentVideo(t *testing.T) {
	sys, faulty := degradedSystem(t, DefaultOptions())
	modelBlackout(faulty)

	res, err := sys.Recommend(context.Background(), Request{UserID: "u4", CurrentVideo: "c", N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("response not marked Degraded")
	}
	for _, e := range res.Videos {
		if e.ID == "c" {
			t.Error("degraded list includes the video being watched")
		}
	}
}

func TestDegradedServesUnknownUser(t *testing.T) {
	// Cold-start under outage: a user with no profile and no history gets
	// the global hot list — the paper's cold-start answer, doubling as the
	// availability floor.
	sys, faulty := degradedSystem(t, DefaultOptions())
	modelBlackout(faulty)

	res, err := sys.Recommend(context.Background(), Request{UserID: "stranger", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.Videos) == 0 {
		t.Fatalf("unknown user under outage: degraded=%v videos=%d, want non-empty degraded list",
			res.Degraded, len(res.Videos))
	}
}

func TestDegradedFallbackDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DegradedFallback = false
	sys, faulty := degradedSystem(t, opts)
	modelBlackout(faulty)

	if _, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 3}); err == nil {
		t.Fatal("DegradedFallback=false still served under model outage, want error")
	}
}

func TestDegradedValidationStillErrors(t *testing.T) {
	sys, faulty := degradedSystem(t, DefaultOptions())
	modelBlackout(faulty)

	if _, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 0}); err == nil {
		t.Error("N=0 served a degraded list, want validation error")
	}
	if _, err := sys.Recommend(context.Background(), Request{UserID: "", N: 3}); err == nil {
		t.Error("empty user served a degraded list, want validation error")
	}
}

func TestDegradedResponsesRecordLatency(t *testing.T) {
	sys, faulty := degradedSystem(t, DefaultOptions())
	modelBlackout(faulty)

	const reqs = 4
	for i := 0; i < reqs; i++ {
		res, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 3})
		if err != nil || !res.Degraded {
			t.Fatalf("request %d: err=%v degraded=%v", i, err, res != nil && res.Degraded)
		}
	}
	if snap := sys.Latency.Snapshot(); snap.Count != reqs {
		t.Errorf("latency samples = %d, want %d (degraded responses are served responses)", snap.Count, reqs)
	}
}

func TestDegradedRecoversToPersonalized(t *testing.T) {
	sys, faulty := degradedSystem(t, DefaultOptions())
	modelBlackout(faulty)
	res, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 3})
	if err != nil || !res.Degraded {
		t.Fatalf("during outage: err=%v degraded=%v", err, res != nil && res.Degraded)
	}
	// Clearing the schedule ends the outage; serving returns to the
	// personalized path with no residue from the degraded period.
	faulty.SetSchedule(nil)
	res, err = sys.Recommend(context.Background(), Request{UserID: "u1", N: 3})
	if err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if res.Degraded {
		t.Error("response still marked Degraded after the outage ended")
	}
}
