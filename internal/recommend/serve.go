package recommend

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/demographic"
	"vidrec/internal/topn"
)

// Request is one recommendation query.
type Request struct {
	// UserID identifies the requesting user (possibly unknown/unregistered).
	UserID string
	// CurrentVideo, when set, is the video the user is watching — the
	// "related videos" scenario of Figure 6(b). When empty, the user's
	// recent history seeds the expansion — "Guess you like", Figure 6(a).
	CurrentVideo string
	// N is the list length to return.
	N int
}

// Result is a ranked recommendation list with provenance counters.
type Result struct {
	// Videos is the final ranked list: predicted preference (Eq. 2)
	// descending for the MF-sourced part, followed by the demographic
	// hot-video merge.
	Videos []topn.Entry
	// Seeds is the number of seed videos used.
	Seeds int
	// Candidates is how many distinct candidates the similar tables
	// produced before ranking.
	Candidates int
	// HotMerged counts entries contributed by demographic filtering.
	HotMerged int
	// Latency is the end-to-end serving time.
	Latency time.Duration
}

// Recommend runs the full Figure 1 pipeline for one request.
func (s *System) Recommend(ctx context.Context, req Request) (*Result, error) {
	start := s.wallClock()
	if req.N <= 0 {
		return nil, fmt.Errorf("recommend: N must be positive, got %d", req.N)
	}
	if req.UserID == "" {
		return nil, fmt.Errorf("recommend: user id must not be empty")
	}
	now := s.Now()
	group := s.groupOf(ctx, req.UserID)

	// 1. Seed videos: the current video, else recent history.
	var seeds []string
	if req.CurrentVideo != "" {
		seeds = []string{req.CurrentVideo}
	} else {
		var err error
		seeds, err = s.History.RecentVideos(ctx, req.UserID, s.opts.SeedCount)
		if err != nil {
			return nil, err
		}
	}

	// Exclusion set: never recommend the seeds or anything in the user's
	// stored watch history — re-serving watched content wastes slots and
	// triggers fatigue.
	exclude := make(map[string]bool, s.opts.HistoryLimit+1)
	for _, v := range seeds {
		exclude[v] = true
	}
	if watchedAll, err := s.History.RecentVideos(ctx, req.UserID, s.opts.HistoryLimit); err == nil {
		for _, v := range watchedAll {
			exclude[v] = true
		}
	}

	// 2. Candidate expansion through the group's similar-video tables
	// (fall back to the global tables when group training is off).
	tableGroup := group
	if !s.opts.DemographicTraining {
		tableGroup = demographic.GlobalGroup
	}
	tables, err := s.Tables.For(tableGroup)
	if err != nil {
		return nil, err
	}
	candSet := make(map[string]bool)
	var candidates []string
	for _, seed := range seeds {
		similar, err := tables.Similar(ctx, seed, s.opts.CandidatesPerSeed, now)
		if err != nil {
			return nil, err
		}
		for _, e := range similar {
			if exclude[e.ID] || candSet[e.ID] {
				continue
			}
			candSet[e.ID] = true
			candidates = append(candidates, e.ID)
			if len(candidates) >= s.opts.MaxCandidates {
				break
			}
		}
		if len(candidates) >= s.opts.MaxCandidates {
			break
		}
	}

	// 3. Preference prediction (Eq. 2) over candidates only — the whole
	// corpus is never scored.
	model, err := s.Models.For(tableGroup)
	if err != nil {
		return nil, err
	}
	scores, err := model.ScoreCandidates(ctx, req.UserID, candidates)
	if err != nil {
		return nil, err
	}

	// 4. Ranking.
	ranked := topn.NewList(req.N)
	for i, id := range candidates {
		ranked.Update(id, scores[i])
	}
	videos := ranked.All()

	// 5. Demographic filtering: reserve part of the list for the group's
	// hot videos, and fill every slot MF could not (new users get a full
	// hot list — the paper's cold-start answer).
	hotMerged := 0
	if s.opts.DemographicFiltering {
		reserve := int(s.opts.HotShare * float64(req.N))
		deficit := req.N - len(videos)
		want := reserve
		if deficit > want {
			want = deficit
		}
		if want > 0 {
			hot, err := s.hotFor(ctx, group, req.N+len(exclude), now)
			if err != nil {
				return nil, err
			}
			inList := make(map[string]bool, len(videos))
			for _, e := range videos {
				inList[e.ID] = true
			}
			var mergeIDs []string
			for _, e := range hot {
				if len(mergeIDs) == want {
					break
				}
				if exclude[e.ID] || inList[e.ID] {
					continue
				}
				mergeIDs = append(mergeIDs, e.ID)
			}
			// Re-score merged videos with the model so every entry's Score
			// has one meaning: predicted preference (Eq. 2). The merge
			// order (popularity) is preserved — that is the DB algorithm's
			// ranking for its slots.
			mergeScores, err := model.ScoreCandidates(ctx, req.UserID, mergeIDs)
			if err != nil {
				return nil, err
			}
			if keep := req.N - len(mergeIDs); len(videos) > keep {
				videos = videos[:keep]
			}
			for i, id := range mergeIDs {
				videos = append(videos, topn.Entry{ID: id, Score: mergeScores[i]})
			}
			hotMerged = len(mergeIDs)
		}
	}

	elapsed := s.wallClock().Sub(start)
	s.Latency.Observe(elapsed)
	return &Result{
		Videos:     videos,
		Seeds:      len(seeds),
		Candidates: len(candidates),
		HotMerged:  hotMerged,
		Latency:    elapsed,
	}, nil
}

// hotFor fetches the group's hot list, falling back to the global group when
// the group has none — "for new unregistered users, we generate the hot
// videos of global demographic group".
func (s *System) hotFor(ctx context.Context, group string, k int, now time.Time) ([]topn.Entry, error) {
	if group != demographic.GlobalGroup {
		hot, err := s.Hot.Hot(ctx, group, k, now)
		if err != nil {
			return nil, err
		}
		if len(hot) > 0 {
			return hot, nil
		}
	}
	return s.Hot.Hot(ctx, demographic.GlobalGroup, k, now)
}

// RecommendIDs implements eval.Recommender over the history-seeded scenario.
func (s *System) RecommendIDs(ctx context.Context, userID string, n int) ([]string, error) {
	res, err := s.Recommend(ctx, Request{UserID: userID, N: n})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Videos))
	for i, e := range res.Videos {
		out[i] = e.ID
	}
	return out, nil
}

// EvalAdapter bridges a System into the ctx-free eval.Recommender interface
// the offline harness uses. Ctx is the run context every adapted call uses;
// a zero Ctx means context.Background() — acceptable for the offline
// harness, which sits outside the ctxcheck serving scope.
type EvalAdapter struct {
	S   *System
	Ctx context.Context
}

// Recommend implements eval.Recommender.
func (a EvalAdapter) Recommend(userID string, n int) ([]string, error) {
	ctx := a.Ctx
	if ctx == nil {
		// ctxcheck: offline-harness adapter; a zero Ctx means "no deadline"
		ctx = context.Background()
	}
	return a.S.RecommendIDs(ctx, userID, n)
}
