package recommend

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/demographic"
	"vidrec/internal/topn"
)

// Request is one recommendation query.
type Request struct {
	// UserID identifies the requesting user (possibly unknown/unregistered).
	UserID string
	// CurrentVideo, when set, is the video the user is watching — the
	// "related videos" scenario of Figure 6(b). When empty, the user's
	// recent history seeds the expansion — "Guess you like", Figure 6(a).
	CurrentVideo string
	// N is the list length to return.
	N int
}

// Result is a ranked recommendation list with provenance counters.
type Result struct {
	// Videos is the final ranked list: predicted preference (Eq. 2)
	// descending for the MF-sourced part, followed by the demographic
	// hot-video merge.
	Videos []topn.Entry
	// Seeds is the number of seed videos used.
	Seeds int
	// Candidates is how many distinct candidates the similar tables
	// produced before ranking.
	Candidates int
	// HotMerged counts entries contributed by demographic filtering.
	HotMerged int
	// Degraded marks a fallback response: the personalized path failed on
	// storage errors and the list is the demographic hot list (filtered
	// against whatever history was still readable) instead of MF-ranked
	// candidates. Serving stayed up; quality, not availability, degraded.
	Degraded bool
	// Explored marks a slate re-ranked through the bandit policy
	// (Options.Explore). Degraded responses are never explored.
	Explored bool
	// Arms tags each slot of an explored slate with the candidate source
	// that filled it (parallel to Videos; nil unless Explored).
	Arms []bandit.Arm
	// Latency is the end-to-end serving time.
	Latency time.Duration
}

// serveScratch is per-request working memory recycled across Recommend calls
// through System.scratch. Nothing stored here may escape into a Result: ids
// are immutable string headers owned by the cache or the store decode, and
// every slice that escapes (the ranked list) is freshly allocated.
type serveScratch struct {
	ids    []string       // id scratch: candidates, then the folded toScore batch
	hotIdx []int          // per hot entry: its index into scores, or -1 when excluded
	merged []topn.Entry   // hot entries selected for the final list (values are copied out)
	seen   map[string]int // candidate id → its index in toScore
	inList map[string]bool
	ranked *topn.List // reused ranking list; rebuilt when req.N changes
}

// Recommend runs the full Figure 1 pipeline for one request: the
// personalized path (seed expansion → Eq. 2 scoring → ranking → hot merge),
// and — when that path fails on storage errors and Options.DegradedFallback
// is on — the demographic fallback, which serves the group's hot list so the
// request degrades in quality instead of erroring. Validation failures never
// fall back, and if the fallback cannot be built either, the personalized
// path's error is the one returned.
//
// hotpath: the warm serving budget (18 allocs, ~30µs) is enforced from here
func (s *System) Recommend(ctx context.Context, req Request) (*Result, error) {
	start := s.wallClock()
	if req.N <= 0 {
		return nil, fmt.Errorf("recommend: N must be positive, got %d", req.N)
	}
	if req.UserID == "" {
		return nil, fmt.Errorf("recommend: user id must not be empty")
	}
	now := s.Now()
	group := s.groupOf(ctx, req.UserID)

	res, err := s.personalized(ctx, req, group, now)
	if err != nil && s.opts.DegradedFallback {
		if deg, derr := s.degraded(ctx, req, group, now); derr == nil {
			res, err = deg, nil
		}
	}
	if err != nil {
		return nil, err
	}
	elapsed := s.wallClock().Sub(start)
	s.Latency.Observe(elapsed)
	res.Latency = elapsed
	return res, nil
}

// personalized is the MF-ranked serving path.
//
// The store round trips are batched to a constant per request regardless of
// seed or candidate count: one history fetch serves both seeding and the
// exclusion set, all seeds' similar lists share one MGet (SimilarBatch), and
// candidate scoring plus the hot-merge re-score fold into a single
// ScoreCandidates batch. Per-item scores under Eq. 2 are independent of what
// else is in the batch, so the folded call ranks identically to scoring the
// two sets separately; with the decoded-value cache warm the whole request
// runs with zero store round trips.
func (s *System) personalized(ctx context.Context, req Request, group string, now time.Time) (*Result, error) {
	scr, _ := s.scratch.Get().(*serveScratch)
	if scr == nil {
		scr = &serveScratch{seen: make(map[string]int, 64), inList: make(map[string]bool, 16)} // alloccheck: pool miss, cold start only
	}
	defer s.scratch.Put(scr)

	// 1. One history fetch serves every consumer: the prefix of the cached
	// video list seeds the expansion ("Guess you like") and the cached
	// membership set is the exclusion — never recommend anything the user
	// already watched; re-serving watched content wastes slots and triggers
	// fatigue. Both views are derived once per history decode, not per
	// request. When a current video is given it is the sole seed and a
	// history fetch failure only shrinks the exclusion set (as before).
	watched, histSet, histErr := s.History.Watched(ctx, req.UserID, s.opts.HistoryLimit)
	var seeds []string
	if req.CurrentVideo != "" {
		seeds = []string{req.CurrentVideo} // alloccheck: single-element seed slice (warm budget)
	} else {
		if histErr != nil {
			return nil, histErr
		}
		seeds = watched
		if len(seeds) > s.opts.SeedCount {
			seeds = seeds[:s.opts.SeedCount]
		}
	}
	// The history-seeded case excludes exactly the stored history (seeds are
	// its prefix); a current video additionally excludes itself.
	excluded := func(id string) bool { // alloccheck: one exclusion closure per request (warm budget)
		return histSet[id] || (req.CurrentVideo != "" && id == req.CurrentVideo)
	}
	excludeLen := len(histSet)
	if req.CurrentVideo != "" && !histSet[req.CurrentVideo] {
		excludeLen++
	}

	// 2. Candidate expansion through the group's similar-video tables
	// (fall back to the global tables when group training is off). All
	// seeds' lists arrive in one batched fetch; dedup preserves seed order.
	tableGroup := group
	if !s.opts.DemographicTraining {
		tableGroup = demographic.GlobalGroup
	}
	tables, err := s.Tables.For(tableGroup)
	if err != nil {
		return nil, err
	}
	similarLists, err := tables.SimilarBatch(ctx, seeds, s.opts.CandidatesPerSeed, now)
	if err != nil {
		return nil, err
	}
	seen := scr.seen
	clear(seen)
	candidates := scr.ids[:0]
expand:
	for _, similar := range similarLists {
		for _, e := range similar {
			if excluded(e.ID) {
				continue
			}
			if _, dup := seen[e.ID]; dup {
				continue
			}
			seen[e.ID] = len(candidates)
			candidates = append(candidates, e.ID)
			if len(candidates) >= s.opts.MaxCandidates {
				break expand
			}
		}
	}

	// 3. Decide the hot merge *before* scoring so the re-score can join the
	// candidate batch. The ranked list's length is known without scores —
	// topn keeps min(N, len(candidates)) distinct entries — so the wanted
	// slot count (the HotShare reserve, or every slot MF cannot fill) is
	// computable now.
	model, err := s.Models.For(tableGroup)
	if err != nil {
		return nil, err
	}
	rankedLen := min(req.N, len(candidates))
	want := 0
	if s.opts.DemographicFiltering {
		want = int(s.opts.HotShare * float64(req.N))
		if deficit := req.N - rankedLen; deficit > want {
			want = deficit
		}
	}
	var hot []topn.Entry
	numCand := len(candidates)
	toScore := candidates
	hotIdx := scr.hotIdx[:0]
	if want > 0 {
		hot, err = s.hotFor(ctx, group, req.N+excludeLen, now)
		if err != nil {
			return nil, err
		}
		// Hot videos that are neither excluded nor already candidates may
		// be merged below; score them in the same batch. (Hot videos that
		// ARE candidates reuse their candidate score — Eq. 2 is per-item,
		// so the score is the same either way.) hotIdx remembers where each
		// hot entry's score will land so the merge needs no id→score map.
		for _, e := range hot {
			switch ci, dup := seen[e.ID]; {
			case excluded(e.ID):
				hotIdx = append(hotIdx, -1)
			case dup:
				hotIdx = append(hotIdx, ci)
			default:
				hotIdx = append(hotIdx, len(toScore))
				toScore = append(toScore, e.ID) // alloccheck: toScore extends the pooled scr.ids scratch
			}
		}
		scr.hotIdx = hotIdx
	}
	scr.ids = toScore[:0]

	// 4. Preference prediction (Eq. 2) over candidates and merge-eligible
	// hot videos only — the whole corpus is never scored — then ranking.
	scores, err := model.ScoreCandidates(ctx, req.UserID, toScore)
	if err != nil {
		return nil, err
	}
	if scr.ranked == nil || scr.ranked.Limit() != req.N {
		scr.ranked = topn.NewList(req.N)
	} else {
		scr.ranked.Reset()
	}
	ranked := scr.ranked
	for i := 0; i < numCand; i++ {
		ranked.Update(toScore[i], scores[i])
	}
	videos := ranked.All()

	// 5. Demographic filtering: reserve part of the list for the group's
	// hot videos, and fill every slot MF could not (new users get a full
	// hot list — the paper's cold-start answer). Merged entries carry their
	// model score so every entry's Score has one meaning: predicted
	// preference (Eq. 2). The merge order (popularity) is preserved — that
	// is the DB algorithm's ranking for its slots.
	hotMerged := 0
	if want > 0 {
		inList := scr.inList
		clear(inList)
		for _, e := range videos {
			inList[e.ID] = true
		}
		merged := scr.merged[:0]
		for i, e := range hot {
			if len(merged) == want {
				break
			}
			if hotIdx[i] < 0 || inList[e.ID] {
				continue
			}
			merged = append(merged, topn.Entry{ID: e.ID, Score: scores[hotIdx[i]]})
		}
		scr.merged = merged
		if keep := req.N - len(merged); len(videos) > keep {
			videos = videos[:keep]
		}
		videos = append(videos, merged...)
		hotMerged = len(merged)
	}

	// 6. Exploration re-rank (Options.Explore): rebuild the slate slot by
	// slot, each slot drawn by the bandit policy from one of three arms —
	// the MF-ranked list, the sim-table expansion in seed order, the
	// demographic hot list in popularity order. Every slot keeps its Eq. 2
	// score, so Score's meaning is unchanged; only the composition moves
	// with the posteriors. Pulls are charged to the arm that actually
	// filled the slot, and the slate's attributions replace the user's
	// previous breadcrumbs. Any storage error here propagates, so a failed
	// explore request falls into the same degraded fallback as any other
	// serving failure — and the fallback never samples.
	if s.policy != nil {
		st, err := s.Bandit.State(ctx)
		if err != nil {
			return nil, err
		}
		mf := videos[:len(videos)-hotMerged]
		inList := scr.inList
		clear(inList)
		explored := make([]topn.Entry, 0, req.N) // alloccheck: explored slate escapes into the Result (explore budget)
		arms := make([]bandit.Arm, 0, req.N)     // alloccheck: arm tags escape into the Result (explore budget)
		var cursors, pulls [bandit.NumArms]int
		s.policyMu.Lock()
		for len(explored) < req.N {
			filled := s.policy.Pick(&st)
			e, ok := armNext(filled, &cursors, inList, mf, hot, hotIdx, toScore, scores, numCand)
			for f := 0; f < bandit.NumArms && !ok; f++ {
				// Picked arm exhausted: fall through the arms in fixed
				// order so the slate still fills; the filling arm takes
				// the pull (it did the serving work).
				filled = bandit.Arm(f)
				e, ok = armNext(filled, &cursors, inList, mf, hot, hotIdx, toScore, scores, numCand)
			}
			if !ok {
				break // every pool dry: the slate is as long as it can be
			}
			inList[e.ID] = true
			explored = append(explored, e)
			arms = append(arms, filled)
			pulls[filled]++
		}
		s.policyMu.Unlock()
		if err := s.Bandit.RecordPulls(ctx, &pulls, now); err != nil {
			return nil, err
		}
		if err := s.Bandit.Attribute(ctx, req.UserID, explored, arms); err != nil {
			return nil, err
		}
		return &Result{ // alloccheck: the returned Result is the API contract (explore budget)
			Videos:     explored,
			Seeds:      len(seeds),
			Candidates: numCand,
			HotMerged:  pulls[bandit.ArmHot],
			Explored:   true,
			Arms:       arms,
		}, nil
	}

	return &Result{ // alloccheck: the returned Result is the API contract (warm budget)
		Videos:     videos,
		Seeds:      len(seeds),
		Candidates: numCand,
		HotMerged:  hotMerged,
	}, nil
}

// armNext returns arm a's next unserved slate entry, advancing its cursor
// past entries already in the slate (inList) or excluded from the pool.
// Pools: ArmMF walks the MF-ranked list, ArmSim walks the candidate
// expansion in seed order carrying its Eq. 2 score, ArmHot walks the hot
// list in popularity order carrying the score the fold assigned it
// (hotIdx < 0 marks hot entries the exclusion set removed). A package-level
// function rather than a closure: the explore loop calls it per slot inside
// the serving alloc budget.
func armNext(a bandit.Arm, cursors *[bandit.NumArms]int, inList map[string]bool,
	mf, hot []topn.Entry, hotIdx []int, toScore []string, scores []float64, numCand int) (topn.Entry, bool) {
	switch a {
	case bandit.ArmMF:
		for cursors[a] < len(mf) {
			e := mf[cursors[a]]
			cursors[a]++
			if !inList[e.ID] {
				return e, true
			}
		}
	case bandit.ArmSim:
		for cursors[a] < numCand {
			i := cursors[a]
			cursors[a]++
			if !inList[toScore[i]] {
				return topn.Entry{ID: toScore[i], Score: scores[i]}, true
			}
		}
	case bandit.ArmHot:
		for cursors[a] < len(hotIdx) {
			i := cursors[a]
			cursors[a]++
			if hotIdx[i] >= 0 && !inList[hot[i].ID] {
				return topn.Entry{ID: hot[i].ID, Score: scores[hotIdx[i]]}, true
			}
		}
	}
	return topn.Entry{}, false
}

// degraded builds the fallback response: the group's demographic hot list,
// filtered against whatever history is still readable (a failed history read
// only shrinks the exclusion set — re-serving a watched video beats serving
// an error) and against the video being watched. Everything it touches lives
// outside the model/simtable key namespace, so a total model outage leaves
// this path fully operational.
func (s *System) degraded(ctx context.Context, req Request, group string, now time.Time) (*Result, error) {
	_, histSet, histErr := s.History.Watched(ctx, req.UserID, s.opts.HistoryLimit)
	if histErr != nil {
		histSet = nil
	}
	hot, err := s.hotFor(ctx, group, req.N+len(histSet)+1, now)
	if err != nil {
		return nil, err
	}
	videos := make([]topn.Entry, 0, min(req.N, len(hot))) // alloccheck: degraded path, availability fallback
	for _, e := range hot {
		if histSet[e.ID] || e.ID == req.CurrentVideo {
			continue
		}
		videos = append(videos, e)
		if len(videos) == req.N {
			break
		}
	}
	// HotMerged covers the whole list: every slot came from demographic
	// filtering, none from MF ranking.
	return &Result{Videos: videos, HotMerged: len(videos), Degraded: true}, nil // alloccheck: degraded path, availability fallback
}

// hotFor fetches the group's hot list, falling back to the global group when
// the group has none — "for new unregistered users, we generate the hot
// videos of global demographic group".
func (s *System) hotFor(ctx context.Context, group string, k int, now time.Time) ([]topn.Entry, error) {
	if group != demographic.GlobalGroup {
		hot, err := s.Hot.Hot(ctx, group, k, now)
		if err != nil {
			return nil, err
		}
		if len(hot) > 0 {
			return hot, nil
		}
	}
	return s.Hot.Hot(ctx, demographic.GlobalGroup, k, now)
}

// RecommendIDs implements eval.Recommender over the history-seeded scenario.
func (s *System) RecommendIDs(ctx context.Context, userID string, n int) ([]string, error) {
	res, err := s.Recommend(ctx, Request{UserID: userID, N: n})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Videos))
	for i, e := range res.Videos {
		out[i] = e.ID
	}
	return out, nil
}

// EvalAdapter bridges a System into the ctx-free eval.Recommender interface
// the offline harness uses. Ctx is the run context every adapted call uses;
// a zero Ctx means context.Background() — acceptable for the offline
// harness, which sits outside the ctxcheck serving scope.
type EvalAdapter struct {
	S   *System
	Ctx context.Context
}

// Recommend implements eval.Recommender.
func (a EvalAdapter) Recommend(userID string, n int) ([]string, error) {
	ctx := a.Ctx
	if ctx == nil {
		// ctxcheck: offline-harness adapter; a zero Ctx means "no deadline"
		ctx = context.Background()
	}
	return a.S.RecommendIDs(ctx, userID, n)
}
