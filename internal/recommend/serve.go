package recommend

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/demographic"
	"vidrec/internal/topn"
)

// Request is one recommendation query.
type Request struct {
	// UserID identifies the requesting user (possibly unknown/unregistered).
	UserID string
	// CurrentVideo, when set, is the video the user is watching — the
	// "related videos" scenario of Figure 6(b). When empty, the user's
	// recent history seeds the expansion — "Guess you like", Figure 6(a).
	CurrentVideo string
	// N is the list length to return.
	N int
}

// Result is a ranked recommendation list with provenance counters.
type Result struct {
	// Videos is the final ranked list: predicted preference (Eq. 2)
	// descending for the MF-sourced part, followed by the demographic
	// hot-video merge.
	Videos []topn.Entry
	// Seeds is the number of seed videos used.
	Seeds int
	// Candidates is how many distinct candidates the similar tables and
	// the ANN probe (when Options.ANN is on) produced before ranking.
	Candidates int
	// HotMerged counts entries contributed by demographic filtering.
	HotMerged int
	// Degraded marks a fallback response: the personalized path failed on
	// storage errors and the list is the demographic hot list (filtered
	// against whatever history was still readable) instead of MF-ranked
	// candidates. Serving stayed up; quality, not availability, degraded.
	Degraded bool
	// Explored marks a slate re-ranked through the bandit policy
	// (Options.Explore). Degraded responses are never explored.
	Explored bool
	// Arms tags each slot of an explored slate with the candidate source
	// that filled it (parallel to Videos; nil unless Explored).
	Arms []bandit.Arm
	// Latency is the end-to-end serving time.
	Latency time.Duration
}

// markExcluded is the mark value for history/current-video exclusions;
// non-negative marks are candidate indexes into the toScore batch.
const markExcluded = -1

// serveScratch is per-request working memory recycled across Recommend calls
// through System.scratch. Nothing stored here may escape into a Result: ids
// are immutable string headers owned by the cache or the store decode, and
// every slice that escapes (the ranked list) is freshly allocated.
//
// Candidate bookkeeping runs on intern slots instead of string-keyed maps:
// ids are batch-resolved to dense slots once per source (one interner RLock
// per batch), and dedup/exclusion is a generation-stamped array lookup. The
// warm-path profile that motivated this showed the per-candidate map churn —
// hashing, assignment, growth — dominating the request; the mark arrays turn
// all of it into integer indexing.
type serveScratch struct {
	flat      []string // id scratch for batch slot resolution (sim entries, hot list)
	slots     []int32  // slot scratch parallel to flat (also: watched slots)
	ids       []string // the toScore batch: candidates, then merge-eligible hot
	candSlots []int32  // slots parallel to ids
	probe     []int32  // ANN probe output
	scores    []float64
	hot       []topn.Entry // hot-list scratch (damped copy-out target)
	marks     []int32      // per intern slot: markExcluded or candidate index
	markGen   []uint32     // generation stamp validating marks[slot]
	gen       uint32
	hotIdx    []int
	merged    []topn.Entry
	inList    map[string]bool
	ranker    *topn.Ranker // reused ranking scratch; rebuilt when req.N changes
}

// nextGen starts a fresh mark generation, clearing stamps on wrap so a
// four-billion-requests-old mark can never read as current.
func (scr *serveScratch) nextGen() {
	scr.gen++
	if scr.gen == 0 {
		clear(scr.markGen)
		scr.gen = 1
	}
}

// growMarks ensures the mark arrays cover slots [0, n). Backing beyond the
// copied prefix is freshly zeroed, and generation 0 is never current, so
// grown slots read as unmarked.
func (scr *serveScratch) growMarks(n int) {
	if n <= len(scr.marks) {
		return
	}
	if n <= cap(scr.marks) && n <= cap(scr.markGen) {
		scr.marks = scr.marks[:n]
		scr.markGen = scr.markGen[:n]
		return
	}
	marks := make([]int32, n, 2*n) // alloccheck: catalog-bounded grow-once; the pooled scratch is reused
	copy(marks, scr.marks)
	gens := make([]uint32, n, 2*n) // alloccheck: catalog-bounded grow-once; the pooled scratch is reused
	copy(gens, scr.markGen)
	scr.marks, scr.markGen = marks, gens
}

// Recommend runs the full Figure 1 pipeline for one request: the
// personalized path (seed expansion → Eq. 2 scoring → ranking → hot merge),
// and — when that path fails on storage errors and Options.DegradedFallback
// is on — the demographic fallback, which serves the group's hot list so the
// request degrades in quality instead of erroring. Validation failures never
// fall back, and if the fallback cannot be built either, the personalized
// path's error is the one returned.
//
// hotpath: the warm serving budget (18 allocs, sub-10µs quantized) is enforced from here
func (s *System) Recommend(ctx context.Context, req Request) (*Result, error) {
	start := s.wallClock()
	if req.N <= 0 {
		return nil, fmt.Errorf("recommend: N must be positive, got %d", req.N)
	}
	if req.UserID == "" {
		return nil, fmt.Errorf("recommend: user id must not be empty")
	}
	now := s.Now()
	group := s.groupOf(ctx, req.UserID)

	res, err := s.personalized(ctx, req, group, now)
	if err != nil && s.opts.DegradedFallback {
		if deg, derr := s.degraded(ctx, req, group, now); derr == nil {
			res, err = deg, nil
		}
	}
	if err != nil {
		return nil, err
	}
	elapsed := s.wallClock().Sub(start)
	s.Latency.Observe(elapsed)
	res.Latency = elapsed
	return res, nil
}

// personalized is the MF-ranked serving path.
//
// The store round trips are batched to a constant per request regardless of
// seed or candidate count: one history fetch serves both seeding and the
// exclusion set, all seeds' similar lists share one MGet (SimilarBatch), and
// candidate scoring plus the hot-merge re-score fold into a single scoring
// batch. Per-item scores under Eq. 2 are independent of what else is in the
// batch, so the folded call ranks identically to scoring the two sets
// separately; with the decoded-value cache warm the whole request runs with
// zero store round trips.
//
// Dedup and exclusion run on intern slots: watched videos are marked
// excluded up front (one batch resolve over the ~tens-deep history instead
// of a map probe per candidate), each candidate source's ids resolve in one
// batch, and admission is a mark-array read. Ranking uses topn.Ranker —
// List's semantics without its id map — because the batch is distinct by
// construction.
func (s *System) personalized(ctx context.Context, req Request, group string, now time.Time) (*Result, error) {
	scr, _ := s.scratch.Get().(*serveScratch)
	if scr == nil {
		scr = &serveScratch{inList: make(map[string]bool, 16)} // alloccheck: pool miss, cold start only
	}
	defer s.scratch.Put(scr)
	scr.nextGen()
	gen := scr.gen

	// 1. One history fetch serves every consumer: the prefix of the cached
	// video list seeds the expansion ("Guess you like") and the watched set
	// becomes the exclusion marks — never recommend anything the user
	// already watched; re-serving watched content wastes slots and triggers
	// fatigue. When a current video is given it is the sole seed and a
	// history fetch failure only shrinks the exclusion set (as before).
	watched, histSet, histErr := s.History.Watched(ctx, req.UserID, s.opts.HistoryLimit)
	var seeds []string
	if req.CurrentVideo != "" {
		seeds = []string{req.CurrentVideo} // alloccheck: single-element seed slice (warm budget)
	} else {
		if histErr != nil {
			return nil, histErr
		}
		seeds = watched
		if len(seeds) > s.opts.SeedCount {
			seeds = seeds[:s.opts.SeedCount]
		}
	}
	wslots := s.interner.Slots(watched, scr.slots[:0])
	scr.slots = wslots[:0]
	scr.growMarks(s.interner.Len())
	excludeLen := 0
	for _, sl := range wslots {
		if scr.markGen[sl] != gen {
			scr.markGen[sl] = gen
			scr.marks[sl] = markExcluded
			excludeLen++
		}
	}
	if excludeLen < len(histSet) {
		// The distinct-video view was truncated below the membership set (a
		// history limit above the serve window — non-default configs); fold
		// the remainder in so the exclusion still covers everything watched.
		// alloccheck: defensive fold-in for non-default history limits, never taken when the serve window equals the store limit (the default)
		for id := range histSet {
			sl := s.interner.Slot(id)
			scr.growMarks(s.interner.Len())
			if scr.markGen[sl] != gen {
				scr.markGen[sl] = gen
				scr.marks[sl] = markExcluded
			}
		}
		excludeLen = len(histSet)
	}
	if req.CurrentVideo != "" {
		sl := s.interner.Slot(req.CurrentVideo)
		scr.growMarks(s.interner.Len())
		if scr.markGen[sl] != gen {
			scr.markGen[sl] = gen
			scr.marks[sl] = markExcluded
			excludeLen++
		}
	}

	// 2. Candidate expansion through the group's similar-video tables
	// (fall back to the global tables when group training is off). All
	// seeds' lists arrive in one batched fetch; their ids resolve to slots
	// in one batched intern pass; dedup preserves seed order.
	tableGroup := group
	if !s.opts.DemographicTraining {
		tableGroup = demographic.GlobalGroup
	}
	tables, err := s.Tables.For(tableGroup)
	if err != nil {
		return nil, err
	}
	flat, err := tables.SimilarIDs(ctx, seeds, s.opts.CandidatesPerSeed, now, scr.flat[:0])
	if err != nil {
		return nil, err
	}
	scr.flat = flat
	slots := s.interner.Slots(flat, scr.slots[:0])
	scr.growMarks(s.interner.Len())
	candidates := scr.ids[:0]
	candSlots := scr.candSlots[:0]
	for i, id := range flat {
		sl := slots[i]
		if scr.markGen[sl] == gen {
			continue // excluded, or already a candidate
		}
		scr.markGen[sl] = gen
		scr.marks[sl] = int32(len(candidates))
		candidates = append(candidates, id)
		candSlots = append(candSlots, sl) // alloccheck: grow-once; candSlots extends the pooled scratch
		if len(candidates) >= s.opts.MaxCandidates {
			break
		}
	}
	scr.flat = flat[:0]
	scr.slots = slots[:0]

	// 2b. ANN retrieval (Options.ANN): probe the LSH index with the user's
	// global factor vector and append whatever the matching buckets hold,
	// after the sim expansion and under the same candidate cap. The probe
	// returns slots — cross-table duplicates included — and the mark array
	// absorbs them like any other dup. Unknown users skip the probe: their
	// cold-start vector would hash to arbitrary buckets.
	annStart := len(candidates)
	if s.annIndex != nil && len(candidates) < s.opts.MaxCandidates {
		uvec, _, known, err := s.global.UserVector(ctx, req.UserID)
		if err != nil {
			return nil, err
		}
		if known {
			probe := s.annIndex.Probe(uvec, scr.probe)
			scr.probe = probe
			pids := s.interner.IDs(probe, scr.flat[:0])
			scr.flat = pids[:0]
			scr.growMarks(s.interner.Len())
			for i, sl := range probe {
				if scr.markGen[sl] == gen {
					continue
				}
				scr.markGen[sl] = gen
				scr.marks[sl] = int32(len(candidates))
				candidates = append(candidates, pids[i])
				candSlots = append(candSlots, sl)
				if len(candidates) >= s.opts.MaxCandidates {
					break
				}
			}
		}
	}

	// 3. Decide the hot merge *before* scoring so the re-score can join the
	// candidate batch. The ranked list's length is known without scores —
	// the ranker keeps min(N, len(candidates)) distinct entries — so the
	// wanted slot count (the HotShare reserve, or every slot MF cannot
	// fill) is computable now.
	model, err := s.Models.For(tableGroup)
	if err != nil {
		return nil, err
	}
	rankedLen := min(req.N, len(candidates))
	want := 0
	if s.opts.DemographicFiltering {
		want = int(s.opts.HotShare * float64(req.N))
		if deficit := req.N - rankedLen; deficit > want {
			want = deficit
		}
	}
	var hot []topn.Entry
	numCand := len(candidates)
	toScore := candidates
	toScoreSlots := candSlots
	hotIdx := scr.hotIdx[:0]
	if want > 0 {
		hot, err = s.hotFor(ctx, group, req.N+excludeLen, now, scr.hot[:0])
		scr.hot = hot[:0]
		if err != nil {
			return nil, err
		}
		// Hot videos that are neither excluded nor already candidates may
		// be merged below; score them in the same batch. (Hot videos that
		// ARE candidates reuse their candidate score — Eq. 2 is per-item,
		// so the score is the same either way.) hotIdx remembers where each
		// hot entry's score will land so the merge needs no id→score map.
		flat = scr.flat[:0]
		for _, e := range hot {
			flat = append(flat, e.ID)
		}
		slots = s.interner.Slots(flat, scr.slots[:0])
		scr.flat, scr.slots = flat[:0], slots[:0]
		scr.growMarks(s.interner.Len())
		for i := range hot {
			sl := slots[i]
			switch {
			case scr.markGen[sl] == gen && scr.marks[sl] == markExcluded:
				hotIdx = append(hotIdx, -1)
			case scr.markGen[sl] == gen:
				hotIdx = append(hotIdx, int(scr.marks[sl]))
			default:
				hotIdx = append(hotIdx, len(toScore))
				toScore = append(toScore, hot[i].ID) // alloccheck: toScore extends the pooled scr.ids scratch
				toScoreSlots = append(toScoreSlots, sl)
			}
		}
		scr.hotIdx = hotIdx
	}
	scr.ids = toScore[:0]
	scr.candSlots = toScoreSlots[:0]

	// 4. Preference prediction (Eq. 2) over candidates and merge-eligible
	// hot videos only — the whole corpus is never scored — then ranking.
	// Quantized models score from the int8 record table through the batch's
	// already-resolved slots; float models take the decoded-vector path.
	// Both paths rank through the same allocation-free Ranker, whose
	// admission semantics are pinned equal to topn.List's.
	var scores []float64
	if model.Quantized() {
		scores, err = model.ScoreCandidatesQ8(ctx, req.UserID, toScore, toScoreSlots, scr.scores)
		if err != nil {
			return nil, err
		}
		scr.scores = scores
	} else {
		scores, err = model.ScoreCandidates(ctx, req.UserID, toScore)
		if err != nil {
			return nil, err
		}
	}
	if scr.ranker == nil || scr.ranker.Limit() != req.N {
		scr.ranker = topn.NewRanker(req.N)
	} else {
		scr.ranker.Reset()
	}
	ranker := scr.ranker
	for i := 0; i < numCand; i++ {
		ranker.Push(toScore[i], scores[i])
	}
	videos := ranker.All()

	// 5. Demographic filtering: reserve part of the list for the group's
	// hot videos, and fill every slot MF could not (new users get a full
	// hot list — the paper's cold-start answer). Merged entries carry their
	// model score so every entry's Score has one meaning: predicted
	// preference (Eq. 2). The merge order (popularity) is preserved — that
	// is the DB algorithm's ranking for its slots.
	hotMerged := 0
	if want > 0 {
		inList := scr.inList
		clear(inList)
		for _, e := range videos {
			inList[e.ID] = true
		}
		merged := scr.merged[:0]
		for i, e := range hot {
			if len(merged) == want {
				break
			}
			if hotIdx[i] < 0 || inList[e.ID] {
				continue
			}
			merged = append(merged, topn.Entry{ID: e.ID, Score: scores[hotIdx[i]]})
		}
		scr.merged = merged
		if keep := req.N - len(merged); len(videos) > keep {
			videos = videos[:keep]
		}
		videos = append(videos, merged...)
		hotMerged = len(merged)
	}

	// 6. Exploration re-rank (Options.Explore): rebuild the slate slot by
	// slot, each slot drawn by the bandit policy from one of the arms —
	// the MF-ranked list, the sim-table expansion in seed order, the
	// demographic hot list in popularity order, the ANN probe in bucket
	// order. Every slot keeps its Eq. 2 score, so Score's meaning is
	// unchanged; only the composition moves with the posteriors. Pulls are
	// charged to the arm that actually filled the slot, and the slate's
	// attributions replace the user's previous breadcrumbs. Any storage
	// error here propagates, so a failed explore request falls into the
	// same degraded fallback as any other serving failure — and the
	// fallback never samples.
	if s.policy != nil {
		st, err := s.Bandit.State(ctx)
		if err != nil {
			return nil, err
		}
		mf := videos[:len(videos)-hotMerged]
		inList := scr.inList
		clear(inList)
		explored := make([]topn.Entry, 0, req.N) // alloccheck: explored slate escapes into the Result (explore budget)
		arms := make([]bandit.Arm, 0, req.N)     // alloccheck: arm tags escape into the Result (explore budget)
		var cursors, pulls [bandit.NumArms]int
		s.policyMu.Lock()
		for len(explored) < req.N {
			filled := s.policy.Pick(&st)
			e, ok := armNext(filled, &cursors, inList, mf, hot, hotIdx, toScore, scores, annStart, numCand)
			for f := 0; f < bandit.NumArms && !ok; f++ {
				// Picked arm exhausted: fall through the arms in fixed
				// order so the slate still fills; the filling arm takes
				// the pull (it did the serving work).
				filled = bandit.Arm(f)
				e, ok = armNext(filled, &cursors, inList, mf, hot, hotIdx, toScore, scores, annStart, numCand)
			}
			if !ok {
				break // every pool dry: the slate is as long as it can be
			}
			inList[e.ID] = true
			explored = append(explored, e)
			arms = append(arms, filled)
			pulls[filled]++
		}
		s.policyMu.Unlock()
		if err := s.Bandit.RecordPulls(ctx, &pulls, now); err != nil {
			return nil, err
		}
		if err := s.Bandit.Attribute(ctx, req.UserID, explored, arms); err != nil {
			return nil, err
		}
		return &Result{ // alloccheck: the returned Result is the API contract (explore budget)
			Videos:     explored,
			Seeds:      len(seeds),
			Candidates: numCand,
			HotMerged:  pulls[bandit.ArmHot],
			Explored:   true,
			Arms:       arms,
		}, nil
	}

	return &Result{ // alloccheck: the returned Result is the API contract (warm budget)
		Videos:     videos,
		Seeds:      len(seeds),
		Candidates: numCand,
		HotMerged:  hotMerged,
	}, nil
}

// armNext returns arm a's next unserved slate entry, advancing its cursor
// past entries already in the slate (inList) or excluded from the pool.
// Pools: ArmMF walks the MF-ranked list, ArmSim walks the similar-table
// expansion in seed order carrying its Eq. 2 score (candidates [0, annStart)),
// ArmANN walks the ANN-probed candidates in bucket order ([annStart,
// numCand)), ArmHot walks the hot list in popularity order carrying the score
// the fold assigned it (hotIdx < 0 marks hot entries the exclusion set
// removed). A package-level function rather than a closure: the explore loop
// calls it per slot inside the serving alloc budget.
func armNext(a bandit.Arm, cursors *[bandit.NumArms]int, inList map[string]bool,
	mf, hot []topn.Entry, hotIdx []int, toScore []string, scores []float64, annStart, numCand int) (topn.Entry, bool) {
	switch a {
	case bandit.ArmMF:
		for cursors[a] < len(mf) {
			e := mf[cursors[a]]
			cursors[a]++
			if !inList[e.ID] {
				return e, true
			}
		}
	case bandit.ArmSim:
		for cursors[a] < annStart {
			i := cursors[a]
			cursors[a]++
			if !inList[toScore[i]] {
				return topn.Entry{ID: toScore[i], Score: scores[i]}, true
			}
		}
	case bandit.ArmANN:
		for annStart+cursors[a] < numCand {
			i := annStart + cursors[a]
			cursors[a]++
			if !inList[toScore[i]] {
				return topn.Entry{ID: toScore[i], Score: scores[i]}, true
			}
		}
	case bandit.ArmHot:
		for cursors[a] < len(hotIdx) {
			i := cursors[a]
			cursors[a]++
			if hotIdx[i] >= 0 && !inList[hot[i].ID] {
				return topn.Entry{ID: hot[i].ID, Score: scores[hotIdx[i]]}, true
			}
		}
	}
	return topn.Entry{}, false
}

// degraded builds the fallback response: the group's demographic hot list,
// filtered against whatever history is still readable (a failed history read
// only shrinks the exclusion set — re-serving a watched video beats serving
// an error) and against the video being watched. Everything it touches lives
// outside the model/simtable key namespace, so a total model outage leaves
// this path fully operational.
func (s *System) degraded(ctx context.Context, req Request, group string, now time.Time) (*Result, error) {
	_, histSet, histErr := s.History.Watched(ctx, req.UserID, s.opts.HistoryLimit)
	if histErr != nil {
		histSet = nil
	}
	hot, err := s.hotFor(ctx, group, req.N+len(histSet)+1, now, nil)
	if err != nil {
		return nil, err
	}
	videos := make([]topn.Entry, 0, min(req.N, len(hot))) // alloccheck: degraded path, availability fallback
	for _, e := range hot {
		if histSet[e.ID] || e.ID == req.CurrentVideo {
			continue
		}
		videos = append(videos, e)
		if len(videos) == req.N {
			break
		}
	}
	// HotMerged covers the whole list: every slot came from demographic
	// filtering, none from MF ranking.
	return &Result{Videos: videos, HotMerged: len(videos), Degraded: true}, nil // alloccheck: degraded path, availability fallback
}

// hotFor fetches the group's hot list into dst (pooled scratch on the warm
// path, nil from the degraded fallback), falling back to the global group
// when the group has none — "for new unregistered users, we generate the hot
// videos of global demographic group".
func (s *System) hotFor(ctx context.Context, group string, k int, now time.Time, dst []topn.Entry) ([]topn.Entry, error) {
	if group != demographic.GlobalGroup {
		hot, err := s.Hot.HotInto(ctx, group, k, now, dst)
		if err != nil {
			return nil, err
		}
		if len(hot) > 0 {
			return hot, nil
		}
		dst = hot
	}
	return s.Hot.HotInto(ctx, demographic.GlobalGroup, k, now, dst)
}

// RecommendIDs implements eval.Recommender over the history-seeded scenario.
func (s *System) RecommendIDs(ctx context.Context, userID string, n int) ([]string, error) {
	res, err := s.Recommend(ctx, Request{UserID: userID, N: n})
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Videos))
	for i, e := range res.Videos {
		out[i] = e.ID
	}
	return out, nil
}

// EvalAdapter bridges a System into the ctx-free eval.Recommender interface
// the offline harness uses. Ctx is the run context every adapted call uses;
// a zero Ctx means context.Background() — acceptable for the offline
// harness, which sits outside the ctxcheck serving scope.
type EvalAdapter struct {
	S   *System
	Ctx context.Context
}

// Recommend implements eval.Recommender.
func (a EvalAdapter) Recommend(userID string, n int) ([]string, error) {
	ctx := a.Ctx
	if ctx == nil {
		// ctxcheck: offline-harness adapter; a zero Ctx means "no deadline"
		ctx = context.Background()
	}
	return a.S.RecommendIDs(ctx, userID, n)
}
