// Package recommend implements real-time top-N recommendation generation
// (§4.1, Figure 1): receive a request, pick seed videos (the video being
// watched, or the user's recent history), expand seeds into candidates
// through the similar-video tables, score candidates with the MF model
// (Eq. 2), and rank — with the demographic-filtering merge of §5.2.1
// broadening the list and covering cold-start users.
//
// The package also provides the sequential ingest path (System.Ingest): the
// same state transitions the Figure 2 topology performs, applied inline.
// Offline experiments use it to train without stream-processing overhead;
// the topology package wires the identical component calls into Storm bolts.
package recommend

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"vidrec/internal/ann"
	"vidrec/internal/bandit"
	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/history"
	"vidrec/internal/intern"
	"vidrec/internal/kvstore"
	"vidrec/internal/metrics"
	"vidrec/internal/objcache"
	"vidrec/internal/simtable"
)

// Options configure the recommendation pipeline.
type Options struct {
	// SeedCount is how many recent history videos seed candidate expansion
	// when no current video is given ("Guess you like").
	SeedCount int
	// CandidatesPerSeed bounds the similar videos fetched per seed.
	CandidatesPerSeed int
	// MaxCandidates bounds the total candidate set — the paper's key
	// real-time constraint: never score the whole video corpus.
	MaxCandidates int
	// HotShare is the fraction of each list reserved for demographic hot
	// videos (§5.2.1's diversity merge); hot videos also fill any slots
	// the MF path cannot, which is the whole list for brand-new users.
	HotShare float64
	// HistoryLimit bounds stored per-user history.
	HistoryLimit int
	// PairWindow is how many recent history videos pair with each new
	// action for similar-table updates (the GetItemPairs bolt).
	PairWindow int
	// DemographicTraining enables per-group models and tables (§5.2.2) in
	// addition to the global ones.
	DemographicTraining bool
	// DemographicFiltering enables the hot-video merge (§5.2.1).
	DemographicFiltering bool
	// HotHalfLife is the popularity decay of the demographic hot lists.
	HotHalfLife time.Duration
	// HotCapacity bounds each group's hot list.
	HotCapacity int
	// CacheCapacity sizes the decoded-value read cache every component
	// reads through (objcache): 0 selects objcache.DefaultCapacity,
	// negative disables the cache entirely. Disabling never changes
	// results — write-through invalidation keeps cached reads coherent —
	// only latency.
	CacheCapacity int
	// DegradedFallback serves the demographic hot list (marked
	// Result.Degraded) when the personalized path fails on storage errors,
	// instead of failing the request — the serving tier's last line of
	// defense when the model/simtable namespace is unreachable. Validation
	// errors never fall back, and when the fallback itself cannot be built
	// the original personalized-path error surfaces.
	DegradedFallback bool
	// Explore re-ranks the final slate through a bandit policy over the
	// blended candidate sources (MF rank, sim-table expansion, demographic
	// hot), records per-arm pulls and slate attributions, and feeds implicit
	// rewards back into the policy's posteriors — the paper title's
	// exploration, as an online-matching bandit. Degraded responses never
	// explore: the fallback path serves exactly as before.
	Explore bool
	// ExplorePolicy selects the bandit policy: bandit.PolicyThompson
	// (default when empty) or bandit.PolicyEpsilonGreedy.
	ExplorePolicy string
	// ExploreEpsilon is epsilon-greedy's exploration fraction in [0,1].
	// Ignored by Thompson sampling.
	ExploreEpsilon float64
	// ExploreSeed seeds the policy's RNG. Equal seeds over equal reward
	// histories replay identical explored slates — the determinism contract
	// the golden explored slate and the sim digests pin.
	ExploreSeed uint64
	// Quantized serves Eq. 2 scores from int8-quantized item records
	// (core.Model's dense record table) instead of float64 vectors: every
	// item publish additionally writes one compact scale+bias+int8 record,
	// and scoring runs integer dot products over a slot-indexed in-memory
	// table. Items trained before the switch fall back to quantizing their
	// float parameters on first read. The eval tier pins the recall cost of
	// the quantization at ≤ 2%.
	Quantized bool
	// ANN adds a third candidate source beside the similar-table expansion
	// and the hot list: a random-hyperplane LSH index over the global
	// model's item factor vectors, maintained incrementally on every item
	// publish and probed with the user's global factor vector. Explored
	// slates expose it as the "ann" bandit arm.
	ANN bool
	// ANNTables and ANNBits size the LSH index (0 selects ann's defaults);
	// ANNSeed derives its hyperplanes deterministically.
	ANNTables int
	ANNBits   int
	ANNSeed   uint64
}

// DefaultOptions returns production-shaped settings.
func DefaultOptions() Options {
	return Options{
		SeedCount:         5,
		CandidatesPerSeed: 20,
		MaxCandidates:     200,
		HotShare:          0.2,
		// HistoryLimit doubles as the re-recommendation dedup window;
		// keep it deep enough that active users don't get re-served
		// videos they watched earlier in the week.
		HistoryLimit:         200,
		PairWindow:           8,
		DemographicTraining:  true,
		DemographicFiltering: true,
		HotHalfLife:          24 * time.Hour,
		HotCapacity:          100,
		DegradedFallback:     true,
		ExploreEpsilon:       0.1,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case o.SeedCount <= 0:
		return fmt.Errorf("recommend: SeedCount must be positive, got %d", o.SeedCount)
	case o.CandidatesPerSeed <= 0:
		return fmt.Errorf("recommend: CandidatesPerSeed must be positive, got %d", o.CandidatesPerSeed)
	case o.MaxCandidates <= 0:
		return fmt.Errorf("recommend: MaxCandidates must be positive, got %d", o.MaxCandidates)
	case o.HotShare < 0 || o.HotShare > 1:
		return fmt.Errorf("recommend: HotShare must be in [0,1], got %v", o.HotShare)
	case o.HistoryLimit <= 0:
		return fmt.Errorf("recommend: HistoryLimit must be positive, got %d", o.HistoryLimit)
	case o.PairWindow <= 0:
		return fmt.Errorf("recommend: PairWindow must be positive, got %d", o.PairWindow)
	case o.HotHalfLife <= 0:
		return fmt.Errorf("recommend: HotHalfLife must be positive, got %v", o.HotHalfLife)
	case o.HotCapacity <= 0:
		return fmt.Errorf("recommend: HotCapacity must be positive, got %d", o.HotCapacity)
	}
	if o.Explore {
		switch o.ExplorePolicy {
		case "", bandit.PolicyThompson, bandit.PolicyEpsilonGreedy:
		default:
			return fmt.Errorf("recommend: unknown ExplorePolicy %q", o.ExplorePolicy)
		}
		if math.IsNaN(o.ExploreEpsilon) || o.ExploreEpsilon < 0 || o.ExploreEpsilon > 1 {
			return fmt.Errorf("recommend: ExploreEpsilon must be in [0,1], got %v", o.ExploreEpsilon)
		}
	}
	if o.ANN {
		if o.ANNTables < 0 {
			return fmt.Errorf("recommend: ANNTables must not be negative, got %d", o.ANNTables)
		}
		if o.ANNBits < 0 || o.ANNBits > 32 {
			return fmt.Errorf("recommend: ANNBits must be in [0,32], got %d", o.ANNBits)
		}
	}
	return nil
}

// System bundles every pipeline component over one shared key-value store.
type System struct {
	kv       kvstore.Store
	opts     Options
	weights  feedback.Weights
	Catalog  *catalog.Catalog
	Profiles *demographic.Profiles
	History  *history.Store
	Models   *demographic.ModelSet
	Tables   *demographic.TableSet
	Hot      *demographic.HotTracker
	// Bandit persists the exploration layer's reward state and slate
	// attributions. Always constructed; only an Options.Explore system
	// writes to it.
	Bandit *bandit.Store
	// Latency records end-to-end serving latencies for every Recommend
	// call (the paper's milliseconds-latency production claim is a tail
	// statement; see metrics.Histogram).
	Latency metrics.Histogram

	// policy is the bandit policy re-ranking slates (nil unless
	// Options.Explore). policyMu serializes its RNG: one slate's picks are
	// an atomic run of draws, so concurrent serving stays valid and
	// serialized serving stays byte-deterministic.
	policy   bandit.Policy
	policyMu sync.Mutex

	// cache is the decoded-value read cache shared by every component
	// (nil when Options.CacheCapacity < 0). kv is wrapped so all writes
	// invalidate it.
	cache *objcache.Cache

	// interner maps item ids to dense int32 slots shared by the serving
	// scratch (mark arrays), the quantized record tables, and the ANN
	// index — one string-hash per id per batch instead of per structure.
	interner *intern.Table
	// annIndex is the LSH candidate source (nil unless Options.ANN). It is
	// fed by the global model's item-vector hook, so it tracks every item
	// publish — Ingest's and the topology's alike.
	annIndex *ann.Index
	// global is the global-group model, resolved eagerly: the ANN probe
	// uses its user vectors, and wiring its hook must precede traffic.
	global *core.Model

	// scratch recycles per-request serving buffers (*serveScratch); see
	// Recommend. A pooled scratch is owned by exactly one request at a time.
	scratch sync.Pool

	clock func() time.Time
	now   time.Time
	// wallClock times Recommend calls for the Latency histogram. Unlike
	// clock (the model's notion of "now", which follows the replayed
	// stream), wallClock measures real serving work; the simulation harness
	// swaps in a virtual clock so latency accounting is deterministic.
	wallClock func() time.Time
}

// NewSystem assembles a recommendation system on the given store. Unless
// Options.CacheCapacity is negative, the store is wrapped with a decoded-value
// read cache (objcache.WrapStore) before any component sees it, so every
// write path — ingest, topology bolts, direct component calls — invalidates
// the cache and reads stay coherent.
func NewSystem(kv kvstore.Store, params core.Params, simCfg simtable.Config, opts Options) (*System, error) {
	if kv == nil {
		return nil, fmt.Errorf("recommend: store must not be nil")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var cache *objcache.Cache
	if opts.CacheCapacity >= 0 {
		cache = objcache.New(opts.CacheCapacity)
		kv = objcache.WrapStore(kv, cache)
	}
	cat, err := catalog.New("sys", kv)
	if err != nil {
		return nil, err
	}
	profiles, err := demographic.NewProfiles("sys", kv)
	if err != nil {
		return nil, err
	}
	hist, err := history.New("sys", kv, opts.HistoryLimit)
	if err != nil {
		return nil, err
	}
	models, err := demographic.NewModelSet("sys", kv, params)
	if err != nil {
		return nil, err
	}
	tables, err := demographic.NewTableSet("sys", kv, simCfg)
	if err != nil {
		return nil, err
	}
	hot, err := demographic.NewHotTracker("sys", kv, opts.HotHalfLife, opts.HotCapacity)
	if err != nil {
		return nil, err
	}
	bd, err := bandit.New("sys", kv)
	if err != nil {
		return nil, err
	}
	cat.SetCache(cache)
	profiles.SetCache(cache)
	hist.SetCache(cache)
	models.SetCache(cache)
	tables.SetCache(cache)
	hot.SetCache(cache)
	bd.SetCache(cache)
	interner := intern.New()
	if opts.Quantized {
		models.EnableQuantized(interner)
	}
	// The global model is resolved eagerly: its item-vector hook (the ANN
	// feed) and quantized table must exist before the first write, whether
	// that write comes from Ingest or a topology bolt.
	global, err := models.For(demographic.GlobalGroup)
	if err != nil {
		return nil, err
	}
	var annIndex *ann.Index
	if opts.ANN {
		annIndex, err = ann.New(ann.Config{
			Dims:   params.Factors,
			Tables: opts.ANNTables,
			Bits:   opts.ANNBits,
			Seed:   opts.ANNSeed,
		}, interner)
		if err != nil {
			return nil, err
		}
		global.SetItemVectorHook(annIndex.Upsert)
	}
	var policy bandit.Policy
	if opts.Explore {
		switch opts.ExplorePolicy {
		case bandit.PolicyEpsilonGreedy:
			policy = bandit.NewEpsilonGreedy(opts.ExploreSeed, opts.ExploreEpsilon)
		default: // "" and bandit.PolicyThompson — Validate rejected the rest
			policy = bandit.NewThompson(opts.ExploreSeed)
		}
	}
	return &System{
		kv:       kv,
		opts:     opts,
		weights:  params.Weights,
		Catalog:  cat,
		Profiles: profiles,
		History:  hist,
		Models:   models,
		Tables:   tables,
		Hot:      hot,
		Bandit:   bd,
		cache:    cache,
		interner: interner,
		annIndex: annIndex,
		global:   global,
		policy:   policy,
		// clockcheck: default wall clock; tests and the sim use SetWallClock.
		wallClock: time.Now,
	}, nil
}

// ANN returns the LSH candidate index, or nil when Options.ANN is off.
func (s *System) ANN() *ann.Index { return s.annIndex }

// FlushCaches empties every decoded-value cache and every model's quantized
// record table — the benchmark's cold-serving drill. A plain Cache().Flush()
// only covers the float path; the quantized tables resolve through their own
// read-through and need their own flush to measure a true cold request.
func (s *System) FlushCaches() {
	if s.cache != nil {
		s.cache.Flush()
	}
	for _, g := range s.Models.Groups() {
		if m, err := s.Models.For(g); err == nil {
			m.FlushQ8()
		}
	}
}

// Cache returns the system's decoded-value read cache, or nil when disabled
// (Options.CacheCapacity < 0). Benchmarks flush it to measure cold-cache
// serving; operators snapshot it for hit-rate telemetry.
func (s *System) Cache() *objcache.Cache { return s.cache }

// Options returns the system configuration.
func (s *System) Options() Options { return s.opts }

// Weights returns the implicit-feedback confidence settings in force.
func (s *System) Weights() feedback.Weights { return s.weights }

// SetClock installs a time source for recommendation requests. Without one,
// the system uses the timestamp of the latest ingested action — the natural
// "now" of a replayed stream.
func (s *System) SetClock(fn func() time.Time) { s.clock = fn }

// SetWallClock installs the time source used to measure serving latency.
// The default is the real wall clock; the simulation harness injects its
// virtual clock so the Latency histogram is a deterministic function of the
// scenario. A nil fn restores the default.
func (s *System) SetWallClock(fn func() time.Time) {
	if fn == nil {
		// clockcheck: restoring the default wall clock for latency measurement.
		fn = time.Now
	}
	s.wallClock = fn
}

// Now returns the system's current notion of time.
func (s *System) Now() time.Time {
	if s.clock != nil {
		return s.clock()
	}
	return s.now
}

func (s *System) groupOf(ctx context.Context, userID string) string {
	g, err := s.Profiles.GroupOf(ctx, userID)
	if err != nil || g == "" {
		return demographic.GlobalGroup
	}
	return g
}

// Ingest applies one user action to all pipeline state — the sequential
// equivalent of the Figure 2 topology: MF update (ComputeMF/MFStorage),
// history append (UserHistory), similar-table refresh (GetItemPairs/
// ItemPairSim/ResultStorage), and hot-list heating for demographic
// filtering.
func (s *System) Ingest(ctx context.Context, a feedback.Action) error {
	if a.Timestamp.After(s.now) {
		s.now = a.Timestamp
	}
	group := s.groupOf(ctx, a.UserID)

	// Model updates: global always; the user's group additionally when
	// demographic training is on.
	global, err := s.Models.For(demographic.GlobalGroup)
	if err != nil {
		return err
	}
	if _, err := global.ProcessAction(ctx, a); err != nil {
		return err
	}
	groupModel := global
	if s.opts.DemographicTraining && group != demographic.GlobalGroup {
		groupModel, err = s.Models.For(group)
		if err != nil {
			return err
		}
		if _, err := groupModel.ProcessAction(ctx, a); err != nil {
			return err
		}
	}

	weight := s.weights.Weight(a)
	if weight <= 0 {
		return nil // impressions update nothing beyond the global mean
	}

	// Exploration reward loop (sequential path; the topology's BanditReward/
	// BanditState bolts are the streaming equivalent): if this action lands
	// on a slot of the user's attributed explored slate, credit the arm that
	// filled it with the action's confidence, scaled into [0,1].
	if s.policy != nil {
		arm, ok, err := s.Bandit.Take(ctx, a.UserID, a.VideoID)
		if err != nil {
			return err
		}
		if ok {
			ev := bandit.RewardEvent{Arm: arm, Reward: bandit.RewardFromWeight(weight), TsMs: a.Timestamp.UnixMilli()}
			if err := s.Bandit.Reward(ctx, ev); err != nil {
				return err
			}
		}
	}

	if err := s.Hot.Record(ctx, demographic.GlobalGroup, a.VideoID, weight, a.Timestamp); err != nil {
		return err
	}
	if s.opts.DemographicFiltering && group != demographic.GlobalGroup {
		if err := s.Hot.Record(ctx, group, a.VideoID, weight, a.Timestamp); err != nil {
			return err
		}
	}

	// Pair generation needs the history *before* this action joins it.
	recent, err := s.History.RecentVideos(ctx, a.UserID, s.opts.PairWindow)
	if err != nil {
		return err
	}
	if err := s.History.Append(ctx, a.UserID, a.VideoID, a.Timestamp); err != nil {
		return err
	}
	for _, pair := range simtable.Pairs(a.VideoID, recent) {
		if err := s.updatePair(ctx, groupModel, group, pair[0], pair[1], a.Timestamp); err != nil {
			return err
		}
	}
	return nil
}

// updatePair recomputes one touched pair's similarity and writes it in both
// directions into the group's tables (and the global tables when they
// differ).
func (s *System) updatePair(ctx context.Context, model *core.Model, group, i, j string, ts time.Time) error {
	tables, err := s.Tables.For(group)
	if err != nil {
		return err
	}
	score, err := tables.PairScore(ctx, model, s.Catalog, i, j)
	if err != nil {
		return err
	}
	if err := tables.UpdateDirected(ctx, i, j, score, ts); err != nil {
		return err
	}
	if err := tables.UpdateDirected(ctx, j, i, score, ts); err != nil {
		return err
	}
	if group == demographic.GlobalGroup || !s.opts.DemographicTraining {
		return nil
	}
	globalTables, err := s.Tables.For(demographic.GlobalGroup)
	if err != nil {
		return err
	}
	globalModel, err := s.Models.For(demographic.GlobalGroup)
	if err != nil {
		return err
	}
	gscore, err := globalTables.PairScore(ctx, globalModel, s.Catalog, i, j)
	if err != nil {
		return err
	}
	if err := globalTables.UpdateDirected(ctx, i, j, gscore, ts); err != nil {
		return err
	}
	return globalTables.UpdateDirected(ctx, j, i, gscore, ts)
}
