package recommend

// Failure-injection tests: the pipeline must surface storage-tier errors
// cleanly (no panics, no silent corruption) and resume once the store
// recovers — the behaviour a degraded distributed KV deployment demands.

import (
	"context"
	"errors"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

func faultySystem(t *testing.T) (*System, *kvstore.Faulty) {
	t.Helper()
	faulty := kvstore.NewFaulty(kvstore.NewLocal(16), 7)
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := NewSystem(faulty, params, simtable.DefaultConfig(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys, faulty
}

func TestIngestSurfacesStoreErrors(t *testing.T) {
	sys, faulty := faultySystem(t)
	sys.Catalog.Put(context.Background(), catalog.Video{ID: "v", Type: "t", Length: time.Minute})
	faulty.SetFailRate(1)
	err := sys.Ingest(context.Background(), watch("u1", "v", 0))
	if err == nil {
		t.Fatal("Ingest swallowed a total store outage")
	}
	if !errors.Is(err, kvstore.ErrInjected) {
		t.Errorf("error does not wrap the injected fault: %v", err)
	}
}

func TestRecommendSurfacesStoreErrors(t *testing.T) {
	sys, faulty := faultySystem(t)
	sys.Catalog.Put(context.Background(), catalog.Video{ID: "v", Type: "t", Length: time.Minute})
	if err := sys.Ingest(context.Background(), watch("u1", "v", 0)); err != nil {
		t.Fatal(err)
	}
	faulty.SetFailRate(1)
	if _, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 5}); err == nil {
		t.Fatal("Recommend swallowed a total store outage")
	}
}

func TestPipelineRecoversAfterOutage(t *testing.T) {
	sys, faulty := faultySystem(t)
	for _, v := range []string{"a", "b", "c"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: v, Type: "movie", Length: time.Minute})
	}
	// Healthy warmup.
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		sys.Ingest(context.Background(), watch(u, "a", min))
		sys.Ingest(context.Background(), watch(u, "b", min+1))
		min += 2
	}
	// Outage: ingest fails, counted.
	faulty.SetFailRate(1)
	if err := sys.Ingest(context.Background(), watch("u4", "a", min)); err == nil {
		t.Fatal("outage ingest succeeded")
	}
	if faulty.Injected() == 0 {
		t.Fatal("no faults recorded")
	}
	// Recovery: the same action applies cleanly and serving works again.
	faulty.SetFailRate(0)
	if err := sys.Ingest(context.Background(), watch("u4", "a", min)); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	res, err := sys.Recommend(context.Background(), Request{UserID: "u4", CurrentVideo: "a", N: 2})
	if err != nil {
		t.Fatalf("recommend after recovery: %v", err)
	}
	if len(res.Videos) == 0 {
		t.Error("no recommendations after recovery")
	}
}

// TestIngestUnderPartialFailure: a flaky store (10% error rate) must fail
// some ingests but never corrupt state so badly that healthy operations
// stop working.
func TestIngestUnderPartialFailure(t *testing.T) {
	sys, faulty := faultySystem(t)
	for _, v := range []string{"a", "b", "c", "d", "e", "f"} {
		sys.Catalog.Put(context.Background(), catalog.Video{ID: v, Type: "movie", Length: time.Minute})
	}
	faulty.SetFailRate(0.1)
	failed := 0
	videos := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		if err := sys.Ingest(context.Background(), watch("u1", videos[i%4], i)); err != nil {
			failed++
		}
		// Other users keep e and f hot, so u1 — who will have watched the
		// whole a-d set — still has recommendable content afterwards.
		if err := sys.Ingest(context.Background(), watch("u2", []string{"e", "f"}[i%2], i)); err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no ingest failed at 10% fault rate")
	}
	if failed == 200 {
		t.Fatal("every ingest failed at 10% fault rate")
	}
	faulty.SetFailRate(0)
	res, err := sys.Recommend(context.Background(), Request{UserID: "u1", CurrentVideo: "a", N: 3})
	if err != nil {
		t.Fatalf("recommend after flaky period: %v", err)
	}
	if len(res.Videos) == 0 {
		t.Error("no recommendations after flaky period")
	}
}

func TestLatencyHistogramRecords(t *testing.T) {
	sys, _ := faultySystem(t)
	sys.Catalog.Put(context.Background(), catalog.Video{ID: "v", Type: "t", Length: time.Minute})
	sys.Ingest(context.Background(), watch("u1", "v", 0))
	for i := 0; i < 5; i++ {
		if _, err := sys.Recommend(context.Background(), Request{UserID: "u1", N: 3}); err != nil {
			t.Fatal(err)
		}
	}
	snap := sys.Latency.Snapshot()
	if snap.Count != 5 {
		t.Errorf("latency samples = %d, want 5", snap.Count)
	}
	if snap.P99 == 0 {
		t.Error("p99 latency is zero")
	}
}
