package recommend

import (
	"context"
	"fmt"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

func testSystem(t *testing.T, opts Options) *System {
	t.Helper()
	params := core.DefaultParams()
	params.Factors = 8
	simCfg := simtable.DefaultConfig()
	simCfg.TableSize = 20
	s, err := NewSystem(kvstore.NewLocal(16), params, simCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func seedCatalog(t *testing.T, s *System, videos ...catalog.Video) {
	t.Helper()
	for _, v := range videos {
		if err := s.Catalog.Put(context.Background(), v); err != nil {
			t.Fatal(err)
		}
	}
}

var base = time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)

func watch(u, v string, minute int) feedback.Action {
	return feedback.Action{
		UserID: u, VideoID: v, Type: feedback.PlayTime,
		ViewTime: 30 * time.Minute, VideoLength: 30 * time.Minute,
		Timestamp: base.Add(time.Duration(minute) * time.Minute),
	}
}

func vid(id, typ string) catalog.Video {
	return catalog.Video{ID: id, Type: typ, Length: 30 * time.Minute}
}

func TestOptionsValidate(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) { o.SeedCount = 0 },
		func(o *Options) { o.CandidatesPerSeed = 0 },
		func(o *Options) { o.MaxCandidates = 0 },
		func(o *Options) { o.HotShare = -0.1 },
		func(o *Options) { o.HotShare = 1.1 },
		func(o *Options) { o.HistoryLimit = 0 },
		func(o *Options) { o.PairWindow = 0 },
		func(o *Options) { o.HotHalfLife = 0 },
		func(o *Options) { o.HotCapacity = 0 },
	}
	for i, mutate := range cases {
		o := DefaultOptions()
		mutate(&o)
		if o.Validate() == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestValidation(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	if _, err := s.Recommend(context.Background(), Request{UserID: "u", N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := s.Recommend(context.Background(), Request{N: 5}); err == nil {
		t.Error("empty user accepted")
	}
}

// TestRelatedVideosScenario: a co-watch pattern must surface the co-watched
// video as "related" to the current one (Figure 6(b)).
func TestRelatedVideosScenario(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	seedCatalog(t, s,
		vid("a", "movie"), vid("b", "movie"), vid("c", "news"), vid("d", "movie"))
	// Several users co-watch a and b.
	min := 0
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		s.Ingest(context.Background(), watch(u, "a", min))
		s.Ingest(context.Background(), watch(u, "b", min+1))
		min += 2
	}
	// u9 watches c only, establishing an unrelated video.
	s.Ingest(context.Background(), watch("u9", "c", min))

	res, err := s.Recommend(context.Background(), Request{UserID: "u5", CurrentVideo: "a", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Videos) == 0 {
		t.Fatal("no recommendations for a co-watched video")
	}
	if res.Videos[0].ID != "b" {
		t.Errorf("top related video = %s, want b (co-watched)", res.Videos[0].ID)
	}
	for _, e := range res.Videos {
		if e.ID == "a" {
			t.Error("current video recommended to itself")
		}
	}
	if res.Latency <= 0 {
		t.Error("latency not measured")
	}
}

// TestGuessYouLikeScenario: with no current video, history seeds the list
// (Figure 6(a)).
func TestGuessYouLikeScenario(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	seedCatalog(t, s, vid("a", "movie"), vid("b", "movie"), vid("c", "movie"))
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		s.Ingest(context.Background(), watch(u, "a", min))
		s.Ingest(context.Background(), watch(u, "b", min+1))
		s.Ingest(context.Background(), watch(u, "c", min+2))
		min += 3
	}
	// u4 watched a and b; c should be suggested via similarity to them.
	s.Ingest(context.Background(), watch("u4", "a", min))
	s.Ingest(context.Background(), watch("u4", "b", min+1))

	res, err := s.Recommend(context.Background(), Request{UserID: "u4", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range res.Videos {
		if e.ID == "c" {
			found = true
		}
		if e.ID == "a" || e.ID == "b" {
			t.Errorf("already-watched %s recommended", e.ID)
		}
	}
	if !found {
		t.Errorf("c not recommended; got %+v", res.Videos)
	}
	if res.Seeds != 2 {
		t.Errorf("Seeds = %d, want 2", res.Seeds)
	}
}

// TestColdStartFallsBackToHot: a brand-new user gets the demographic hot
// list (§5.2.1's new-user answer).
func TestColdStartFallsBackToHot(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	seedCatalog(t, s, vid("hit", "movie"), vid("meh", "movie"))
	for i, u := range []string{"u1", "u2", "u3"} {
		s.Ingest(context.Background(), watch(u, "hit", i))
	}
	s.Ingest(context.Background(), watch("u4", "meh", 5))

	res, err := s.Recommend(context.Background(), Request{UserID: "brand-new-user", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Videos) == 0 {
		t.Fatal("cold-start user got nothing")
	}
	if res.Videos[0].ID != "hit" {
		t.Errorf("cold-start top = %s, want hit", res.Videos[0].ID)
	}
	if res.HotMerged != len(res.Videos) {
		t.Errorf("HotMerged = %d, want %d (all from DB)", res.HotMerged, len(res.Videos))
	}
}

// TestDemographicFilteringOffNoHotMerge verifies the ablation switch.
func TestDemographicFilteringOffNoHotMerge(t *testing.T) {
	opts := DefaultOptions()
	opts.DemographicFiltering = false
	s := testSystem(t, opts)
	seedCatalog(t, s, vid("hit", "movie"))
	s.Ingest(context.Background(), watch("u1", "hit", 0))
	res, err := s.Recommend(context.Background(), Request{UserID: "new-user", N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.HotMerged != 0 || len(res.Videos) != 0 {
		t.Errorf("filtering off but result = %+v", res)
	}
}

// TestHotReserveBroadensList: even with plenty of MF candidates, HotShare of
// the list comes from the hot merge.
func TestHotReserveBroadensList(t *testing.T) {
	opts := DefaultOptions()
	opts.HotShare = 0.5
	s := testSystem(t, opts)
	videos := []catalog.Video{
		vid("a", "movie"), vid("b", "movie"), vid("c", "movie"),
		vid("d", "movie"), vid("viral", "news"),
	}
	seedCatalog(t, s, videos...)
	min := 0
	for _, u := range []string{"u1", "u2", "u3"} {
		for _, v := range []string{"a", "b", "c", "d"} {
			s.Ingest(context.Background(), watch(u, v, min))
			min++
		}
	}
	// viral is hot but never co-watched with u4's history.
	for i, u := range []string{"u7", "u8", "u9"} {
		s.Ingest(context.Background(), watch(u, "viral", min+i))
	}
	s.Ingest(context.Background(), watch("u4", "a", min+10))
	res, err := s.Recommend(context.Background(), Request{UserID: "u4", CurrentVideo: "a", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.HotMerged == 0 {
		t.Errorf("no hot merge despite reserve; result %+v", res)
	}
	seen := false
	for _, e := range res.Videos {
		if e.ID == "viral" {
			seen = true
		}
	}
	if !seen {
		t.Errorf("viral video not merged: %+v", res.Videos)
	}
}

// TestDemographicTrainingGroupIsolation: group tables see only the group's
// co-watches (plus the group's contribution to global), so a group member's
// related list reflects group behaviour while global users see the union.
func TestDemographicTrainingGroupIsolation(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	seedCatalog(t, s, vid("a", "movie"), vid("b", "movie"), vid("c", "movie"))
	prof := demographic.Profile{
		Registered: true,
		Gender:     demographic.GenderFemale, Age: demographic.Age18to24, Education: demographic.EduBachelor,
	}
	prof.UserID = "grp-1"
	s.Profiles.Put(context.Background(), prof)
	prof.UserID = "grp-2"
	s.Profiles.Put(context.Background(), prof)
	// grp-1 co-watches a,b inside the group; global users co-watch a,c.
	s.Ingest(context.Background(), watch("grp-1", "a", 0))
	s.Ingest(context.Background(), watch("grp-1", "b", 1))
	for i, u := range []string{"u1", "u2", "u3"} {
		s.Ingest(context.Background(), watch(u, "a", 2+2*i))
		s.Ingest(context.Background(), watch(u, "c", 3+2*i))
	}
	// grp-2 (same group, empty history) asks for videos related to a: the
	// group tables know only the a–b pair, never a–c.
	res, err := s.Recommend(context.Background(), Request{UserID: "grp-2", CurrentVideo: "a", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Videos) == 0 || res.Videos[0].ID != "b" {
		t.Fatalf("group user's related = %+v, want b first", res.Videos)
	}
	group := prof.Group()
	groupTables, err := s.Tables.For(group)
	if err != nil {
		t.Fatal(err)
	}
	similar, err := groupTables.Similar(context.Background(), "a", 10, s.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range similar {
		if e.ID == "c" {
			t.Error("group tables contain the global-only a-c pair")
		}
	}
	// The global tables see both pairs (group actions contribute).
	globalTables, _ := s.Tables.For(demographic.GlobalGroup)
	globalSim, _ := globalTables.Similar(context.Background(), "a", 10, s.Now())
	ids := map[string]bool{}
	for _, e := range globalSim {
		ids[e.ID] = true
	}
	if !ids["b"] || !ids["c"] {
		t.Errorf("global tables = %+v, want both b and c", globalSim)
	}
}

// TestMaxCandidatesCapsScoring: the real-time constraint — the candidate
// set, and therefore the scoring work per request, is bounded regardless of
// how rich the similar tables are.
func TestMaxCandidatesCapsScoring(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxCandidates = 7
	opts.CandidatesPerSeed = 50
	s := testSystem(t, opts)
	// Build a dense co-watch neighbourhood around "hub".
	videos := []catalog.Video{vid("hub", "movie")}
	for i := 0; i < 30; i++ {
		videos = append(videos, vid(fmt.Sprintf("n%02d", i), "movie"))
	}
	seedCatalog(t, s, videos...)
	min := 0
	for u := 0; u < 6; u++ {
		user := fmt.Sprintf("u%d", u)
		s.Ingest(context.Background(), watch(user, "hub", min))
		min++
		for i := 0; i < 30; i += 2 {
			s.Ingest(context.Background(), watch(user, fmt.Sprintf("n%02d", (i+u)%30), min))
			min++
		}
	}
	res, err := s.Recommend(context.Background(), Request{UserID: "fresh-user", CurrentVideo: "hub", N: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates > opts.MaxCandidates {
		t.Errorf("candidates = %d, exceeds cap %d", res.Candidates, opts.MaxCandidates)
	}
	if res.Candidates == 0 {
		t.Error("no candidates despite a dense neighbourhood")
	}
}

func TestIngestAdvancesClock(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	seedCatalog(t, s, vid("a", "movie"))
	s.Ingest(context.Background(), watch("u1", "a", 90))
	if got := s.Now(); !got.Equal(base.Add(90 * time.Minute).Add(31 * time.Minute)) {
		// watch() sets ViewTime offsets inside timestamps? No: Timestamp is
		// base+90min exactly.
		if !got.Equal(base.Add(90 * time.Minute)) {
			t.Errorf("Now = %v", got)
		}
	}
	s.SetClock(func() time.Time { return base.Add(5 * time.Hour) })
	if !s.Now().Equal(base.Add(5 * time.Hour)) {
		t.Error("SetClock not honoured")
	}
}

func TestEvalAdapter(t *testing.T) {
	s := testSystem(t, DefaultOptions())
	seedCatalog(t, s, vid("hit", "movie"))
	s.Ingest(context.Background(), watch("u1", "hit", 0))
	got, err := EvalAdapter{S: s}.Recommend("new-user", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hit" {
		t.Errorf("adapter Recommend = %v", got)
	}
}
