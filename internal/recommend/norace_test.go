//go:build !race

package recommend

// See race_test.go.
const raceEnabled = false
