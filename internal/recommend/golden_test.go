package recommend_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// The golden test pins the end-to-end serving output for a fixed seed: a
// small synthetic dataset replayed sequentially through System.Ingest, then
// a fixed request mix (history-seeded and current-video-seeded), compared
// byte-for-byte against testdata/golden_topn.json. Any change to the ranking
// math, the similar-table updates, or the hot-video merge shows up as a
// golden diff — reviewable, and refreshed deliberately with
//
//	go test ./internal/recommend -run Golden -update
//
// Scores are rounded to 1e-9 before comparison so the file pins ranking
// behaviour, not the last bits of float formatting.
var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

const goldenPath = "testdata/golden_topn.json"

// goldenEntry is one scored video in a golden list.
type goldenEntry struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

// goldenResult is one request and its full response provenance.
type goldenResult struct {
	User         string        `json:"user"`
	CurrentVideo string        `json:"current_video,omitempty"`
	Videos       []goldenEntry `json:"videos"`
	Seeds        int           `json:"seeds"`
	Candidates   int           `json:"candidates"`
	HotMerged    int           `json:"hot_merged"`
	Degraded     bool          `json:"degraded,omitempty"`
}

type goldenFile struct {
	Seed    uint64         `json:"seed"`
	Actions int            `json:"actions"`
	Results []goldenResult `json:"results"`
}

// buildGolden replays the fixed workload against a plain Local store — the
// baseline every storage-tier golden (see golden_sharded_test.go) must match
// byte for byte.
func buildGolden(t *testing.T) goldenFile {
	t.Helper()
	return buildGoldenOn(t, kvstore.NewLocal(16))
}

// buildGoldenOn replays the fixed seed-7 workload and request mix against an
// arbitrary store composition and returns the golden output. The store is a
// pure parameter: any composition that is transparent to clients (sharded,
// replicated, cached) must produce identical bytes.
func buildGoldenOn(t *testing.T, store kvstore.Store) goldenFile {
	t.Helper()
	return buildGoldenOnWithHook(t, store, nil)
}

// buildGoldenOnWithHook additionally fires hook once, forty actions into the
// replay — the sharded golden uses it to run a live slot migration with
// ingest traffic on both sides of it.
func buildGoldenOnWithHook(t *testing.T, store kvstore.Store, hook func()) goldenFile {
	t.Helper()
	ctx := context.Background()
	ds, err := dataset.Generate(dataset.Config{
		Seed:             7,
		Users:            24,
		Videos:           48,
		Types:            6,
		Factors:          4,
		Days:             1,
		EventsPerDay:     80,
		ZipfExponent:     1.05,
		TrendDriftPerDay: 0.08,
		GroupInfluence:   0.6,
		RegisteredShare:  0.65,
		Start:            time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(store, params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatalf("build system: %v", err)
	}
	if err := ds.FillCatalog(ctx, sys.Catalog); err != nil {
		t.Fatalf("fill catalog: %v", err)
	}
	if err := ds.FillProfiles(ctx, sys.Profiles); err != nil {
		t.Fatalf("fill profiles: %v", err)
	}

	// Sequential replay: Ingest is the single-threaded equivalent of the
	// topology, so the resulting state is a pure function of the stream.
	out := goldenFile{Seed: ds.Config().Seed}
	stream := ds.Stream()
	for {
		a, ok := stream.Next()
		if !ok {
			break
		}
		if err := sys.Ingest(ctx, a); err != nil {
			t.Fatalf("ingest action %d: %v", out.Actions, err)
		}
		out.Actions++
		if hook != nil && out.Actions == 40 {
			hook()
			hook = nil
		}
	}

	// Fixed request mix: each sampled user once history-seeded ("Guess you
	// like") and once anchored on a current video ("related videos").
	users := ds.Users()
	videos := ds.Videos()
	for i := 0; i < 8; i++ {
		u := users[(i*3)%len(users)].ID
		reqs := []recommend.Request{
			{UserID: u, N: 5},
			{UserID: u, N: 5, CurrentVideo: videos[(i*7)%len(videos)].Meta.ID},
		}
		for _, req := range reqs {
			res, err := sys.Recommend(ctx, req)
			if err != nil {
				t.Fatalf("recommend %+v: %v", req, err)
			}
			g := goldenResult{
				User:         req.UserID,
				CurrentVideo: req.CurrentVideo,
				Seeds:        res.Seeds,
				Candidates:   res.Candidates,
				HotMerged:    res.HotMerged,
				Videos:       make([]goldenEntry, 0, len(res.Videos)),
			}
			for _, e := range res.Videos {
				g.Videos = append(g.Videos, goldenEntry{ID: e.ID, Score: roundScore(e.Score)})
			}
			out.Results = append(out.Results, g)
		}
	}
	return out
}

// roundScore quantizes to 1e-9 so the golden file is insensitive to
// formatting-level float noise while still pinning the ranking math.
func roundScore(s float64) float64 {
	return math.Round(s*1e9) / 1e9
}

func TestGoldenTopN(t *testing.T) {
	got := buildGolden(t)
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d results)", goldenPath, len(got.Results))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(data, want) {
		var old goldenFile
		if err := json.Unmarshal(want, &old); err != nil {
			t.Fatalf("golden file is not valid JSON: %v", err)
		}
		t.Errorf("serving output diverged from %s — if the change is intended, refresh with -update", goldenPath)
		logGoldenDiff(t, old, got)
	}
}

// logGoldenDiff prints the first few per-request differences so a failure is
// diagnosable without manual JSON diffing.
func logGoldenDiff(t *testing.T, old, new goldenFile) {
	t.Helper()
	if old.Actions != new.Actions {
		t.Logf("actions: golden %d, got %d", old.Actions, new.Actions)
	}
	shown := 0
	for i := 0; i < len(old.Results) && i < len(new.Results) && shown < 4; i++ {
		a, b := old.Results[i], new.Results[i]
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if !bytes.Equal(aj, bj) {
			t.Logf("result %d (user %s, current %q):\n  golden: %s\n  got:    %s", i, a.User, a.CurrentVideo, aj, bj)
			shown++
		}
	}
	if len(old.Results) != len(new.Results) {
		t.Logf("result count: golden %d, got %d", len(old.Results), len(new.Results))
	}
}

// TestGoldenIsDeterministic guards the golden test's own premise: two
// sequential replays of the same seed must produce identical output, or a
// golden mismatch could be noise instead of signal.
func TestGoldenIsDeterministic(t *testing.T) {
	a, err := json.Marshal(buildGolden(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buildGolden(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two same-seed sequential replays disagree — golden comparisons would be flaky")
	}
}
