package feedback

import (
	"math"
	"testing"
	"time"
)

// FuzzWeight pins the numeric safety contract of the confidence mapping: for
// any action (arbitrary type byte, view/length durations) under any Weights
// that pass Validate, the weight is finite, non-negative, and bounded by the
// configuration — no NaN or Inf may ever reach the SGD update. Invalid
// configurations are skipped; Validate is the gate production configs go
// through (DefaultWeights composes it).
func FuzzWeight(f *testing.F) {
	// Seeds: each action type at the defaults, Eq. 6's interesting view
	// rates, and hostile parameter corners.
	for t := range int(numActionTypes) + 1 {
		f.Add(uint8(t), int64(30*time.Second), int64(time.Minute), 2.5, 1.0, 0.1)
	}
	f.Add(uint8(PlayTime), int64(0), int64(0), 2.5, 1.0, 0.1)            // unknown length
	f.Add(uint8(PlayTime), int64(-5), int64(100), 2.5, 1.0, 0.1)         // negative view time
	f.Add(uint8(PlayTime), int64(1), int64(1e18), 2.5, 1.0, 1e-300)      // vanishing view rate
	f.Add(uint8(PlayTime), int64(100), int64(100), math.NaN(), 1.0, 0.1) // NaN a — Validate must reject
	f.Add(uint8(PlayTime), int64(100), int64(100), 2.5, math.Inf(1), 0.1)
	f.Fuzz(func(t *testing.T, typ uint8, view, length int64, a, b, minRate float64) {
		w := DefaultWeights()
		w.A, w.B, w.MinViewRate = a, b, minRate
		if w.Validate() != nil {
			return
		}
		act := Action{
			UserID:      "u",
			VideoID:     "v",
			Type:        ActionType(typ),
			ViewTime:    time.Duration(view),
			VideoLength: time.Duration(length),
		}
		wgt := w.Weight(act)
		if math.IsNaN(wgt) || math.IsInf(wgt, 0) {
			t.Fatalf("Weight(%+v) with a=%v b=%v min=%v is not finite: %v", act, a, b, minRate, wgt)
		}
		if wgt < 0 {
			t.Fatalf("Weight(%+v) = %v, negative confidence", act, wgt)
		}
		// Validated parameters bound Eq. 6 above by a (log10(vrate) ≤ 0 and
		// b ≥ 0), and every static weight is its own ceiling.
		ceiling := math.Max(w.A, 0)
		for _, s := range w.Static {
			ceiling = math.Max(ceiling, s)
		}
		if wgt > ceiling {
			t.Fatalf("Weight(%+v) = %v exceeds configuration ceiling %v", act, wgt, ceiling)
		}
		rating := w.Rating(act)
		if rating != 0 && rating != 1 {
			t.Fatalf("Rating(%+v) = %v, want 0 or 1", act, rating)
		}
		r2, w2 := w.Confidence(act)
		if r2 != rating || w2 != wgt {
			t.Fatalf("Confidence disagrees with Rating/Weight: (%v, %v) vs (%v, %v)", r2, w2, rating, wgt)
		}
	})
}
