package feedback

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func playTimeAction(viewed, length time.Duration) Action {
	return Action{UserID: "u", VideoID: "v", Type: PlayTime, ViewTime: viewed, VideoLength: length}
}

func TestDefaultWeightsValid(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Fatalf("DefaultWeights().Validate() = %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	w := DefaultWeights()
	w.A, w.B = 1, 2
	if w.Validate() == nil {
		t.Error("a < b accepted")
	}
	w = DefaultWeights()
	w.MinViewRate = 0
	if w.Validate() == nil {
		t.Error("MinViewRate 0 accepted")
	}
	w = DefaultWeights()
	w.Static[Click] = -1
	if w.Validate() == nil {
		t.Error("negative weight accepted")
	}
	w = DefaultWeights()
	w.Static[Impress] = 0.5
	if w.Validate() == nil {
		t.Error("nonzero Impress weight accepted")
	}
}

// TestTable1Weights pins the static mapping of Table 1.
func TestTable1Weights(t *testing.T) {
	w := DefaultWeights()
	tests := []struct {
		typ  ActionType
		want float64
	}{
		{Impress, 0},
		{Click, 1},
		{Play, 1.5},
		{Comment, 3},
		{Like, 3.5},
		{Share, 4},
	}
	for _, tt := range tests {
		a := Action{Type: tt.typ}
		if got := w.Weight(a); got != tt.want {
			t.Errorf("Weight(%s) = %v, want %v", tt.typ, got, tt.want)
		}
	}
}

// TestPlayTimeWeightEquation6 checks w = a + b·log10(vrate) at known points.
func TestPlayTimeWeightEquation6(t *testing.T) {
	w := DefaultWeights()
	tests := []struct {
		name   string
		viewed time.Duration
		length time.Duration
		want   float64
	}{
		{"full view", 100 * time.Second, 100 * time.Second, 2.5}, // log10(1)=0
		{"half view", 50 * time.Second, 100 * time.Second, 2.5 - math.Log10(2)},
		{"cutoff exactly", 10 * time.Second, 100 * time.Second, 1.5}, // log10(0.1)=-1
		{"below cutoff falls back to Play", 5 * time.Second, 100 * time.Second, 1.5},
		{"unknown length falls back to Play", 5 * time.Second, 0, 1.5},
		{"overlong view clamps to rate 1", 200 * time.Second, 100 * time.Second, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := w.Weight(playTimeAction(tt.viewed, tt.length))
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Weight = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestPlayTimeWeightBand checks the paper's Table 1 claim that PlayTime
// weights span [1.5, 2.5] and never drop below the Play weight.
func TestPlayTimeWeightBand(t *testing.T) {
	w := DefaultWeights()
	f := func(viewedMs, lengthMs uint32) bool {
		a := playTimeAction(time.Duration(viewedMs)*time.Millisecond,
			time.Duration(lengthMs)*time.Millisecond)
		got := w.Weight(a)
		return got >= 1.5-1e-12 && got <= 2.5+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPlayTimeWeightMonotone: more of the video watched must never lower the
// confidence.
func TestPlayTimeWeightMonotone(t *testing.T) {
	w := DefaultWeights()
	length := 100 * time.Second
	prev := -math.MaxFloat64
	for s := 0; s <= 100; s++ {
		got := w.Weight(playTimeAction(time.Duration(s)*time.Second, length))
		if got < prev-1e-12 {
			t.Fatalf("weight decreased at %ds: %v < %v", s, got, prev)
		}
		prev = got
	}
}

// TestConfidenceOrdering checks the semantic ordering §3.2 relies on:
// stronger engagement ⇒ weakly higher confidence.
func TestConfidenceOrdering(t *testing.T) {
	w := DefaultWeights()
	order := []Action{
		{Type: Impress},
		{Type: Click},
		{Type: Play},
		playTimeAction(100*time.Second, 100*time.Second),
		{Type: Comment},
		{Type: Like},
		{Type: Share},
	}
	for i := 1; i < len(order); i++ {
		if w.Weight(order[i]) <= w.Weight(order[i-1]) {
			t.Errorf("weight of %s (%v) not above %s (%v)",
				order[i].Type, w.Weight(order[i]),
				order[i-1].Type, w.Weight(order[i-1]))
		}
	}
}

// TestRatingEquation7: binary rating is 1 iff weight > 0.
func TestRatingEquation7(t *testing.T) {
	w := DefaultWeights()
	if got := w.Rating(Action{Type: Impress}); got != 0 {
		t.Errorf("Rating(Impress) = %v, want 0", got)
	}
	if got := w.Rating(Action{Type: Click}); got != 1 {
		t.Errorf("Rating(Click) = %v, want 1", got)
	}
	r, wt := w.Confidence(Action{Type: Share})
	if r != 1 || wt != 4 {
		t.Errorf("Confidence(Share) = %v,%v want 1,4", r, wt)
	}
	r, wt = w.Confidence(Action{Type: Impress})
	if r != 0 || wt != 0 {
		t.Errorf("Confidence(Impress) = %v,%v want 0,0", r, wt)
	}
}

func TestViewRateClamps(t *testing.T) {
	a := playTimeAction(-5*time.Second, 100*time.Second)
	if got := a.ViewRate(); got != 0 {
		t.Errorf("negative view time rate = %v, want 0", got)
	}
	a = playTimeAction(500*time.Second, 100*time.Second)
	if got := a.ViewRate(); got != 1 {
		t.Errorf("overlong view rate = %v, want 1", got)
	}
}

func TestActionTypeStringRoundTrip(t *testing.T) {
	for _, at := range ActionTypes() {
		parsed, err := ParseActionType(at.String())
		if err != nil || parsed != at {
			t.Errorf("round trip of %s = %v, %v", at, parsed, err)
		}
	}
	if _, err := ParseActionType("bogus"); err == nil {
		t.Error("ParseActionType(bogus) succeeded")
	}
	if s := ActionType(200).String(); s != "actiontype(200)" {
		t.Errorf("unknown type String = %q", s)
	}
}

// TestWeightAlwaysFinite sweeps the full vrate range — including the
// degenerate inputs Eq. 6 is undefined on — under both the default and
// adversarial (unvalidated) configurations, and asserts the weight can
// never leave a finite band. A -Inf here would poison every vector the
// action touches via the SGD update.
func TestWeightAlwaysFinite(t *testing.T) {
	configs := map[string]Weights{
		"default": DefaultWeights(),
	}
	zeroCut := DefaultWeights()
	zeroCut.MinViewRate = 0 // invalid (Validate rejects it) but must still be safe
	configs["zero-cutoff"] = zeroCut
	steep := DefaultWeights()
	steep.MinViewRate = 1e-12
	steep.B = 50 // absurd slope: log term would reach -600 without the clamp
	configs["steep-slope"] = steep
	var zero Weights
	configs["zero-value"] = zero

	lengths := []time.Duration{0, -time.Second, time.Millisecond, 100 * time.Second, time.Hour}
	for name, w := range configs {
		for _, length := range lengths {
			for i := 0; i <= 1000; i++ {
				view := time.Duration(float64(length) * float64(i) / 1000)
				a := playTimeAction(view, length)
				got := w.Weight(a)
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Fatalf("%s: Weight(view=%v len=%v) = %v, not finite", name, view, length, got)
				}
				if got < 0 || got > w.A+1 {
					t.Fatalf("%s: Weight(view=%v len=%v) = %v, outside [0, %v]", name, view, length, got, w.A+1)
				}
			}
		}
		// The exact degenerate corners, spelled out.
		for _, a := range []Action{
			playTimeAction(0, 0),
			playTimeAction(time.Minute, 0),
			playTimeAction(0, time.Minute),
			playTimeAction(-time.Minute, -time.Minute),
		} {
			if got := w.Weight(a); math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("%s: Weight(%+v) = %v, not finite", name, a, got)
			}
		}
	}
}

// TestWeightClampFloor: a watched video never scores below a bare Play,
// even when (a, b) would push Eq. 6 below the floor.
func TestWeightClampFloor(t *testing.T) {
	w := DefaultWeights()
	w.MinViewRate = 1e-6
	w.B = 10 // at vrate=1e-6, a + b·log10 = 2.5 - 60
	got := w.Weight(playTimeAction(time.Microsecond, time.Second))
	if got != w.Static[Play] {
		t.Errorf("Weight = %v, want Play floor %v", got, w.Static[Play])
	}
}
