// Package feedback implements the paper's implicit-feedback solution (§3.2):
// mapping raw user actions to confidence weights (Table 1 and Eq. 6) and to
// the binary ratings with confidence levels (Eq. 7) that drive the adjustable
// online training.
//
// The key idea is that implicit signals are ordered by how strongly they
// witness interest — an impression witnesses nothing, a click a little, a
// long watch a lot — and the weight w_ui encodes that confidence. Ratings
// themselves stay binary: r_ui = 1 whenever the user interacted at all
// (w_ui > 0), 0 otherwise, which the paper found far more robust than using
// the weights as ratings directly (the ConfModel ablation, §6.1.2).
package feedback

import (
	"fmt"
	"math"
	"time"
)

// ActionType enumerates the user behaviours Tencent Video logs. The set
// follows Table 1 plus the heavier engagement actions mentioned in §3.2
// (comment, and the like/share family commonly logged alongside it).
type ActionType uint8

const (
	// Impress records that a video was displayed to the user. It carries no
	// interest signal (weight 0) and never updates the model (Alg. 1).
	Impress ActionType = iota
	// Click records the user clicking through to a video page.
	Click
	// Play records the user starting playback.
	Play
	// PlayTime reports how long the user watched; its weight depends on the
	// fraction of the video viewed (Eq. 6).
	PlayTime
	// Comment records the user commenting on a video — the "three star"
	// example of §3.2.
	Comment
	// Like records an explicit thumbs-up style endorsement.
	Like
	// Share records the user sharing the video.
	Share

	numActionTypes
)

var actionNames = [numActionTypes]string{
	Impress:  "impress",
	Click:    "click",
	Play:     "play",
	PlayTime: "playtime",
	Comment:  "comment",
	Like:     "like",
	Share:    "share",
}

// String returns the lower-case wire name of the action type.
func (a ActionType) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("actiontype(%d)", uint8(a))
}

// ParseActionType converts a wire name back to an ActionType.
func ParseActionType(s string) (ActionType, error) {
	for i, n := range actionNames {
		if n == s {
			return ActionType(i), nil
		}
	}
	return 0, fmt.Errorf("feedback: unknown action type %q", s)
}

// ActionTypes returns all defined action types in declaration order.
func ActionTypes() []ActionType {
	out := make([]ActionType, numActionTypes)
	for i := range out {
		out[i] = ActionType(i)
	}
	return out
}

// Action is one user-behaviour tuple from the stream: user u acted on video i.
// It is the unit of work for the entire pipeline — the spout emits Actions,
// the MF model trains on them one at a time, and the similar-video tables
// update from them.
type Action struct {
	UserID  string
	VideoID string
	Type    ActionType
	// ViewTime and VideoLength are set for PlayTime actions: how long the
	// user watched and the full length of the video (Eq. 6 uses their
	// ratio, the view rate).
	ViewTime    time.Duration
	VideoLength time.Duration
	// Timestamp is when the action happened; the similar-video tables'
	// time factor (Eq. 11) measures decay from it.
	Timestamp time.Time
}

// ViewRate returns the fraction of the video watched, clamped to [0, 1].
// It returns 0 when the video length is unknown.
func (a Action) ViewRate() float64 {
	if a.VideoLength <= 0 {
		return 0
	}
	r := float64(a.ViewTime) / float64(a.VideoLength)
	return math.Max(0, math.Min(1, r))
}

// Weights holds the per-action-type confidence settings of Table 1 and the
// PlayTime curve parameters of Eq. 6.
type Weights struct {
	// Static weights per action type (Table 1). PlayTime's entry is the
	// floor used for inefficient views (view rate below MinViewRate).
	Static [numActionTypes]float64
	// A and B parametrize the PlayTime weight a + b·log10(vrate), Eq. 6.
	// The paper's constraint a ≥ b keeps the weight positive on the
	// admissible range, and the published grid-search values are a=2.5,
	// b=1.0 (Table 2).
	A, B float64
	// MinViewRate is the noise cutoff: views shorter than this fraction of
	// the video are treated as bare Play actions (§3.2 sets 0.1).
	MinViewRate float64
}

// DefaultWeights returns the paper's production settings: Table 1's weights
// (Impress 0, Click 1, Play 1.5, PlayTime in [1.5, 2.5]) with Eq. 6's a=2.5,
// b=1.0 from Table 2, and weights 3/3.5/4 for the heavier comment/like/share
// engagement actions (§3.2's "a comment behavior equals a three star
// rating").
func DefaultWeights() Weights {
	var w Weights
	w.Static[Impress] = 0
	w.Static[Click] = 1
	w.Static[Play] = 1.5
	w.Static[PlayTime] = 1.5 // floor; Eq. 6 raises it up to 2.5
	w.Static[Comment] = 3
	w.Static[Like] = 3.5
	w.Static[Share] = 4
	w.A = 2.5
	w.B = 1.0
	w.MinViewRate = 0.1
	return w
}

// Validate checks the configuration for self-consistency. Beyond the
// paper's a ≥ b constraint it demands finite parameters and b ≥ 0: those
// two together bound Eq. 6 to [Static[Play], a], so a validated Weights can
// never emit NaN or Inf into the SGD update (the property FuzzWeight pins).
func (w Weights) Validate() error {
	if math.IsNaN(w.A) || math.IsInf(w.A, 0) || math.IsNaN(w.B) || math.IsInf(w.B, 0) {
		return fmt.Errorf("feedback: PlayTime parameters must be finite, got a=%v b=%v", w.A, w.B)
	}
	if w.B < 0 {
		return fmt.Errorf("feedback: PlayTime parameter b must be non-negative, got %v", w.B)
	}
	if w.A < w.B {
		return fmt.Errorf("feedback: PlayTime parameters require a >= b, got a=%v b=%v", w.A, w.B)
	}
	if math.IsNaN(w.MinViewRate) || w.MinViewRate <= 0 || w.MinViewRate > 1 {
		return fmt.Errorf("feedback: MinViewRate must be in (0, 1], got %v", w.MinViewRate)
	}
	for t, v := range w.Static {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("feedback: weight for %s must be finite and non-negative, got %v", ActionType(t), v)
		}
	}
	if w.Static[Impress] != 0 {
		return fmt.Errorf("feedback: Impress weight must be 0 (impressions carry no interest signal), got %v", w.Static[Impress])
	}
	return nil
}

// Weight returns the confidence w_ui of an action.
//
// For PlayTime actions with view rate ≥ MinViewRate it evaluates Eq. 6,
//
//	w = a + b·log10(vrate),  vrate ∈ [MinViewRate, 1],
//
// which with the default a=2.5, b=1, MinViewRate=0.1 spans exactly Table 1's
// [1.5, 2.5] band. PlayTime views below the cutoff are "inefficient ones"
// and fall back to the Play weight, as §3.2 specifies. Every other action
// type uses its static Table 1 weight.
func (w Weights) Weight(a Action) float64 {
	if a.Type != PlayTime {
		if int(a.Type) < len(w.Static) {
			return w.Static[a.Type]
		}
		return 0
	}
	vrate := a.ViewRate()
	if vrate < w.MinViewRate || vrate <= 0 {
		// The vrate <= 0 leg is load-bearing even though Validate rejects
		// MinViewRate <= 0: a zero-value or hand-built Weights would otherwise
		// send log10(0) = -Inf into the SGD update and poison every vector the
		// action touches. It also absorbs VideoLength == 0, which ViewRate
		// maps to 0.
		return w.Static[Play]
	}
	// vrate ∈ (0, 1], so log10 is finite and nonpositive: the weight is
	// bounded above by A. Clamp the low side to the Play floor so extreme
	// (a, b) choices still keep a watched video at least as strong as a bare
	// Play — with the defaults the clamp is exactly Eq. 6's lower band edge.
	wgt := w.A + w.B*math.Log10(vrate)
	if wgt < w.Static[Play] {
		return w.Static[Play]
	}
	return wgt
}

// Rating returns the binary preference r_ui of Eq. 7: 1 if the action
// carries any interest signal (weight > 0), 0 otherwise. Only actions with
// rating 1 update the model (Alg. 1 line 2).
func (w Weights) Rating(a Action) float64 {
	if w.Weight(a) > 0 {
		return 1
	}
	return 0
}

// Confidence bundles Weight and Rating for one action, the two quantities
// Algorithm 1 computes on line 1.
func (w Weights) Confidence(a Action) (rating, weight float64) {
	weight = w.Weight(a)
	if weight > 0 {
		rating = 1
	}
	return rating, weight
}
