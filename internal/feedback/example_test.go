package feedback_test

import (
	"fmt"
	"time"

	"vidrec/internal/feedback"
)

// The confidence weighting of Table 1 / Eq. 6: a 45-minute watch of a
// 90-minute film carries weight 2.5 + log10(0.5) ≈ 2.2, between a bare play
// (1.5) and a comment (3).
func ExampleWeights_Weight() {
	w := feedback.DefaultWeights()
	a := feedback.Action{
		UserID:      "alice",
		VideoID:     "film-1",
		Type:        feedback.PlayTime,
		ViewTime:    45 * time.Minute,
		VideoLength: 90 * time.Minute,
	}
	fmt.Printf("weight %.3f\n", w.Weight(a))
	rating, conf := w.Confidence(a)
	fmt.Printf("rating %.0f confidence %.3f\n", rating, conf)
	// Output:
	// weight 2.199
	// rating 1 confidence 2.199
}

// Impressions carry no interest signal: weight 0, rating 0, and Algorithm 1
// never trains on them.
func ExampleWeights_Rating() {
	w := feedback.DefaultWeights()
	impression := feedback.Action{UserID: "u", VideoID: "v", Type: feedback.Impress}
	click := feedback.Action{UserID: "u", VideoID: "v", Type: feedback.Click}
	fmt.Println(w.Rating(impression), w.Rating(click))
	// Output: 0 1
}
