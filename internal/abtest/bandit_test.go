package abtest

import (
	"context"
	"testing"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// banditTestConfig is the multi-day run the bandit arm is evaluated under:
// click feedback on, so the Thompson posteriors move on the same clicks the
// CTR counts.
func banditTestConfig() Config {
	return Config{Days: 4, WarmupDays: 1, RequestsPerDay: 400, N: 5, Seed: 13, ClickFeedback: true}
}

func banditTestDataset(t *testing.T, cfg Config) *dataset.Dataset {
	t.Helper()
	dc := dataset.DefaultConfig()
	dc.Users = 120
	dc.Videos = 60
	dc.Days = cfg.Days + cfg.WarmupDays
	dc.EventsPerDay = 800
	d, err := dataset.Generate(dc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newBanditVariantSystem(t *testing.T, ctx context.Context, d *dataset.Dataset, explore bool) *recommend.System {
	t.Helper()
	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	if explore {
		opts.Explore = true
		opts.ExploreSeed = 20160307
	}
	sys, err := recommend.NewSystem(kvstore.NewLocal(64), params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FillCatalog(ctx, sys.Catalog); err != nil {
		t.Fatal(err)
	}
	if err := d.FillProfiles(ctx, sys.Profiles); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBanditArmVsCombineModel evaluates the exploration policy as an A/B
// arm against the plain CombineModel ranking over a multi-day simulated run
// with click feedback. The run must engage the bandit (pulls charged, wins
// earned through the Ingest reward path), hold a CTR in the same band as the
// exploit-only baseline, and replay byte-identically.
func TestBanditArmVsCombineModel(t *testing.T) {
	ctx := context.Background()
	cfg := banditTestConfig()
	d := banditTestDataset(t, cfg)

	run := func() (*Report, bandit.State) {
		base := newBanditVariantSystem(t, ctx, d, false)
		exp := newBanditVariantSystem(t, ctx, d, true)
		report, err := Run(d, []Variant{
			{Name: "CombineModel", Recommender: recommend.EvalAdapter{S: base, Ctx: ctx},
				Ingest: func(a feedback.Action) error { return base.Ingest(ctx, a) }},
			{Name: "BanditTS", Recommender: recommend.EvalAdapter{S: exp, Ctx: ctx},
				Ingest: func(a feedback.Action) error { return exp.Ingest(ctx, a) }},
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := exp.Bandit.State(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return report, st
	}

	report, st := run()
	for _, name := range []string{"CombineModel", "BanditTS"} {
		if report.Total[name].Impressions == 0 {
			t.Fatalf("%s served no impressions — bucketing starved an arm", name)
		}
	}

	// The bandit must actually have run: pulls on every request it served,
	// wins flowing back through Ingest's attribution-consume path.
	var pulls, wins float64
	for a := 0; a < bandit.NumArms; a++ {
		pulls += st.Pulls[a]
		wins += st.Wins[a]
	}
	if pulls == 0 {
		t.Error("bandit charged no pulls — the explore path never served")
	}
	if wins == 0 {
		t.Error("bandit earned no wins — click feedback never reached the reward path")
	}

	// CTR sanity: both arms land in a plausible band, and exploration's
	// CTR cost stays bounded — the slate is still built from the same
	// blended candidates, so a collapse means the re-rank is broken.
	ctrBase := report.Total["CombineModel"].CTR()
	ctrBandit := report.Total["BanditTS"].CTR()
	if ctrBase <= 0 || ctrBase >= 1 || ctrBandit <= 0 || ctrBandit >= 1 {
		t.Fatalf("implausible CTRs: CombineModel %v, BanditTS %v", ctrBase, ctrBandit)
	}
	if ctrBandit < 0.5*ctrBase {
		t.Errorf("BanditTS CTR %v collapsed below half of CombineModel %v", ctrBandit, ctrBase)
	}
	t.Logf("CTR over %d days: CombineModel %.4f, BanditTS %.4f (lift %+.1f%%); bandit pulls %v wins %v",
		cfg.Days, ctrBase, ctrBandit, 100*report.Improvement("BanditTS", "CombineModel"), st.Pulls, st.Wins)

	// Byte-identical replay: fresh systems, same seeds, same report and the
	// same final posterior state.
	report2, st2 := run()
	for day := range report.Daily {
		for _, name := range report.Variants {
			if report.Daily[day][name] != report2.Daily[day][name] {
				t.Fatalf("day %d %s differs across identical runs: %+v vs %+v",
					day, name, report.Daily[day][name], report2.Daily[day][name])
			}
		}
	}
	if st != st2 {
		t.Errorf("final bandit state differs across identical runs:\n  first:  %+v\n  second: %+v", st, st2)
	}
}
