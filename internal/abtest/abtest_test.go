package abtest

import (
	"testing"
	"time"

	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/feedback"
)

func smallDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Users = 120
	cfg.Videos = 60
	cfg.Days = 3
	cfg.EventsPerDay = 800
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func constRec(videos ...string) eval.Recommender {
	return eval.RecommenderFunc(func(_ string, n int) ([]string, error) {
		if n > len(videos) {
			n = len(videos)
		}
		return videos[:n], nil
	})
}

func TestConfigValidate(t *testing.T) {
	for i, mutate := range []func(*Config){
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.RequestsPerDay = 0 },
		func(c *Config) { c.N = 0 },
	} {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunValidatesVariants(t *testing.T) {
	d := smallDataset(t)
	cfg := Config{Days: 1, RequestsPerDay: 10, N: 2, Seed: 1}
	if _, err := Run(d, nil, cfg); err == nil {
		t.Error("no variants accepted")
	}
	if _, err := Run(d, []Variant{{Name: "x"}}, cfg); err == nil {
		t.Error("variant without recommender accepted")
	}
	vs := []Variant{
		{Name: "a", Recommender: constRec("v00001")},
		{Name: "a", Recommender: constRec("v00002")},
	}
	if _, err := Run(d, vs, cfg); err == nil {
		t.Error("duplicate variant names accepted")
	}
}

func TestRunProducesDailySeries(t *testing.T) {
	d := smallDataset(t)
	videos := d.Videos()
	cfg := Config{Days: 4, RequestsPerDay: 300, N: 5, Seed: 3}
	report, err := Run(d, []Variant{
		{Name: "A", Recommender: constRec(videos[0].Meta.ID, videos[1].Meta.ID, videos[2].Meta.ID, videos[3].Meta.ID, videos[4].Meta.ID)},
		{Name: "B", Recommender: constRec(videos[5].Meta.ID, videos[6].Meta.ID, videos[7].Meta.ID, videos[8].Meta.ID, videos[9].Meta.ID)},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Daily) != 4 {
		t.Fatalf("daily records = %d, want 4", len(report.Daily))
	}
	for day, rec := range report.Daily {
		total := rec["A"].Impressions + rec["B"].Impressions
		if total != cfg.RequestsPerDay*cfg.N {
			t.Errorf("day %d impressions = %d, want %d", day, total, cfg.RequestsPerDay*cfg.N)
		}
	}
	if got := report.CTRSeries("A"); len(got) != 4 {
		t.Errorf("CTRSeries length = %d", len(got))
	}
	sumA := report.Total["A"]
	if sumA.Impressions == 0 {
		t.Error("variant A served nothing")
	}
}

func TestBucketingIsStable(t *testing.T) {
	if bucketOf("user-42", 4) != bucketOf("user-42", 4) {
		t.Error("bucket assignment not deterministic")
	}
	spread := map[int]bool{}
	for i := 0; i < 100; i++ {
		spread[bucketOf(string(rune('a'+i%26))+string(rune('0'+i/26)), 4)] = true
	}
	if len(spread) < 2 {
		t.Error("all users hash to one bucket")
	}
}

// TestGroundTruthOracleWinsCTR: a recommender with oracle access to the
// hidden preferences must beat a deliberately awful one — the core validity
// property of the CTR simulation.
func TestGroundTruthOracleWinsCTR(t *testing.T) {
	d := smallDataset(t)
	oracle := eval.RecommenderFunc(func(u string, n int) ([]string, error) {
		type vp struct {
			id string
			p  float64
		}
		var all []vp
		for _, v := range d.Videos() {
			all = append(all, vp{v.Meta.ID, d.Preference(u, v.Meta.ID)})
		}
		for i := 0; i < n; i++ { // partial selection sort
			maxI := i
			for j := i + 1; j < len(all); j++ {
				if all[j].p > all[maxI].p {
					maxI = j
				}
			}
			all[i], all[maxI] = all[maxI], all[i]
		}
		out := make([]string, n)
		for i := 0; i < n; i++ {
			out[i] = all[i].id
		}
		return out, nil
	})
	awful := eval.RecommenderFunc(func(u string, n int) ([]string, error) {
		type vp struct {
			id string
			p  float64
		}
		var all []vp
		for _, v := range d.Videos() {
			all = append(all, vp{v.Meta.ID, d.Preference(u, v.Meta.ID)})
		}
		for i := 0; i < n; i++ {
			minI := i
			for j := i + 1; j < len(all); j++ {
				if all[j].p < all[minI].p {
					minI = j
				}
			}
			all[i], all[minI] = all[minI], all[i]
		}
		out := make([]string, n)
		for i := 0; i < n; i++ {
			out[i] = all[i].id
		}
		return out, nil
	})
	report, err := Run(d, []Variant{
		{Name: "oracle", Recommender: oracle},
		{Name: "awful", Recommender: awful},
	}, Config{Days: 2, RequestsPerDay: 500, N: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if report.Total["oracle"].CTR() <= report.Total["awful"].CTR() {
		t.Errorf("oracle CTR %v not above awful %v",
			report.Total["oracle"].CTR(), report.Total["awful"].CTR())
	}
	lifts := report.Lifts()
	if len(lifts) == 0 || lifts[0].Better != "oracle" {
		t.Errorf("Lifts = %+v", lifts)
	}
	if report.Improvement("oracle", "awful") <= 0 {
		t.Error("Improvement(oracle, awful) not positive")
	}
}

func TestIngestAndTrainDailyHooksFire(t *testing.T) {
	d := smallDataset(t)
	var ingested int
	var trained int
	var lastNow time.Time
	v := Variant{
		Name:        "hooked",
		Recommender: constRec(d.Videos()[0].Meta.ID),
		Ingest: func(a feedback.Action) error {
			ingested++
			return nil
		},
		TrainDaily: func(history []feedback.Action) error {
			trained++
			if len(history) != ingested {
				t.Errorf("history %d != ingested %d", len(history), ingested)
			}
			return nil
		},
		SetNow: func(now time.Time) { lastNow = now },
	}
	_, err := Run(d, []Variant{v}, Config{Days: 3, RequestsPerDay: 5, N: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ingested == 0 {
		t.Error("Ingest never fired")
	}
	if trained != 3 {
		t.Errorf("TrainDaily fired %d times, want 3", trained)
	}
	// SetNow fires at day starts and before each interleaved request; the
	// last call must fall inside the final day.
	lo := d.Config().Start.Add(2 * 24 * time.Hour)
	hi := d.Config().Start.Add(3 * 24 * time.Hour)
	if lastNow.Before(lo) || lastNow.After(hi) {
		t.Errorf("last SetNow = %v, want within (%v, %v]", lastNow, lo, hi)
	}
}

func TestDayCTRZeroImpressions(t *testing.T) {
	if (DayCTR{}).CTR() != 0 {
		t.Error("CTR of zero impressions should be 0")
	}
}

func TestWarmupDaysServeNoRequests(t *testing.T) {
	d := smallDataset(t)
	var ingested int
	v := Variant{
		Name:        "w",
		Recommender: constRec(d.Videos()[0].Meta.ID),
		Ingest: func(feedback.Action) error {
			ingested++
			return nil
		},
	}
	report, err := Run(d, []Variant{v}, Config{
		Days: 2, WarmupDays: 1, RequestsPerDay: 20, N: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Daily) != 2 {
		t.Fatalf("daily records = %d, want 2 (warmup excluded)", len(report.Daily))
	}
	if ingested == 0 {
		t.Error("warmup day trained nothing")
	}
	total := report.Total["w"]
	if total.Impressions != 2*20*1 {
		t.Errorf("impressions = %d, want 40", total.Impressions)
	}
	if _, err := Run(d, []Variant{v}, Config{Days: 1, WarmupDays: -1, RequestsPerDay: 1, N: 1}); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	d := smallDataset(t)
	cfg := Config{Days: 2, RequestsPerDay: 200, N: 3, Seed: 9}
	vs := func() []Variant {
		return []Variant{{Name: "a", Recommender: constRec(
			d.Videos()[0].Meta.ID, d.Videos()[1].Meta.ID, d.Videos()[2].Meta.ID)}}
	}
	r1, err := Run(d, vs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(d, vs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for day := range r1.Daily {
		if r1.Daily[day]["a"] != r2.Daily[day]["a"] {
			t.Fatalf("day %d differs across identical runs: %+v vs %+v",
				day, r1.Daily[day]["a"], r2.Daily[day]["a"])
		}
	}
}
