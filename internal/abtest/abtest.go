// Package abtest simulates the paper's online evaluation (§6.2): live
// traffic is split into buckets by user id, each bucket is served by one
// recommendation method, and click-through rate is recorded per day over the
// test period ("We do the A/B testing for the comparative methods over a
// period of ten days and recording their CTRs").
//
// Substitution note (DESIGN.md §3): instead of real users, click decisions
// come from the dataset generator's hidden ground-truth preferences with a
// positional discount, so CTR differences reflect genuine ranking quality.
// Absolute CTR values are synthetic — the paper withholds its own for
// proprietary reasons — but the comparison shape (who wins, by how much) is
// the reproduced result.
package abtest

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"time"

	"vidrec/internal/dataset"
	"vidrec/internal/eval"
	"vidrec/internal/feedback"
)

// Variant is one recommendation method under test.
type Variant struct {
	// Name labels the method in the report ("Hot", "AR", "SimHash", "rMF").
	Name string
	// Recommender serves this variant's bucket.
	Recommender eval.Recommender
	// Ingest, if non-nil, receives every action in real time (the online
	// methods: Hot and rMF).
	Ingest func(a feedback.Action) error
	// TrainDaily, if non-nil, is called at the end of each day with the
	// full history so far (the batch methods: AR retrains every day,
	// SimHash at regular intervals).
	TrainDaily func(history []feedback.Action) error
	// SetNow, if non-nil, is told the simulation clock before requests.
	SetNow func(now time.Time)
}

// Config parametrizes a simulated A/B test.
type Config struct {
	// Days is the test length (the paper uses ten).
	Days int
	// WarmupDays precede the test: organic traffic trains every variant
	// but no requests are served, so day 1 starts with warm models.
	WarmupDays int
	// RequestsPerDay is how many recommendation requests arrive daily.
	// Requests are interleaved *within* the day's organic traffic, so
	// real-time methods answer with up-to-the-action state while batch
	// methods serve from their last retrain — the asymmetry the paper's
	// online test measures.
	RequestsPerDay int
	// N is the recommendation list length per request.
	N int
	// Seed drives user arrival and click sampling.
	Seed uint64
	// ClickFeedback closes the loop: every simulated click is also delivered
	// back to the serving variant's Ingest hook as a feedback.Click action at
	// request time. Exploring variants consume their slate attributions from
	// exactly this stream, so bandit posteriors move on the same clicks the
	// CTR counts. The click goes only to the variant that served it — it is
	// that bucket's private reward signal, not shared organic history.
	ClickFeedback bool
}

// DefaultConfig returns the paper-shaped test: ten days after one warmup.
func DefaultConfig() Config {
	return Config{Days: 10, WarmupDays: 1, RequestsPerDay: 4000, N: 10, Seed: 7}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Days <= 0:
		return fmt.Errorf("abtest: Days must be positive, got %d", c.Days)
	case c.WarmupDays < 0:
		return fmt.Errorf("abtest: WarmupDays must be non-negative, got %d", c.WarmupDays)
	case c.RequestsPerDay <= 0:
		return fmt.Errorf("abtest: RequestsPerDay must be positive, got %d", c.RequestsPerDay)
	case c.N <= 0:
		return fmt.Errorf("abtest: N must be positive, got %d", c.N)
	}
	return nil
}

// DayCTR is one day's outcome for one variant.
type DayCTR struct {
	Impressions int
	Clicks      int
}

// CTR returns clicks/impressions (0 when nothing was shown).
func (d DayCTR) CTR() float64 {
	if d.Impressions == 0 {
		return 0
	}
	return float64(d.Clicks) / float64(d.Impressions)
}

// Report is the full outcome of a simulated A/B test.
type Report struct {
	// Variants lists method names in input order.
	Variants []string
	// Daily[day][name] is the day's CTR record (Figure 7's series).
	Daily []map[string]DayCTR
	// Total[name] aggregates the whole period.
	Total map[string]DayCTR
}

// CTRSeries returns one variant's daily CTR values in day order.
func (r *Report) CTRSeries(name string) []float64 {
	out := make([]float64, len(r.Daily))
	for i, day := range r.Daily {
		out[i] = day[name].CTR()
	}
	return out
}

// Improvement returns the relative CTR lift of method a over method b across
// the whole period, as a fraction (Table 5 prints percentages).
func (r *Report) Improvement(a, b string) float64 {
	cb := r.Total[b].CTR()
	if cb == 0 {
		return 0
	}
	return (r.Total[a].CTR() - cb) / cb
}

// ImprovementTable returns every ordered pair's lift, sorted by row then
// column name — the data behind Table 5.
type Lift struct {
	Better, Worse string
	Lift          float64
}

// Lifts computes pairwise lifts for every pair where a beats b.
func (r *Report) Lifts() []Lift {
	var out []Lift
	for _, a := range r.Variants {
		for _, b := range r.Variants {
			if a == b {
				continue
			}
			if l := r.Improvement(a, b); l > 0 {
				out = append(out, Lift{Better: a, Worse: b, Lift: l})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Better != out[j].Better {
			return out[i].Better < out[j].Better
		}
		return out[i].Worse < out[j].Worse
	})
	return out
}

// Run simulates the A/B test: each day the organic stream for that day is
// fed to every variant's training path, then simulated users issue requests,
// are bucketed by user-id hash, and click per ground-truth preference with a
// positional discount.
func Run(d *dataset.Dataset, variants []Variant, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(variants) == 0 {
		return nil, fmt.Errorf("abtest: at least one variant required")
	}
	names := make([]string, len(variants))
	seen := make(map[string]bool, len(variants))
	for i, v := range variants {
		if v.Name == "" || v.Recommender == nil {
			return nil, fmt.Errorf("abtest: variant %d lacks a name or recommender", i)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("abtest: duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
		names[i] = v.Name
	}

	report := &Report{
		Variants: names,
		Total:    make(map[string]DayCTR, len(variants)),
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xDEADBEEF))
	users := d.Users()
	stream := d.Stream()
	streamDone := false
	var history []feedback.Action
	// watched tracks organic positive interactions; re-recommending a video
	// the user already watched draws heavily discounted clicks (fatigue),
	// as on a real site. Personalization-free methods pay for this.
	weights := feedback.DefaultWeights()
	watched := make(map[string]map[string]bool)
	dsDays := d.Config().Days
	start := d.Config().Start

	var pending feedback.Action
	var hasPending bool

	// serve issues one request for user u at time now and scores clicks.
	serve := func(u string, now time.Time, daily map[string]DayCTR) error {
		v := &variants[bucketOf(u, len(variants))]
		if v.SetNow != nil {
			v.SetNow(now)
		}
		recs, err := v.Recommender.Recommend(u, cfg.N)
		if err != nil {
			return fmt.Errorf("abtest: %s recommend: %w", v.Name, err)
		}
		rec := daily[v.Name]
		for pos, video := range recs {
			rec.Impressions++
			// Click model: ground-truth preference scaled into a plausible
			// CTR band, discounted by list position, with heavy fatigue on
			// already-watched videos.
			p := 0.02 + 0.45*d.Preference(u, video)
			p /= 1 + 0.15*float64(pos)
			if watched[u][video] {
				p *= 0.25
			}
			if rng.Float64() < p {
				rec.Clicks++
				if cfg.ClickFeedback && v.Ingest != nil {
					click := feedback.Action{UserID: u, VideoID: video, Type: feedback.Click, Timestamp: now}
					if err := v.Ingest(click); err != nil {
						return fmt.Errorf("abtest: %s click feedback: %w", v.Name, err)
					}
					w := watched[u]
					if w == nil {
						w = make(map[string]bool)
						watched[u] = w
					}
					w[video] = true
				}
			}
		}
		daily[v.Name] = rec
		return nil
	}

	totalDays := cfg.WarmupDays + cfg.Days
	for day := 0; day < totalDays; day++ {
		testing := day >= cfg.WarmupDays
		dayStart := start.Add(time.Duration(day) * 24 * time.Hour)
		dayEnd := dayStart.Add(24 * time.Hour)

		// 1. Batch retrain at day start: the batch methods serve today
		// from yesterday's model — the staleness the paper's real-time
		// design eliminates.
		for i := range variants {
			if variants[i].TrainDaily != nil {
				if err := variants[i].TrainDaily(history); err != nil {
					return nil, fmt.Errorf("abtest: %s daily train: %w", variants[i].Name, err)
				}
			}
			if variants[i].SetNow != nil {
				variants[i].SetNow(dayStart)
			}
		}

		// 2. Buffer today's organic actions.
		var dayActions []feedback.Action
		if day < dsDays && !streamDone {
			for {
				var a feedback.Action
				if hasPending {
					a, hasPending = pending, false
				} else {
					var ok bool
					a, ok = stream.Next()
					if !ok {
						streamDone = true
						break
					}
				}
				if a.Timestamp.After(dayEnd) {
					pending, hasPending = a, true
					break
				}
				dayActions = append(dayActions, a)
			}
		}

		// 3. Interleave organic traffic with live requests: a request
		// typically comes from the user who just acted (the "watching a
		// video right now" scenario), sometimes from a random visitor.
		daily := make(map[string]DayCTR, len(variants))
		served := 0
		requestEvery := 1
		if testing && len(dayActions) > cfg.RequestsPerDay {
			requestEvery = len(dayActions) / cfg.RequestsPerDay
		}
		for idx, a := range dayActions {
			history = append(history, a)
			if weights.Weight(a) > 0 {
				w := watched[a.UserID]
				if w == nil {
					w = make(map[string]bool)
					watched[a.UserID] = w
				}
				w[a.VideoID] = true
			}
			for i := range variants {
				if variants[i].Ingest != nil {
					if err := variants[i].Ingest(a); err != nil {
						return nil, fmt.Errorf("abtest: %s ingest: %w", variants[i].Name, err)
					}
				}
			}
			if testing && served < cfg.RequestsPerDay && idx%requestEvery == requestEvery-1 {
				u := a.UserID
				if rng.Float64() < 0.2 {
					u = users[rng.IntN(len(users))].ID
				}
				if err := serve(u, a.Timestamp, daily); err != nil {
					return nil, err
				}
				served++
			}
		}
		// Serve any remaining requests at day end (quiet stream or more
		// requests than actions).
		for testing && served < cfg.RequestsPerDay {
			u := users[rng.IntN(len(users))].ID
			if err := serve(u, dayEnd, daily); err != nil {
				return nil, err
			}
			served++
		}

		if !testing {
			continue
		}
		report.Daily = append(report.Daily, daily)
		for name, rec := range daily {
			t := report.Total[name]
			t.Impressions += rec.Impressions
			t.Clicks += rec.Clicks
			report.Total[name] = t
		}
	}
	return report, nil
}

// bucketOf assigns a user to a variant bucket, stable across days.
func bucketOf(userID string, buckets int) int {
	h := fnv.New32a()
	h.Write([]byte(userID))
	return int(h.Sum32() % uint32(buckets))
}
