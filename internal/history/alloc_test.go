package history

import (
	"context"
	"testing"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
)

// TestWatchedWarmAllocs pins the warm (cache-hit) allocation count of the
// serving path's history read, cross-checking alloccheck's static claims for
// Store.Watched: the decode allocations (events/videos/set in newRecord) are
// hatched as "miss-path decode", so a cache hit must see none of them. The
// single remaining allocation is the hatched kvstore.Key concat; the
// read-through closures stay on the stack (they do not escape Cached).
func TestWatchedWarmAllocs(t *testing.T) {
	ctx := context.Background()
	s, err := New("t", kvstore.NewLocal(4), 10)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCache(objcache.New(64))
	for i, v := range []string{"a", "b", "c"} {
		if err := s.Append(ctx, "u1", v, at(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// First call decodes through the store and fills the cache.
	if _, _, err := s.Watched(ctx, "u1", 5); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, _, err := s.Watched(ctx, "u1", 5); err != nil {
			t.Fatal(err)
		}
	})
	// 1 = the namespaced key string; the cached record is served as-is.
	if avg > 1 {
		t.Fatalf("warm Watched allocates %v objects/op, want <= 1", avg)
	}
}
