// Package history maintains per-user behaviour histories — the state the
// UserHistory bolt of Figure 2 records in the key-value store. Histories
// serve two consumers: the GetItemPairs bolt pairs a new action's video with
// the user's recent videos to drive similar-video updates, and the
// recommendation service uses recent videos as seeds when the user is not
// currently watching anything ("Guess you like", §6.2).
package history

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/topn"
)

// Event is one remembered interaction: the video and when it happened.
type Event struct {
	VideoID string
	Time    time.Time
}

// Store keeps bounded recency-ordered histories in a key-value store.
type Store struct {
	kv    kvstore.Store
	ns    string
	keys  *kvstore.Keys // memoized ns-qualified keys (user-id-bounded)
	limit int
	cache *objcache.Cache // nil disables the decoded-history read cache
}

// SetCache attaches a decoded-value read cache for history records. The
// cache must wrap the same store via objcache.WrapStore so Append
// invalidates it. Cached records (events, video list, membership set) are
// shared and read-only; readers only re-slice, never mutate.
func (s *Store) SetCache(c *objcache.Cache) { s.cache = c }

// New returns a history store under the given namespace keeping at most
// limit events per user.
func New(name string, kv kvstore.Store, limit int) (*Store, error) {
	if name == "" {
		return nil, fmt.Errorf("history: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("history: store must not be nil")
	}
	if limit <= 0 {
		return nil, fmt.Errorf("history: limit must be positive, got %d", limit)
	}
	ns := name + ".hist"
	return &Store{kv: kv, ns: ns, keys: kvstore.NewKeys(ns), limit: limit}, nil
}

// Histories are stored as scored entry lists: ID = video, Score = unix
// milliseconds. Reusing the entry codec keeps one binary format per store.

func encode(events []Event) []byte {
	entries := make([]topn.Entry, len(events))
	for i, e := range events {
		entries[i] = topn.Entry{ID: e.VideoID, Score: float64(e.Time.UnixMilli())}
	}
	return kvstore.EncodeEntries(entries)
}

func decode(raw []byte) ([]Event, error) {
	entries, err := kvstore.DecodeEntries(raw)
	if err != nil {
		return nil, err
	}
	events := make([]Event, len(entries)) // alloccheck: miss-path decode; warm requests reuse the cached record
	for i, e := range entries {
		events[i] = Event{VideoID: e.ID, Time: time.UnixMilli(int64(e.Score))}
	}
	return events, nil
}

// Append records an interaction, newest first. A video already present moves
// to the front with the new timestamp rather than duplicating: the history
// answers "which distinct videos did this user touch recently", and repeated
// plays of one video should not crowd out the rest.
func (s *Store) Append(ctx context.Context, userID, videoID string, ts time.Time) error {
	if userID == "" || videoID == "" {
		return fmt.Errorf("history: user and video ids must not be empty")
	}
	key := s.keys.Key(userID)
	return s.kv.Update(ctx, key, func(cur []byte, ok bool) ([]byte, bool) {
		var events []Event
		if ok {
			if dec, err := decode(cur); err == nil {
				events = dec
			}
			// A corrupt record is dropped and rebuilt; histories are
			// advisory state, not a ledger.
		}
		out := make([]Event, 0, len(events)+1)
		out = append(out, Event{VideoID: videoID, Time: ts})
		for _, e := range events {
			if e.VideoID == videoID {
				continue
			}
			out = append(out, e)
		}
		if len(out) > s.limit {
			out = out[:s.limit]
		}
		return encode(out), true
	})
}

// record is the cached decoded form of one user's history: the stored events
// plus two derived read-only views — the video ids in recency order and their
// membership set — built once per decode so the serving path never rebuilds
// them per request. All three fields are shared through the cache and must
// never be modified after construction.
type record struct {
	events []Event
	videos []string
	set    map[string]bool
}

func newRecord(events []Event) record {
	videos := make([]string, len(events))     // alloccheck: miss-path decode; warm requests reuse the cached record
	set := make(map[string]bool, len(events)) // alloccheck: miss-path decode; warm requests reuse the cached record
	for i, e := range events {
		videos[i] = e.VideoID
		set[e.VideoID] = true
	}
	return record{events: events, videos: videos, set: set}
}

// load fetches and decodes the user's record, through the cache when one is
// attached. A cache hit returns without building the loader closure.
//
// hotpath: every serving request reads the user's history through here
func (s *Store) load(ctx context.Context, userID string) (record, bool, error) {
	key := s.keys.Key(userID)
	if s.cache != nil {
		if tv, present, ok := s.cache.Lookup(key); ok {
			if !present {
				return record{}, false, nil
			}
			return tv.(record), true, nil
		}
	}
	// alloccheck: one loader closure per read-through MISS; warm hits return above
	return objcache.Cached(s.cache, key, func() (record, bool, error) {
		raw, ok, err := s.kv.Get(ctx, key)
		if err != nil {
			return record{}, false, fmt.Errorf("history: get %s: %w", userID, err)
		}
		if !ok {
			return record{}, false, nil
		}
		dec, err := decode(raw)
		if err != nil {
			return record{}, false, fmt.Errorf("history: corrupt record for %s: %w", userID, err)
		}
		return newRecord(dec), true, nil
	})
}

// Recent returns up to k events, newest first. The returned slice may alias
// a cache-shared decode: callers must not modify it.
func (s *Store) Recent(ctx context.Context, userID string, k int) ([]Event, error) {
	rec, ok, err := s.load(ctx, userID)
	if err != nil || !ok {
		return nil, err
	}
	events := rec.events
	if k >= 0 && k < len(events) {
		events = events[:k]
	}
	return events, nil
}

// RecentVideos returns up to k distinct video ids, newest first. The slice
// may alias a cache-shared view: callers must not modify it.
func (s *Store) RecentVideos(ctx context.Context, userID string, k int) ([]string, error) {
	rec, ok, err := s.load(ctx, userID)
	if err != nil || !ok {
		return nil, err
	}
	videos := rec.videos
	if k >= 0 && k < len(videos) {
		videos = videos[:k]
	}
	return videos, nil
}

// Watched returns up to k recent video ids (newest first) together with the
// membership set over the user's entire stored history. The set always covers
// the full record regardless of k — the serving exclusion wants "everything
// we know this user watched", and the store's own limit is that window. Both
// views are cache-shared and read-only; an unknown user yields (nil, nil).
func (s *Store) Watched(ctx context.Context, userID string, k int) ([]string, map[string]bool, error) {
	rec, ok, err := s.load(ctx, userID)
	if err != nil || !ok {
		return nil, nil, err
	}
	videos := rec.videos
	if k >= 0 && k < len(videos) {
		videos = videos[:k]
	}
	return videos, rec.set, nil
}

// Limit returns the configured per-user bound.
func (s *Store) Limit() int { return s.limit }
