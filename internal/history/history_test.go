package history

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"vidrec/internal/kvstore"
)

func newStore(t *testing.T, limit int) *Store {
	t.Helper()
	s, err := New("t", kvstore.NewLocal(4), limit)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestNewValidation(t *testing.T) {
	kv := kvstore.NewLocal(1)
	if _, err := New("", kv, 5); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("h", nil, 5); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New("h", kv, 0); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestAppendRecentOrder(t *testing.T) {
	s := newStore(t, 10)
	s.Append(context.Background(), "u1", "a", at(1))
	s.Append(context.Background(), "u1", "b", at(2))
	s.Append(context.Background(), "u1", "c", at(3))
	got, err := s.RecentVideos(context.Background(), "u1", 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"c", "b", "a"}
	if len(got) != 3 {
		t.Fatalf("RecentVideos = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RecentVideos = %v, want %v", got, want)
			break
		}
	}
}

func TestAppendDeduplicatesMoveToFront(t *testing.T) {
	s := newStore(t, 10)
	s.Append(context.Background(), "u1", "a", at(1))
	s.Append(context.Background(), "u1", "b", at(2))
	s.Append(context.Background(), "u1", "a", at(3)) // rewatching a moves it to the front
	got, _ := s.RecentVideos(context.Background(), "u1", 10)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("RecentVideos = %v, want [a b]", got)
	}
	events, _ := s.Recent(context.Background(), "u1", 1)
	if !events[0].Time.Equal(at(3)) {
		t.Errorf("front timestamp = %v, want %v", events[0].Time, at(3))
	}
}

func TestAppendEnforcesLimit(t *testing.T) {
	s := newStore(t, 3)
	for i := 1; i <= 5; i++ {
		s.Append(context.Background(), "u1", fmt.Sprintf("v%d", i), at(i))
	}
	got, _ := s.RecentVideos(context.Background(), "u1", 10)
	if len(got) != 3 || got[0] != "v5" || got[2] != "v3" {
		t.Errorf("RecentVideos = %v, want [v5 v4 v3]", got)
	}
}

func TestRecentK(t *testing.T) {
	s := newStore(t, 10)
	for i := 1; i <= 5; i++ {
		s.Append(context.Background(), "u1", fmt.Sprintf("v%d", i), at(i))
	}
	got, _ := s.RecentVideos(context.Background(), "u1", 2)
	if len(got) != 2 || got[0] != "v5" || got[1] != "v4" {
		t.Errorf("RecentVideos(2) = %v", got)
	}
}

func TestRecentUnknownUser(t *testing.T) {
	s := newStore(t, 10)
	got, err := s.Recent(context.Background(), "ghost", 5)
	if err != nil || got != nil {
		t.Errorf("Recent(ghost) = %v, %v; want nil, nil", got, err)
	}
}

func TestAppendRejectsEmptyIDs(t *testing.T) {
	s := newStore(t, 10)
	if err := s.Append(context.Background(), "", "v", at(1)); err == nil {
		t.Error("empty user accepted")
	}
	if err := s.Append(context.Background(), "u", "", at(1)); err == nil {
		t.Error("empty video accepted")
	}
}

func TestUsersAreIsolated(t *testing.T) {
	s := newStore(t, 10)
	s.Append(context.Background(), "u1", "a", at(1))
	s.Append(context.Background(), "u2", "b", at(1))
	got, _ := s.RecentVideos(context.Background(), "u1", 10)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("u1 history = %v, want [a]", got)
	}
}

func TestConcurrentAppendsSameUser(t *testing.T) {
	// The store's per-key Update serializes appends, so concurrent writers
	// must never lose the bound or corrupt the record — even though
	// ordering between them is unspecified.
	s := newStore(t, 20)
	var wg sync.WaitGroup
	const workers, per = 8, 30
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := fmt.Sprintf("w%d-v%d", w, i)
				if err := s.Append(context.Background(), "u1", v, at(w*per+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := s.RecentVideos(context.Background(), "u1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Errorf("history length = %d, want the 20-entry bound", len(got))
	}
	seen := map[string]bool{}
	for _, v := range got {
		if seen[v] {
			t.Errorf("duplicate %s in history", v)
		}
		seen[v] = true
	}
}

func TestCorruptRecordIsRebuilt(t *testing.T) {
	kv := kvstore.NewLocal(1)
	s, _ := New("t", kv, 5)
	kv.Set(context.Background(), "t.hist:u1", []byte{0xFF, 0xFF}) // garbage
	if err := s.Append(context.Background(), "u1", "a", at(1)); err != nil {
		t.Fatalf("Append over corrupt record = %v", err)
	}
	got, err := s.RecentVideos(context.Background(), "u1", 5)
	if err != nil || len(got) != 1 || got[0] != "a" {
		t.Errorf("after rebuild = %v, %v", got, err)
	}
}
