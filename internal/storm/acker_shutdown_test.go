package storm

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errSynthetic = errors.New("synthetic failure")

// buildTrackedChain returns a one-spout, one-bolt topology that emits n
// tracked tuples, plus the channel delivering the spout instance.
func buildTrackedChain(n int, boltFn func(*Tuple, *BoltCollector) error) (*Topology, chan *sliceSpout) {
	spouts := make(chan *sliceSpout, 1)
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout {
		s := &sliceSpout{values: intValues(n), tracked: true}
		spouts <- s
		return s
	}, 1).OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt { return &funcBolt{fn: boltFn} }, 2).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		panic(err)
	}
	return topo, spouts
}

// A tuple failed (or acked) after the topology has shut down must be a
// no-op: the old acker closed its input channel on stop, so a straggler
// bolt — e.g. one blocked in a slow store write that fails after Run
// returns — would panic the process with "send on closed channel".
func TestAckerFailAfterShutdownDoesNotPanicOrLeak(t *testing.T) {
	topo, _ := buildTrackedChain(10, func(*Tuple, *BoltCollector) error { return nil })
	if got := topo.UnresolvedTrees(); got != -1 {
		t.Errorf("UnresolvedTrees before Run = %d, want -1", got)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Straggler traffic after shutdown: a fail for a resolved root, an ack
	// for a resolved root, and a fail for a root the acker never saw. None
	// may panic, and none may create a pending entry.
	done := make(chan struct{})
	go func() { // vidlint:detached test goroutine; joined via done channel below
		defer close(done)
		topo.acker.fail(3)
		topo.acker.ack(3, 42)
		topo.acker.fail(9999)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler ack/fail blocked after shutdown")
	}
	if got := topo.UnresolvedTrees(); got != 0 {
		t.Errorf("UnresolvedTrees after straggler traffic = %d, want 0", got)
	}
}

// Conservation: with a mix of acked and failed trees, every tracked tuple
// resolves exactly once and the acker retains no entries at shutdown.
func TestAckerConservationWithFailures(t *testing.T) {
	const n = 200
	topo, spouts := buildTrackedChain(n, func(tp *Tuple, _ *BoltCollector) error {
		if tp.Values[1].(int)%7 == 0 {
			return errSynthetic
		}
		return nil
	})
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := <-spouts
	if got := len(s.acked) + len(s.failed); got != n {
		t.Errorf("acked+failed = %d, want %d (each tree resolves exactly once)", got, n)
	}
	if got := topo.UnresolvedTrees(); got != 0 {
		t.Errorf("UnresolvedTrees = %d, want 0", got)
	}
}
