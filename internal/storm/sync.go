package storm

import (
	"context"
	"errors"
	"fmt"
)

// Synchronous execution mode: the whole topology runs on the caller's
// goroutine, processing deliveries from a FIFO work queue instead of
// per-task channels. Routing, groupings, metrics, and acker accounting are
// identical to the concurrent engine — only the scheduler changes: every
// tuple's execution order is a pure function of the spout stream, which is
// what the simulation harness's replay-determinism oracle (same seed ⇒
// byte-identical state) requires. The concurrent engine cannot promise
// this: even with one task per component, sibling bolts subscribed to the
// same stream race on shared store keys (e.g. the history append one bolt
// performs against the history read its sibling performs for the same
// action).

// syncDelivery is one queued tuple delivery in synchronous mode.
type syncDelivery struct {
	task  *task
	tuple *Tuple
}

// runSync drives the topology to completion on a single goroutine. The
// acker still runs on its own goroutine, but it only observes the XOR
// stream — it never influences execution order, so determinism is
// unaffected.
func (t *Topology) runSync(ctx context.Context) error {
	t.acker.start()

	// Prepare every task in declaration order. A bolt whose Prepare fails is
	// marked dead: deliveries to it fail their tuple trees, mirroring the
	// concurrent engine's drain-without-executing behaviour.
	for _, c := range t.comps {
		for _, tk := range c.tasks {
			cctx := &Context{Component: c.def.name, Task: tk.index, Parallelism: c.def.parallelism, Ctx: ctx}
			if tk.spout != nil {
				collector := &SpoutCollector{topo: t, task: tk}
				if err := tk.spout.Open(cctx, collector); err != nil {
					t.recordErr(fmt.Errorf("storm: spout %s[%d] open: %w", c.def.name, tk.index, err))
					tk.dead = true
				}
				continue
			}
			tk.syncCollector = &BoltCollector{topo: t, task: tk}
			if err := tk.bolt.Prepare(cctx, tk.syncCollector); err != nil {
				t.recordErr(fmt.Errorf("storm: bolt %s[%d] prepare: %w", c.def.name, tk.index, err))
				tk.dead = true
			}
		}
	}

	// Drive the spouts sequentially, fully draining the work queue after
	// every emission so each spout tuple's entire tree executes before the
	// next NextTuple call.
	for _, c := range t.comps {
		for _, tk := range c.tasks {
			if tk.spout == nil || tk.dead {
				continue
			}
			t.driveSpoutSync(ctx, tk)
		}
	}

	// Teardown in declaration order.
	for _, c := range t.comps {
		for _, tk := range c.tasks {
			if tk.spout != nil {
				if tk.dead {
					continue
				}
				if err := tk.spout.Close(); err != nil {
					t.recordErr(fmt.Errorf("storm: spout %s[%d] close: %w", c.def.name, tk.index, err))
				}
				continue
			}
			if tk.dead {
				continue
			}
			if err := tk.bolt.Cleanup(); err != nil {
				t.recordErr(fmt.Errorf("storm: bolt %s[%d] cleanup: %w", c.def.name, tk.index, err))
			}
		}
	}
	t.acker.stop()
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return errors.Join(t.errs...)
}

func (t *Topology) driveSpoutSync(ctx context.Context, tk *task) {
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		default:
		}
		tk.drainAcks(false)
		// Max-spout-pending applies here too; with the queue drained after
		// every emission the only wait is for the acker to deliver the
		// completion notice, which it always does.
		for t.maxPending > 0 && tk.pendingRoots >= int64(t.maxPending) {
			if !tk.drainAcks(true) {
				break loop
			}
		}
		more, err := tk.spout.NextTuple()
		t.drainSyncQueue()
		if err != nil {
			t.recordErr(fmt.Errorf("storm: spout %s[%d] next: %w", tk.comp.def.name, tk.index, err))
			break
		}
		if !more {
			break
		}
	}
	for tk.pendingRoots > 0 {
		if !tk.drainAcks(true) {
			break
		}
	}
}

// drainSyncQueue executes queued deliveries FIFO until the queue is empty.
// Executions may enqueue further deliveries; they run in enqueue order.
func (t *Topology) drainSyncQueue() {
	for len(t.syncQ) > 0 {
		d := t.syncQ[0]
		t.syncQ = t.syncQ[1:]
		t.executeSync(d.task, d.tuple)
	}
}

// executeSync is the synchronous twin of runBolt's per-tuple body.
func (t *Topology) executeSync(tk *task, tuple *Tuple) {
	if tk.dead {
		tk.comp.metrics.Failed.Add(1)
		if tuple.root != 0 {
			t.acker.fail(tuple.root)
		}
		return
	}
	collector := tk.syncCollector
	collector.current = tuple
	collector.emittedXor = 0
	err := tk.bolt.Execute(tuple)
	collector.current = nil
	tk.comp.metrics.Executed.Add(1)
	if err != nil {
		tk.comp.metrics.Failed.Add(1)
		if tuple.root != 0 {
			t.acker.fail(tuple.root)
		}
		return
	}
	if tuple.root != 0 {
		t.acker.ack(tuple.root, tuple.edge^collector.emittedXor)
	}
}
