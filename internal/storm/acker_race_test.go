package storm

import (
	"math/rand"
	"sync"
	"testing"
)

// TestAckerConcurrentTrees hammers the acker with many tuple trees resolving
// at once: inits, acks, and failures all race on the ack channel, with init
// frequently arriving after acks for its tree (legal — XOR is
// order-independent). Exactly one completion notice must come out per root,
// with the right failed bit, and stragglers arriving after a failure
// fast-path must be dropped rather than resurrecting the entry. Run with
// -race this doubles as the concurrency check for the acker/notifier pair.
func TestAckerConcurrentTrees(t *testing.T) {
	const (
		roots = 128
		edges = 8
	)
	a := newAcker()
	a.start()
	origin := &task{notices: newNotifier()}

	rng := rand.New(rand.NewSource(1))
	type tree struct {
		root    int64
		edges   []uint64
		initXor uint64
		fail    bool
	}
	trees := make([]tree, roots)
	for i := range trees {
		tr := tree{root: a.newRoot(nil), fail: i%4 == 3}
		for j := 0; j < edges; j++ {
			// Edge ids are never zero (a zero edge would XOR as a no-op and
			// could complete a tree prematurely), matching the runtime.
			e := rng.Uint64() | 1
			tr.edges = append(tr.edges, e)
			tr.initXor ^= e
		}
		trees[i] = tr
	}

	var wg sync.WaitGroup
	for _, tr := range trees {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.initWithOrigin(tr.root, tr.initXor, origin)
		}()
		for j, e := range tr.edges {
			if tr.fail && j == 0 {
				// Withhold one ack so a failing tree can never XOR to zero:
				// its only possible resolution is the explicit fail below,
				// which makes the expected failed bit deterministic.
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.ack(tr.root, e)
			}()
		}
		if tr.fail {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.fail(tr.root)
			}()
		}
	}
	wg.Wait()
	a.stop() // processes everything queued before returning

	got := make(map[int64]bool) // root -> failed bit of its single notice
	for {
		n, ok := origin.notices.get(false)
		if !ok {
			break
		}
		if _, dup := got[n.root]; dup {
			t.Fatalf("root %d notified twice", n.root)
		}
		got[n.root] = n.failed
	}
	if len(got) != roots {
		t.Fatalf("got %d completion notices, want %d", len(got), roots)
	}
	for _, tr := range trees {
		failed, ok := got[tr.root]
		switch {
		case !ok:
			t.Errorf("root %d never resolved", tr.root)
		case failed != tr.fail:
			t.Errorf("root %d resolved with failed=%v, want %v", tr.root, failed, tr.fail)
		}
	}
}

// TestNotifierBlockingGet checks the blocking receive path the spout loop
// uses: get(true) must wait for a put from another goroutine and must return
// ok=false once the notifier is closed and drained.
func TestNotifierBlockingGet(t *testing.T) {
	n := newNotifier()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n.put(ackNotice{root: 7})
	}()
	v, ok := n.get(true)
	if !ok || v.root != 7 {
		t.Fatalf("get(true) = %+v, %v; want root 7", v, ok)
	}
	wg.Wait()

	wg.Add(1)
	go func() {
		defer wg.Done()
		n.close()
	}()
	if _, ok := n.get(true); ok {
		t.Fatal("get(true) after close returned a notice from an empty queue")
	}
	wg.Wait()
}
