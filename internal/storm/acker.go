package storm

import (
	"sync"
	"sync/atomic"
)

// The acker implements Storm's tuple-tree tracking with the XOR trick: every
// delivery of a tracked tuple gets a random 64-bit edge id; the spout
// registers the XOR of its initial deliveries, and every bolt ack XORs in
// the consumed edge id together with the edge ids of the tuples it emitted
// while processing it. Each edge id therefore enters the accumulated value
// exactly twice — once when created, once when consumed — so the value
// returns to zero exactly when every tuple in the tree has been processed,
// regardless of message ordering.

type ackKind uint8

const (
	ackInit ackKind = iota
	ackDelta
	ackFail
)

type ackMsg struct {
	kind   ackKind
	root   int64
	xor    uint64
	origin *task // set on init
}

type ackEntry struct {
	xor     uint64
	origin  *task
	hasInit bool
	failed  bool
}

type acker struct {
	in      chan ackMsg
	quit    chan struct{}
	done    chan struct{}
	nextID  atomic.Int64
	entries map[int64]*ackEntry
	// resolved remembers roots that already completed or failed, so
	// straggler acks (possible after a failure fast-path) are dropped
	// instead of resurrecting the entry.
	resolved map[int64]struct{}
}

func newAcker() *acker {
	return &acker{
		in:       make(chan ackMsg, 4096),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		entries:  make(map[int64]*ackEntry),
		resolved: make(map[int64]struct{}),
	}
}

func (a *acker) start() {
	go func() {
		defer close(a.done)
		for {
			select {
			case msg := <-a.in:
				a.handle(msg)
			case <-a.quit:
				// Drain what was already enqueued, then exit. The in
				// channel is never closed, so stragglers arriving after
				// shutdown are dropped by send instead of panicking.
				for {
					select {
					case msg := <-a.in:
						a.handle(msg)
					default:
						return
					}
				}
			}
		}
	}()
}

func (a *acker) stop() {
	close(a.quit)
	<-a.done
}

// send delivers a message to the acker goroutine, or drops it once the acker
// has shut down. A tuple failed or acked after Topology.Run returned must be
// a no-op, not a panic: the tree's fate was already decided at shutdown.
func (a *acker) send(m ackMsg) {
	select {
	case a.in <- m:
	case <-a.done:
	}
}

// newRoot allocates a fresh root id for a spout task's tracked emission.
// Ids start at 1; 0 marks untracked tuples.
func (a *acker) newRoot(*task) int64 { return a.nextID.Add(1) }

// initWithOrigin registers a tuple tree. EmitTracked routes first
// (deliveries may ack before init arrives — XOR is order-independent), then
// sends init carrying the origin task so the acker can notify completion.
func (a *acker) initWithOrigin(root int64, xor uint64, origin *task) {
	a.send(ackMsg{kind: ackInit, root: root, xor: xor, origin: origin})
}

func (a *acker) ack(root int64, xor uint64) {
	a.send(ackMsg{kind: ackDelta, root: root, xor: xor})
}

func (a *acker) fail(root int64) {
	a.send(ackMsg{kind: ackFail, root: root})
}

func (a *acker) handle(msg ackMsg) {
	if _, dead := a.resolved[msg.root]; dead {
		return
	}
	e := a.entries[msg.root]
	if e == nil {
		e = &ackEntry{}
		a.entries[msg.root] = e
	}
	switch msg.kind {
	case ackInit:
		e.hasInit = true
		e.origin = msg.origin
		e.xor ^= msg.xor
	case ackDelta:
		e.xor ^= msg.xor
	case ackFail:
		e.failed = true
	}
	if !e.hasInit {
		return // can't resolve until the spout's init arrives
	}
	if e.failed {
		a.finish(msg.root, e, true)
		return
	}
	if e.xor == 0 {
		a.finish(msg.root, e, false)
	}
}

func (a *acker) finish(root int64, e *ackEntry, failed bool) {
	delete(a.entries, root)
	a.resolved[root] = struct{}{}
	if e.origin != nil {
		e.origin.notices.put(ackNotice{root: root, failed: failed})
	}
}

// notifier is an unbounded queue of ack notices with blocking receive. The
// acker must never block delivering a notice (a blocked acker would deadlock
// the ack channel against backpressured bolts), so spout-task notification
// buffers here instead of in a bounded channel.
type notifier struct {
	mu     sync.Mutex
	cond   *sync.Cond  // set once at construction, immutable afterwards
	queue  []ackNotice // guarded by mu
	closed bool        // guarded by mu
}

func newNotifier() *notifier {
	n := &notifier{}
	n.cond = sync.NewCond(&n.mu)
	return n
}

func (n *notifier) put(v ackNotice) {
	n.mu.Lock()
	n.queue = append(n.queue, v)
	n.mu.Unlock()
	n.cond.Signal()
}

// get dequeues one notice. With block set it waits for one (or close);
// otherwise it returns ok=false immediately when empty.
func (n *notifier) get(block bool) (ackNotice, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.queue) == 0 {
		if !block || n.closed {
			return ackNotice{}, false
		}
		n.cond.Wait()
	}
	v := n.queue[0]
	n.queue = n.queue[1:]
	return v, true
}

func (n *notifier) close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.cond.Broadcast()
}
