package storm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sliceSpout emits one tuple per value, optionally tracked, then reports
// exhaustion. Ack/Fail notifications are counted.
type sliceSpout struct {
	values  []Values
	tracked bool
	pos     int
	out     *SpoutCollector

	mu     sync.Mutex
	acked  []any
	failed []any
}

func (s *sliceSpout) Open(_ *Context, out *SpoutCollector) error { s.out = out; return nil }
func (s *sliceSpout) Close() error                               { return nil }
func (s *sliceSpout) NextTuple() (bool, error) {
	if s.pos >= len(s.values) {
		return false, nil
	}
	v := s.values[s.pos]
	if s.tracked {
		s.out.EmitTracked(s.pos, v)
	} else {
		s.out.Emit(v)
	}
	s.pos++
	return true, nil
}
func (s *sliceSpout) Ack(msgID any) {
	s.mu.Lock()
	s.acked = append(s.acked, msgID)
	s.mu.Unlock()
}
func (s *sliceSpout) Fail(msgID any) {
	s.mu.Lock()
	s.failed = append(s.failed, msgID)
	s.mu.Unlock()
}

// funcBolt adapts a function to the Bolt interface.
type funcBolt struct {
	fn  func(t *Tuple, out *BoltCollector) error
	out *BoltCollector
	ctx *Context
}

func (b *funcBolt) Prepare(ctx *Context, out *BoltCollector) error {
	b.ctx, b.out = ctx, out
	return nil
}
func (b *funcBolt) Execute(t *Tuple) error { return b.fn(t, b.out) }
func (b *funcBolt) Cleanup() error         { return nil }

func intValues(n int) []Values {
	out := make([]Values, n)
	for i := range out {
		out[i] = Values{fmt.Sprintf("k%d", i%7), i}
	}
	return out
}

func TestBuilderValidation(t *testing.T) {
	mkSpout := func() Spout { return &sliceSpout{} }
	mkBolt := func() Bolt { return &funcBolt{fn: func(*Tuple, *BoltCollector) error { return nil }} }

	t.Run("empty topology", func(t *testing.T) {
		if _, err := NewBuilder("t").Build(); err == nil {
			t.Error("empty topology accepted")
		}
	})
	t.Run("no spout", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetBolt("b", mkBolt, 1).ShuffleGrouping("b")
		if _, err := b.Build(); err == nil {
			t.Error("spoutless topology accepted")
		}
	})
	t.Run("spout without output fields", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetSpout("s", mkSpout, 1)
		if _, err := b.Build(); err == nil {
			t.Error("schemaless spout accepted")
		}
	})
	t.Run("unknown producer", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetSpout("s", mkSpout, 1).OutputFields("k")
		b.SetBolt("b", mkBolt, 1).ShuffleGrouping("nope")
		if _, err := b.Build(); err == nil {
			t.Error("subscription to unknown producer accepted")
		}
	})
	t.Run("grouping on absent field", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetSpout("s", mkSpout, 1).OutputFields("k")
		b.SetBolt("b", mkBolt, 1).FieldsGrouping("s", "missing")
		if _, err := b.Build(); err == nil {
			t.Error("grouping on absent field accepted")
		}
	})
	t.Run("bolt without inputs", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetSpout("s", mkSpout, 1).OutputFields("k")
		b.SetBolt("b", mkBolt, 1)
		if _, err := b.Build(); err == nil {
			t.Error("inputless bolt accepted")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetSpout("s", mkSpout, 1).OutputFields("k")
		b.SetBolt("b1", mkBolt, 1).ShuffleGrouping("s").ShuffleGrouping("b2").OutputFields("k")
		b.SetBolt("b2", mkBolt, 1).ShuffleGrouping("b1").OutputFields("k")
		if _, err := b.Build(); err == nil {
			t.Error("cyclic topology accepted")
		}
	})
	t.Run("valid chain", func(t *testing.T) {
		b := NewBuilder("t")
		b.SetSpout("s", mkSpout, 2).OutputFields("k", "n")
		b.SetBolt("b1", mkBolt, 3).FieldsGrouping("s", "k").OutputFields("k", "n")
		b.SetBolt("b2", mkBolt, 1).ShuffleGrouping("b1")
		if _, err := b.Build(); err != nil {
			t.Errorf("valid topology rejected: %v", err)
		}
	})
}

func TestTopologyDeliversAllTuples(t *testing.T) {
	const n = 500
	var count atomic.Int64
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("count", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error {
			count.Add(1)
			return nil
		}}
	}, 4).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if count.Load() != n {
		t.Errorf("bolt executed %d tuples, want %d", count.Load(), n)
	}
	m, _ := topo.MetricsFor("s")
	if m.Emitted != n || m.Delivered != n {
		t.Errorf("spout metrics = %+v", m)
	}
}

func TestFieldsGroupingSingleWriter(t *testing.T) {
	// Every tuple with the same key must land on the same task — the §5.1
	// single-writer guarantee.
	const n = 1000
	var mu sync.Mutex
	keyTask := map[string]map[int]bool{}
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		fb := &funcBolt{}
		fb.fn = func(tp *Tuple, _ *BoltCollector) error {
			k, err := tp.String("k")
			if err != nil {
				return err
			}
			mu.Lock()
			if keyTask[k] == nil {
				keyTask[k] = map[int]bool{}
			}
			keyTask[k][fb.ctx.Task] = true
			mu.Unlock()
			return nil
		}
		return fb
	}, 5).FieldsGrouping("s", "k")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	usedTasks := map[int]bool{}
	for k, tasks := range keyTask {
		if len(tasks) != 1 {
			t.Errorf("key %q processed by %d tasks, want exactly 1", k, len(tasks))
		}
		for task := range tasks {
			usedTasks[task] = true
		}
	}
	if len(keyTask) != 7 {
		t.Errorf("saw %d distinct keys, want 7", len(keyTask))
	}
	if len(usedTasks) < 2 {
		t.Errorf("all keys routed to %d task(s); expected spread over several", len(usedTasks))
	}
}

func TestShuffleGroupingBalances(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int64, 4)
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		fb := &funcBolt{}
		fb.fn = func(*Tuple, *BoltCollector) error {
			counts[fb.ctx.Task].Add(1)
			return nil
		}
		return fb
	}, 4).ShuffleGrouping("s")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		got := counts[i].Load()
		if got != n/4 {
			t.Errorf("task %d processed %d, want %d (round-robin)", i, got, n/4)
		}
	}
}

func TestAllGroupingReplicates(t *testing.T) {
	const n, par = 100, 3
	var count atomic.Int64
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error { count.Add(1); return nil }}
	}, par).AllGrouping("s")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if count.Load() != n*par {
		t.Errorf("executed %d, want %d (every task sees every tuple)", count.Load(), n*par)
	}
}

func TestGlobalGroupingRoutesToTaskZero(t *testing.T) {
	const n = 100
	counts := make([]atomic.Int64, 3)
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		fb := &funcBolt{}
		fb.fn = func(*Tuple, *BoltCollector) error { counts[fb.ctx.Task].Add(1); return nil }
		return fb
	}, 3).GlobalGrouping("s")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if counts[0].Load() != n || counts[1].Load() != 0 || counts[2].Load() != 0 {
		t.Errorf("counts = [%d %d %d], want [%d 0 0]",
			counts[0].Load(), counts[1].Load(), counts[2].Load(), n)
	}
}

func TestMultiStagePipeline(t *testing.T) {
	// spout -> double (emits 2 per input) -> sink; checks fan-out counting
	// and that downstream receives transformed values.
	const n = 200
	var sum atomic.Int64
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 2).
		OutputFields("k", "n")
	b.SetBolt("double", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, out *BoltCollector) error {
			out.Emit(Values{tp.Values[0], 1})
			out.Emit(Values{tp.Values[0], 1})
			return nil
		}}
	}, 3).ShuffleGrouping("s").OutputFields("k", "one")
	b.SetBolt("sink", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, _ *BoltCollector) error {
			sum.Add(int64(tp.Values[1].(int)))
			return nil
		}}
	}, 2).FieldsGrouping("double", "k")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two spout tasks each emit the full slice (each task gets its own
	// sliceSpout instance with the same values).
	if sum.Load() != 2*2*n {
		t.Errorf("sink sum = %d, want %d", sum.Load(), 2*2*n)
	}
}

func TestAckingCompleteTrees(t *testing.T) {
	const n = 300
	spouts := make(chan *sliceSpout, 1)
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout {
		s := &sliceSpout{values: intValues(n), tracked: true}
		spouts <- s
		return s
	}, 1).OutputFields("k", "n")
	b.SetBolt("mid", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, out *BoltCollector) error {
			out.Emit(Values{tp.Values[0], tp.Values[1]})
			return nil
		}}
	}, 3).FieldsGrouping("s", "k").OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error { return nil }}
	}, 2).ShuffleGrouping("mid")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := <-spouts
	if len(s.acked) != n {
		t.Errorf("acked %d trees, want %d", len(s.acked), n)
	}
	if len(s.failed) != 0 {
		t.Errorf("failed %d trees, want 0", len(s.failed))
	}
	m, _ := topo.MetricsFor("s")
	if m.Acked != n {
		t.Errorf("metrics acked = %d, want %d", m.Acked, n)
	}
}

func TestAckingFailedTrees(t *testing.T) {
	const n = 50
	spouts := make(chan *sliceSpout, 1)
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout {
		s := &sliceSpout{values: intValues(n), tracked: true}
		spouts <- s
		return s
	}, 1).OutputFields("k", "n")
	b.SetBolt("flaky", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, _ *BoltCollector) error {
			if tp.Values[1].(int)%5 == 0 {
				return fmt.Errorf("synthetic failure")
			}
			return nil
		}}
	}, 2).ShuffleGrouping("s")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := <-spouts
	wantFailed := n / 5
	if len(s.failed) != wantFailed {
		t.Errorf("failed %d trees, want %d", len(s.failed), wantFailed)
	}
	if len(s.acked) != n-wantFailed {
		t.Errorf("acked %d trees, want %d", len(s.acked), n-wantFailed)
	}
}

func TestBackpressureSmallQueues(t *testing.T) {
	// A tiny queue forces the spout to block on a slow consumer; the run
	// must still complete with every tuple processed.
	const n = 200
	var count atomic.Int64
	b := NewBuilder("t").SetQueueSize(2)
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("slow", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error {
			time.Sleep(50 * time.Microsecond)
			count.Add(1)
			return nil
		}}
	}, 1).ShuffleGrouping("s")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if count.Load() != n {
		t.Errorf("processed %d, want %d", count.Load(), n)
	}
}

// infiniteSpout emits forever until its context is cancelled by the runtime.
type infiniteSpout struct{ out *SpoutCollector }

func (s *infiniteSpout) Open(_ *Context, out *SpoutCollector) error { s.out = out; return nil }
func (s *infiniteSpout) Close() error                               { return nil }
func (s *infiniteSpout) NextTuple() (bool, error) {
	s.out.Emit(Values{"k", 1})
	return true, nil
}

func TestContextCancellationStopsInfiniteStream(t *testing.T) {
	var count atomic.Int64
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &infiniteSpout{} }, 1).OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error { count.Add(1); return nil }}
	}, 2).ShuffleGrouping("s")
	topo, _ := b.Build()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- topo.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("topology did not stop after cancellation")
	}
	if count.Load() == 0 {
		t.Error("no tuples processed before cancellation")
	}
}

func TestTopologyIsSingleUse(t *testing.T) {
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(1)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("sink", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error { return nil }}
	}, 1).ShuffleGrouping("s")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err == nil {
		t.Error("second Run succeeded, want error")
	}
}

func TestTupleFieldAccess(t *testing.T) {
	tp := &Tuple{Values: Values{"u1", 42}, schema: []string{"user", "n"}, Source: "s"}
	if v, err := tp.String("user"); err != nil || v != "u1" {
		t.Errorf("String(user) = %q, %v", v, err)
	}
	if _, err := tp.String("n"); err == nil {
		t.Error("String on int field succeeded, want type error")
	}
	if _, err := tp.Field("missing"); err == nil {
		t.Error("Field(missing) succeeded, want error")
	}
	if v, err := tp.Field("n"); err != nil || v.(int) != 42 {
		t.Errorf("Field(n) = %v, %v", v, err)
	}
}

func TestMetricsForUnknownComponent(t *testing.T) {
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{} }, 1).OutputFields("k")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.MetricsFor("nope"); err == nil {
		t.Error("MetricsFor unknown component succeeded")
	}
	if got := topo.Components(); len(got) != 1 || got[0] != "s" {
		t.Errorf("Components = %v", got)
	}
}

// trackingSpout records the maximum pending tracked-tuple count it ever
// observed between emissions.
type trackingSpout struct {
	sliceSpout
	pending    int
	maxPending int
}

func (s *trackingSpout) NextTuple() (bool, error) {
	if s.pending > s.maxPending {
		s.maxPending = s.pending
	}
	if s.pos >= len(s.values) {
		return false, nil
	}
	s.out.EmitTracked(s.pos, s.values[s.pos])
	s.pos++
	s.pending++
	return true, nil
}

func (s *trackingSpout) Ack(msgID any) {
	s.pending--
	s.sliceSpout.Ack(msgID)
}

func (s *trackingSpout) Fail(msgID any) {
	s.pending--
	s.sliceSpout.Fail(msgID)
}

func TestMaxSpoutPendingBoundsInFlightWork(t *testing.T) {
	const n, capPending = 300, 8
	spouts := make(chan *trackingSpout, 1)
	b := NewBuilder("t").SetMaxSpoutPending(capPending)
	b.SetSpout("s", func() Spout {
		s := &trackingSpout{sliceSpout: sliceSpout{values: intValues(n)}}
		spouts <- s
		return s
	}, 1).OutputFields("k", "n")
	b.SetBolt("slow", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error {
			time.Sleep(100 * time.Microsecond)
			return nil
		}}
	}, 1).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := <-spouts
	if len(s.acked) != n {
		t.Errorf("acked %d, want %d", len(s.acked), n)
	}
	// Pending may reach the cap but not exceed it (the check happens
	// before each emission; pending increments after).
	if s.maxPending > capPending {
		t.Errorf("observed %d pending trees, cap %d", s.maxPending, capPending)
	}
}

func TestSpoutErrorRecorded(t *testing.T) {
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout {
		return &errorSpout{}
	}, 1).OutputFields("k")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err == nil {
		t.Error("spout error not surfaced by Run")
	}
}

type errorSpout struct{}

func (s *errorSpout) Open(*Context, *SpoutCollector) error { return nil }
func (s *errorSpout) Close() error                         { return nil }
func (s *errorSpout) NextTuple() (bool, error)             { return false, fmt.Errorf("boom") }

// prepareFailBolt fails Prepare; its queue must still drain so upstream
// never blocks.
type prepareFailBolt struct{}

func (b *prepareFailBolt) Prepare(*Context, *BoltCollector) error { return fmt.Errorf("prepare boom") }
func (b *prepareFailBolt) Execute(*Tuple) error                   { return nil }
func (b *prepareFailBolt) Cleanup() error                         { return nil }

func TestBoltPrepareFailureDrainsQueue(t *testing.T) {
	b := NewBuilder("t").SetQueueSize(2) // small queue: upstream must not deadlock
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(500)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("broken", func() Bolt { return &prepareFailBolt{} }, 1).ShuffleGrouping("s")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- topo.Run(context.Background()) }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("prepare failure not surfaced by Run")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("topology deadlocked after prepare failure")
	}
}

func TestFieldsGroupingOnIntField(t *testing.T) {
	// Grouping by a non-string field must route deterministically too.
	const n = 400
	var mu sync.Mutex
	keyTask := map[int]map[int]bool{}
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("mod", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, out *BoltCollector) error {
			out.Emit(Values{tp.Values[1].(int) % 5})
			return nil
		}}
	}, 2).ShuffleGrouping("s").OutputFields("bucket")
	b.SetBolt("sink", func() Bolt {
		fb := &funcBolt{}
		fb.fn = func(tp *Tuple, _ *BoltCollector) error {
			v := tp.Values[0].(int)
			mu.Lock()
			if keyTask[v] == nil {
				keyTask[v] = map[int]bool{}
			}
			keyTask[v][fb.ctx.Task] = true
			mu.Unlock()
			return nil
		}
		return fb
	}, 4).FieldsGrouping("mod", "bucket")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for v, tasks := range keyTask {
		if len(tasks) != 1 {
			t.Errorf("int key %d processed by %d tasks, want 1", v, len(tasks))
		}
	}
	if len(keyTask) != 5 {
		t.Errorf("saw %d buckets, want 5", len(keyTask))
	}
}

func TestMultipleConsumersOfOneProducer(t *testing.T) {
	// Two bolts subscribing to the same spout must each receive every
	// tuple (stream duplication, not splitting).
	const n = 200
	var a, b2 atomic.Int64
	b := NewBuilder("t")
	b.SetSpout("s", func() Spout { return &sliceSpout{values: intValues(n)} }, 1).
		OutputFields("k", "n")
	b.SetBolt("left", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error { a.Add(1); return nil }}
	}, 2).ShuffleGrouping("s")
	b.SetBolt("right", func() Bolt {
		return &funcBolt{fn: func(*Tuple, *BoltCollector) error { b2.Add(1); return nil }}
	}, 3).FieldsGrouping("s", "k")
	topo, _ := b.Build()
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.Load() != n || b2.Load() != n {
		t.Errorf("consumers saw %d/%d tuples, want %d each", a.Load(), b2.Load(), n)
	}
	m, _ := topo.MetricsFor("s")
	if m.Delivered != 2*n {
		t.Errorf("delivered = %d, want %d", m.Delivered, 2*n)
	}
}
