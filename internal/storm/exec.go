package storm

import (
	"context"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// Topology is an executable instance of a Builder definition. Build it with
// Builder.Build and run it with Run; a Topology is single-use.
type Topology struct {
	name       string
	queueSize  int
	maxPending int
	comps      []*component
	byName     map[string]*component
	acker      *acker
	// synchronous selects the single-goroutine deterministic scheduler
	// (see sync.go); syncQ is its FIFO work queue, touched only from the
	// driving goroutine.
	synchronous bool
	syncQ       []syncDelivery

	errMu  sync.Mutex
	errs   []error // guarded by errMu
	ranYet atomic.Bool
}

type component struct {
	def     *componentDef
	tasks   []*task
	metrics Metrics
	// consumers lists the subscriptions of downstream components reading
	// this component's output, resolved at build time.
	consumers []*consumerLink
	// pendingProducers counts upstream tasks still running; when it hits
	// zero the component's input queues close (drain protocol).
	pendingProducers atomic.Int64
}

type consumerLink struct {
	sub  subscription
	comp *component
}

type task struct {
	comp  *component
	index int
	in    chan *Tuple
	spout Spout
	bolt  Bolt
	// shuffle counters, one per consumer link, for round-robin routing.
	rr []atomic.Uint64
	// notices delivers completed/failed root notifications to spout tasks
	// without ever blocking the acker (see notifier).
	notices *notifier
	// edgeRand issues the pseudo-random edge ids for tracked deliveries.
	// Seeded per task at build time so runs with the same Builder seed are
	// reproducible; only touched from the task's own goroutine. Edge ids
	// must stay pseudo-random — sequential ids would let distinct
	// outstanding subsets XOR to zero (1^2^3 == 0) and complete a tree
	// early.
	edgeRand *rand.Rand
	// pendingRoots counts this spout task's unresolved tracked tuples.
	pendingRoots int64
	msgIDs       map[int64]any // root -> spout message id
	// dead marks a task whose lifecycle setup failed in synchronous mode:
	// deliveries to it fail their trees instead of executing.
	dead bool
	// syncCollector is the task's persistent collector in synchronous mode.
	syncCollector *BoltCollector
}

type ackNotice struct {
	root   int64
	failed bool
}

// Metrics are per-component counters, updated atomically while the topology
// runs.
type Metrics struct {
	// Emitted counts tuples emitted by the component (before fan-out).
	Emitted atomic.Uint64
	// Delivered counts tuple instances enqueued to consumers.
	Delivered atomic.Uint64
	// Executed counts bolt Execute calls.
	Executed atomic.Uint64
	// Failed counts bolt Execute calls that returned an error.
	Failed atomic.Uint64
	// Acked counts spout tuple trees fully processed.
	Acked atomic.Uint64
	// FailedTrees counts spout tuple trees that failed.
	FailedTrees atomic.Uint64
}

// MetricsSnapshot is a point-in-time copy of Metrics.
type MetricsSnapshot struct {
	Emitted, Delivered, Executed, Failed, Acked, FailedTrees uint64
	// QueueDepth is the number of tuples currently buffered across the
	// component's task queues — the backpressure gauge an operator watches
	// to find the bottleneck bolt.
	QueueDepth int
}

// Build validates the definition and instantiates every task.
func (b *Builder) Build() (*Topology, error) {
	if err := b.validate(); err != nil {
		return nil, err
	}
	t := &Topology{
		name:        b.name,
		queueSize:   b.queueSize,
		maxPending:  b.maxPending,
		synchronous: b.synchronous,
		byName:      make(map[string]*component, len(b.order)),
	}
	for _, name := range b.order {
		c := &component{def: b.components[name]}
		t.comps = append(t.comps, c)
		t.byName[name] = c
	}
	// Resolve subscriptions into producer→consumer links and count
	// producers per consumer.
	for _, c := range t.comps {
		for _, sub := range c.def.inputs {
			producer := t.byName[sub.producer]
			producer.consumers = append(producer.consumers, &consumerLink{sub: sub, comp: c})
			c.pendingProducers.Add(int64(producer.def.parallelism))
		}
	}
	// Instantiate tasks.
	for ci, c := range t.comps {
		c.tasks = make([]*task, c.def.parallelism)
		for i := range c.tasks {
			tk := &task{comp: c, index: i, rr: make([]atomic.Uint64, len(c.consumers))}
			tk.edgeRand = rand.New(rand.NewPCG(b.seed, uint64(ci)<<32|uint64(i)))
			if c.def.spoutFn != nil {
				tk.spout = c.def.spoutFn()
				tk.notices = newNotifier()
				tk.msgIDs = make(map[int64]any)
			} else {
				tk.bolt = c.def.boltFn()
				tk.in = make(chan *Tuple, b.queueSize)
			}
			c.tasks[i] = tk
		}
	}
	t.acker = newAcker()
	return t, nil
}

// Run executes the topology until every spout is exhausted (NextTuple
// returned false) or ctx is cancelled, then drains all in-flight tuples and
// shuts down cleanly. It returns the combined errors raised by component
// lifecycles; bolt Execute errors fail tuple trees and are counted in
// metrics but do not abort the run.
func (t *Topology) Run(ctx context.Context) error {
	if t.ranYet.Swap(true) {
		return fmt.Errorf("storm: topology %q has already run", t.name)
	}
	if t.synchronous {
		return t.runSync(ctx)
	}
	t.acker.start()

	var wg sync.WaitGroup
	for _, c := range t.comps {
		for _, tk := range c.tasks {
			wg.Add(1)
			go func(tk *task) {
				defer wg.Done()
				if tk.spout != nil {
					t.runSpout(ctx, tk)
				} else {
					t.runBolt(ctx, tk)
				}
			}(tk)
		}
	}
	wg.Wait()
	t.acker.stop()
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return errors.Join(t.errs...)
}

func (t *Topology) recordErr(err error) {
	t.errMu.Lock()
	t.errs = append(t.errs, err)
	t.errMu.Unlock()
}

// taskFinished implements the drain protocol: when the last producer task of
// a consumer component finishes, that component's input queues close, which
// lets its tasks drain and finish, cascading downstream.
func (t *Topology) taskFinished(c *component) {
	for _, link := range c.consumers {
		if link.comp.pendingProducers.Add(-int64(1)) == 0 {
			for _, tk := range link.comp.tasks {
				close(tk.in)
			}
		}
	}
}

func (t *Topology) runSpout(ctx context.Context, tk *task) {
	defer t.taskFinished(tk.comp)
	collector := &SpoutCollector{topo: t, task: tk}
	cctx := &Context{Component: tk.comp.def.name, Task: tk.index, Parallelism: tk.comp.def.parallelism, Ctx: ctx}
	if err := tk.spout.Open(cctx, collector); err != nil {
		t.recordErr(fmt.Errorf("storm: spout %s[%d] open: %w", tk.comp.def.name, tk.index, err))
		return
	}
	defer func() {
		if err := tk.spout.Close(); err != nil {
			t.recordErr(fmt.Errorf("storm: spout %s[%d] close: %w", tk.comp.def.name, tk.index, err))
		}
	}()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		default:
		}
		tk.drainAcks(false)
		// Max-spout-pending: hold off emitting while too many tracked
		// trees are unresolved. Resolution is guaranteed because bolts
		// keep draining, so this wait always terminates.
		for t.maxPending > 0 && tk.pendingRoots >= int64(t.maxPending) {
			if !tk.drainAcks(true) {
				break loop
			}
		}
		more, err := tk.spout.NextTuple()
		if err != nil {
			t.recordErr(fmt.Errorf("storm: spout %s[%d] next: %w", tk.comp.def.name, tk.index, err))
			break
		}
		if !more {
			break
		}
	}
	// Linger until every tracked tuple tree this task emitted resolves.
	// Downstream components keep draining after spouts stop, so resolution
	// is guaranteed for finite queues.
	for tk.pendingRoots > 0 {
		if !tk.drainAcks(true) {
			break
		}
	}
}

// drainAcks dispatches pending ack notices to the spout's hooks on the
// spout's own goroutine (Storm's threading contract). When block is true it
// waits for at least one notice. It reports whether progress is still
// possible (false only if the notifier has been closed).
func (tk *task) drainAcks(block bool) bool {
	ack, _ := tk.spout.(Acknowledger)
	for {
		n, ok := tk.notices.get(block)
		if !ok {
			if block {
				return false
			}
			return true
		}
		block = false
		msgID := tk.msgIDs[n.root]
		delete(tk.msgIDs, n.root)
		tk.pendingRoots--
		if n.failed {
			tk.comp.metrics.FailedTrees.Add(1)
			if ack != nil {
				ack.Fail(msgID)
			}
		} else {
			tk.comp.metrics.Acked.Add(1)
			if ack != nil {
				ack.Ack(msgID)
			}
		}
	}
}

func (t *Topology) runBolt(ctx context.Context, tk *task) {
	defer t.taskFinished(tk.comp)
	collector := &BoltCollector{topo: t, task: tk}
	cctx := &Context{Component: tk.comp.def.name, Task: tk.index, Parallelism: tk.comp.def.parallelism, Ctx: ctx}
	if err := tk.bolt.Prepare(cctx, collector); err != nil {
		t.recordErr(fmt.Errorf("storm: bolt %s[%d] prepare: %w", tk.comp.def.name, tk.index, err))
		// The task must still drain its queue or upstream would block.
		for range tk.in {
		}
		return
	}
	for tuple := range tk.in {
		collector.current = tuple
		collector.emittedXor = 0
		err := tk.bolt.Execute(tuple)
		collector.current = nil
		tk.comp.metrics.Executed.Add(1)
		if err != nil {
			tk.comp.metrics.Failed.Add(1)
			if tuple.root != 0 {
				t.acker.fail(tuple.root)
			}
			continue
		}
		if tuple.root != 0 {
			// Ack: XOR of the consumed edge and all anchored emissions.
			t.acker.ack(tuple.root, tuple.edge^collector.emittedXor)
		}
	}
	if err := tk.bolt.Cleanup(); err != nil {
		t.recordErr(fmt.Errorf("storm: bolt %s[%d] cleanup: %w", tk.comp.def.name, tk.index, err))
	}
}

// route fans an emission out to every consumer of the producing component.
// It returns the XOR of the edge ids assigned to tracked deliveries.
func (t *Topology) route(tk *task, values Values, root int64) uint64 {
	c := tk.comp
	c.metrics.Emitted.Add(1)
	var xor uint64
	for li, link := range c.consumers {
		targets := link.targets(tk, li, values, c.def.outFields)
		for _, target := range targets {
			tuple := &Tuple{
				Values: values,
				Source: c.def.name,
				schema: c.def.outFields,
				root:   root,
			}
			if root != 0 {
				tuple.edge = tk.edgeRand.Uint64() | 1 // never 0: 0 means untracked
				xor ^= tuple.edge
			}
			if t.synchronous {
				t.syncQ = append(t.syncQ, syncDelivery{task: target, tuple: tuple})
			} else {
				target.in <- tuple
			}
			c.metrics.Delivered.Add(1)
		}
	}
	return xor
}

// targets selects the destination task(s) for one delivery under the link's
// grouping.
func (l *consumerLink) targets(from *task, linkIdx int, values Values, schema []string) []*task {
	tasks := l.comp.tasks
	switch l.sub.kind {
	case groupShuffle:
		i := from.rr[linkIdx].Add(1)
		return tasks[int(i)%len(tasks) : int(i)%len(tasks)+1]
	case groupFields:
		h := fnv.New64a()
		for _, f := range l.sub.fields {
			for i, name := range schema {
				if name == f {
					hashValue(h, values[i])
					break
				}
			}
		}
		idx := int(h.Sum64() % uint64(len(tasks)))
		return tasks[idx : idx+1]
	case groupAll:
		return tasks
	case groupGlobal:
		return tasks[0:1]
	default:
		panic(fmt.Sprintf("storm: unknown grouping %v", l.sub.kind))
	}
}

func hashValue(h hash.Hash, v any) {
	switch x := v.(type) {
	case string:
		h.Write([]byte(x))
	case []byte:
		h.Write(x)
	case int:
		writeUint64(h, uint64(x))
	case int64:
		writeUint64(h, uint64(x))
	case uint64:
		writeUint64(h, x)
	case float64:
		writeUint64(h, uint64(int64(x*1e6)))
	case bool:
		if x {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case fmt.Stringer:
		h.Write([]byte(x.String()))
	default:
		fmt.Fprintf(h, "%v", x)
	}
}

func writeUint64(h hash.Hash, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
}

// MetricsFor returns a snapshot of the named component's counters.
func (t *Topology) MetricsFor(component string) (MetricsSnapshot, error) {
	c, ok := t.byName[component]
	if !ok {
		return MetricsSnapshot{}, fmt.Errorf("storm: unknown component %q", component)
	}
	m := &c.metrics
	snap := MetricsSnapshot{
		Emitted:     m.Emitted.Load(),
		Delivered:   m.Delivered.Load(),
		Executed:    m.Executed.Load(),
		Failed:      m.Failed.Load(),
		Acked:       m.Acked.Load(),
		FailedTrees: m.FailedTrees.Load(),
	}
	for _, tk := range c.tasks {
		if tk.in != nil {
			snap.QueueDepth += len(tk.in)
		}
	}
	return snap, nil
}

// UnresolvedTrees reports the number of tracked tuple trees that were
// neither acked nor failed by the time the topology shut down. It returns -1
// while the topology is still running (or has not run); after Run returns,
// a conservation-clean run reports 0.
func (t *Topology) UnresolvedTrees() int {
	select {
	case <-t.acker.done:
		return len(t.acker.entries)
	default:
		return -1
	}
}

// Components returns the component names in declaration order.
func (t *Topology) Components() []string {
	out := make([]string, len(t.comps))
	for i, c := range t.comps {
		out[i] = c.def.name
	}
	return out
}

// SpoutCollector emits tuples on behalf of one spout task.
type SpoutCollector struct {
	topo *Topology
	task *task
}

// Emit sends an untracked tuple downstream: no ack tree is built and the
// spout receives no completion callback. This is the high-throughput mode.
func (c *SpoutCollector) Emit(values Values) {
	c.topo.route(c.task, values, 0)
}

// EmitTracked sends a tuple with reliability tracking. When every descendant
// tuple has been processed the spout's Ack(msgID) hook fires; if any bolt
// execution on the tree fails, Fail(msgID) fires instead.
func (c *SpoutCollector) EmitTracked(msgID any, values Values) {
	root := c.topo.acker.newRoot(c.task)
	c.task.msgIDs[root] = msgID
	c.task.pendingRoots++
	xor := c.topo.route(c.task, values, root)
	c.topo.acker.initWithOrigin(root, xor, c.task)
}

// BoltCollector emits tuples on behalf of one bolt task. Tuples emitted
// during Execute are anchored to the input tuple's ack tree.
type BoltCollector struct {
	topo       *Topology
	task       *task
	current    *Tuple
	emittedXor uint64
}

// Emit sends a tuple downstream, anchored to the tuple currently being
// executed (if any, and if that tuple is tracked).
func (c *BoltCollector) Emit(values Values) {
	root := int64(0)
	if c.current != nil {
		root = c.current.root
	}
	xor := c.topo.route(c.task, values, root)
	c.emittedXor ^= xor
}
