package storm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// buildSyncDiamond assembles spout → (left, right) → sink, all synchronous,
// with sink recording the exact order of tuples it executes. The diamond
// shape is the interesting case: under the concurrent scheduler left and
// right race; under the synchronous one their interleaving is fixed.
func buildSyncDiamond(t *testing.T, n int, tracked bool) (*Topology, *[]string) {
	t.Helper()
	var order []string
	var mu sync.Mutex
	b := NewBuilder("sync-diamond").SetSynchronous(true)
	b.SetSpout("s", func() Spout {
		return &sliceSpout{values: intValues(n), tracked: tracked}
	}, 1).OutputFields("k", "i")
	passThrough := func(tag string) func() Bolt {
		return func() Bolt {
			return &funcBolt{fn: func(tp *Tuple, out *BoltCollector) error {
				out.Emit(Values{tag, tp.Values[1]})
				return nil
			}}
		}
	}
	b.SetBolt("left", passThrough("left"), 1).FieldsGrouping("s", "k").OutputFields("tag", "i")
	b.SetBolt("right", passThrough("right"), 1).FieldsGrouping("s", "k").OutputFields("tag", "i")
	b.SetBolt("sink", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, _ *BoltCollector) error {
			mu.Lock()
			order = append(order, fmt.Sprintf("%v/%v", tp.Values[0], tp.Values[1]))
			mu.Unlock()
			return nil
		}}
	}, 1).ShuffleGrouping("left").ShuffleGrouping("right")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return topo, &order
}

// TestSynchronousDeterministicOrder runs the diamond twice and demands the
// sink sees the exact same execution order — the property the simulation
// harness's replay-determinism scenario is built on.
func TestSynchronousDeterministicOrder(t *testing.T) {
	run := func() []string {
		topo, order := buildSyncDiamond(t, 50, true)
		if err := topo.Run(context.Background()); err != nil {
			t.Fatalf("run: %v", err)
		}
		return *order
	}
	first, second := run(), run()
	if len(first) != 100 { // 50 spout tuples × 2 branches
		t.Fatalf("sink executed %d tuples, want 100", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("runs executed different tuple counts: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("execution order diverged at %d: %q vs %q", i, first[i], second[i])
		}
	}
}

// TestSynchronousAccounting checks the synchronous scheduler keeps the same
// acker conservation law as the concurrent one: every tracked tuple acked or
// failed exactly once, nothing unresolved at shutdown.
func TestSynchronousAccounting(t *testing.T) {
	const n = 120
	errBoom := errors.New("boom")
	b := NewBuilder("sync-acct").SetSynchronous(true).SetMaxSpoutPending(1)
	b.SetSpout("s", func() Spout {
		return &sliceSpout{values: intValues(n), tracked: true}
	}, 1).OutputFields("k", "i")
	b.SetBolt("work", func() Bolt {
		return &funcBolt{fn: func(tp *Tuple, _ *BoltCollector) error {
			if tp.Values[1].(int)%10 == 3 {
				return errBoom
			}
			return nil
		}}
	}, 3).FieldsGrouping("s", "k")
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := topo.MetricsFor("s")
	if err != nil {
		t.Fatal(err)
	}
	if m.Emitted != n {
		t.Errorf("emitted %d, want %d", m.Emitted, n)
	}
	if m.Acked+m.FailedTrees != n {
		t.Errorf("acked %d + failed %d != emitted %d", m.Acked, m.FailedTrees, n)
	}
	if m.FailedTrees == 0 {
		t.Error("no trees failed — the failing bolt never fired")
	}
	if got := topo.UnresolvedTrees(); got != 0 {
		t.Errorf("%d unresolved trees after synchronous run, want 0", got)
	}
}

// TestSynchronousMatchesConcurrentTotals runs the same definition under both
// schedulers and compares totals (order may differ; conservation must not).
func TestSynchronousMatchesConcurrentTotals(t *testing.T) {
	build := func(sync bool) *Topology {
		b := NewBuilder("modes").SetSynchronous(sync)
		b.SetSpout("s", func() Spout {
			return &sliceSpout{values: intValues(80), tracked: true}
		}, 1).OutputFields("k", "i")
		b.SetBolt("fan", func() Bolt {
			return &funcBolt{fn: func(tp *Tuple, out *BoltCollector) error {
				out.Emit(Values{tp.Values[0], tp.Values[1]})
				out.Emit(Values{tp.Values[0], tp.Values[1]})
				return nil
			}}
		}, 2).FieldsGrouping("s", "k").OutputFields("k", "i")
		b.SetBolt("sink", func() Bolt {
			return &funcBolt{fn: func(*Tuple, *BoltCollector) error { return nil }}
		}, 2).ShuffleGrouping("fan")
		topo, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return topo
	}
	totals := func(topo *Topology) (spout, sink MetricsSnapshot) {
		if err := topo.Run(context.Background()); err != nil {
			t.Fatalf("run: %v", err)
		}
		s, err := topo.MetricsFor("s")
		if err != nil {
			t.Fatal(err)
		}
		k, err := topo.MetricsFor("sink")
		if err != nil {
			t.Fatal(err)
		}
		return s, k
	}
	syncSpout, syncSink := totals(build(true))
	asyncSpout, asyncSink := totals(build(false))
	if syncSpout.Emitted != asyncSpout.Emitted || syncSpout.Acked != asyncSpout.Acked {
		t.Errorf("spout totals differ: sync {emitted %d acked %d}, concurrent {emitted %d acked %d}",
			syncSpout.Emitted, syncSpout.Acked, asyncSpout.Emitted, asyncSpout.Acked)
	}
	if syncSink.Executed != asyncSink.Executed {
		t.Errorf("sink executed %d under sync, %d under concurrent", syncSink.Executed, asyncSink.Executed)
	}
}
