// Package storm is a from-scratch, single-process reimplementation of the
// programming model of Apache Storm, the distributed real-time computation
// system the paper deploys on (§5.1): topologies of spouts and bolts
// connected by streams of tuples, with configurable parallelism and stream
// groupings.
//
// The semantics the recommendation topology depends on are reproduced
// faithfully:
//
//   - Components execute as parallel tasks (goroutines) with bounded input
//     queues, so backpressure propagates upstream just as bounded Storm
//     executor queues do.
//   - Fields grouping routes tuples with equal values of the grouping
//     fields to the same task. This is the property §5.1's correctness
//     argument rests on: grouping vector updates by their storage key makes
//     each key single-writer, so "no write conflict would happen".
//   - An acker tracks each tuple tree with the XOR trick Storm uses, giving
//     at-least-once semantics: when every descendant of a spout tuple is
//     acked the spout's Ack hook fires; a failed bolt execution fails the
//     whole tree immediately.
//
// Distribution across machines is out of scope (parallelism is real,
// placement is simulated); see DESIGN.md §3.
package storm

import "fmt"

// Values is the payload of a tuple: one value per declared output field.
type Values []any

// Tuple is a unit of stream data flowing between components. Field names
// come from the producing component's declared output schema.
type Tuple struct {
	// Values holds the field values, parallel to the producer's schema.
	// The slice is shared between every consumer the tuple fans out to
	// (as in Storm itself): bolts must treat it as read-only.
	Values Values
	// Source is the component that emitted the tuple.
	Source string

	schema []string
	root   int64  // id of the spout tuple this descends from (0 = untracked)
	edge   uint64 // this delivery's edge id in the ack tree
}

// Field returns the value of the named field.
func (t *Tuple) Field(name string) (any, error) {
	for i, f := range t.schema {
		if f == name {
			return t.Values[i], nil
		}
	}
	return nil, fmt.Errorf("storm: tuple from %q has no field %q (schema %v)", t.Source, name, t.schema)
}

// String returns the value of the named field as a string. It errors if the
// field is absent or not a string — tuple schemas are declared statically,
// so a type mismatch is a wiring bug worth surfacing loudly.
func (t *Tuple) String(name string) (string, error) {
	v, err := t.Field(name)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("storm: field %q is %T, not string", name, v)
	}
	return s, nil
}

// Schema returns the field names of the tuple.
func (t *Tuple) Schema() []string { return t.schema }

// groupingKind enumerates how a subscription routes tuples to tasks.
type groupingKind uint8

const (
	// groupShuffle distributes tuples round-robin across tasks.
	groupShuffle groupingKind = iota
	// groupFields routes by hash of the named fields: equal keys, same task.
	groupFields
	// groupAll replicates every tuple to every task.
	groupAll
	// groupGlobal routes every tuple to task 0.
	groupGlobal
)

func (g groupingKind) String() string {
	switch g {
	case groupShuffle:
		return "shuffle"
	case groupFields:
		return "fields"
	case groupAll:
		return "all"
	case groupGlobal:
		return "global"
	default:
		return fmt.Sprintf("grouping(%d)", uint8(g))
	}
}
