package storm

import (
	"context"
	"fmt"
)

// Spout produces the input streams of a topology. One Spout instance is
// created per task by the factory passed to SetSpout.
type Spout interface {
	// Open is called once before the first NextTuple, with the task's
	// context and the collector to emit through.
	Open(ctx *Context, out *SpoutCollector) error
	// NextTuple emits zero or more tuples through the collector and
	// reports whether more input may follow. Returning false ends the
	// task; the runtime then drains downstream components. NextTuple is
	// called from a single goroutine.
	NextTuple() (more bool, err error)
	// Close is called when the task ends.
	Close() error
}

// Acknowledger is optionally implemented by Spouts that emit tracked tuples
// (EmitTracked). Ack fires when every tuple in the tree rooted at the
// message has been processed; Fail fires as soon as any execution in the
// tree returns an error.
type Acknowledger interface {
	Ack(msgID any)
	Fail(msgID any)
}

// Bolt consumes input streams and optionally emits new ones. One Bolt
// instance is created per task by the factory passed to SetBolt.
type Bolt interface {
	// Prepare is called once before the first Execute.
	Prepare(ctx *Context, out *BoltCollector) error
	// Execute processes one input tuple. Emitting through the collector
	// anchors new tuples to the input's ack tree. Returning an error
	// fails the input's tuple tree (the spout's Fail hook fires) but does
	// not stop the topology. Execute is called from a single goroutine.
	Execute(t *Tuple) error
	// Cleanup is called when the task's input stream is exhausted.
	Cleanup() error
}

// Context carries per-task information into Open/Prepare.
type Context struct {
	// Component is the name the component was registered under.
	Component string
	// Task is this instance's index in [0, Parallelism).
	Task int
	// Parallelism is the component's task count.
	Parallelism int
	// Ctx is the run context passed to Topology.Run. Components must thread
	// it into every blocking call (store reads/writes, network round trips)
	// so that cancelling the run cannot leave a task wedged on a dead
	// storage tier — the ctxcheck lint pass enforces this in the serving
	// packages.
	Ctx context.Context
}

// subscription connects a consumer component to one producer stream.
type subscription struct {
	producer string
	kind     groupingKind
	fields   []string
}

type componentDef struct {
	name        string
	parallelism int
	outFields   []string
	spoutFn     func() Spout
	boltFn      func() Bolt
	inputs      []subscription
}

// Builder accumulates a topology definition: components, parallelism,
// output schemas and groupings. It mirrors Storm's TopologyBuilder.
type Builder struct {
	name        string
	components  map[string]*componentDef
	order       []string // declaration order, for deterministic setup
	queueSize   int
	maxPending  int
	seed        uint64
	synchronous bool
}

// NewBuilder returns an empty topology definition with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:       name,
		components: make(map[string]*componentDef),
		queueSize:  1024,
		seed:       0x9e3779b97f4a7c15, // fixed default: builds are reproducible without SetSeed
	}
}

// SetSeed sets the seed for the per-task edge-id generators. Two topologies
// built from identical definitions with the same seed assign identical edge
// ids, which the simulation harness relies on for replay determinism.
func (b *Builder) SetSeed(seed uint64) *Builder {
	b.seed = seed
	return b
}

// SetSynchronous selects the single-goroutine deterministic scheduler: Run
// executes the whole topology on the caller's goroutine, draining each spout
// tuple's full tree (FIFO) before the next emission. Routing, groupings,
// metrics, and acker accounting are unchanged — only concurrency is removed,
// making execution order (and therefore every store write) a pure function
// of the spout stream. The simulation harness's replay-determinism scenario
// runs in this mode; the concurrent scheduler cannot make that guarantee
// because sibling bolts race on shared state even at parallelism one.
func (b *Builder) SetSynchronous(sync bool) *Builder {
	b.synchronous = sync
	return b
}

// SetQueueSize sets the per-task input queue capacity (default 1024).
// Smaller queues propagate backpressure sooner.
func (b *Builder) SetQueueSize(n int) *Builder {
	if n > 0 {
		b.queueSize = n
	}
	return b
}

// SetMaxSpoutPending caps the number of unresolved tracked tuple trees per
// spout task (Storm's topology.max.spout.pending): a spout with the cap
// reached waits for acks before emitting more, bounding in-flight work.
// Zero (the default) means unbounded. Only EmitTracked counts against the
// cap.
func (b *Builder) SetMaxSpoutPending(n int) *Builder {
	if n >= 0 {
		b.maxPending = n
	}
	return b
}

// SpoutDecl configures a spout being added to the topology.
type SpoutDecl struct{ def *componentDef }

// BoltDecl configures a bolt being added to the topology.
type BoltDecl struct{ def *componentDef }

// SetSpout registers a spout component. factory is invoked once per task.
func (b *Builder) SetSpout(name string, factory func() Spout, parallelism int) *SpoutDecl {
	def := b.add(name, parallelism)
	def.spoutFn = factory
	return &SpoutDecl{def: def}
}

// SetBolt registers a bolt component. factory is invoked once per task.
func (b *Builder) SetBolt(name string, factory func() Bolt, parallelism int) *BoltDecl {
	def := b.add(name, parallelism)
	def.boltFn = factory
	return &BoltDecl{def: def}
}

func (b *Builder) add(name string, parallelism int) *componentDef {
	if parallelism < 1 {
		parallelism = 1
	}
	def := &componentDef{name: name, parallelism: parallelism}
	if _, dup := b.components[name]; !dup {
		b.order = append(b.order, name)
	}
	b.components[name] = def
	return def
}

// OutputFields declares the spout's tuple schema.
func (s *SpoutDecl) OutputFields(fields ...string) *SpoutDecl {
	s.def.outFields = fields
	return s
}

// OutputFields declares the bolt's tuple schema. Bolts that only store
// results (terminal bolts) can omit it.
func (d *BoltDecl) OutputFields(fields ...string) *BoltDecl {
	d.def.outFields = fields
	return d
}

// ShuffleGrouping subscribes the bolt to producer with round-robin routing.
func (d *BoltDecl) ShuffleGrouping(producer string) *BoltDecl {
	d.def.inputs = append(d.def.inputs, subscription{producer: producer, kind: groupShuffle})
	return d
}

// FieldsGrouping subscribes the bolt to producer, routing tuples with equal
// values of the named fields to the same task — the single-writer guarantee
// of §5.1.
func (d *BoltDecl) FieldsGrouping(producer string, fields ...string) *BoltDecl {
	d.def.inputs = append(d.def.inputs, subscription{producer: producer, kind: groupFields, fields: fields})
	return d
}

// AllGrouping subscribes the bolt to producer, replicating every tuple to
// every task.
func (d *BoltDecl) AllGrouping(producer string) *BoltDecl {
	d.def.inputs = append(d.def.inputs, subscription{producer: producer, kind: groupAll})
	return d
}

// GlobalGrouping subscribes the bolt to producer, routing every tuple to
// task 0.
func (d *BoltDecl) GlobalGrouping(producer string) *BoltDecl {
	d.def.inputs = append(d.def.inputs, subscription{producer: producer, kind: groupGlobal})
	return d
}

// validate checks the definition is a well-formed DAG with resolvable
// subscriptions and grouping fields.
func (b *Builder) validate() error {
	if len(b.order) == 0 {
		return fmt.Errorf("storm: topology %q has no components", b.name)
	}
	spouts := 0
	for _, name := range b.order {
		def := b.components[name]
		if def.spoutFn != nil {
			spouts++
			if len(def.inputs) > 0 {
				return fmt.Errorf("storm: spout %q cannot subscribe to streams", name)
			}
			if len(def.outFields) == 0 {
				return fmt.Errorf("storm: spout %q declares no output fields", name)
			}
		}
		for _, sub := range def.inputs {
			producer, ok := b.components[sub.producer]
			if !ok {
				return fmt.Errorf("storm: %q subscribes to unknown component %q", name, sub.producer)
			}
			if sub.kind == groupFields {
				if len(sub.fields) == 0 {
					return fmt.Errorf("storm: %q fields-grouping on %q names no fields", name, sub.producer)
				}
				for _, f := range sub.fields {
					if !contains(producer.outFields, f) {
						return fmt.Errorf("storm: %q groups on field %q absent from %q's schema %v",
							name, f, sub.producer, producer.outFields)
					}
				}
			}
		}
		if def.boltFn != nil && len(def.inputs) == 0 {
			return fmt.Errorf("storm: bolt %q has no input subscriptions", name)
		}
	}
	if spouts == 0 {
		return fmt.Errorf("storm: topology %q has no spouts", b.name)
	}
	return b.checkAcyclic()
}

// checkAcyclic rejects cycles: the drain protocol closes input queues in
// producer order and would deadlock on a cyclic topology.
func (b *Builder) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(b.components))
	// consumers[p] = components subscribed to p
	consumers := make(map[string][]string)
	for _, name := range b.order {
		for _, sub := range b.components[name].inputs {
			consumers[sub.producer] = append(consumers[sub.producer], name)
		}
	}
	var visit func(string) error
	visit = func(n string) error {
		color[n] = gray
		for _, next := range consumers[n] {
			switch color[next] {
			case gray:
				return fmt.Errorf("storm: topology %q contains a cycle through %q", b.name, next)
			case white:
				if err := visit(next); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for _, name := range b.order {
		if color[name] == white {
			if err := visit(name); err != nil {
				return err
			}
		}
	}
	return nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
