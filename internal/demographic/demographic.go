// Package demographic implements the paper's two production optimizations
// (§5.2): demographic filtering — per-group hot-video lists merged into the
// MF results to broaden recommendations and cover new or inactive users —
// and demographic training — running the full recommendation algorithm
// within each demographic group, yielding denser matrices and finer-grained
// models (the Table 4 / Figure 3 experiments).
//
// Users are clustered by the properties the paper names: gender, age and
// education. Unregistered users — a large share of a video site's traffic —
// have no profile and fall into the global group, which is also every
// group's fallback ("for new unregistered users, we generate the hot videos
// of global demographic group").
package demographic

import (
	"context"
	"fmt"
	"strings"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
)

// GlobalGroup is the catch-all demographic group: unregistered users,
// unknown profiles, and the site-wide aggregates.
const GlobalGroup = "global"

// Gender is a coarse profile attribute.
type Gender uint8

// Gender values.
const (
	GenderUnknown Gender = iota
	GenderMale
	GenderFemale
)

// String returns the attribute's group-key token.
func (g Gender) String() string {
	switch g {
	case GenderMale:
		return "m"
	case GenderFemale:
		return "f"
	default:
		return "?"
	}
}

// AgeBand buckets user age; bands rather than raw ages keep the group count
// at the paper's "dozens".
type AgeBand uint8

// AgeBand values.
const (
	AgeUnknown AgeBand = iota
	AgeUnder18
	Age18to24
	Age25to34
	Age35to49
	Age50Plus
)

// String returns the attribute's group-key token.
func (a AgeBand) String() string {
	switch a {
	case AgeUnder18:
		return "u18"
	case Age18to24:
		return "18-24"
	case Age25to34:
		return "25-34"
	case Age35to49:
		return "35-49"
	case Age50Plus:
		return "50+"
	default:
		return "?"
	}
}

// AgeBandOf buckets a raw age.
func AgeBandOf(years int) AgeBand {
	switch {
	case years <= 0:
		return AgeUnknown
	case years < 18:
		return AgeUnder18
	case years < 25:
		return Age18to24
	case years < 35:
		return Age25to34
	case years < 50:
		return Age35to49
	default:
		return Age50Plus
	}
}

// Education is a coarse profile attribute.
type Education uint8

// Education values.
const (
	EduUnknown Education = iota
	EduSecondary
	EduBachelor
	EduPostgraduate
)

// String returns the attribute's group-key token.
func (e Education) String() string {
	switch e {
	case EduSecondary:
		return "sec"
	case EduBachelor:
		return "ba"
	case EduPostgraduate:
		return "pg"
	default:
		return "?"
	}
}

// Profile is one user's demographic record.
type Profile struct {
	UserID     string
	Registered bool
	Gender     Gender
	Age        AgeBand
	Education  Education
}

// Group derives the demographic group key. Unregistered users and fully
// unknown profiles map to the global group.
func (p Profile) Group() string {
	if !p.Registered {
		return GlobalGroup
	}
	if p.Gender == GenderUnknown && p.Age == AgeUnknown && p.Education == EduUnknown {
		return GlobalGroup
	}
	return p.Gender.String() + ":" + p.Age.String() + ":" + p.Education.String() // alloccheck: one small group key per request (warm budget)
}

// Profiles is a kvstore-backed user profile table.
type Profiles struct {
	kv    kvstore.Store
	ns    string
	keys  *kvstore.Keys   // memoized ns-qualified keys (user-id-bounded)
	cache *objcache.Cache // nil disables the decoded-profile read cache
}

// SetCache attaches a decoded-value read cache for profile records. The cache
// must wrap the same store via objcache.WrapStore so Put invalidates it.
func (p *Profiles) SetCache(c *objcache.Cache) { p.cache = c }

// NewProfiles returns a profile table under the given namespace.
func NewProfiles(name string, kv kvstore.Store) (*Profiles, error) {
	if name == "" {
		return nil, fmt.Errorf("demographic: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("demographic: store must not be nil")
	}
	ns := name + ".prof"
	return &Profiles{kv: kv, ns: ns, keys: kvstore.NewKeys(ns)}, nil
}

// Put stores a profile.
func (p *Profiles) Put(ctx context.Context, prof Profile) error {
	if prof.UserID == "" {
		return fmt.Errorf("demographic: user id must not be empty")
	}
	reg := "0"
	if prof.Registered {
		reg = "1"
	}
	enc := kvstore.EncodeStrings([]string{
		reg,
		fmt.Sprintf("%d", prof.Gender),
		fmt.Sprintf("%d", prof.Age),
		fmt.Sprintf("%d", prof.Education),
	})
	if err := p.kv.Set(ctx, kvstore.Key(p.ns, prof.UserID), enc); err != nil {
		return fmt.Errorf("demographic: put %s: %w", prof.UserID, err)
	}
	return nil
}

// Get fetches a profile, reporting whether one exists. Profiles are small
// value structs, so the cached copy is returned by value — no aliasing. A
// cache hit returns without building the loader closure.
//
// hotpath: every request resolves the user's group through here
func (p *Profiles) Get(ctx context.Context, userID string) (Profile, bool, error) {
	key := p.keys.Key(userID)
	if p.cache != nil {
		if tv, present, ok := p.cache.Lookup(key); ok {
			if !present {
				return Profile{}, false, nil
			}
			return tv.(Profile), true, nil
		}
	}
	// alloccheck: one loader closure per read-through MISS; warm hits return above
	return objcache.Cached(p.cache, key, func() (Profile, bool, error) {
		raw, ok, err := p.kv.Get(ctx, key)
		if err != nil {
			return Profile{}, false, fmt.Errorf("demographic: get %s: %w", userID, err)
		}
		if !ok {
			return Profile{}, false, nil
		}
		fields, err := kvstore.DecodeStrings(raw)
		if err != nil || len(fields) != 4 {
			return Profile{}, false, fmt.Errorf("demographic: corrupt profile for %s: %v", userID, err)
		}
		var g, a, e int
		fmt.Sscanf(strings.Join(fields[1:], " "), "%d %d %d", &g, &a, &e)
		return Profile{
			UserID:     userID,
			Registered: fields[0] == "1",
			Gender:     Gender(g),
			Age:        AgeBand(a),
			Education:  Education(e),
		}, true, nil
	})
}

// GroupOf resolves a user's demographic group, defaulting to the global
// group for users without a stored profile (unregistered traffic).
func (p *Profiles) GroupOf(ctx context.Context, userID string) (string, error) {
	prof, ok, err := p.Get(ctx, userID)
	if err != nil {
		return "", err
	}
	if !ok {
		return GlobalGroup, nil
	}
	return prof.Group(), nil
}
