package demographic

import (
	"fmt"
	"sort"
	"sync"

	"vidrec/internal/core"
	"vidrec/internal/intern"
	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/simtable"
)

// ModelSet lazily manages one online MF model per demographic group —
// demographic training (§5.2.2): "there will be a video vector y_i for each
// demographic group". Models share one key-value store, namespaced by group.
type ModelSet struct {
	name   string
	kv     kvstore.Store
	params core.Params

	mu       sync.RWMutex
	models   map[string]*core.Model // guarded by mu
	cache    *objcache.Cache        // guarded by mu; applied to lazily created models
	interner *intern.Table          // guarded by mu; non-nil enables quantized serving on every model
}

// SetCache attaches a decoded-value read cache, applied to every existing and
// future group model.
func (s *ModelSet) SetCache(c *objcache.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
	for _, m := range s.models {
		m.SetCache(c)
	}
}

// EnableQuantized turns on quantized publish/serving (core.Model's int8
// record table) for every existing and future group model, with item slots
// drawn from the shared serving interner. Like SetCache, wire it before
// traffic starts.
func (s *ModelSet) EnableQuantized(it *intern.Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interner = it
	for _, m := range s.models {
		m.EnableQuantized(it)
	}
}

// NewModelSet returns an empty set that creates group models on demand with
// the given parameters.
func NewModelSet(name string, kv kvstore.Store, params core.Params) (*ModelSet, error) {
	if name == "" {
		return nil, fmt.Errorf("demographic: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("demographic: store must not be nil")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &ModelSet{name: name, kv: kv, params: params, models: make(map[string]*core.Model)}, nil
}

// For returns the group's model, creating it on first use.
func (s *ModelSet) For(group string) (*core.Model, error) {
	if group == "" {
		return nil, fmt.Errorf("demographic: group must not be empty")
	}
	s.mu.RLock()
	m := s.models[group]
	s.mu.RUnlock()
	if m != nil {
		return m, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.models[group]; m != nil {
		return m, nil
	}
	m, err := core.NewModel(s.name+"/"+group, s.kv, s.params) // alloccheck: once per group; the set memoizes
	if err != nil {
		return nil, err
	}
	m.SetCache(s.cache)
	if s.interner != nil {
		m.EnableQuantized(s.interner)
	}
	s.models[group] = m
	return m, nil
}

// Groups returns the groups instantiated so far, sorted.
func (s *ModelSet) Groups() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for g := range s.models {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// TableSet lazily manages one similar-video table set per demographic group:
// "the similarity between video pairs is computed within the demographic
// group" (§5.2.2).
type TableSet struct {
	name string
	kv   kvstore.Store
	cfg  simtable.Config

	mu     sync.RWMutex
	tables map[string]*simtable.Tables // guarded by mu
	cache  *objcache.Cache             // guarded by mu; applied to lazily created tables
}

// SetCache attaches a decoded-value read cache, applied to every existing and
// future group table set.
func (s *TableSet) SetCache(c *objcache.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
	for _, t := range s.tables {
		t.SetCache(c)
	}
}

// NewTableSet returns an empty set that creates group tables on demand.
func NewTableSet(name string, kv kvstore.Store, cfg simtable.Config) (*TableSet, error) {
	if name == "" {
		return nil, fmt.Errorf("demographic: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("demographic: store must not be nil")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &TableSet{name: name, kv: kv, cfg: cfg, tables: make(map[string]*simtable.Tables)}, nil
}

// For returns the group's tables, creating them on first use.
func (s *TableSet) For(group string) (*simtable.Tables, error) {
	if group == "" {
		return nil, fmt.Errorf("demographic: group must not be empty")
	}
	s.mu.RLock()
	t := s.tables[group]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.tables[group]; t != nil {
		return t, nil
	}
	t, err := simtable.New(s.name+"/"+group, s.kv, s.cfg) // alloccheck: once per group; the set memoizes
	if err != nil {
		return nil, err
	}
	t.SetCache(s.cache)
	s.tables[group] = t
	return t, nil
}
