package demographic

import (
	"context"
	"fmt"
	"math"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/topn"
)

// HotTracker maintains per-group hot-video lists: exponentially decayed
// popularity counters, bounded to the top N videos per group. It implements
// the demographic-based (DB) algorithm of §5.2.1 — "we compute the hot
// videos for each demographic group" — and, applied to the global group,
// doubles as the Hot baseline of the online experiments (§6.2).
//
// Decay uses the same normalize-to-last-update scheme as the similar-video
// tables: every write first decays all counters to the write's timestamp, so
// reads only apply one shared residual factor and never reorder entries.
type HotTracker struct {
	kv       kvstore.Store
	ns       string
	keys     *kvstore.Keys // memoized ns-qualified keys (group-bounded)
	halfLife time.Duration
	size     int
	floor    float64
	cache    *objcache.Cache // nil disables the decoded-record read cache
}

// SetCache attaches a decoded-value read cache for hot records. The cache
// must wrap the same store via objcache.WrapStore so Record invalidates it.
func (h *HotTracker) SetCache(c *objcache.Cache) { h.cache = c }

// hotRecord is the decoded form of one group's stored hot list. Cached
// records are shared and read-only; Hot copies entries into a fresh output
// slice when applying the residual decay.
type hotRecord struct {
	updatedAt time.Time
	entries   []topn.Entry
}

// NewHotTracker returns a tracker whose counters halve every halfLife and
// whose per-group lists keep at most size videos.
func NewHotTracker(name string, kv kvstore.Store, halfLife time.Duration, size int) (*HotTracker, error) {
	if name == "" {
		return nil, fmt.Errorf("demographic: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("demographic: store must not be nil")
	}
	if halfLife <= 0 {
		return nil, fmt.Errorf("demographic: half-life must be positive, got %v", halfLife)
	}
	if size <= 0 {
		return nil, fmt.Errorf("demographic: size must be positive, got %d", size)
	}
	ns := name + ".hot"
	return &HotTracker{kv: kv, ns: ns, keys: kvstore.NewKeys(ns), halfLife: halfLife, size: size, floor: 1e-6}, nil
}

func (h *HotTracker) damp(age time.Duration) float64 {
	if h.halfLife <= 0 {
		return 0 // zero-value tracker (skipped NewHotTracker): treat as fully decayed
	}
	if age <= 0 {
		return 1
	}
	// halfLife > 0 is established above; the exponent is finite and
	// nonpositive, so Exp2 lands in (0, 1].
	return math.Exp2(-float64(age) / float64(h.halfLife))
}

// Record adds weight to a video's popularity in the group at time ts.
// Weight is the action's confidence w_ui, so a full watch heats a video more
// than a bare click.
func (h *HotTracker) Record(ctx context.Context, group, videoID string, weight float64, ts time.Time) error {
	if group == "" || videoID == "" {
		return fmt.Errorf("demographic: group and video ids must not be empty")
	}
	if weight <= 0 {
		return nil // impressions carry no popularity signal
	}
	key := h.keys.Key(group)
	return h.kv.Update(ctx, key, func(cur []byte, ok bool) ([]byte, bool) {
		updatedAt := ts
		list := topn.NewList(h.size)
		if ok && len(cur) >= 8 {
			if ms, err := kvstore.DecodeInt64(cur[:8]); err == nil {
				prev := time.UnixMilli(ms)
				factor := h.damp(ts.Sub(prev))
				if factor > 1 {
					factor = 1
				}
				if ts.Before(prev) {
					updatedAt = prev
				}
				if entries, err := kvstore.DecodeEntries(cur[8:]); err == nil {
					for _, e := range entries {
						if v := e.Score * factor; v >= h.floor {
							list.Update(e.ID, v)
						}
					}
				}
			}
		}
		prevScore, _ := list.Score(videoID)
		list.Update(videoID, prevScore+weight)
		buf := kvstore.EncodeInt64(updatedAt.UnixMilli())
		return append(buf, kvstore.EncodeEntries(list.All())...), true
	})
}

// Hot returns up to k hot videos for the group at time now, hottest first.
// The decoded record is read through the cache; every Record write to the
// group invalidates it.
func (h *HotTracker) Hot(ctx context.Context, group string, k int, now time.Time) ([]topn.Entry, error) {
	return h.HotInto(ctx, group, k, now, nil)
}

// HotInto is Hot appending into dst (reused when it has capacity) — the
// serving path passes pooled scratch so a warm request's hot-list read
// allocates nothing. A cache hit never builds a loader closure; only misses
// take the read-through path.
//
// hotpath: the demographic merge reads the group's hot list through here
func (h *HotTracker) HotInto(ctx context.Context, group string, k int, now time.Time, dst []topn.Entry) ([]topn.Entry, error) {
	key := h.keys.Key(group)
	var rec hotRecord
	if h.cache != nil {
		if tv, present, ok := h.cache.Lookup(key); ok {
			if !present {
				return dst[:0], nil
			}
			rec = tv.(hotRecord)
			return h.appendDamped(rec, k, now, dst[:0]), nil
		}
	}
	// alloccheck: one loader closure per read-through MISS; warm hits return above
	rec, ok, err := objcache.Cached(h.cache, key, func() (hotRecord, bool, error) {
		raw, ok, err := h.kv.Get(ctx, key)
		if err != nil {
			return hotRecord{}, false, fmt.Errorf("demographic: get hot %s: %w", group, err)
		}
		if !ok || len(raw) < 8 {
			return hotRecord{}, false, nil
		}
		ms, err := kvstore.DecodeInt64(raw[:8])
		if err != nil {
			return hotRecord{}, false, fmt.Errorf("demographic: corrupt hot record for %s: %w", group, err)
		}
		entries, err := kvstore.DecodeEntries(raw[8:])
		if err != nil {
			return hotRecord{}, false, fmt.Errorf("demographic: corrupt hot entries for %s: %w", group, err)
		}
		return hotRecord{updatedAt: time.UnixMilli(ms), entries: entries}, true, nil
	})
	if err != nil || !ok {
		return dst[:0], err
	}
	return h.appendDamped(rec, k, now, dst[:0]), nil
}

// appendDamped appends up to k of rec's entries onto dst with the residual
// decay applied, stopping at the floor. The cached record stays immutable;
// the damped copies land in the caller's slice.
//
// hotpath: the hot list's damped copy-out, allocation-free on pooled dst
func (h *HotTracker) appendDamped(rec hotRecord, k int, now time.Time, dst []topn.Entry) []topn.Entry {
	factor := h.damp(now.Sub(rec.updatedAt))
	if factor > 1 {
		factor = 1
	}
	taken := 0
	for _, e := range rec.entries {
		if taken == k {
			break
		}
		if v := e.Score * factor; v >= h.floor {
			dst = append(dst, topn.Entry{ID: e.ID, Score: v}) // alloccheck: grow-once; dst extends the caller's pooled scratch
			taken++
		}
	}
	return dst
}
