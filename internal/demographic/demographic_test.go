package demographic

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

func TestAgeBandOf(t *testing.T) {
	tests := []struct {
		years int
		want  AgeBand
	}{
		{0, AgeUnknown}, {-3, AgeUnknown},
		{10, AgeUnder18}, {17, AgeUnder18},
		{18, Age18to24}, {24, Age18to24},
		{25, Age25to34}, {34, Age25to34},
		{35, Age35to49}, {49, Age35to49},
		{50, Age50Plus}, {90, Age50Plus},
	}
	for _, tt := range tests {
		if got := AgeBandOf(tt.years); got != tt.want {
			t.Errorf("AgeBandOf(%d) = %v, want %v", tt.years, got, tt.want)
		}
	}
}

func TestProfileGroup(t *testing.T) {
	reg := Profile{UserID: "u", Registered: true, Gender: GenderFemale, Age: Age18to24, Education: EduBachelor}
	if got := reg.Group(); got != "f:18-24:ba" {
		t.Errorf("Group = %q", got)
	}
	unreg := Profile{UserID: "u"}
	if got := unreg.Group(); got != GlobalGroup {
		t.Errorf("unregistered group = %q, want global", got)
	}
	unknownAll := Profile{UserID: "u", Registered: true}
	if got := unknownAll.Group(); got != GlobalGroup {
		t.Errorf("all-unknown group = %q, want global", got)
	}
	partial := Profile{UserID: "u", Registered: true, Gender: GenderMale}
	if got := partial.Group(); got != "m:?:?" {
		t.Errorf("partial group = %q", got)
	}
}

func TestAttributeStrings(t *testing.T) {
	if GenderMale.String() != "m" || GenderFemale.String() != "f" || GenderUnknown.String() != "?" {
		t.Error("gender tokens wrong")
	}
	for band, want := range map[AgeBand]string{
		AgeUnknown: "?", AgeUnder18: "u18", Age18to24: "18-24",
		Age25to34: "25-34", Age35to49: "35-49", Age50Plus: "50+",
	} {
		if band.String() != want {
			t.Errorf("AgeBand(%d).String() = %q, want %q", band, band, want)
		}
	}
	for edu, want := range map[Education]string{
		EduUnknown: "?", EduSecondary: "sec", EduBachelor: "ba", EduPostgraduate: "pg",
	} {
		if edu.String() != want {
			t.Errorf("Education(%d).String() = %q, want %q", edu, edu, want)
		}
	}
}

func TestSetConstructorsValidate(t *testing.T) {
	kv := kvstore.NewLocal(1)
	params := core.DefaultParams()
	params.Factors = 4
	if _, err := NewModelSet("", kv, params); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewModelSet("m", nil, params); err == nil {
		t.Error("nil store accepted")
	}
	bad := params
	bad.Factors = 0
	if _, err := NewModelSet("m", kv, bad); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewTableSet("", kv, simtable.DefaultConfig()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewTableSet("t", nil, simtable.DefaultConfig()); err == nil {
		t.Error("nil store accepted")
	}
	badCfg := simtable.DefaultConfig()
	badCfg.TableSize = 0
	if _, err := NewTableSet("t", kv, badCfg); err == nil {
		t.Error("invalid config accepted")
	}
	set, _ := NewTableSet("t", kv, simtable.DefaultConfig())
	if _, err := set.For(""); err == nil {
		t.Error("empty group accepted")
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	p, err := NewProfiles("t", kvstore.NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{UserID: "u1", Registered: true, Gender: GenderMale, Age: Age35to49, Education: EduPostgraduate}
	if err := p.Put(context.Background(), want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := p.Get(context.Background(), "u1")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if got != want {
		t.Errorf("Get = %+v, want %+v", got, want)
	}
}

func TestProfilesValidation(t *testing.T) {
	if _, err := NewProfiles("", kvstore.NewLocal(1)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewProfiles("p", nil); err == nil {
		t.Error("nil store accepted")
	}
	p, _ := NewProfiles("t", kvstore.NewLocal(1))
	if err := p.Put(context.Background(), Profile{}); err == nil {
		t.Error("empty user id accepted")
	}
}

func TestGroupOfFallsBackToGlobal(t *testing.T) {
	p, _ := NewProfiles("t", kvstore.NewLocal(4))
	if g, err := p.GroupOf(context.Background(), "stranger"); err != nil || g != GlobalGroup {
		t.Errorf("GroupOf(stranger) = %q, %v", g, err)
	}
	p.Put(context.Background(), Profile{UserID: "u1", Registered: true, Gender: GenderFemale, Age: Age25to34, Education: EduSecondary})
	if g, _ := p.GroupOf(context.Background(), "u1"); g != "f:25-34:sec" {
		t.Errorf("GroupOf(u1) = %q", g)
	}
}

func at(h int) time.Time { return time.Unix(0, 0).Add(time.Duration(h) * time.Hour) }

func newTracker(t *testing.T) *HotTracker {
	t.Helper()
	h, err := NewHotTracker("t", kvstore.NewLocal(4), 24*time.Hour, 10)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHotTrackerValidation(t *testing.T) {
	kv := kvstore.NewLocal(1)
	if _, err := NewHotTracker("", kv, time.Hour, 5); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewHotTracker("h", nil, time.Hour, 5); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewHotTracker("h", kv, 0, 5); err == nil {
		t.Error("zero half-life accepted")
	}
	if _, err := NewHotTracker("h", kv, time.Hour, 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestHotAccumulatesWeight(t *testing.T) {
	h := newTracker(t)
	h.Record(context.Background(), GlobalGroup, "a", 1, at(0))
	h.Record(context.Background(), GlobalGroup, "a", 2.5, at(0))
	h.Record(context.Background(), GlobalGroup, "b", 3, at(0))
	got, err := h.Hot(context.Background(), GlobalGroup, 5, at(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[0].Score != 3.5 {
		t.Errorf("Hot = %+v, want a=3.5 first", got)
	}
}

func TestHotDecays(t *testing.T) {
	h := newTracker(t)
	h.Record(context.Background(), GlobalGroup, "old", 4, at(0))
	h.Record(context.Background(), GlobalGroup, "fresh", 3, at(24)) // old has halved to 2
	got, _ := h.Hot(context.Background(), GlobalGroup, 5, at(24))
	if got[0].ID != "fresh" {
		t.Errorf("Hot = %+v, want fresh first (trend shift)", got)
	}
	if diff := got[1].Score - 2; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("old decayed to %v, want 2", got[1].Score)
	}
}

func TestHotIgnoresImpressions(t *testing.T) {
	h := newTracker(t)
	if err := h.Record(context.Background(), GlobalGroup, "a", 0, at(0)); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Hot(context.Background(), GlobalGroup, 5, at(0)); len(got) != 0 {
		t.Errorf("zero-weight record heated a video: %+v", got)
	}
}

func TestHotGroupsIsolated(t *testing.T) {
	h := newTracker(t)
	h.Record(context.Background(), "g1", "a", 1, at(0))
	h.Record(context.Background(), "g2", "b", 1, at(0))
	got, _ := h.Hot(context.Background(), "g1", 5, at(0))
	if len(got) != 1 || got[0].ID != "a" {
		t.Errorf("g1 hot = %+v, want [a]", got)
	}
}

func TestHotUnknownGroupEmpty(t *testing.T) {
	h := newTracker(t)
	if got, err := h.Hot(context.Background(), "nobody", 5, at(0)); err != nil || got != nil {
		t.Errorf("Hot(nobody) = %v, %v", got, err)
	}
}

func TestHotSizeBound(t *testing.T) {
	h, _ := NewHotTracker("t", kvstore.NewLocal(4), 24*time.Hour, 3)
	for i := 0; i < 6; i++ {
		h.Record(context.Background(), GlobalGroup, fmt.Sprintf("v%d", i), float64(i+1), at(0))
	}
	got, _ := h.Hot(context.Background(), GlobalGroup, 10, at(0))
	if len(got) != 3 || got[0].ID != "v5" {
		t.Errorf("bounded hot = %+v", got)
	}
}

// TestHotMatchesReferenceDecayModel property-checks the tracker against a
// naive reference that re-decays every counter on each event.
func TestHotMatchesReferenceDecayModel(t *testing.T) {
	const halfLife = 4 * time.Hour
	h, _ := NewHotTracker("t", kvstore.NewLocal(4), halfLife, 50)
	type ref struct {
		score float64
		at    time.Time
	}
	model := map[string]ref{}
	decayTo := func(r ref, now time.Time) float64 {
		age := now.Sub(r.at)
		if age <= 0 {
			return r.score
		}
		return r.score * math.Exp2(-float64(age)/float64(halfLife))
	}
	rng := rand.New(rand.NewSource(11))
	now := at(0)
	for i := 0; i < 300; i++ {
		now = now.Add(time.Duration(rng.Intn(120)) * time.Minute)
		video := fmt.Sprintf("v%d", rng.Intn(12))
		w := 0.5 + 3*rng.Float64()
		if err := h.Record(context.Background(), GlobalGroup, video, w, now); err != nil {
			t.Fatal(err)
		}
		r := model[video]
		model[video] = ref{score: decayTo(r, now) + w, at: now}
	}
	got, err := h.Hot(context.Background(), GlobalGroup, 50, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("empty hot list")
	}
	for _, e := range got {
		want := decayTo(model[e.ID], now)
		if math.Abs(e.Score-want) > 1e-6*math.Max(1, want) {
			t.Errorf("%s score %v, reference %v", e.ID, e.Score, want)
		}
	}
}

func TestModelSetLazyAndIsolated(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 4
	set, err := NewModelSet("t", kvstore.NewLocal(4), p)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := set.For("g1")
	if err != nil {
		t.Fatal(err)
	}
	again, _ := set.For("g1")
	if g1 != again {
		t.Error("For returned a new model for an existing group")
	}
	g2, _ := set.For("g2")
	if g1 == g2 {
		t.Error("groups share a model")
	}
	if g1.Name() == g2.Name() {
		t.Error("group models share a namespace")
	}
	groups := set.Groups()
	if len(groups) != 2 || groups[0] != "g1" || groups[1] != "g2" {
		t.Errorf("Groups = %v", groups)
	}
	if _, err := set.For(""); err == nil {
		t.Error("empty group accepted")
	}
}

func TestModelSetConcurrentFor(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 4
	set, _ := NewModelSet("t", kvstore.NewLocal(4), p)
	var wg sync.WaitGroup
	models := make([]*core.Model, 16)
	for i := range models {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := set.For("shared")
			if err != nil {
				t.Error(err)
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(models); i++ {
		if models[i] != models[0] {
			t.Fatal("concurrent For created distinct models for one group")
		}
	}
}

func TestTableSetLazy(t *testing.T) {
	set, err := NewTableSet("t", kvstore.NewLocal(4), simtable.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t1, err := set.For("g1")
	if err != nil {
		t.Fatal(err)
	}
	t1again, _ := set.For("g1")
	if t1 != t1again {
		t.Error("For returned a new table set for an existing group")
	}
	// Writes to one group's table must not appear in another's.
	t2, _ := set.For("g2")
	t1.UpdateDirected(context.Background(), "a", "b", 0.5, at(0))
	if got, _ := t2.Similar(context.Background(), "a", 5, at(0)); len(got) != 0 {
		t.Errorf("g2 sees g1's similarity data: %+v", got)
	}
}

// TestHotTrackerZeroValueDamp: a HotTracker that skipped NewHotTracker has
// halfLife 0; its decay must be a finite 0, not a NaN from 0/0.
func TestHotTrackerZeroValueDamp(t *testing.T) {
	var h HotTracker
	for _, age := range []time.Duration{0, time.Second, 24 * time.Hour} {
		got := h.damp(age)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("damp(%v) = %v, not finite", age, got)
		}
		if got != 0 {
			t.Errorf("damp(%v) = %v, want 0", age, got)
		}
	}
}
