package simtable_test

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/simtable"
)

// Eq. 11's time factor halves a pair's similarity every ξ without new
// supporting actions — "the past similar videos should be gradually
// forgotten".
func ExampleConfig_Damp() {
	cfg := simtable.DefaultConfig() // ξ = 24h
	for _, age := range []time.Duration{0, 24 * time.Hour, 72 * time.Hour} {
		fmt.Printf("after %3.0fh: ×%.3f\n", age.Hours(), cfg.Damp(age))
	}
	// Output:
	// after   0h: ×1.000
	// after  24h: ×0.500
	// after  72h: ×0.125
}

// A similar-video table serves decayed scores: the pair refreshed most
// recently wins even against a once-stronger stale pair.
func ExampleTables_Similar() {
	tables, _ := simtable.New("demo", kvstore.NewLocal(4), simtable.DefaultConfig())
	t0 := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)

	tables.UpdateDirected(context.Background(), "seed", "old-hit", 0.9, t0)
	tables.UpdateDirected(context.Background(), "seed", "fresh", 0.5, t0.Add(48*time.Hour))

	similar, _ := tables.Similar(context.Background(), "seed", 2, t0.Add(48*time.Hour))
	for _, e := range similar {
		fmt.Printf("%s %.3f\n", e.ID, e.Score)
	}
	// Output:
	// fresh 0.500
	// old-hit 0.225
}
