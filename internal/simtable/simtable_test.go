package simtable

import (
	"context"
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
)

func testConfig() Config {
	c := DefaultConfig()
	c.TableSize = 5
	return c
}

func newTables(t *testing.T, cfg Config) *Tables {
	t.Helper()
	tb, err := New("t", kvstore.NewLocal(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func at(h int) time.Time { return time.Unix(0, 0).Add(time.Duration(h) * time.Hour) }

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Beta = -0.1 },
		func(c *Config) { c.Beta = 1.1 },
		func(c *Config) { c.Xi = 0 },
		func(c *Config) { c.TableSize = 0 },
		func(c *Config) { c.ScoreFloor = -1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestDampEquation11 pins d = 2^(−Δt/ξ) at known points.
func TestDampEquation11(t *testing.T) {
	c := Config{Xi: 24 * time.Hour}
	tests := []struct {
		age  time.Duration
		want float64
	}{
		{0, 1},
		{-time.Hour, 1}, // clock skew never amplifies
		{24 * time.Hour, 0.5},
		{48 * time.Hour, 0.25},
		{12 * time.Hour, math.Exp2(-0.5)},
	}
	for _, tt := range tests {
		if got := c.Damp(tt.age); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Damp(%v) = %v, want %v", tt.age, got, tt.want)
		}
	}
}

// TestDampMonotone property-checks that older always means smaller.
func TestDampMonotone(t *testing.T) {
	c := Config{Xi: time.Hour}
	f := func(aRaw, bRaw uint32) bool {
		a := time.Duration(aRaw) * time.Second
		b := time.Duration(bRaw) * time.Second
		if a > b {
			a, b = b, a
		}
		return c.Damp(b) <= c.Damp(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFuseEquation12 pins the fusion arithmetic.
func TestFuseEquation12(t *testing.T) {
	c := Config{Beta: 0.3}
	if got, want := c.Fuse(0.8, 1), 0.7*0.8+0.3*1; math.Abs(got-want) > 1e-12 {
		t.Errorf("Fuse = %v, want %v", got, want)
	}
	if got := c.Fuse(0.8, 0); math.Abs(got-0.56) > 1e-12 {
		t.Errorf("Fuse without type match = %v, want 0.56", got)
	}
}

func TestTypeSimilarityEquation10(t *testing.T) {
	if TypeSimilarity("a", "a") != 1 {
		t.Error("equal types must score 1")
	}
	if TypeSimilarity("a", "b") != 0 {
		t.Error("different types must score 0")
	}
	if TypeSimilarity("", "") != 0 {
		t.Error("unknown types must not match each other")
	}
}

func TestCFSimilarityUsesItemVectors(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 8
	m, _ := core.NewModel("m", kvstore.NewLocal(4), p)
	// Train two videos on the same user so their vectors correlate, and a
	// third on a different user.
	for i := 0; i < 60; i++ {
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u1", VideoID: "a", Type: feedback.Share})
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u1", VideoID: "b", Type: feedback.Share})
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u2", VideoID: "c", Type: feedback.Share})
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u1", VideoID: "x", Type: feedback.Impress})
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u2", VideoID: "y", Type: feedback.Impress})
	}
	sAB, err := CFSimilarity(context.Background(), m, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	sAC, err := CFSimilarity(context.Background(), m, "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if sAB <= sAC {
		t.Errorf("co-watched pair similarity %v not above unrelated pair %v", sAB, sAC)
	}
}

func TestUpdateAndSimilar(t *testing.T) {
	tb := newTables(t, testConfig())
	now := at(0)
	tb.UpdateDirected(context.Background(), "a", "b", 0.9, now)
	tb.UpdateDirected(context.Background(), "a", "c", 0.5, now)
	got, err := tb.Similar(context.Background(), "a", 10, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "c" {
		t.Fatalf("Similar = %+v", got)
	}
	if math.Abs(got[0].Score-0.9) > 1e-12 {
		t.Errorf("fresh score = %v, want 0.9", got[0].Score)
	}
}

func TestSimilarUnknownVideo(t *testing.T) {
	tb := newTables(t, testConfig())
	got, err := tb.Similar(context.Background(), "ghost", 5, at(0))
	if err != nil || got != nil {
		t.Errorf("Similar(ghost) = %v, %v", got, err)
	}
}

func TestSelfPairRejected(t *testing.T) {
	tb := newTables(t, testConfig())
	if err := tb.UpdateDirected(context.Background(), "a", "a", 1, at(0)); err == nil {
		t.Error("self-pair accepted")
	}
}

// TestDecayAtRead: scores halve after ξ without updates.
func TestDecayAtRead(t *testing.T) {
	cfg := testConfig()
	cfg.Xi = 24 * time.Hour
	tb := newTables(t, cfg)
	tb.UpdateDirected(context.Background(), "a", "b", 0.8, at(0))
	got, _ := tb.Similar(context.Background(), "a", 5, at(24))
	if len(got) != 1 || math.Abs(got[0].Score-0.4) > 1e-12 {
		t.Errorf("after ξ Similar = %+v, want score 0.4", got)
	}
}

// TestUpdateResetsClockForTouchedPairOnly: the refreshed pair outranks a
// formerly stronger but stale pair — the "past similar videos should be
// gradually forgotten" behaviour.
func TestUpdateResetsClockForTouchedPairOnly(t *testing.T) {
	cfg := testConfig()
	cfg.Xi = 24 * time.Hour
	tb := newTables(t, cfg)
	tb.UpdateDirected(context.Background(), "a", "old", 0.9, at(0))
	tb.UpdateDirected(context.Background(), "a", "fresh", 0.5, at(48)) // old has decayed to 0.225
	got, _ := tb.Similar(context.Background(), "a", 5, at(48))
	if len(got) != 2 {
		t.Fatalf("Similar = %+v", got)
	}
	if got[0].ID != "fresh" {
		t.Errorf("top entry = %s (%v), want fresh", got[0].ID, got[0].Score)
	}
	if math.Abs(got[1].Score-0.9/4) > 1e-12 {
		t.Errorf("stale score = %v, want 0.225", got[1].Score)
	}
}

func TestFloorPrunesForgottenPairs(t *testing.T) {
	cfg := testConfig()
	cfg.Xi = time.Hour
	cfg.ScoreFloor = 0.01
	tb := newTables(t, cfg)
	tb.UpdateDirected(context.Background(), "a", "b", 0.5, at(0))
	// After 10 half-lives the 0.5 score is ~0.0005, far below the floor.
	got, _ := tb.Similar(context.Background(), "a", 5, at(10))
	if len(got) != 0 {
		t.Errorf("forgotten pair still served: %+v", got)
	}
	// A touch at t=10 must also prune it from storage.
	tb.UpdateDirected(context.Background(), "a", "c", 0.5, at(10))
	got, _ = tb.Similar(context.Background(), "a", 5, at(10))
	if len(got) != 1 || got[0].ID != "c" {
		t.Errorf("after prune Similar = %+v, want [c]", got)
	}
}

func TestTableSizeBound(t *testing.T) {
	cfg := testConfig()
	cfg.TableSize = 3
	tb := newTables(t, cfg)
	now := at(0)
	tb.UpdateDirected(context.Background(), "a", "v1", 0.1, now)
	tb.UpdateDirected(context.Background(), "a", "v2", 0.4, now)
	tb.UpdateDirected(context.Background(), "a", "v3", 0.3, now)
	tb.UpdateDirected(context.Background(), "a", "v4", 0.2, now) // evicts v1
	got, _ := tb.Similar(context.Background(), "a", 10, now)
	if len(got) != 3 {
		t.Fatalf("table size = %d, want 3", len(got))
	}
	for _, e := range got {
		if e.ID == "v1" {
			t.Error("weakest entry not evicted")
		}
	}
}

func TestOutOfOrderUpdateDoesNotAmplify(t *testing.T) {
	cfg := testConfig()
	cfg.Xi = time.Hour
	tb := newTables(t, cfg)
	tb.UpdateDirected(context.Background(), "a", "b", 0.5, at(10))
	tb.UpdateDirected(context.Background(), "a", "c", 0.5, at(8)) // late-arriving older action
	got, _ := tb.Similar(context.Background(), "a", 5, at(10))
	for _, e := range got {
		if e.Score > 0.5+1e-12 {
			t.Errorf("entry %s amplified to %v", e.ID, e.Score)
		}
	}
}

func TestPairScoreCombinesFactors(t *testing.T) {
	kv := kvstore.NewLocal(4)
	p := core.DefaultParams()
	p.Factors = 8
	m, _ := core.NewModel("m", kv, p)
	cat, _ := catalog.New("c", kv)
	cat.Put(context.Background(), catalog.Video{ID: "a", Type: "movie", Length: time.Hour})
	cat.Put(context.Background(), catalog.Video{ID: "b", Type: "movie", Length: time.Hour})
	cat.Put(context.Background(), catalog.Video{ID: "c", Type: "news", Length: time.Hour})
	cfg := testConfig()
	cfg.Beta = 0.5
	tb, _ := New("t", kv, cfg)

	sameType, err := tb.PairScore(context.Background(), m, cat, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	diffType, err := tb.PairScore(context.Background(), m, cat, "a", "c")
	if err != nil {
		t.Fatal(err)
	}
	// With an untrained model CF similarity ≈ 0, so the type term dominates.
	if sameType <= diffType {
		t.Errorf("same-type score %v not above cross-type %v", sameType, diffType)
	}
	if math.Abs(sameType-diffType-0.5) > 0.01 {
		t.Errorf("type contribution = %v, want ≈ β = 0.5", sameType-diffType)
	}
}

func TestNewValidation(t *testing.T) {
	kv := kvstore.NewLocal(1)
	if _, err := New("", kv, DefaultConfig()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("t", nil, DefaultConfig()); err == nil {
		t.Error("nil store accepted")
	}
	bad := DefaultConfig()
	bad.Xi = 0
	if _, err := New("t", kv, bad); err == nil {
		t.Error("invalid config accepted")
	}
	tb, err := New("t", kv, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Config().TableSize != DefaultConfig().TableSize {
		t.Error("Config accessor mismatch")
	}
}

func TestCorruptTableRecordErrors(t *testing.T) {
	kv := kvstore.NewLocal(1)
	tb, _ := New("t", kv, DefaultConfig())
	kv.Set(context.Background(), "t.sim:a", []byte{1, 2}) // shorter than the timestamp header
	if _, err := tb.Similar(context.Background(), "a", 5, at(0)); err == nil {
		t.Error("truncated table decoded without error")
	}
	kv.Set(context.Background(), "t.sim:b", append(kvstore.EncodeInt64(0), 0xFF, 0xFF)) // bad entries
	if _, err := tb.Similar(context.Background(), "b", 5, at(0)); err == nil {
		t.Error("corrupt entries decoded without error")
	}
}

// TestFuseVectorsMatchesPairScore: the cache-friendly form must agree with
// the store-reading form.
func TestFuseVectorsMatchesPairScore(t *testing.T) {
	kv := kvstore.NewLocal(4)
	p := core.DefaultParams()
	p.Factors = 8
	m, _ := core.NewModel("m", kv, p)
	cat, _ := catalog.New("c", kv)
	cat.Put(context.Background(), catalog.Video{ID: "a", Type: "movie", Length: time.Hour})
	cat.Put(context.Background(), catalog.Video{ID: "b", Type: "movie", Length: time.Hour})
	for i := 0; i < 20; i++ {
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u1", VideoID: "a", Type: feedback.Share})
		m.ProcessAction(context.Background(), feedback.Action{UserID: "u1", VideoID: "b", Type: feedback.Share})
	}
	tb, _ := New("t", kv, DefaultConfig())
	want, err := tb.PairScore(context.Background(), m, cat, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ya, _, _, _ := m.ItemVector(context.Background(), "a")
	yb, _, _, _ := m.ItemVector(context.Background(), "b")
	ta, _ := cat.Type(context.Background(), "a")
	tbType, _ := cat.Type(context.Background(), "b")
	got := tb.Config().FuseVectors(ya, yb, ta, tbType)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("FuseVectors = %v, PairScore = %v", got, want)
	}
}

func TestCFSimilaritySurfacesStoreErrors(t *testing.T) {
	faulty := kvstore.NewFaulty(kvstore.NewLocal(2), 5)
	p := core.DefaultParams()
	p.Factors = 4
	m, _ := core.NewModel("m", faulty, p)
	faulty.SetFailRate(1)
	if _, err := CFSimilarity(context.Background(), m, "a", "b"); err == nil {
		t.Error("store failure swallowed")
	}
}

func TestPairsSkipsSelf(t *testing.T) {
	got := Pairs("v", []string{"a", "v", "b"})
	if len(got) != 2 || got[0] != [2]string{"v", "a"} || got[1] != [2]string{"v", "b"} {
		t.Errorf("Pairs = %v", got)
	}
}

// TestTableInvariantsQuick property-checks arbitrary update sequences: the
// stored list stays sorted descending, bounded, duplicate-free, and every
// served score is non-negative and never above the freshest raw score seen.
func TestTableInvariantsQuick(t *testing.T) {
	type op struct {
		Other uint8
		Score float64
		HourD uint8
	}
	f := func(ops []op) bool {
		cfg := DefaultConfig()
		cfg.TableSize = 6
		cfg.Xi = 2 * time.Hour
		tb, err := New("t", kvstore.NewLocal(2), cfg)
		if err != nil {
			return false
		}
		now := at(0)
		var maxRaw float64
		for _, o := range ops {
			now = now.Add(time.Duration(o.HourD%5) * time.Hour)
			score := math.Abs(math.Mod(o.Score, 1)) // raw scores in [0,1)
			if score > maxRaw {
				maxRaw = score
			}
			other := fmt.Sprintf("v%d", o.Other%10)
			if other == "seed" {
				continue
			}
			if err := tb.UpdateDirected(context.Background(), "seed", other, score, now); err != nil {
				return false
			}
		}
		got, err := tb.Similar(context.Background(), "seed", 100, now)
		if err != nil || len(got) > cfg.TableSize {
			return false
		}
		seen := map[string]bool{}
		for i, e := range got {
			if seen[e.ID] || e.Score < 0 || e.Score > maxRaw+1e-9 {
				return false
			}
			seen[e.ID] = true
			if i > 0 && got[i-1].Score < e.Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSimilarOrderStableUnderSharedDecay: residual decay at read scales all
// entries equally, so rank order never changes between reads.
func TestSimilarOrderStableUnderSharedDecay(t *testing.T) {
	cfg := testConfig()
	cfg.ScoreFloor = 0 // keep entries visible at long horizons
	tb := newTables(t, cfg)
	tb.UpdateDirected(context.Background(), "a", "x", 0.9, at(0))
	tb.UpdateDirected(context.Background(), "a", "y", 0.7, at(1))
	tb.UpdateDirected(context.Background(), "a", "z", 0.8, at(2))
	first, _ := tb.Similar(context.Background(), "a", 5, at(3))
	later, _ := tb.Similar(context.Background(), "a", 5, at(40))
	if len(first) != len(later) {
		t.Fatalf("entry counts differ: %d vs %d", len(first), len(later))
	}
	for i := range first {
		if first[i].ID != later[i].ID {
			t.Errorf("rank %d changed: %s → %s", i, first[i].ID, later[i].ID)
		}
	}
}

// TestDampGuardsNonpositiveXi: a Config that skipped Validate must yield a
// finite (fully-forgotten) damp factor, never NaN.
func TestDampGuardsNonpositiveXi(t *testing.T) {
	for _, xi := range []time.Duration{0, -time.Hour} {
		c := Config{Xi: xi}
		for _, age := range []time.Duration{0, time.Nanosecond, time.Hour, 365 * 24 * time.Hour} {
			got := c.Damp(age)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("Damp(xi=%v, age=%v) = %v, not finite", xi, age, got)
			}
			if got != 0 {
				t.Errorf("Damp(xi=%v, age=%v) = %v, want 0 (fully forgotten)", xi, age, got)
			}
		}
	}
}
