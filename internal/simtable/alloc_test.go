package simtable

import (
	"context"
	"testing"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
)

// TestSimilarBatchWarmAllocs pins the warm (cache-hit) allocation count of
// the serving-path batch read, cross-checking alloccheck's static claims for
// SimilarBatch: with every table cached, the only allocations are the
// per-seed key headers (the hatched kvstore.Key concat), the result slice,
// and the damped copy-out per seed (both hatched as API-contract copies).
// The miss-path accumulators (missKeys/missVers/missIdx) and the install
// boxing must contribute nothing on hits — if this bound creeps, a hatched
// "miss path only" claim has leaked onto the warm path.
func TestSimilarBatchWarmAllocs(t *testing.T) {
	ctx := context.Background()
	tb, err := New("t", kvstore.NewLocal(4), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb.SetCache(objcache.New(64))
	for i, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"b", "d"}} {
		if err := tb.UpdateDirected(ctx, pair[0], pair[1], 1.0, at(i)); err != nil {
			t.Fatal(err)
		}
	}
	videos := []string{"a", "b"}
	// First call decodes through the store and fills the cache.
	if _, err := tb.SimilarBatch(ctx, videos, 3, at(10)); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := tb.SimilarBatch(ctx, videos, 3, at(10)); err != nil {
			t.Fatal(err)
		}
	})
	// 5 = result slice + 2 seed key strings + 2 damped copy-outs.
	if avg > 5 {
		t.Fatalf("warm SimilarBatch allocates %v objects/op, want <= 5", avg)
	}
}
