// Package simtable builds and serves the similar-video tables of §4.2: for
// every video, a bounded list of the videos a user is most likely to watch
// next, ranked by a fused similarity of three factors —
//
//	collaborative-filtering similarity  s1_ij = y_iᵀ y_j        (Eq. 9)
//	type similarity                     s2_ij ∈ {0, 1}          (Eq. 10)
//	time factor                         d_ij  = 2^(−Δt/ξ)       (Eq. 11)
//	fused                               sim_ij = d_ij·((1−β)·s1_ij + β·s2_ij)   (Eq. 12)
//
// Tables are updated incrementally: a pair (i, j) is recomputed only when a
// new user action touches i or j (the GetItemPairs / ItemPairSim /
// ResultStorage bolts of Fig. 2), resetting its damping clock; untouched
// pairs decay and are eventually forgotten.
//
// Decay is implemented without per-entry clocks by keeping each video's list
// normalized to its last update instant: every write first decays all stored
// scores to "now", so afterwards every entry decays at the same rate and the
// stored order remains the true order at any future read time. Reads apply
// the residual decay (now − listUpdatedAt), which scales all entries equally
// and therefore never reorders them.
package simtable

import (
	"context"
	"fmt"
	"math"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/topn"
	"vidrec/internal/vecmath"
)

// Config holds the similarity-fusion parameters of Eq. 11–12.
type Config struct {
	// Beta is the weight β of type similarity in the fusion (Eq. 12);
	// 1−β weights the CF similarity. Table 2's grid search selects a
	// modest β — CF similarity dominates, type acts as a tiebreaker.
	Beta float64
	// Xi is the decay parameter ξ of Eq. 11: a pair untouched for Xi
	// halves its similarity.
	Xi time.Duration
	// TableSize bounds each video's similar list (top-N).
	TableSize int
	// ScoreFloor prunes entries whose decayed score falls below it; fully
	// forgotten pairs should not occupy table space forever.
	ScoreFloor float64
}

// DefaultConfig returns the production-shaped parameters: β=0.3, ξ=24h,
// 50-entry tables.
func DefaultConfig() Config {
	return Config{Beta: 0.3, Xi: 24 * time.Hour, TableSize: 50, ScoreFloor: 1e-6}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("simtable: Beta must be in [0,1], got %v", c.Beta)
	}
	if c.Xi <= 0 {
		return fmt.Errorf("simtable: Xi must be positive, got %v", c.Xi)
	}
	if c.TableSize <= 0 {
		return fmt.Errorf("simtable: TableSize must be positive, got %d", c.TableSize)
	}
	if c.ScoreFloor < 0 {
		return fmt.Errorf("simtable: ScoreFloor must be non-negative, got %v", c.ScoreFloor)
	}
	return nil
}

// Damp evaluates the time factor of Eq. 11 for a pair last updated age ago.
// A non-positive Xi (a Config that skipped Validate) yields 0 — the pair is
// treated as fully forgotten — rather than a NaN that would poison every
// decayed score downstream.
func (c Config) Damp(age time.Duration) float64 {
	if c.Xi <= 0 {
		return 0
	}
	if age <= 0 {
		return 1
	}
	// Xi > 0 is established above; the exponent is finite and nonpositive,
	// so Exp2 lands in (0, 1].
	return math.Exp2(-float64(age) / float64(c.Xi))
}

// Fuse combines the CF and type similarities per Eq. 12 (without the time
// factor, which Damp supplies).
func (c Config) Fuse(cfSim, typeSim float64) float64 {
	return (1-c.Beta)*cfSim + c.Beta*typeSim
}

// TypeSimilarity evaluates Eq. 10 for two category labels: 1 when equal and
// known, else 0.
func TypeSimilarity(a, b string) float64 {
	if a != "" && a == b {
		return 1
	}
	return 0
}

// CFSimilarity evaluates Eq. 9 — the inner product of the two videos' latent
// vectors under the given MF model. Videos the model has not trained on
// contribute their cold-start vectors, whose products are effectively zero.
func CFSimilarity(ctx context.Context, m *core.Model, i, j string) (float64, error) {
	yi, _, _, err := m.ItemVector(ctx, i)
	if err != nil {
		return 0, err
	}
	yj, _, _, err := m.ItemVector(ctx, j)
	if err != nil {
		return 0, err
	}
	return vecmath.Dot(yi, yj), nil
}

// Tables is the kvstore-backed similar-video table set.
type Tables struct {
	kv    kvstore.Store
	ns    string
	keys  *kvstore.Keys // memoized ns-qualified keys (video-id-bounded)
	cfg   Config
	cache *objcache.Cache // nil disables the decoded-table read cache
}

// SetCache attaches a decoded-value read cache for table records. The cache
// must wrap the same store via objcache.WrapStore so UpdateDirected writes
// invalidate it. Cached tables are shared and read-only; Similar already
// copies entries into a fresh output slice when applying residual decay.
func (t *Tables) SetCache(c *objcache.Cache) { t.cache = c }

// New returns tables stored under the given namespace.
func New(name string, kv kvstore.Store, cfg Config) (*Tables, error) {
	if name == "" {
		return nil, fmt.Errorf("simtable: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("simtable: store must not be nil")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := name + ".sim"                                                      // alloccheck: once per table set; TableSet memoizes
	return &Tables{kv: kv, ns: ns, keys: kvstore.NewKeys(ns), cfg: cfg}, nil // alloccheck: once per table set; TableSet memoizes
}

// Config returns the table configuration.
func (t *Tables) Config() Config { return t.cfg }

// table is the stored form of one video's similar list.
type table struct {
	updatedAt time.Time
	entries   []topn.Entry
}

func encodeTable(tb table) []byte {
	buf := kvstore.EncodeInt64(tb.updatedAt.UnixMilli())
	return append(buf, kvstore.EncodeEntries(tb.entries)...)
}

func decodeTable(raw []byte) (table, error) {
	if len(raw) < 8 {
		return table{}, fmt.Errorf("simtable: truncated table record")
	}
	ms, err := kvstore.DecodeInt64(raw[:8])
	if err != nil {
		return table{}, err
	}
	entries, err := kvstore.DecodeEntries(raw[8:])
	if err != nil {
		return table{}, err
	}
	return table{updatedAt: time.UnixMilli(ms), entries: entries}, nil
}

// UpdateDirected records a freshly computed (undamped) similarity score for
// the pair (owner, other) in owner's list at time ts. Existing entries are
// first decayed to ts (resetting the list's clock), the pair's entry is
// replaced with the fresh score (its damping clock restarts, d=1), and
// entries decayed below the floor are pruned.
//
// The topology emits each pair in both directions, fields-grouped by owner,
// so each list has a single writer; UpdateDirected relies on the store's
// per-key Update for safety against other writers.
func (t *Tables) UpdateDirected(ctx context.Context, owner, other string, score float64, ts time.Time) error {
	if owner == other {
		return fmt.Errorf("simtable: self-pair %q", owner)
	}
	key := t.keys.Key(owner)
	return t.kv.Update(ctx, key, func(cur []byte, ok bool) ([]byte, bool) {
		tb := table{updatedAt: ts}
		if ok {
			dec, err := decodeTable(cur)
			if err == nil {
				// Decay stored scores to ts. A negative age (out-of-order
				// action) leaves scores unscaled rather than amplifying.
				factor := t.cfg.Damp(ts.Sub(dec.updatedAt))
				if factor > 1 {
					factor = 1
				}
				list := topn.NewList(t.cfg.TableSize)
				for _, e := range dec.entries {
					decayed := e.Score * factor
					if decayed >= t.cfg.ScoreFloor {
						list.Update(e.ID, decayed)
					}
				}
				tb.entries = list.All()
				if ts.Before(dec.updatedAt) {
					tb.updatedAt = dec.updatedAt
				}
			}
		}
		list := topn.FromEntries(t.cfg.TableSize, tb.entries)
		if score >= t.cfg.ScoreFloor {
			list.Update(other, score)
		} else {
			list.Remove(other)
		}
		tb.entries = list.All()
		return encodeTable(tb), true
	})
}

// loadTable reads and decodes one video's table record through the cache
// (read-through; nil cache goes straight to the store). The returned table's
// entries may be cache-shared: read-only.
func (t *Tables) loadTable(ctx context.Context, video string) (table, bool, error) {
	key := t.keys.Key(video)
	return objcache.Cached(t.cache, key, func() (table, bool, error) {
		raw, ok, err := t.kv.Get(ctx, key)
		if err != nil {
			return table{}, false, fmt.Errorf("simtable: get %s: %w", video, err)
		}
		if !ok {
			return table{}, false, nil
		}
		tb, err := decodeTable(raw)
		if err != nil {
			return table{}, false, fmt.Errorf("simtable: corrupt table for %s: %w", video, err)
		}
		return tb, true, nil
	})
}

// truncateDecayed copies up to k entries of tb into a fresh slice with scores
// decayed to now, stopping at the floor (entries are sorted, so the rest are
// below it too).
func (t *Tables) truncateDecayed(tb table, k int, now time.Time) []topn.Entry {
	factor := t.cfg.Damp(now.Sub(tb.updatedAt))
	if factor > 1 {
		factor = 1
	}
	// alloccheck: damped copy-out keeps cached tables immutable (API contract)
	out := make([]topn.Entry, 0, min(k, len(tb.entries)))
	for _, e := range tb.entries {
		if len(out) == k {
			break
		}
		decayed := e.Score * factor
		if decayed < t.cfg.ScoreFloor {
			break
		}
		out = append(out, topn.Entry{ID: e.ID, Score: decayed})
	}
	return out
}

// Similar returns up to k similar videos for the given video with scores
// decayed to now, best first. A video with no table yields an empty list.
func (t *Tables) Similar(ctx context.Context, video string, k int, now time.Time) ([]topn.Entry, error) {
	tb, ok, err := t.loadTable(ctx, video)
	if err != nil || !ok {
		return nil, err
	}
	return t.truncateDecayed(tb, k, now), nil
}

// SimilarBatch returns Similar's result for every video in one store round
// trip: cached tables are served from memory and all misses share a single
// MGet (versions captured first, so a concurrent UpdateDirected can never
// install a stale decode). The result is parallel to videos; videos without
// a table yield nil entries.
func (t *Tables) SimilarBatch(ctx context.Context, videos []string, k int, now time.Time) ([][]topn.Entry, error) {
	out := make([][]topn.Entry, len(videos)) // alloccheck: the per-seed result is the API contract (warm budget)
	if t.cache == nil {
		keys := make([]string, len(videos)) // alloccheck: cacheless path; the warm path serves cache hits below
		for i, v := range videos {
			keys[i] = t.keys.Key(v)
		}
		vals, err := t.kv.MGet(ctx, keys)
		if err != nil {
			return nil, fmt.Errorf("simtable: batch get tables: %w", err)
		}
		for i, raw := range vals {
			if raw == nil {
				continue
			}
			tb, err := decodeTable(raw)
			if err != nil {
				return nil, fmt.Errorf("simtable: corrupt table for %s: %w", videos[i], err)
			}
			out[i] = t.truncateDecayed(tb, k, now)
		}
		return out, nil
	}
	var missKeys []string
	var missVers []uint64
	var missIdx []int
	for i, v := range videos {
		key := t.keys.Key(v)
		if tv, present, ok := t.cache.Lookup(key); ok {
			if present {
				out[i] = t.truncateDecayed(tv.(table), k, now)
			}
			continue
		}
		missVers = append(missVers, t.cache.Version(key)) // alloccheck: miss-path accumulation only
		missKeys = append(missKeys, key)                  // alloccheck: miss-path accumulation only
		missIdx = append(missIdx, i)                      // alloccheck: miss-path accumulation only
	}
	if len(missKeys) == 0 {
		return out, nil
	}
	vals, err := t.kv.MGet(ctx, missKeys)
	if err != nil {
		return nil, fmt.Errorf("simtable: batch get tables: %w", err)
	}
	for j, raw := range vals {
		i := missIdx[j]
		if raw == nil {
			t.cache.StoreIfUnchanged(missKeys[j], table{}, false, missVers[j]) // alloccheck: install boxes on the miss path only
			continue
		}
		tb, err := decodeTable(raw)
		if err != nil {
			return nil, fmt.Errorf("simtable: corrupt table for %s: %w", videos[i], err)
		}
		t.cache.StoreIfUnchanged(missKeys[j], tb, true, missVers[j]) // alloccheck: install boxes on the miss path only
		out[i] = t.truncateDecayed(tb, k, now)
	}
	return out, nil
}

// appendDecayedIDs appends the ids of up to k entries of tb onto dst,
// stopping at the score floor after decaying to now (entries are sorted, so
// the rest are below it too) — truncateDecayed without materializing the
// damped copy, for callers that only need the ids.
//
// hotpath: the serving path's seed expansion reads every warm table through here
func (t *Tables) appendDecayedIDs(tb table, k int, now time.Time, dst []string) []string {
	factor := t.cfg.Damp(now.Sub(tb.updatedAt))
	if factor > 1 {
		factor = 1
	}
	taken := 0
	for _, e := range tb.entries {
		if taken == k || e.Score*factor < t.cfg.ScoreFloor {
			break
		}
		dst = append(dst, e.ID) // alloccheck: grow-once; dst extends the caller's pooled scratch
		taken++
	}
	return dst
}

// SimilarIDs appends, for each seed video in order, the ids of up to k
// similar videos decayed to now (best first, floor-truncated) onto dst and
// returns it — SimilarBatch for callers that only need the ids, without the
// per-seed result slices or the damped entry copies. With every table cached
// the call allocates nothing beyond dst's amortized growth; any cache miss
// falls back to SimilarBatch so the store round trip stays batched and the
// decoded tables are installed for the next request.
//
// hotpath: one call per request feeds the candidate expansion (warm budget)
func (t *Tables) SimilarIDs(ctx context.Context, videos []string, k int, now time.Time, dst []string) ([]string, error) {
	if t.cache != nil {
		allHit := true
		for _, v := range videos {
			tv, present, ok := t.cache.Lookup(t.keys.Key(v))
			if !ok {
				allHit = false
				break
			}
			if present {
				dst = t.appendDecayedIDs(tv.(table), k, now, dst)
			}
		}
		if allHit {
			return dst, nil
		}
		dst = dst[:0]
	}
	lists, err := t.SimilarBatch(ctx, videos, k, now) // alloccheck: cold path; warm requests take the all-hit loop above
	if err != nil {
		return nil, err
	}
	for _, similar := range lists {
		for _, e := range similar {
			dst = append(dst, e.ID) // alloccheck: grow-once; dst extends the caller's pooled scratch
		}
	}
	return dst, nil
}

// PairScore computes the undamped fused similarity for (i, j) from the MF
// model's item vectors and the catalog's types — the work of the ItemPairSim
// bolt for one pair.
func (t *Tables) PairScore(ctx context.Context, m *core.Model, cat *catalog.Catalog, i, j string) (float64, error) {
	cf, err := CFSimilarity(ctx, m, i, j)
	if err != nil {
		return 0, err
	}
	ti, err := cat.Type(ctx, i)
	if err != nil {
		return 0, err
	}
	tj, err := cat.Type(ctx, j)
	if err != nil {
		return 0, err
	}
	return t.cfg.Fuse(cf, TypeSimilarity(ti, tj)), nil
}

// FuseVectors computes the undamped fused similarity directly from item
// vectors and types — the cache-friendly form of PairScore used by workers
// that hold vectors locally (§5.1's cache technique).
func (c Config) FuseVectors(yi, yj []float64, ti, tj string) float64 {
	return c.Fuse(vecmath.Dot(yi, yj), TypeSimilarity(ti, tj))
}

// Pairs lists the item pairs a new action generates: the acted-on video
// against each of the user's recent distinct videos (the GetItemPairs bolt).
// Self-pairs are skipped.
func Pairs(videoID string, recent []string) [][2]string {
	out := make([][2]string, 0, len(recent))
	for _, r := range recent {
		if r == videoID {
			continue
		}
		out = append(out, [2]string{videoID, r})
	}
	return out
}
