package baseline

import (
	"strconv"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/feedback"
)

func reservoirParams() core.Params {
	p := core.DefaultParams()
	p.Factors = 8
	return p
}

func TestNewReservoirMFValidation(t *testing.T) {
	if _, err := NewReservoirMF(reservoirParams(), 0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	bad := reservoirParams()
	bad.Factors = 0
	if _, err := NewReservoirMF(bad, 10, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestReservoirFillsThenSamples(t *testing.T) {
	r, err := NewReservoirMF(reservoirParams(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.ReplayEvery = 0 // isolate reservoir mechanics
	for i := 0; i < 100; i++ {
		a := watch("u1", "v"+string(rune('a'+i%20)), t0.Add(time.Duration(i)*time.Minute))
		if err := r.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.ReservoirLen(); got != 10 {
		t.Errorf("reservoir length = %d, want 10 (bounded)", got)
	}
}

func TestReservoirIgnoresImpressions(t *testing.T) {
	r, _ := NewReservoirMF(reservoirParams(), 10, 1)
	r.ReplayEvery = 0
	for i := 0; i < 20; i++ {
		r.Ingest(impress("u1", "v1", t0))
	}
	if got := r.ReservoirLen(); got != 0 {
		t.Errorf("impressions entered the reservoir: %d", got)
	}
}

func TestReservoirRecommends(t *testing.T) {
	r, _ := NewReservoirMF(reservoirParams(), 50, 1)
	r.ReplayEvery = 30
	min := 0
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		for _, v := range []string{"a", "b"} {
			r.Ingest(watch(u, v, t0.Add(time.Duration(min)*time.Minute)))
			min++
		}
		r.Ingest(impress(u, "x", t0.Add(time.Duration(min)*time.Minute)))
	}
	r.Ingest(watch("u5", "a", t0.Add(time.Duration(min)*time.Minute)))
	got, err := r.Recommend("u5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != "b" {
		t.Errorf("Recommend(u5) = %v, want b first", got)
	}
	for _, v := range got {
		if v == "a" {
			t.Error("watched video recommended")
		}
	}
	if _, err := r.Recommend("u5", 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestReservoirSampleIsUniformish(t *testing.T) {
	// With capacity 50 over 500 distinct positives, early and late actions
	// should both survive sometimes — the defining property vs a sliding
	// window.
	r, _ := NewReservoirMF(reservoirParams(), 50, 3)
	r.ReplayEvery = 0
	for i := 0; i < 500; i++ {
		v := "v" + strconv.Itoa(i)
		r.Ingest(feedback.Action{
			UserID: "u1", VideoID: v, Type: feedback.Click,
			Timestamp: t0.Add(time.Duration(i) * time.Minute),
		})
	}
	early, late := 0, 0
	r.mu.RLock()
	for _, a := range r.reservoir {
		n, err := strconv.Atoi(a.VideoID[1:])
		if err != nil {
			t.Fatalf("unexpected reservoir id %q", a.VideoID)
		}
		if n < 250 {
			early++
		} else {
			late++
		}
	}
	r.mu.RUnlock()
	if early == 0 || late == 0 {
		t.Errorf("reservoir not spanning history: early=%d late=%d", early, late)
	}
}
