package baseline

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/topn"
)

// ReservoirMF implements the reservoir-based online learning approach the
// paper positions itself against ([12, 13] in its related work): the model
// updates online on each new action *and* keeps a fixed-size uniform sample
// of the whole history in a reservoir; periodically it replays the
// reservoir to counter the short-term-memory problem of pure online
// updates. The paper argues this "is not appropriate for large streaming
// data sets" — the reservoir replay is exactly the batch-shaped work the
// rMF design eliminates — making this the natural third point between
// rMF-online and MF-daily-batch in the freshness ablation.
type ReservoirMF struct {
	// Capacity is the reservoir size.
	Capacity int
	// ReplayEvery triggers a reservoir replay after this many online
	// updates.
	ReplayEvery int

	params core.Params

	mu        sync.RWMutex
	model     *core.Model
	reservoir []feedback.Action
	seen      int
	sinceRep  int
	rng       *rand.Rand
	videos    map[string]bool
	watched   map[string]map[string]bool
}

// NewReservoirMF returns a reservoir-backed online MF.
func NewReservoirMF(params core.Params, capacity int, seed uint64) (*ReservoirMF, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("baseline: reservoir capacity must be positive, got %d", capacity)
	}
	model, err := core.NewModel("reservoir", kvstore.NewLocal(64), params)
	if err != nil {
		return nil, err
	}
	return &ReservoirMF{
		Capacity:    capacity,
		ReplayEvery: 20000,
		params:      params,
		model:       model,
		rng:         rand.New(rand.NewPCG(seed, seed^0xBEEF)),
		videos:      make(map[string]bool),
		watched:     make(map[string]map[string]bool),
	}, nil
}

// Ingest applies one action online and maintains the reservoir via
// Algorithm R (Vitter): every action has probability capacity/seen of
// entering, evicting a uniform victim.
func (r *ReservoirMF) Ingest(a feedback.Action) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := r.model.ProcessAction(context.Background(), a); err != nil {
		return err
	}
	if r.params.Weights.Weight(a) > 0 {
		r.videos[a.VideoID] = true
		w := r.watched[a.UserID]
		if w == nil {
			w = make(map[string]bool)
			r.watched[a.UserID] = w
		}
		w[a.VideoID] = true

		r.seen++
		if len(r.reservoir) < r.Capacity {
			r.reservoir = append(r.reservoir, a)
		} else if j := r.rng.IntN(r.seen); j < r.Capacity {
			r.reservoir[j] = a
		}
	}
	r.sinceRep++
	if r.ReplayEvery > 0 && r.sinceRep >= r.ReplayEvery {
		r.sinceRep = 0
		return r.replayLocked()
	}
	return nil
}

// replayLocked re-trains on the reservoir sample — the periodic batch-like
// pass that anchors the model to long-term history.
func (r *ReservoirMF) replayLocked() error {
	for _, a := range r.reservoir {
		if _, err := r.model.ProcessAction(context.Background(), a); err != nil {
			return err
		}
	}
	return nil
}

// ReservoirLen reports the current reservoir fill.
func (r *ReservoirMF) ReservoirLen() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.reservoir)
}

// Recommend implements eval.Recommender by ranking the seen corpus.
func (r *ReservoirMF) Recommend(userID string, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: n must be positive, got %d", n)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	candidates := make([]string, 0, len(r.videos))
	for v := range r.videos {
		candidates = append(candidates, v)
	}
	scores, err := r.model.ScoreCandidates(context.Background(), userID, candidates)
	if err != nil {
		return nil, err
	}
	list := topn.NewList(n)
	seen := r.watched[userID]
	for i, v := range candidates {
		if seen[v] {
			continue
		}
		list.Update(v, scores[i])
	}
	entries := list.All()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
