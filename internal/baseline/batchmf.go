package baseline

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/topn"
)

// BatchMF is the offline counterpart of the paper's real-time MF: the same
// factorization (Eq. 2) trained the conventional way — several passes over
// a fixed window, retrained "at regular time intervals", frozen in between.
// It exists to measure what the paper's introduction claims real-time
// training buys: an offline model cannot "capture users' instant interests"
// between retrains. The freshness ablation (experiments.RunFreshness) pits
// it against the online pipeline under identical conditions.
type BatchMF struct {
	// Params configure the underlying factorization. Rule selects the
	// update strategy exactly as for the online model.
	Params core.Params
	// Passes is the number of sweeps over the window per retrain —
	// offline training iterates "until some stopping criteria is met";
	// a small fixed pass count is the production-realistic criterion.
	Passes int

	mu      sync.RWMutex
	model   *core.Model
	videos  []string
	watched map[string]map[string]bool
}

// NewBatchMF returns an untrained offline MF with the given parameters.
func NewBatchMF(params core.Params) *BatchMF {
	return &BatchMF{Params: params, Passes: 3}
}

// Train rebuilds the model from scratch over the window with multi-pass
// SGD. The previous model keeps serving until the new one is ready, then is
// swapped atomically — the classic offline deployment pattern.
func (b *BatchMF) Train(actions []feedback.Action) error {
	if b.Passes <= 0 {
		return fmt.Errorf("baseline: BatchMF passes must be positive, got %d", b.Passes)
	}
	model, err := core.NewModel("batchmf", kvstore.NewLocal(64), b.Params)
	if err != nil {
		return err
	}
	// Offline retrain over a private in-memory store; the batch harness has
	// no request to inherit a context from.
	ctx := context.Background()
	for pass := 0; pass < b.Passes; pass++ {
		for _, a := range actions {
			if _, err := model.ProcessAction(ctx, a); err != nil {
				return err
			}
		}
	}
	videoSet := make(map[string]bool)
	watched := make(map[string]map[string]bool)
	for _, a := range actions {
		videoSet[a.VideoID] = true
		if b.Params.Weights.Weight(a) <= 0 {
			continue
		}
		m := watched[a.UserID]
		if m == nil {
			m = make(map[string]bool)
			watched[a.UserID] = m
		}
		m[a.VideoID] = true
	}
	videos := make([]string, 0, len(videoSet))
	for v := range videoSet {
		videos = append(videos, v)
	}
	sort.Strings(videos)

	b.mu.Lock()
	b.model = model
	b.videos = videos
	b.watched = watched
	b.mu.Unlock()
	return nil
}

// Trained reports whether a model is available.
func (b *BatchMF) Trained() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.model != nil
}

// Recommend implements eval.Recommender: rank the training corpus with the
// frozen model, excluding the user's watched set.
func (b *BatchMF) Recommend(userID string, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: n must be positive, got %d", n)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.model == nil {
		return nil, nil
	}
	scores, err := b.model.ScoreCandidates(context.Background(), userID, b.videos)
	if err != nil {
		return nil, err
	}
	list := topn.NewList(n)
	seen := b.watched[userID]
	for i, v := range b.videos {
		if seen[v] {
			continue
		}
		list.Update(v, scores[i])
	}
	entries := list.All()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
