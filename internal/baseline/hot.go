// Package baseline implements the three competing recommenders the paper
// A/B-tests its real-time MF system against in production (§6.2):
//
//   - Hot: the most popular videos right now — "a simple but powerful
//     method, where the computation is in real-time".
//   - AR: association rules mined from co-play behaviour, retrained in
//     batch mode daily.
//   - SimHash: user-based collaborative filtering with SimHash signatures
//     bucketing similar users, retrained at regular intervals.
//
// All three implement eval.Recommender, so the offline harness and the A/B
// simulator treat them interchangeably with the rMF pipeline.
package baseline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
)

// Hot recommends the currently most popular videos to everyone. It is a
// thin personalization-free wrapper around a decayed popularity tracker and
// updates in real time like the production Hot method.
type Hot struct {
	tracker *demographic.HotTracker
	weights feedback.Weights

	mu  sync.RWMutex
	now time.Time
}

// NewHot returns a Hot recommender with the given popularity half-life.
func NewHot(kv kvstore.Store, halfLife time.Duration, capacity int) (*Hot, error) {
	tracker, err := demographic.NewHotTracker("baseline", kv, halfLife, capacity)
	if err != nil {
		return nil, err
	}
	return &Hot{tracker: tracker, weights: feedback.DefaultWeights()}, nil
}

// Record folds one action into the popularity counters in real time and
// advances the recommender's clock.
func (h *Hot) Record(a feedback.Action) error {
	h.mu.Lock()
	if a.Timestamp.After(h.now) {
		h.now = a.Timestamp
	}
	h.mu.Unlock()
	return h.tracker.Record(context.Background(), demographic.GlobalGroup, a.VideoID, h.weights.Weight(a), a.Timestamp)
}

// SetNow advances the clock explicitly (the A/B simulator moves days).
func (h *Hot) SetNow(t time.Time) {
	h.mu.Lock()
	h.now = t
	h.mu.Unlock()
}

// Recommend implements eval.Recommender: everyone gets the global hot list.
func (h *Hot) Recommend(_ string, n int) ([]string, error) {
	h.mu.RLock()
	now := h.now
	h.mu.RUnlock()
	entries, err := h.tracker.Hot(context.Background(), demographic.GlobalGroup, n, now)
	if err != nil {
		return nil, fmt.Errorf("baseline: hot list: %w", err)
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
