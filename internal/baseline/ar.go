package baseline

import (
	"fmt"
	"sync"

	"vidrec/internal/feedback"
	"vidrec/internal/topn"
)

// AR is the association-rule recommender (§6.2): pairwise rules i → j mined
// from users' positive actions, "trained in batch mode for every day".
// A rule's strength is its confidence count(i,j)/count(i), gated by a
// minimum support; recommendations expand the user's recent videos through
// the strongest rules.
type AR struct {
	// MinSupport is the minimum co-occurrence count for a rule to exist.
	MinSupport int
	// RulesPerItem bounds how many consequents are kept per antecedent.
	RulesPerItem int
	// SeedWindow is how many of the user's most recent videos seed the
	// expansion at recommendation time.
	SeedWindow int

	weights feedback.Weights

	mu sync.RWMutex
	// rules[i] lists the strongest consequents of i with confidences.
	rules map[string][]topn.Entry
	// recent[u] holds the user's positive videos, newest first, from the
	// training window.
	recent map[string][]string
	// watched[u] is the user's full positive set, used to exclude
	// already-consumed videos from recommendations.
	watched map[string]map[string]bool
}

// NewAR returns an untrained association-rule recommender with production-
// shaped defaults.
func NewAR() *AR {
	return &AR{
		MinSupport:   3,
		RulesPerItem: 30,
		SeedWindow:   10,
		weights:      feedback.DefaultWeights(),
		rules:        make(map[string][]topn.Entry),
		recent:       make(map[string][]string),
		watched:      make(map[string]map[string]bool),
	}
}

// Train rebuilds the rule base from a batch of actions (the daily batch job
// of the production AR method). Previous rules are replaced wholesale.
// Actions must be in stream order for the recency of user seeds to hold.
func (ar *AR) Train(actions []feedback.Action) error {
	if ar.MinSupport < 1 {
		return fmt.Errorf("baseline: AR MinSupport must be >= 1, got %d", ar.MinSupport)
	}
	// Collect each user's distinct positive videos, in first-touch order.
	userItems := make(map[string][]string)
	seen := make(map[string]map[string]bool)
	for _, a := range actions {
		if ar.weights.Weight(a) <= 0 {
			continue
		}
		s := seen[a.UserID]
		if s == nil {
			s = make(map[string]bool)
			seen[a.UserID] = s
		}
		if s[a.VideoID] {
			continue
		}
		s[a.VideoID] = true
		userItems[a.UserID] = append(userItems[a.UserID], a.VideoID)
	}

	itemCount := make(map[string]int)
	pairCount := make(map[[2]string]int)
	for _, items := range userItems {
		for _, v := range items {
			itemCount[v]++
		}
		// Pair every co-consumed (i, j), both directions. Baskets are
		// bounded to keep mining quadratic only in a small constant: very
		// long histories contribute their most recent items.
		const maxBasket = 50
		if len(items) > maxBasket {
			items = items[len(items)-maxBasket:]
		}
		for x := 0; x < len(items); x++ {
			for y := x + 1; y < len(items); y++ {
				pairCount[[2]string{items[x], items[y]}]++
				pairCount[[2]string{items[y], items[x]}]++
			}
		}
	}

	rules := make(map[string]*topn.List)
	for pair, n := range pairCount {
		if n < ar.MinSupport {
			continue
		}
		i, j := pair[0], pair[1]
		conf := float64(n) / float64(itemCount[i])
		l := rules[i]
		if l == nil {
			l = topn.NewList(ar.RulesPerItem)
			rules[i] = l
		}
		l.Update(j, conf)
	}

	compiled := make(map[string][]topn.Entry, len(rules))
	for i, l := range rules {
		compiled[i] = l.All()
	}
	watchedAll := make(map[string]map[string]bool, len(seen))
	for u, s := range seen {
		watchedAll[u] = s
	}
	recent := make(map[string][]string, len(userItems))
	for u, items := range userItems {
		// newest last in first-touch order; reverse into newest-first.
		w := ar.SeedWindow
		if w > len(items) {
			w = len(items)
		}
		r := make([]string, 0, w)
		for k := len(items) - 1; k >= len(items)-w; k-- {
			r = append(r, items[k])
		}
		recent[u] = r
	}

	ar.mu.Lock()
	ar.rules = compiled
	ar.recent = recent
	ar.watched = watchedAll
	ar.mu.Unlock()
	return nil
}

// RuleCount returns the number of antecedents with at least one rule.
func (ar *AR) RuleCount() int {
	ar.mu.RLock()
	defer ar.mu.RUnlock()
	return len(ar.rules)
}

// Consequents returns the rules fired by one antecedent, strongest first.
func (ar *AR) Consequents(video string) []topn.Entry {
	ar.mu.RLock()
	defer ar.mu.RUnlock()
	return append([]topn.Entry(nil), ar.rules[video]...)
}

// Recommend implements eval.Recommender: fire the rules of the user's recent
// videos, sum confidences per candidate, exclude already-watched videos, and
// return the top n.
func (ar *AR) Recommend(userID string, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: n must be positive, got %d", n)
	}
	ar.mu.RLock()
	defer ar.mu.RUnlock()
	seeds := ar.recent[userID]
	watched := ar.watched[userID]
	scores := make(map[string]float64)
	for _, s := range seeds {
		for _, rule := range ar.rules[s] {
			if watched[rule.ID] {
				continue
			}
			scores[rule.ID] += rule.Score
		}
	}
	entries := make([]topn.Entry, 0, len(scores))
	for v, s := range scores {
		entries = append(entries, topn.Entry{ID: v, Score: s})
	}
	topn.SortEntriesDesc(entries)
	if len(entries) > n {
		entries = entries[:n]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
