package baseline

import (
	"fmt"
	"math"
	"sync"

	"vidrec/internal/feedback"
	"vidrec/internal/topn"
)

// ItemCF is the neighborhood-based item-to-item collaborative filter the
// paper's related work builds on ([17], [26]): cosine-normalized
// co-occurrence similarity between videos, recommendations aggregated from
// the similar lists of a user's recent videos. Like AR and SimHash it
// retrains in batch; it rounds out the baseline family with the method most
// production systems of the era actually ran.
type ItemCF struct {
	// NeighborsPerItem bounds each video's similar list.
	NeighborsPerItem int
	// SeedWindow is how many recent videos seed a recommendation.
	SeedWindow int
	// MinCoCount gates pairs below a co-occurrence support threshold.
	MinCoCount int

	weights feedback.Weights

	mu      sync.RWMutex
	sim     map[string][]topn.Entry
	recent  map[string][]string
	watched map[string]map[string]bool
}

// NewItemCF returns an untrained item-based CF with production-shaped
// defaults.
func NewItemCF() *ItemCF {
	return &ItemCF{
		NeighborsPerItem: 50,
		SeedWindow:       10,
		MinCoCount:       2,
		weights:          feedback.DefaultWeights(),
	}
}

// Train rebuilds the similarity lists from a batch of actions using cosine
// co-occurrence: sim(i, j) = c_ij / √(c_i · c_j).
func (cf *ItemCF) Train(actions []feedback.Action) error {
	if cf.MinCoCount < 1 {
		return fmt.Errorf("baseline: ItemCF MinCoCount must be >= 1, got %d", cf.MinCoCount)
	}
	userItems := make(map[string][]string)
	seen := make(map[string]map[string]bool)
	for _, a := range actions {
		if cf.weights.Weight(a) <= 0 {
			continue
		}
		s := seen[a.UserID]
		if s == nil {
			s = make(map[string]bool)
			seen[a.UserID] = s
		}
		if s[a.VideoID] {
			continue
		}
		s[a.VideoID] = true
		userItems[a.UserID] = append(userItems[a.UserID], a.VideoID)
	}
	itemCount := make(map[string]int)
	coCount := make(map[[2]string]int)
	for _, items := range userItems {
		for _, v := range items {
			itemCount[v]++
		}
		const maxBasket = 50
		if len(items) > maxBasket {
			items = items[len(items)-maxBasket:]
		}
		for x := 0; x < len(items); x++ {
			for y := x + 1; y < len(items); y++ {
				i, j := items[x], items[y]
				if j < i {
					i, j = j, i
				}
				coCount[[2]string{i, j}]++
			}
		}
	}
	// Precompute each item's 1/√count once: the cosine denominator touches
	// every co-occurring pair, so the per-pair work drops from a sqrt plus a
	// division to two multiplications. 1/(√a·√b) and 1/√(a·b) agree to the
	// last ulp or so — far inside the gap between distinct similarity
	// levels, which the equivalence test pins.
	invSqrt := make(map[string]float64, len(itemCount))
	for v, c := range itemCount {
		invSqrt[v] = 1 / math.Sqrt(float64(c))
	}
	lists := make(map[string]*topn.List)
	add := func(i, j string, s float64) {
		l := lists[i]
		if l == nil {
			l = topn.NewList(cf.NeighborsPerItem)
			lists[i] = l
		}
		l.Update(j, s)
	}
	for pair, n := range coCount {
		if n < cf.MinCoCount {
			continue
		}
		i, j := pair[0], pair[1]
		s := float64(n) * invSqrt[i] * invSqrt[j]
		add(i, j, s)
		add(j, i, s)
	}
	sim := make(map[string][]topn.Entry, len(lists))
	for v, l := range lists {
		sim[v] = l.All()
	}
	recent := make(map[string][]string, len(userItems))
	for u, items := range userItems {
		w := cf.SeedWindow
		if w > len(items) {
			w = len(items)
		}
		r := make([]string, 0, w)
		for k := len(items) - 1; k >= len(items)-w; k-- {
			r = append(r, items[k])
		}
		recent[u] = r
	}
	cf.mu.Lock()
	cf.sim = sim
	cf.recent = recent
	cf.watched = seen
	cf.mu.Unlock()
	return nil
}

// Similar returns a video's neighbor list, most similar first.
func (cf *ItemCF) Similar(video string) []topn.Entry {
	cf.mu.RLock()
	defer cf.mu.RUnlock()
	return append([]topn.Entry(nil), cf.sim[video]...)
}

// Recommend implements eval.Recommender: sum neighbor similarities over the
// user's recent videos, excluding everything already watched.
func (cf *ItemCF) Recommend(userID string, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: n must be positive, got %d", n)
	}
	cf.mu.RLock()
	defer cf.mu.RUnlock()
	watched := cf.watched[userID]
	scores := make(map[string]float64)
	for _, s := range cf.recent[userID] {
		for _, e := range cf.sim[s] {
			if watched[e.ID] {
				continue
			}
			scores[e.ID] += e.Score
		}
	}
	entries := make([]topn.Entry, 0, len(scores))
	for v, s := range scores {
		entries = append(entries, topn.Entry{ID: v, Score: s})
	}
	topn.SortEntriesDesc(entries)
	if len(entries) > n {
		entries = entries[:n]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
