package baseline

import (
	"fmt"
	"math"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/feedback"
)

// Tests for the extension baselines: offline BatchMF (the "retrained at
// regular intervals" model of the paper's introduction) and item-based CF.

func coWatchStream() []feedback.Action {
	var actions []feedback.Action
	min := 0
	add := func(u, v string) {
		actions = append(actions, watch(u, v, t0.Add(time.Duration(min)*time.Minute)))
		min++
	}
	// Cohort co-watches a+b; c is watched alone by one user; impressions
	// keep the global mean meaningful.
	for _, u := range []string{"u1", "u2", "u3", "u4"} {
		add(u, "a")
		add(u, "b")
		actions = append(actions, impress(u, "x", t0.Add(time.Duration(min)*time.Minute)))
	}
	add("u5", "c")
	add("u5", "a")
	return actions
}

func TestBatchMFUntrainedServesNothing(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 8
	b := NewBatchMF(p)
	if b.Trained() {
		t.Error("untrained model reports trained")
	}
	got, err := b.Recommend("u1", 5)
	if err != nil || got != nil {
		t.Errorf("untrained Recommend = %v, %v", got, err)
	}
	if _, err := b.Recommend("u1", 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestBatchMFTrainAndRecommend(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 8
	b := NewBatchMF(p)
	if err := b.Train(coWatchStream()); err != nil {
		t.Fatal(err)
	}
	if !b.Trained() {
		t.Fatal("Train did not install a model")
	}
	// u5 watched c and a; b should surface (co-watched with a), and the
	// watched videos must not.
	got, err := b.Recommend("u5", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v == "a" || v == "c" {
			t.Errorf("already-watched %s recommended", v)
		}
	}
	if len(got) == 0 || got[0] != "b" {
		t.Errorf("Recommend(u5) = %v, want b first", got)
	}
}

func TestBatchMFValidatesPasses(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 4
	b := NewBatchMF(p)
	b.Passes = 0
	if err := b.Train(nil); err == nil {
		t.Error("zero passes accepted")
	}
}

func TestBatchMFRetrainReplacesModel(t *testing.T) {
	p := core.DefaultParams()
	p.Factors = 8
	b := NewBatchMF(p)
	b.Train(coWatchStream())
	// Retrain on a disjoint corpus: old videos must disappear.
	var second []feedback.Action
	for i, u := range []string{"w1", "w2", "w3"} {
		second = append(second, watch(u, "z1", t0.Add(time.Duration(i)*time.Minute)))
		second = append(second, watch(u, "z2", t0.Add(time.Duration(i)*time.Minute+time.Second)))
	}
	if err := b.Train(second); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Recommend("w1", 5)
	for _, v := range got {
		if v == "a" || v == "b" || v == "c" {
			t.Errorf("stale corpus video %s survived retrain", v)
		}
	}
}

func TestItemCFTrainAndRecommend(t *testing.T) {
	cf := NewItemCF()
	if err := cf.Train(coWatchStream()); err != nil {
		t.Fatal(err)
	}
	sim := cf.Similar("a")
	if len(sim) == 0 || sim[0].ID != "b" {
		t.Fatalf("Similar(a) = %+v, want b first", sim)
	}
	// Cosine: c_ab=4, c_a=5, c_b=4 → 4/√20 ≈ 0.894.
	if sim[0].Score < 0.85 || sim[0].Score > 0.95 {
		t.Errorf("sim(a,b) = %v, want ≈ 0.894", sim[0].Score)
	}
	got, err := cf.Recommend("u5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != "b" {
		t.Errorf("Recommend(u5) = %v, want [b]", got)
	}
	for _, v := range got {
		if v == "a" || v == "c" {
			t.Errorf("already-watched %s recommended", v)
		}
	}
}

func TestItemCFMinCoCountGates(t *testing.T) {
	cf := NewItemCF()
	cf.MinCoCount = 10
	cf.Train(coWatchStream())
	if got := cf.Similar("a"); len(got) != 0 {
		t.Errorf("pairs below support produced neighbors: %+v", got)
	}
	cf.MinCoCount = 0
	if err := cf.Train(nil); err == nil {
		t.Error("MinCoCount 0 accepted")
	}
}

func TestItemCFUnknownUser(t *testing.T) {
	cf := NewItemCF()
	cf.Train(coWatchStream())
	got, err := cf.Recommend("stranger", 5)
	if err != nil || len(got) != 0 {
		t.Errorf("Recommend(stranger) = %v, %v", got, err)
	}
	if _, err := cf.Recommend("u1", -1); err == nil {
		t.Error("negative n accepted")
	}
}

// TestItemCFInvSqrtEquivalence pins Train's precomputed-1/√count scoring to
// the direct cosine formula sim(i,j) = c_ij/√(c_i·c_j): over a corpus with
// many distinct count combinations, every stored similarity must match the
// formula as written to within a few ulps. The precompute replaces a sqrt
// and a division per pair with two multiplications; it must never replace
// the value.
func TestItemCFInvSqrtEquivalence(t *testing.T) {
	var actions []feedback.Action
	min := 0
	add := func(u, v string) {
		actions = append(actions, watch(u, v, t0.Add(time.Duration(min)*time.Minute)))
		min++
	}
	// 24 users × varied baskets: item v<k> is watched by users u<j> with
	// j%(k+2)==0, producing co-occurrence counts from 2 up and item counts
	// that are mostly non-square (so √(a·b) actually rounds).
	for j := 0; j < 24; j++ {
		for k := 0; k < 8; k++ {
			if j%(k+2) == 0 {
				add(fmt.Sprintf("u%d", j), fmt.Sprintf("v%d", k))
			}
		}
	}

	// Recover the exact counts the trainer sees.
	itemCount := make(map[string]int)
	coCount := make(map[[2]string]int)
	perUser := make(map[string][]string)
	for _, a := range actions {
		perUser[a.UserID] = append(perUser[a.UserID], a.VideoID)
	}
	for _, items := range perUser {
		for _, v := range items {
			itemCount[v]++
		}
		for x := 0; x < len(items); x++ {
			for y := x + 1; y < len(items); y++ {
				i, j := items[x], items[y]
				if j < i {
					i, j = j, i
				}
				coCount[[2]string{i, j}]++
			}
		}
	}

	cf := NewItemCF()
	if err := cf.Train(actions); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for pair, n := range coCount {
		if n < cf.MinCoCount {
			continue
		}
		want := float64(n) / math.Sqrt(float64(itemCount[pair[0]])*float64(itemCount[pair[1]]))
		got := 0.0
		for _, e := range cf.Similar(pair[0]) {
			if e.ID == pair[1] {
				got = e.Score
			}
		}
		if got == 0 {
			t.Fatalf("pair %v (co-count %d) missing from similar lists", pair, n)
		}
		if diff := math.Abs(got - want); diff > 1e-12*want {
			t.Errorf("sim%v = %v, direct formula gives %v (diff %g)", pair, got, want, diff)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d pairs checked — corpus too degenerate to prove equivalence", checked)
	}
}

func TestItemCFSymmetry(t *testing.T) {
	cf := NewItemCF()
	cf.Train(coWatchStream())
	ab := 0.0
	for _, e := range cf.Similar("a") {
		if e.ID == "b" {
			ab = e.Score
		}
	}
	ba := 0.0
	for _, e := range cf.Similar("b") {
		if e.ID == "a" {
			ba = e.Score
		}
	}
	if ab == 0 || ab != ba {
		t.Errorf("cosine similarity not symmetric: %v vs %v", ab, ba)
	}
}
