package baseline

import (
	"testing"
	"time"

	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
)

func click(u, v string, ts time.Time) feedback.Action {
	return feedback.Action{UserID: u, VideoID: v, Type: feedback.Click, Timestamp: ts}
}

func watch(u, v string, ts time.Time) feedback.Action {
	return feedback.Action{
		UserID: u, VideoID: v, Type: feedback.PlayTime,
		ViewTime: time.Hour, VideoLength: time.Hour, Timestamp: ts,
	}
}

func impress(u, v string, ts time.Time) feedback.Action {
	return feedback.Action{UserID: u, VideoID: v, Type: feedback.Impress, Timestamp: ts}
}

var t0 = time.Unix(1_000_000, 0)

func TestHotRanksByDecayedPopularity(t *testing.T) {
	h, err := NewHot(kvstore.NewLocal(4), 24*time.Hour, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Record(watch("u1", "popular", t0))
	}
	h.Record(click("u2", "meh", t0))
	got, err := h.Recommend("anyone", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "popular" || got[1] != "meh" {
		t.Errorf("Recommend = %v", got)
	}
	// Personalization-free: every user sees the same list.
	other, _ := h.Recommend("someone-else", 2)
	if len(other) != 2 || other[0] != got[0] {
		t.Error("Hot list differs across users")
	}
}

func TestHotIgnoresImpressions(t *testing.T) {
	h, _ := NewHot(kvstore.NewLocal(4), 24*time.Hour, 50)
	h.Record(impress("u1", "shown", t0))
	if got, _ := h.Recommend("u", 5); len(got) != 0 {
		t.Errorf("impression heated a video: %v", got)
	}
}

func TestHotTracksTrendShift(t *testing.T) {
	h, _ := NewHot(kvstore.NewLocal(4), 12*time.Hour, 50)
	for i := 0; i < 4; i++ {
		h.Record(watch("u1", "yesterday", t0))
	}
	for i := 0; i < 2; i++ {
		h.Record(watch("u2", "today", t0.Add(36*time.Hour)))
	}
	got, _ := h.Recommend("u", 2)
	if got[0] != "today" {
		t.Errorf("Recommend = %v, want today first after decay", got)
	}
}

func TestARTrainAndRecommend(t *testing.T) {
	ar := NewAR()
	ar.MinSupport = 2
	var actions []feedback.Action
	// u1..u3 co-watch a and b; u1, u2 also watch c.
	for _, u := range []string{"u1", "u2", "u3"} {
		actions = append(actions, watch(u, "a", t0), watch(u, "b", t0.Add(time.Minute)))
	}
	actions = append(actions, watch("u1", "c", t0.Add(2*time.Minute)))
	actions = append(actions, watch("u2", "c", t0.Add(2*time.Minute)))
	if err := ar.Train(actions); err != nil {
		t.Fatal(err)
	}
	if ar.RuleCount() == 0 {
		t.Fatal("no rules mined")
	}
	// Rule a→b has confidence 3/3; a→c has 2/3.
	cons := ar.Consequents("a")
	if len(cons) != 2 || cons[0].ID != "b" || cons[1].ID != "c" {
		t.Fatalf("Consequents(a) = %+v", cons)
	}
	if cons[0].Score != 1.0 || cons[1].Score < 0.66 || cons[1].Score > 0.67 {
		t.Errorf("confidences = %v, %v", cons[0].Score, cons[1].Score)
	}
	// u4 watched a only → recommend b then c; a itself excluded.
	ar.Train(append(actions, watch("u4", "a", t0.Add(3*time.Minute))))
	got, err := ar.Recommend("u4", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 || got[0] != "b" {
		t.Errorf("Recommend(u4) = %v, want b first", got)
	}
	for _, v := range got {
		if v == "a" {
			t.Error("recommended an already-watched video")
		}
	}
}

func TestARMinSupportGates(t *testing.T) {
	ar := NewAR()
	ar.MinSupport = 3
	actions := []feedback.Action{
		watch("u1", "a", t0), watch("u1", "b", t0),
		watch("u2", "a", t0), watch("u2", "b", t0),
	}
	ar.Train(actions)
	if ar.RuleCount() != 0 {
		t.Errorf("pair with support 2 produced rules at MinSupport 3")
	}
	ar.MinSupport = 0
	if err := ar.Train(actions); err == nil {
		t.Error("MinSupport 0 accepted")
	}
}

func TestARUnknownUserGetsNothing(t *testing.T) {
	ar := NewAR()
	ar.Train([]feedback.Action{watch("u1", "a", t0), watch("u1", "b", t0)})
	got, err := ar.Recommend("stranger", 5)
	if err != nil || len(got) != 0 {
		t.Errorf("Recommend(stranger) = %v, %v", got, err)
	}
	if _, err := ar.Recommend("u1", 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestARIgnoresImpressions(t *testing.T) {
	ar := NewAR()
	ar.MinSupport = 1
	ar.Train([]feedback.Action{
		impress("u1", "a", t0), impress("u1", "b", t0),
		impress("u2", "a", t0), impress("u2", "b", t0),
	})
	if ar.RuleCount() != 0 {
		t.Error("impressions mined into rules")
	}
}

func TestSimHashSignatureProperties(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2, "z": 1}
	b := map[string]float64{"x": 1, "y": 2, "z": 1}
	if signature(a) != signature(b) {
		t.Error("identical sets produced different signatures")
	}
	// Near-identical sets should be closer than disjoint ones, on average.
	c := map[string]float64{"x": 1, "y": 2, "w": 1}
	d := map[string]float64{"p": 1, "q": 2, "r": 1}
	near := Hamming(signature(a), signature(c))
	far := Hamming(signature(a), signature(d))
	if near >= far {
		t.Errorf("overlapping sets distance %d not below disjoint %d", near, far)
	}
}

func TestSimHashNeighborsAndRecommend(t *testing.T) {
	sh := NewSimHash()
	var actions []feedback.Action
	// Cohort A watches {a1..a5}; cohort B watches {b1..b5}.
	for _, u := range []string{"ua1", "ua2", "ua3"} {
		for _, v := range []string{"a1", "a2", "a3", "a4", "a5"} {
			actions = append(actions, watch(u, v, t0))
		}
	}
	for _, u := range []string{"ub1", "ub2", "ub3"} {
		for _, v := range []string{"b1", "b2", "b3", "b4", "b5"} {
			actions = append(actions, watch(u, v, t0))
		}
	}
	// ua1 additionally watched a6, which ua2/ua3 have not seen.
	actions = append(actions, watch("ua1", "a6", t0))
	if err := sh.Train(actions); err != nil {
		t.Fatal(err)
	}
	neigh := sh.Neighbors("ua2", 10)
	for _, v := range neigh {
		if v == "ua2" {
			t.Error("user is their own neighbour")
		}
	}
	hasCohortMate := false
	for _, v := range neigh {
		if v == "ua1" || v == "ua3" {
			hasCohortMate = true
		}
	}
	if !hasCohortMate {
		t.Errorf("Neighbors(ua2) = %v, expected a cohort mate", neigh)
	}
	recs, err := sh.Recommend("ua2", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range recs {
		switch v {
		case "a1", "a2", "a3", "a4", "a5":
			t.Errorf("recommended already-watched %s", v)
		}
	}
	found := false
	for _, v := range recs {
		if v == "a6" {
			found = true
		}
	}
	if !found {
		t.Errorf("Recommend(ua2) = %v, want a6 (cohort novelty)", recs)
	}
}

func TestSimHashUnknownUser(t *testing.T) {
	sh := NewSimHash()
	sh.Train([]feedback.Action{watch("u1", "a", t0)})
	got, err := sh.Recommend("stranger", 5)
	if err != nil || len(got) != 0 {
		t.Errorf("Recommend(stranger) = %v, %v", got, err)
	}
	if got := sh.Neighbors("stranger", 5); got != nil {
		t.Errorf("Neighbors(stranger) = %v", got)
	}
}

func TestSimHashBandsValidation(t *testing.T) {
	sh := NewSimHash()
	sh.Bands = 0
	if err := sh.Train(nil); err == nil {
		t.Error("Bands=0 accepted")
	}
	sh.Bands = 5
	if err := sh.Train(nil); err == nil {
		t.Error("Bands=5 accepted")
	}
}

func TestHammingBasics(t *testing.T) {
	if Hamming(0, 0) != 0 {
		t.Error("Hamming(0,0) != 0")
	}
	if Hamming(0, ^uint64(0)) != 64 {
		t.Error("Hamming(0,~0) != 64")
	}
	if Hamming(0b1010, 0b0110) != 2 {
		t.Error("Hamming(1010,0110) != 2")
	}
}
