package baseline

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"sync"

	"vidrec/internal/feedback"
	"vidrec/internal/topn"
)

// SimHash is the user-based CF baseline of §6.2: each user's watch set is
// compressed into a 64-bit SimHash signature (random-hyperplane LSH, [4] in
// the paper), users are bucketed by signature bands, and recommendations
// aggregate what near-duplicate users watched. Like the production system it
// replaces brute-force user-to-user similarity — O(U²) — with hash lookups,
// and is "offline": the model retrains at regular intervals via Train.
type SimHash struct {
	// Bands is the number of signature bands used for bucketing; a pair of
	// users is considered neighbours if any band matches. More bands find
	// more (looser) neighbours.
	Bands int
	// MaxNeighbors bounds how many neighbours score candidates per user.
	MaxNeighbors int

	weights feedback.Weights

	mu sync.RWMutex
	// sig[u] is the user's signature; items[u] their weighted watch set.
	sig   map[string]uint64
	items map[string]map[string]float64
	// buckets[band][key] lists users whose band bits equal key.
	buckets []map[uint16][]string
}

// NewSimHash returns an untrained SimHash recommender with 4 bands of 16
// bits.
func NewSimHash() *SimHash {
	return &SimHash{
		Bands:        4,
		MaxNeighbors: 50,
		weights:      feedback.DefaultWeights(),
	}
}

// signature computes the 64-bit random-hyperplane SimHash of a weighted item
// set: each (item, bit) hash contributes ±weight to the bit's accumulator.
func signature(items map[string]float64) uint64 {
	var acc [64]float64
	for item, w := range items {
		h := fnv.New64a()
		h.Write([]byte(item))
		x := h.Sum64()
		// Expand the 64-bit item hash into 64 pseudo-random signs via a
		// SplitMix64 step per word of the accumulator.
		for b := 0; b < 64; b++ {
			z := x + uint64(b)*0x9E3779B97F4A7C15
			z ^= z >> 30
			z *= 0xBF58476D1CE4E5B9
			z ^= z >> 27
			if z&1 == 1 {
				acc[b] += w
			} else {
				acc[b] -= w
			}
		}
	}
	var sig uint64
	for b := 0; b < 64; b++ {
		if acc[b] > 0 {
			sig |= 1 << b
		}
	}
	return sig
}

// Hamming returns the Hamming distance between two signatures.
func Hamming(a, b uint64) int { return bits.OnesCount64(a ^ b) }

// Train rebuilds signatures and buckets from a batch of actions — the
// regular-interval batch retrain of the production SimHash method.
func (s *SimHash) Train(actions []feedback.Action) error {
	if s.Bands < 1 || s.Bands > 4 {
		return fmt.Errorf("baseline: SimHash Bands must be in [1,4], got %d", s.Bands)
	}
	items := make(map[string]map[string]float64)
	for _, a := range actions {
		w := s.weights.Weight(a)
		if w <= 0 {
			continue
		}
		m := items[a.UserID]
		if m == nil {
			m = make(map[string]float64)
			items[a.UserID] = m
		}
		if w > m[a.VideoID] {
			m[a.VideoID] = w
		}
	}
	sig := make(map[string]uint64, len(items))
	buckets := make([]map[uint16][]string, s.Bands)
	for b := range buckets {
		buckets[b] = make(map[uint16][]string)
	}
	users := make([]string, 0, len(items))
	for u := range items {
		users = append(users, u)
	}
	sort.Strings(users) // deterministic bucket membership order
	for _, u := range users {
		g := signature(items[u])
		sig[u] = g
		for b := 0; b < s.Bands; b++ {
			key := uint16(g >> (16 * b))
			buckets[b][key] = append(buckets[b][key], u)
		}
	}
	s.mu.Lock()
	s.sig = sig
	s.items = items
	s.buckets = buckets
	s.mu.Unlock()
	return nil
}

// Neighbors returns up to k users sharing at least one signature band with
// u, nearest (by Hamming distance) first.
func (s *SimHash) Neighbors(u string, k int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.neighborsLocked(u, k)
}

func (s *SimHash) neighborsLocked(u string, k int) []string {
	g, ok := s.sig[u]
	if !ok {
		return nil
	}
	seen := map[string]bool{u: true}
	type cand struct {
		user string
		dist int
	}
	var cands []cand
	for b := 0; b < len(s.buckets); b++ {
		key := uint16(g >> (16 * b))
		for _, v := range s.buckets[b][key] {
			if seen[v] {
				continue
			}
			seen[v] = true
			cands = append(cands, cand{v, Hamming(g, s.sig[v])})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].user < cands[j].user
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].user
	}
	return out
}

// Recommend implements eval.Recommender: score candidates by neighbour
// watches weighted by signature similarity, excluding the user's own
// watched set.
func (s *SimHash) Recommend(userID string, n int) ([]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("baseline: n must be positive, got %d", n)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	own := s.items[userID]
	scores := make(map[string]float64)
	for _, v := range s.neighborsLocked(userID, s.MaxNeighbors) {
		// Similarity from Hamming distance: 1 − d/64 ∈ [0, 1].
		sim := 1 - float64(Hamming(s.sig[userID], s.sig[v]))/64
		for item, w := range s.items[v] {
			if _, watched := own[item]; watched {
				continue
			}
			scores[item] += sim * w
		}
	}
	entries := make([]topn.Entry, 0, len(scores))
	for v, sc := range scores {
		entries = append(entries, topn.Entry{ID: v, Score: sc})
	}
	topn.SortEntriesDesc(entries)
	if len(entries) > n {
		entries = entries[:n]
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out, nil
}
