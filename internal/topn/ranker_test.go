package topn

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// TestRankerMatchesListOnDistinctIDs pins the equivalence contract: for any
// stream of distinct ids, Ranker produces exactly the sequence of admission
// decisions and the final ordering List does — including tie handling, which
// the serving goldens depend on.
func TestRankerMatchesListOnDistinctIDs(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	for trial := 0; trial < 200; trial++ {
		limit := 1 + rng.IntN(12)
		n := rng.IntN(60)
		l := NewList(limit)
		r := NewRanker(limit)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("v%04d", i)
			// Coarse scores force plenty of exact ties.
			score := float64(rng.IntN(8))
			la := l.Update(id, score)
			ra := r.Push(id, score)
			if la != ra {
				t.Fatalf("trial %d entry %d: List admitted=%v, Ranker admitted=%v", trial, i, la, ra)
			}
		}
		le, re := l.All(), r.All()
		if len(le) != len(re) {
			t.Fatalf("trial %d: List kept %d, Ranker kept %d", trial, len(le), len(re))
		}
		for i := range le {
			if le[i] != re[i] {
				t.Fatalf("trial %d slot %d: List %+v, Ranker %+v", trial, i, le[i], re[i])
			}
		}
	}
}

func TestRankerResetAndLimits(t *testing.T) {
	r := NewRanker(3)
	for i, s := range []float64{1, 5, 3, 4, 2} {
		r.Push(fmt.Sprintf("v%d", i), s)
	}
	if r.Len() != 3 || r.Limit() != 3 {
		t.Fatalf("Len/Limit = %d/%d, want 3/3", r.Len(), r.Limit())
	}
	got := r.All()
	want := []Entry{{ID: "v1", Score: 5}, {ID: "v3", Score: 4}, {ID: "v2", Score: 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All = %v, want %v", got, want)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewRanker(0) did not panic")
		}
	}()
	NewRanker(0)
}

// TestRankerPushAllocationFree pins the hot-path contract the Ranker exists
// for: ranking a full candidate batch performs zero allocations.
func TestRankerPushAllocationFree(t *testing.T) {
	r := NewRanker(10)
	ids := make([]string, 200)
	scores := make([]float64, 200)
	rng := rand.New(rand.NewPCG(7, 3))
	for i := range ids {
		ids[i] = fmt.Sprintf("v%04d", i)
		scores[i] = rng.Float64()
	}
	n := testing.AllocsPerRun(100, func() {
		r.Reset()
		for i := range ids {
			r.Push(ids[i], scores[i])
		}
	})
	if n != 0 {
		t.Fatalf("ranking 200 candidates allocates %v per run, want 0", n)
	}
}
