package topn

// Ranker is the serving path's bounded descending-score ranker. It keeps the
// same admission and ordering semantics as List for a stream of *distinct*
// ids — reject when the list is full and the score does not beat the current
// minimum, bubble strictly-better entries up, preserve insertion order among
// equal scores — but maintains no id index: the candidate batch is already
// deduplicated before ranking, so List's map was pure overhead there (the
// warm-path profile showed its hash and assign churn dominating the request).
//
// Feeding a Ranker a duplicate id is a caller bug: both occurrences can end
// up in the list. List remains the structure for id-updating workloads (the
// similar tables, the hot lists).
//
// The zero value is not usable; construct with NewRanker.
type Ranker struct {
	limit   int
	entries []Entry
}

// NewRanker returns an empty ranker that retains at most limit entries.
// It panics if limit is not positive.
func NewRanker(limit int) *Ranker {
	if limit <= 0 {
		panic("topn: limit must be positive")
	}
	return &Ranker{limit: limit, entries: make([]Entry, 0, limit)} // alloccheck: construction; serving reuses one Ranker via Reset
}

// Push offers one entry, reporting whether it was admitted. Identical to
// List.Update over distinct ids: a full ranker admits only scores strictly
// above the current minimum, and equal scores keep first-arrival order.
//
// hotpath: one Push per scored candidate on the serving path; allocation-free
func (r *Ranker) Push(id string, score float64) bool {
	n := len(r.entries)
	if n == r.limit {
		if score <= r.entries[n-1].Score {
			return false
		}
		n-- // overwrite the displaced minimum during the bubble
	}
	// Bubble up from position n: shift strictly-worse entries down one slot,
	// then place the new entry. "Strictly worse" keeps ties insertion-ordered.
	i := n
	for i > 0 && r.entries[i-1].Score < score {
		i--
	}
	r.entries = r.entries[:n+1]
	copy(r.entries[i+1:], r.entries[i:n])
	r.entries[i] = Entry{ID: id, Score: score}
	return true
}

// Reset empties the ranker in place, keeping its backing storage and limit.
func (r *Ranker) Reset() { r.entries = r.entries[:0] }

// Len returns the number of retained entries.
func (r *Ranker) Len() int { return len(r.entries) }

// Limit returns the configured maximum size.
func (r *Ranker) Limit() int { return r.limit }

// All returns every entry, best first, as a copy.
func (r *Ranker) All() []Entry {
	out := make([]Entry, len(r.entries)) // alloccheck: copy-out is the API contract; callers own the result
	copy(out, r.entries)
	return out
}
