package topn_test

import (
	"fmt"

	"vidrec/internal/topn"
)

// A bounded score list keeps only the best entries: updating an existing id
// re-ranks it, and a full list admits newcomers only above its minimum.
func ExampleList() {
	l := topn.NewList(3)
	l.Update("a", 0.2)
	l.Update("b", 0.9)
	l.Update("c", 0.5)
	l.Update("d", 0.1) // rejected: worse than the current minimum
	l.Update("a", 0.7) // re-ranked, not duplicated

	for _, e := range l.All() {
		fmt.Printf("%s %.1f\n", e.ID, e.Score)
	}
	// Output:
	// b 0.9
	// a 0.7
	// c 0.5
}
