package topn

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func ids(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID
	}
	return out
}

func TestNewListPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for limit 0")
		}
	}()
	NewList(0)
}

func TestUpdateOrdering(t *testing.T) {
	l := NewList(5)
	l.Update("a", 1)
	l.Update("b", 3)
	l.Update("c", 2)
	got := ids(l.All())
	want := []string{"b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestUpdateExistingRescores(t *testing.T) {
	l := NewList(3)
	l.Update("a", 1)
	l.Update("b", 2)
	l.Update("a", 5) // a should move to the top, not duplicate
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no duplicates)", l.Len())
	}
	if top := l.All()[0]; top.ID != "a" || top.Score != 5 {
		t.Errorf("top = %+v, want a/5", top)
	}
}

func TestBoundedEviction(t *testing.T) {
	l := NewList(2)
	l.Update("a", 1)
	l.Update("b", 2)
	if kept := l.Update("c", 0.5); kept {
		t.Error("worse-than-minimum insert into a full list must be rejected")
	}
	if kept := l.Update("d", 3); !kept {
		t.Error("better-than-minimum insert must be kept")
	}
	got := ids(l.All())
	if len(got) != 2 || got[0] != "d" || got[1] != "b" {
		t.Errorf("entries = %v, want [d b]", got)
	}
	if _, ok := l.Score("a"); ok {
		t.Error("evicted item still present in index")
	}
}

func TestRemove(t *testing.T) {
	l := NewList(4)
	l.Update("a", 3)
	l.Update("b", 2)
	l.Update("c", 1)
	if !l.Remove("b") {
		t.Fatal("Remove(b) = false, want true")
	}
	if l.Remove("b") {
		t.Fatal("second Remove(b) = true, want false")
	}
	got := ids(l.All())
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("entries = %v, want [a c]", got)
	}
	// Index must stay consistent after the shift.
	if s, ok := l.Score("c"); !ok || s != 1 {
		t.Errorf("Score(c) = %v,%v want 1,true", s, ok)
	}
}

func TestTopClamps(t *testing.T) {
	l := NewList(3)
	l.Update("a", 1)
	if got := l.Top(10); len(got) != 1 {
		t.Errorf("Top(10) len = %d, want 1", len(got))
	}
	if got := l.Top(-1); len(got) != 0 {
		t.Errorf("Top(-1) len = %d, want 0", len(got))
	}
}

func TestScaleDecay(t *testing.T) {
	l := NewList(3)
	l.Update("a", 4)
	l.Update("b", 2)
	l.Scale(0.5)
	if s, _ := l.Score("a"); s != 2 {
		t.Errorf("Score(a) after Scale = %v, want 2", s)
	}
	got := ids(l.All())
	if got[0] != "a" {
		t.Errorf("order after positive Scale changed: %v", got)
	}
}

func TestFromEntriesKeepsBest(t *testing.T) {
	l := FromEntries(2, []Entry{{"a", 1}, {"b", 5}, {"c", 3}, {"b", 4}})
	got := l.All()
	if len(got) != 2 || got[0].ID != "b" || got[0].Score != 4 || got[1].ID != "c" {
		t.Errorf("FromEntries = %+v, want [b/4 c/3]", got)
	}
}

// TestListInvariants property-checks that after any sequence of updates the
// list is sorted descending, within its bound, duplicate-free, and holds the
// items with the highest final scores.
func TestListInvariants(t *testing.T) {
	f := func(ops []struct {
		ID    uint8
		Score float64
	}, limitRaw uint8) bool {
		limit := int(limitRaw%10) + 1
		l := NewList(limit)
		final := map[string]float64{}
		for _, op := range ops {
			id := fmt.Sprintf("v%d", op.ID%20)
			l.Update(id, op.Score)
			// Model: an update always records the latest score; whether the
			// item is *kept* depends on the bound, checked below only for
			// presence of top items when the list was never full-contended.
			final[id] = op.Score
		}
		entries := l.All()
		if len(entries) > limit {
			return false
		}
		seen := map[string]bool{}
		for i, e := range entries {
			if seen[e.ID] {
				return false
			}
			seen[e.ID] = true
			if i > 0 && entries[i-1].Score < e.Score {
				return false
			}
			if _, ok := l.Score(e.ID); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestListMatchesSortReference feeds distinct items once each and checks the
// kept set equals the true top-limit by score.
func TestListMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 1
		limit := rng.Intn(10) + 1
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{ID: fmt.Sprintf("v%03d", i), Score: rng.NormFloat64()}
		}
		l := NewList(limit)
		for _, e := range entries {
			l.Update(e.ID, e.Score)
		}
		ref := append([]Entry(nil), entries...)
		sort.Slice(ref, func(i, j int) bool { return ref[i].Score > ref[j].Score })
		if limit > len(ref) {
			limit = len(ref)
		}
		got := l.All()
		if len(got) != limit {
			t.Fatalf("trial %d: kept %d, want %d", trial, len(got), limit)
		}
		for i := 0; i < limit; i++ {
			if got[i].Score != ref[i].Score {
				t.Fatalf("trial %d: rank %d score %v, want %v", trial, i, got[i].Score, ref[i].Score)
			}
		}
	}
}

func TestSortEntriesDescDeterministicTies(t *testing.T) {
	entries := []Entry{{"b", 1}, {"a", 1}, {"c", 2}}
	SortEntriesDesc(entries)
	if entries[0].ID != "c" || entries[1].ID != "a" || entries[2].ID != "b" {
		t.Errorf("SortEntriesDesc = %v", entries)
	}
}
