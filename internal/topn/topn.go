// Package topn maintains bounded, score-ordered lists of items.
//
// Three parts of the system keep "best K by score" structures: the per-video
// similar-video tables (§4.2 of the paper), the per-demographic-group hot
// video lists (§5.2.1), and the final ranking step of recommendation
// generation (§4.1). All of them share the semantics implemented here:
// highest score first, at most N entries, one entry per item ID (updating an
// existing item's score re-ranks it rather than duplicating it).
package topn

import "sort"

// Entry is one scored item in a list.
type Entry struct {
	ID    string
	Score float64
}

// List is a bounded descending-score list with unique item IDs.
// The zero value is not usable; construct with NewList.
//
// List is not safe for concurrent use. The kvstore serializes access per key,
// and the ResultStorage bolt owns each video's list exclusively via fields
// grouping, so no internal locking is needed.
type List struct {
	limit   int
	entries []Entry
	index   map[string]int // ID -> position in entries
}

// NewList returns an empty list that retains at most limit entries.
// It panics if limit is not positive.
func NewList(limit int) *List {
	if limit <= 0 {
		panic("topn: limit must be positive")
	}
	return &List{limit: limit, index: make(map[string]int)} // alloccheck: construction; the serving path reuses one List via Reset
}

// FromEntries builds a list from arbitrary entries, keeping the best limit.
// Later duplicates of an ID overwrite earlier ones.
func FromEntries(limit int, entries []Entry) *List {
	l := NewList(limit)
	for _, e := range entries {
		l.Update(e.ID, e.Score)
	}
	return l
}

// Update inserts the item or replaces its score, then restores order and the
// size bound. It reports whether the item is present after the update (false
// means it fell off the bottom of a full list).
//
// hotpath: one Update per scored candidate on the serving path
func (l *List) Update(id string, score float64) bool {
	if pos, ok := l.index[id]; ok {
		l.entries[pos].Score = score
		l.fix(pos)
		_, still := l.index[id]
		return still
	}
	if len(l.entries) < l.limit {
		l.entries = append(l.entries, Entry{ID: id, Score: score})
		l.index[id] = len(l.entries) - 1
		l.fix(len(l.entries) - 1)
		return true
	}
	// Full: only admit if better than the current minimum (last entry).
	last := len(l.entries) - 1
	if score <= l.entries[last].Score {
		return false
	}
	delete(l.index, l.entries[last].ID)
	l.entries[last] = Entry{ID: id, Score: score}
	l.index[id] = last
	l.fix(last)
	return true
}

// fix restores descending order after the entry at pos changed, and rebuilds
// affected index positions.
func (l *List) fix(pos int) {
	e := l.entries[pos]
	// Bubble up while better than the predecessor.
	for pos > 0 && l.entries[pos-1].Score < e.Score {
		l.entries[pos] = l.entries[pos-1]
		l.index[l.entries[pos].ID] = pos
		pos--
	}
	// Bubble down while worse than the successor.
	for pos < len(l.entries)-1 && l.entries[pos+1].Score > e.Score {
		l.entries[pos] = l.entries[pos+1]
		l.index[l.entries[pos].ID] = pos
		pos++
	}
	l.entries[pos] = e
	l.index[e.ID] = pos
}

// Score returns the item's score and whether it is present.
func (l *List) Score(id string) (float64, bool) {
	pos, ok := l.index[id]
	if !ok {
		return 0, false
	}
	return l.entries[pos].Score, true
}

// Remove deletes the item if present and reports whether it was.
func (l *List) Remove(id string) bool {
	pos, ok := l.index[id]
	if !ok {
		return false
	}
	delete(l.index, id)
	copy(l.entries[pos:], l.entries[pos+1:])
	l.entries = l.entries[:len(l.entries)-1]
	for i := pos; i < len(l.entries); i++ {
		l.index[l.entries[i].ID] = i
	}
	return true
}

// Reset empties the list in place, keeping its backing storage and limit, so
// a serving path can reuse one List across requests instead of reallocating.
func (l *List) Reset() {
	clear(l.index)
	l.entries = l.entries[:0]
}

// Len returns the number of stored entries.
func (l *List) Len() int { return len(l.entries) }

// Limit returns the configured maximum size.
func (l *List) Limit() int { return l.limit }

// Top returns up to k entries, best first, as a copy.
func (l *List) Top(k int) []Entry {
	if k > len(l.entries) {
		k = len(l.entries)
	}
	if k < 0 {
		k = 0
	}
	out := make([]Entry, k) // alloccheck: copy-out is the API contract; callers own the result
	copy(out, l.entries[:k])
	return out
}

// All returns every entry, best first, as a copy.
func (l *List) All() []Entry { return l.Top(len(l.entries)) }

// Scale multiplies every score by factor, preserving order for positive
// factors. The time-damping pass of the similar-video tables (Eq. 11) uses it
// to decay a whole list in one sweep.
func (l *List) Scale(factor float64) {
	for i := range l.entries {
		l.entries[i].Score *= factor
	}
	if factor < 0 { // order inverted; re-sort defensively
		sort.SliceStable(l.entries, func(i, j int) bool {
			return l.entries[i].Score > l.entries[j].Score
		})
		for i := range l.entries {
			l.index[l.entries[i].ID] = i
		}
	}
}

// SortEntriesDesc orders entries by descending score in place, breaking ties
// by ascending ID so that rankings are deterministic across runs.
func SortEntriesDesc(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].ID < entries[j].ID
	})
}
