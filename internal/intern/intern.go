// Package intern provides an append-only string interner: a stable dense
// int32 slot per distinct string. The serving path uses it to replace
// per-candidate string-map operations with array indexing — the profile that
// motivated it showed the warm Recommend path dominated by map hashing and
// assignment churn (candidate dedup, id→score joins), not by float math.
//
// Slots are assigned in first-sight order and never reused, so any structure
// indexed by slot (the quantized parameter table, the ANN index, per-request
// epoch marks) can grow monotonically and share one id space. The table is
// catalog-bounded by construction: everything interned is a video id that
// exists in the store.
package intern

import "sync"

// Table is an append-only string→slot interner, safe for concurrent use.
// Reads batch under one RLock; interning new strings takes the write lock
// only for the ids not yet present.
type Table struct {
	mu    sync.RWMutex
	slots map[string]int32 // guarded by mu
	ids   []string         // guarded by mu; ids[slot] is the interned string
}

// New returns an empty table.
func New() *Table {
	return &Table{slots: make(map[string]int32)}
}

// Len returns the number of interned strings (also the next slot).
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.ids)
	t.mu.RUnlock()
	return n
}

// Slot returns the id's dense slot, interning it on first sight.
func (t *Table) Slot(id string) int32 {
	t.mu.RLock()
	s, ok := t.slots[id]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	s = t.internLocked(id)
	t.mu.Unlock()
	return s
}

// internLocked assigns the next slot to id unless it raced in already.
// The caller holds mu.
func (t *Table) internLocked(id string) int32 {
	if s, ok := t.slots[id]; ok {
		return s
	}
	s := int32(len(t.ids))
	t.slots[id] = s
	t.ids = append(t.ids, id)
	return s
}

// Slots resolves every id into its slot, interning unseen ids, and returns
// the slots parallel to ids reusing dst's backing array. The common case —
// every id already interned — costs one RLock for the whole batch; only the
// misses upgrade to the write lock.
//
// hotpath: one batch resolve per request replaces per-candidate map assigns
func (t *Table) Slots(ids []string, dst []int32) []int32 {
	if cap(dst) < len(ids) {
		dst = make([]int32, len(ids)) // alloccheck: grow-once; callers pass pooled scratch
	} else {
		dst = dst[:len(ids)]
	}
	misses := 0
	t.mu.RLock()
	for i, id := range ids {
		if s, ok := t.slots[id]; ok {
			dst[i] = s
		} else {
			dst[i] = -1
			misses++
		}
	}
	t.mu.RUnlock()
	if misses == 0 {
		return dst
	}
	t.mu.Lock()
	for i, id := range ids {
		if dst[i] < 0 {
			dst[i] = t.internLocked(id)
		}
	}
	t.mu.Unlock()
	return dst
}

// IDs resolves slots back to their strings into dst (reused when it has
// capacity) under one RLock. Slots outside the table yield empty strings;
// callers only pass slots they obtained from this table.
//
// hotpath: ANN probe results convert back to ids in one batch
func (t *Table) IDs(slots []int32, dst []string) []string {
	if cap(dst) < len(slots) {
		dst = make([]string, len(slots)) // alloccheck: grow-once; callers pass pooled scratch
	} else {
		dst = dst[:len(slots)]
	}
	t.mu.RLock()
	for i, s := range slots {
		if s >= 0 && int(s) < len(t.ids) {
			dst[i] = t.ids[s]
		} else {
			dst[i] = ""
		}
	}
	t.mu.RUnlock()
	return dst
}
