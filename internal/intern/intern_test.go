package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestSlotAssignsDenseInOrder(t *testing.T) {
	tb := New()
	if got := tb.Slot("a"); got != 0 {
		t.Fatalf("first slot = %d, want 0", got)
	}
	if got := tb.Slot("b"); got != 1 {
		t.Fatalf("second slot = %d, want 1", got)
	}
	if got := tb.Slot("a"); got != 0 {
		t.Fatalf("re-intern changed slot: %d", got)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestSlotsBatchAndIDsRoundTrip(t *testing.T) {
	tb := New()
	ids := []string{"x", "y", "x", "z", "y"}
	slots := tb.Slots(ids, nil)
	want := []int32{0, 1, 0, 2, 1}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("slots = %v, want %v", slots, want)
		}
	}
	back := tb.IDs(slots, nil)
	for i := range ids {
		if back[i] != ids[i] {
			t.Fatalf("IDs round trip = %v, want %v", back, ids)
		}
	}
	if got := tb.IDs([]int32{-1, 99}, nil); got[0] != "" || got[1] != "" {
		t.Fatalf("out-of-range slots = %q, want empty strings", got)
	}
}

func TestSlotsReusesDst(t *testing.T) {
	tb := New()
	tb.Slots([]string{"a", "b", "c"}, nil)
	dst := make([]int32, 0, 8)
	out := tb.Slots([]string{"b", "c"}, dst)
	if &out[0] != &dst[:1][0] {
		t.Fatal("Slots did not reuse dst's backing array")
	}
	n := testing.AllocsPerRun(100, func() {
		out = tb.Slots([]string{"a", "b", "c"}, out)
	})
	if n != 0 {
		t.Fatalf("warm Slots allocates %v per run, want 0", n)
	}
	sdst := make([]string, 0, 8)
	n = testing.AllocsPerRun(100, func() {
		sdst = tb.IDs(out, sdst)
	})
	if n != 0 {
		t.Fatalf("warm IDs allocates %v per run, want 0", n)
	}
}

func TestConcurrentInternIsConsistent(t *testing.T) {
	tb := New()
	const workers = 8
	var wg sync.WaitGroup
	results := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]string, 64)
			for i := range ids {
				ids[i] = fmt.Sprintf("v%03d", i)
			}
			results[w] = tb.Slots(ids, nil)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d slot %d = %d, worker 0 got %d", w, i, results[w][i], results[0][i])
			}
		}
	}
	if tb.Len() != 64 {
		t.Fatalf("Len = %d, want 64", tb.Len())
	}
}
