package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value histogram not empty")
	}
}

func TestObserveBasics(t *testing.T) {
	var h Histogram
	h.Observe(1 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 2*time.Millisecond {
		t.Errorf("Mean = %v, want 2ms", got)
	}
	if got := h.Max(); got != 3*time.Millisecond {
		t.Errorf("Max = %v, want 3ms", got)
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 {
		t.Errorf("Max after negative observation = %v", h.Max())
	}
}

// TestQuantileBounds: the reported quantile is an upper bound within one
// bucket (×2) of the true value.
func TestQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(50 * time.Millisecond)
	p50 := h.Quantile(0.5)
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Errorf("p50 = %v, want within [100µs, 200µs]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 > 200*time.Microsecond {
		t.Errorf("p99 = %v, want ≤ 200µs (99/100 samples are 100µs)", p99)
	}
	p100 := h.Quantile(1)
	if p100 < 50*time.Millisecond {
		t.Errorf("p100 = %v, want ≥ 50ms", p100)
	}
}

// TestQuantileMonotone property-checks that quantiles never decrease in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(samplesUs []uint16, qa, qb float64) bool {
		var h Histogram
		for _, us := range samplesUs {
			h.Observe(time.Duration(us) * time.Microsecond)
		}
		if qa > qb {
			qa, qb = qb, qa
		}
		return h.Quantile(qa) <= h.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if h.Quantile(-1) > h.Quantile(0) {
		t.Error("q < 0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q > 1 not clamped")
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d (lost samples)", h.Count(), workers*per)
	}
	if h.Max() != workers*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.P50 == 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Error("zero-value counter not 0")
	}
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("Load = %d, want 5", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Errorf("Load = %d, want %d (lost increments)", c.Load(), workers*per)
	}
}

func TestBucketExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)              // below first bucket
	h.Observe(24 * time.Hour) // beyond last bucket
	if h.Count() != 2 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Quantile(1) == 0 {
		t.Error("overflow bucket not counted in quantiles")
	}
}
