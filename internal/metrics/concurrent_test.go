package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentWriters hammers one histogram from many goroutines
// and checks no increment is lost: the count, the per-bucket totals, the sum
// (via Mean), and the max must all agree with the deterministic workload.
// Under `make race` this doubles as the proof that Observe/Snapshot need no
// external locking, which is what lets the serving path record latencies
// inline.
func TestHistogramConcurrentWriters(t *testing.T) {
	const (
		writers    = 16
		perWriter  = 2000
		totalCount = writers * perWriter
	)
	var h Histogram
	var wg sync.WaitGroup
	var wantSum int64
	// Deterministic workload: writer g records latencies spread across the
	// bucket range, including the maximum at a known position.
	latency := func(g, i int) time.Duration {
		return time.Duration((g*perWriter+i)%5000) * time.Microsecond
	}
	for g := 0; g < writers; g++ {
		for i := 0; i < perWriter; i++ {
			wantSum += int64(latency(g, i))
		}
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(latency(g, i))
				if i%100 == 0 {
					_ = h.Snapshot() // concurrent readers must not tear
				}
			}
		}()
	}
	wg.Wait()

	if got := h.Count(); got != totalCount {
		t.Errorf("Count() = %d, want %d — increments were lost", got, totalCount)
	}
	var bucketSum uint64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != totalCount {
		t.Errorf("bucket totals sum to %d, want %d", bucketSum, totalCount)
	}
	if want := time.Duration(wantSum / totalCount); h.Mean() != want {
		t.Errorf("Mean() = %v, want %v — the sum drifted", h.Mean(), want)
	}
	if want := 4999 * time.Microsecond; h.Max() != want {
		t.Errorf("Max() = %v, want %v", h.Max(), want)
	}
	snap := h.Snapshot()
	if snap.Count != totalCount || snap.Max != h.Max() {
		t.Errorf("Snapshot disagrees with accessors: %+v", snap)
	}
	if snap.P50 > snap.P99 || snap.P99 > bucketUpper(bucketCount-1) {
		t.Errorf("quantiles out of order: p50 %v, p99 %v", snap.P50, snap.P99)
	}
}
