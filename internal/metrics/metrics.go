// Package metrics provides a small lock-free latency histogram for the
// serving path. The paper's production claim — "it can provide accurate
// real-time video recommendations steadily, handling millions of user
// requests every day, with latency of milliseconds" — is a tail-latency
// statement; this histogram records request latencies with bounded memory
// and answers quantile queries without retaining samples.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// bucketCount covers 1µs to ~1000s in exponential buckets (×2 per bucket).
const bucketCount = 32

// Counter is a monotonically increasing event counter, safe for concurrent
// use. The zero value is ready. It exists so subsystems that export
// operation counts (the kvstore, the decoded-object cache) share one
// primitive instead of re-deriving atomic wrappers.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Histogram is a fixed-bucket exponential latency histogram. The zero value
// is ready to use. All methods are safe for concurrent use.
type Histogram struct {
	buckets [bucketCount]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
	max     atomic.Int64
}

// bucketFor maps a duration to its bucket index: bucket i covers
// [1µs·2^i, 1µs·2^(i+1)).
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := int(math.Log2(float64(us)))
	if b < 0 {
		b = 0
	}
	if b >= bucketCount {
		b = bucketCount - 1
	}
	return b
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(1<<uint(i+1)) * time.Microsecond
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an upper bound for the q-quantile (q in [0,1]) at bucket
// resolution. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpper(i)
		}
	}
	return bucketUpper(bucketCount - 1)
}

// Snapshot summarizes the histogram for reporting.
type Snapshot struct {
	Count    uint64
	Mean     time.Duration
	P50, P99 time.Duration
	Max      time.Duration
}

// Snapshot returns a point-in-time summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.5),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// String renders the snapshot compactly.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50≤%v p99≤%v max=%v", s.Count, s.Mean, s.P50, s.P99, s.Max)
	return b.String()
}
