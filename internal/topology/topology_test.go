package topology

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/dataset"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/storm"
)

func newSystem(t *testing.T) *recommend.System {
	t.Helper()
	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(kvstore.NewLocal(32), params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func generatedActions(t *testing.T) (*dataset.Dataset, []feedback.Action) {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Users = 100
	cfg.Videos = 50
	cfg.Days = 2
	cfg.EventsPerDay = 700
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.AllActions()
}

func runTopology(t *testing.T, sys *recommend.System, actions []feedback.Action, par Parallelism) *storm.Topology {
	t.Helper()
	topo, err := Build(sys, func(int) Source { return SliceSource(actions) }, par)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuildValidation(t *testing.T) {
	sys := newSystem(t)
	if _, err := Build(nil, func(int) Source { return SliceSource(nil) }, DefaultParallelism()); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := Build(sys, nil, DefaultParallelism()); err == nil {
		t.Error("nil source factory accepted")
	}
}

func TestTopologyProcessesFullStream(t *testing.T) {
	sys := newSystem(t)
	d, actions := generatedActions(t)
	if err := d.FillCatalog(context.Background(), sys.Catalog); err != nil {
		t.Fatal(err)
	}
	if err := d.FillProfiles(context.Background(), sys.Profiles); err != nil {
		t.Fatal(err)
	}
	topo := runTopology(t, sys, actions, DefaultParallelism())

	spout, err := topo.MetricsFor(SpoutName)
	if err != nil {
		t.Fatal(err)
	}
	if spout.Emitted != uint64(len(actions)) {
		t.Errorf("spout emitted %d, want %d", spout.Emitted, len(actions))
	}
	compute, _ := topo.MetricsFor(ComputeMFName)
	if compute.Executed != uint64(len(actions)) {
		t.Errorf("ComputeMF executed %d, want %d", compute.Executed, len(actions))
	}
	if compute.Failed != 0 {
		t.Errorf("ComputeMF failed %d executions", compute.Failed)
	}
	storage, _ := topo.MetricsFor(MFStorageName)
	if storage.Executed == 0 {
		t.Error("MFStorage executed nothing")
	}
	result, _ := topo.MetricsFor(ResultStorageName)
	if result.Executed == 0 {
		t.Error("ResultStorage executed nothing")
	}

	// The global model must have trained on every positive action exactly
	// as the sequential path would: positives = actions with weight > 0.
	positives := 0
	for _, a := range actions {
		if sys.Weights().Weight(a) > 0 {
			positives++
		}
	}
	global, err := sys.Models.For(demographic.GlobalGroup)
	if err != nil {
		t.Fatal(err)
	}
	if got := global.Stats(); got.Trained.Load() != 0 {
		// Topology trains via Step/Store, not ProcessAction, so model
		// stats stay at zero — the check below asserts state instead.
		t.Errorf("unexpected ProcessAction use in topology: %d", got.Trained.Load())
	}
	// A user with positive actions must have a stored vector.
	var trainedUser string
	for _, a := range actions {
		if sys.Weights().Weight(a) > 0 {
			trainedUser = a.UserID
			break
		}
	}
	if _, _, known, _ := global.UserVector(context.Background(), trainedUser); !known {
		t.Errorf("user %s not trained by topology", trainedUser)
	}
	_ = positives
}

func TestTopologyPopulatesAllStateStores(t *testing.T) {
	sys := newSystem(t)
	d, actions := generatedActions(t)
	d.FillCatalog(context.Background(), sys.Catalog)
	d.FillProfiles(context.Background(), sys.Profiles)
	runTopology(t, sys, actions, DefaultParallelism())

	// Histories recorded.
	histFound := false
	for _, u := range d.Users()[:50] {
		vids, err := sys.History.RecentVideos(context.Background(), u.ID, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(vids) > 0 {
			histFound = true
			break
		}
	}
	if !histFound {
		t.Error("no user histories recorded")
	}

	// Hot lists heated.
	hot, err := sys.Hot.Hot(context.Background(), demographic.GlobalGroup, 10, sys.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		// sys.Now is only advanced by Ingest; use the last action time.
		hot, _ = sys.Hot.Hot(context.Background(), demographic.GlobalGroup, 10, actions[len(actions)-1].Timestamp)
	}
	if len(hot) == 0 {
		t.Error("global hot list empty after topology run")
	}

	// Similar tables populated for at least one popular video.
	tables, _ := sys.Tables.For(demographic.GlobalGroup)
	simFound := false
	now := actions[len(actions)-1].Timestamp
	for _, v := range d.Videos() {
		similar, err := tables.Similar(context.Background(), v.Meta.ID, 5, now)
		if err != nil {
			t.Fatal(err)
		}
		if len(similar) > 0 {
			simFound = true
			break
		}
	}
	if !simFound {
		t.Error("no similar-video tables populated")
	}
}

// TestTopologyEndToEndRecommendations: after a streamed run, the recommend
// service must produce non-empty personalized lists.
func TestTopologyEndToEndRecommendations(t *testing.T) {
	sys := newSystem(t)
	d, actions := generatedActions(t)
	d.FillCatalog(context.Background(), sys.Catalog)
	d.FillProfiles(context.Background(), sys.Profiles)
	runTopology(t, sys, actions, DefaultParallelism())
	sys.SetClock(func() time.Time { return actions[len(actions)-1].Timestamp })

	served := 0
	for _, u := range d.Users()[:30] {
		res, err := sys.Recommend(context.Background(), recommend.Request{UserID: u.ID, N: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Videos) > 0 {
			served++
		}
	}
	if served < 25 {
		t.Errorf("only %d/30 users received recommendations", served)
	}
}

// TestTopologyMatchesSequentialIngest compares topology output with the
// sequential Ingest path on the same stream: identical histories for every
// user and closely matching hot lists. (Vector state differs slightly:
// bolts interleave read-modify-write cycles across keys, the documented
// production behaviour.)
func TestTopologyMatchesSequentialIngest(t *testing.T) {
	d, actions := generatedActions(t)

	topoSys := newSystem(t)
	d.FillCatalog(context.Background(), topoSys.Catalog)
	d.FillProfiles(context.Background(), topoSys.Profiles)
	runTopology(t, topoSys, actions, DefaultParallelism())

	seqSys := newSystem(t)
	d.FillCatalog(context.Background(), seqSys.Catalog)
	d.FillProfiles(context.Background(), seqSys.Profiles)
	for _, a := range actions {
		if err := seqSys.Ingest(context.Background(), a); err != nil {
			t.Fatal(err)
		}
	}

	now := actions[len(actions)-1].Timestamp
	for _, u := range d.Users() {
		want, _ := seqSys.History.RecentVideos(context.Background(), u.ID, 50)
		got, _ := topoSys.History.RecentVideos(context.Background(), u.ID, 50)
		if len(want) != len(got) {
			t.Fatalf("history length mismatch for %s: topo %d vs seq %d", u.ID, len(got), len(want))
		}
	}
	wantHot, _ := seqSys.Hot.Hot(context.Background(), demographic.GlobalGroup, 10, now)
	gotHot, _ := topoSys.Hot.Hot(context.Background(), demographic.GlobalGroup, 10, now)
	if len(wantHot) == 0 || len(gotHot) == 0 {
		t.Fatal("hot lists empty")
	}
	wantSet := map[string]bool{}
	for _, e := range wantHot {
		wantSet[e.ID] = true
	}
	overlap := 0
	for _, e := range gotHot {
		if wantSet[e.ID] {
			overlap++
		}
	}
	if overlap < len(gotHot)*7/10 {
		t.Errorf("hot list overlap %d/%d too low", overlap, len(gotHot))
	}
}

// TestTopologyParallelismSweep: the same stream must process correctly at
// several parallelism levels.
func TestTopologyParallelismSweep(t *testing.T) {
	d, actions := generatedActions(t)
	for _, p := range []int{1, 2, 8} {
		par := Parallelism{
			Spout: 1, ComputeMF: p, MFStorage: p, UserHistory: p,
			GetItemPairs: p, ItemPairSim: p, ResultStorage: p,
		}
		sys := newSystem(t)
		d.FillCatalog(context.Background(), sys.Catalog)
		d.FillProfiles(context.Background(), sys.Profiles)
		topo := runTopology(t, sys, actions, par)
		m, _ := topo.MetricsFor(ComputeMFName)
		if m.Executed != uint64(len(actions)) {
			t.Errorf("parallelism %d: executed %d, want %d", p, m.Executed, len(actions))
		}
	}
}

// TestTopologyGracefulCancellation: an endless production stream must stop
// cleanly on context cancellation, with all in-flight tuples drained and
// the state left serviceable.
func TestTopologyGracefulCancellation(t *testing.T) {
	sys := newSystem(t)
	d, _ := generatedActions(t)
	d.FillCatalog(context.Background(), sys.Catalog)
	d.FillProfiles(context.Background(), sys.Profiles)

	// An endless source: loops the generated stream forever.
	endless := func(int) Source {
		stream := d.Stream()
		return SourceFunc(func() (feedback.Action, bool) {
			a, ok := stream.Next()
			if !ok {
				stream = d.Stream()
				a, ok = stream.Next()
				if !ok {
					return feedback.Action{}, false
				}
			}
			return a, true
		})
	}
	topo, err := Build(sys, endless, DefaultParallelism())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- topo.Run(ctx) }()
	time.Sleep(300 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("topology did not stop after cancellation")
	}
	m, _ := topo.MetricsFor(ComputeMFName)
	if m.Executed == 0 {
		t.Fatal("nothing processed before cancellation")
	}
	// All queues must be drained: executed everything delivered.
	for _, name := range []string{ComputeMFName, UserHistoryName, GetItemPairsName} {
		cm, _ := topo.MetricsFor(name)
		if cm.QueueDepth != 0 {
			t.Errorf("%s queue depth = %d after drain", name, cm.QueueDepth)
		}
	}
	// The partially built state still serves.
	hot, err := sys.Hot.Hot(context.Background(), "global", 5, sys.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	_ = hot // presence depends on how far the stream got; no error is the bar
}

func TestSpoutFiltersUnqualifiedTuples(t *testing.T) {
	sys := newSystem(t)
	actions := []feedback.Action{
		{UserID: "", VideoID: "v1", Type: feedback.Click, Timestamp: time.Unix(0, 0)},
		{UserID: "u1", VideoID: "", Type: feedback.Click, Timestamp: time.Unix(1, 0)},
		{UserID: "u1", VideoID: "v1", Type: feedback.Click, Timestamp: time.Unix(2, 0)},
	}
	topo := runTopology(t, sys, actions, DefaultParallelism())
	m, _ := topo.MetricsFor(SpoutName)
	if m.Emitted != 1 {
		t.Errorf("spout emitted %d tuples, want 1 (two filtered)", m.Emitted)
	}
}
