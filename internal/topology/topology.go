// Package topology wires the paper's Figure 2 onto the storm engine: one
// spout parsing the raw action stream, and the three processing lines —
//
//	spout ─▶ ComputeMF ─▶ MFStorage            (model updates)
//	spout ─▶ UserHistory                        (behaviour histories + hot lists)
//	spout ─▶ GetItemPairs ─▶ ItemPairSim ─▶ ResultStorage   (similar-video tables)
//	spout ─▶ BanditReward ─▶ BanditState        (exploration reward loop)
//
// with the groupings the paper specifies: action tuples are fields-grouped
// by user id, freshly computed vectors are regrouped by their storage key on
// the way to MFStorage (the single-writer guarantee of §5.1), and pair
// similarities are grouped by the owning video before storage.
//
// The bolts operate on the exact same components as recommend.System's
// sequential Ingest; the topology is the scalable deployment of the same
// state machine.
package topology

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/core"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/lru"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/storm"
)

// Component names, as in Figure 2.
const (
	SpoutName         = "spout"
	ComputeMFName     = "ComputeMF"
	MFStorageName     = "MFStorage"
	UserHistoryName   = "UserHistory"
	GetItemPairsName  = "GetItemPairs"
	ItemPairSimName   = "ItemPairSim"
	ResultStorageName = "ResultStorage"
	BanditRewardName  = "BanditReward"
	BanditStateName   = "BanditState"
)

// Parallelism sets per-component task counts (the "parallelism of different
// spout or bolts is determined by the data set").
type Parallelism struct {
	Spout, ComputeMF, MFStorage, UserHistory, GetItemPairs, ItemPairSim, ResultStorage int
	// BanditReward and BanditState run the exploration reward line. Zero
	// values are clamped to 1 by the storm builder, so existing literals
	// that predate the bandit keep building.
	BanditReward, BanditState int
}

// DefaultParallelism returns a small-machine layout.
func DefaultParallelism() Parallelism {
	return Parallelism{
		Spout:         1,
		ComputeMF:     4,
		MFStorage:     4,
		UserHistory:   2,
		GetItemPairs:  2,
		ItemPairSim:   4,
		ResultStorage: 4,
		BanditReward:  2,
		// The reward state is one shared record; a single writer task keeps
		// its read-modify-write serialized the way MFStorage's key grouping
		// serializes vectors.
		BanditState: 1,
	}
}

// Source supplies actions to one spout task. Next reports false when the
// stream is exhausted.
type Source interface {
	Next() (feedback.Action, bool)
}

// SourceFunc adapts a function to Source.
type SourceFunc func() (feedback.Action, bool)

// Next implements Source.
func (f SourceFunc) Next() (feedback.Action, bool) { return f() }

// SliceSource replays a fixed slice of actions.
func SliceSource(actions []feedback.Action) Source {
	i := 0
	return SourceFunc(func() (feedback.Action, bool) {
		if i >= len(actions) {
			return feedback.Action{}, false
		}
		a := actions[i]
		i++
		return a, true
	})
}

// Options tunes the assembled topology beyond parallelism. The zero value
// reproduces Build's behaviour; the simulation harness (internal/sim) sets
// every field to pin the run down deterministically and to inject faults.
type Options struct {
	// Tracked makes the spout emit tracked tuples: the acker builds a tree
	// per action, the Acked/FailedTrees metrics account for every action,
	// and Topology.UnresolvedTrees can prove conservation after the run.
	Tracked bool
	// QueueSize overrides the per-task input queue capacity when > 0.
	QueueSize int
	// MaxPending caps unresolved tracked trees per spout task when > 0
	// (storm's max-spout-pending). MaxPending 1 with Tracked serializes the
	// pipeline at action granularity: each action's full tuple tree completes
	// before the next emission.
	MaxPending int
	// Synchronous runs the topology on storm's single-goroutine deterministic
	// scheduler (storm.Builder.SetSynchronous): execution order becomes a
	// pure function of the action stream — the mode the replay-determinism
	// scenario needs, since even single-task components race on shared store
	// keys under the concurrent scheduler.
	Synchronous bool
	// Seed seeds the engine's per-task edge-id generators when non-zero.
	Seed uint64
	// CacheClock, when non-nil, replaces the wall clock in the ItemPairSim
	// task-local TTL caches so cache expiry follows a virtual clock instead
	// of wall time.
	CacheClock func() time.Time
	// WrapBolt, when non-nil, decorates every bolt instance as it is
	// created (name is the component name) — the hook the simulation
	// harness uses to model bolt restarts and slow bolts.
	WrapBolt func(name string, b storm.Bolt) storm.Bolt
}

// Build assembles the Figure 2 topology over the system's components.
// sources is invoked once per spout task.
func Build(sys *recommend.System, sources func(task int) Source, par Parallelism) (*storm.Topology, error) {
	return BuildWithOptions(sys, sources, par, Options{})
}

// BuildWithOptions is Build with explicit Options.
func BuildWithOptions(sys *recommend.System, sources func(task int) Source, par Parallelism, opt Options) (*storm.Topology, error) {
	if sys == nil {
		return nil, fmt.Errorf("topology: system must not be nil")
	}
	if sources == nil {
		return nil, fmt.Errorf("topology: source factory must not be nil")
	}
	b := storm.NewBuilder("rt-video-recommendation")
	if opt.QueueSize > 0 {
		b.SetQueueSize(opt.QueueSize)
	}
	if opt.MaxPending > 0 {
		b.SetMaxSpoutPending(opt.MaxPending)
	}
	if opt.Seed != 0 {
		b.SetSeed(opt.Seed)
	}
	if opt.Synchronous {
		b.SetSynchronous(true)
	}
	wrap := func(name string, mk func() storm.Bolt) func() storm.Bolt {
		if opt.WrapBolt == nil {
			return mk
		}
		return func() storm.Bolt { return opt.WrapBolt(name, mk()) }
	}

	spoutTask := 0
	b.SetSpout(SpoutName, func() storm.Spout {
		s := &actionSpout{tracked: opt.Tracked}
		s.src = sources(spoutTask)
		spoutTask++
		return s
	}, par.Spout).OutputFields("user", "video", "action")

	b.SetBolt(ComputeMFName, wrap(ComputeMFName, func() storm.Bolt { return &computeMFBolt{sys: sys} }), par.ComputeMF).
		FieldsGrouping(SpoutName, "user").
		OutputFields("key", "kind", "group", "id", "vec", "bias")

	b.SetBolt(MFStorageName, wrap(MFStorageName, func() storm.Bolt { return &mfStorageBolt{sys: sys} }), par.MFStorage).
		FieldsGrouping(ComputeMFName, "key")

	b.SetBolt(UserHistoryName, wrap(UserHistoryName, func() storm.Bolt { return &userHistoryBolt{sys: sys} }), par.UserHistory).
		FieldsGrouping(SpoutName, "user")

	b.SetBolt(GetItemPairsName, wrap(GetItemPairsName, func() storm.Bolt { return &getItemPairsBolt{sys: sys} }), par.GetItemPairs).
		FieldsGrouping(SpoutName, "user").
		OutputFields("video1", "video2", "group", "tsms")

	b.SetBolt(ItemPairSimName, wrap(ItemPairSimName, func() storm.Bolt { return &itemPairSimBolt{sys: sys, clock: opt.CacheClock} }), par.ItemPairSim).
		FieldsGrouping(GetItemPairsName, "video1", "video2").
		OutputFields("video1", "video2", "sim", "group", "tsms")

	b.SetBolt(ResultStorageName, wrap(ResultStorageName, func() storm.Bolt { return &resultStorageBolt{sys: sys} }), par.ResultStorage).
		FieldsGrouping(ItemPairSimName, "video1")

	b.SetBolt(BanditRewardName, wrap(BanditRewardName, func() storm.Bolt { return &banditRewardBolt{sys: sys} }), par.BanditReward).
		FieldsGrouping(SpoutName, "user").
		OutputFields("arm", "reward", "tsms")

	b.SetBolt(BanditStateName, wrap(BanditStateName, func() storm.Bolt { return &banditStateBolt{sys: sys} }), par.BanditState).
		FieldsGrouping(BanditRewardName, "arm")

	return b.Build()
}

// actionSpout parses and emits the raw action stream: "the spout gets data
// ..., parses the raw message, filters the unqualified data tuples".
type actionSpout struct {
	src     Source
	out     *storm.SpoutCollector
	tracked bool
	seq     int // message ids for tracked emissions
}

func (s *actionSpout) Open(_ *storm.Context, out *storm.SpoutCollector) error {
	s.out = out
	return nil
}
func (s *actionSpout) Close() error { return nil }

func (s *actionSpout) NextTuple() (bool, error) {
	a, ok := s.src.Next()
	if !ok {
		return false, nil
	}
	if a.UserID == "" || a.VideoID == "" {
		return true, nil // unqualified tuple: filter, keep streaming
	}
	if s.tracked {
		s.seq++
		s.out.EmitTracked(s.seq, storm.Values{a.UserID, a.VideoID, a})
	} else {
		s.out.Emit(storm.Values{a.UserID, a.VideoID, a})
	}
	return true, nil
}

// Ack and Fail satisfy storm.Acknowledger for tracked runs; resolution
// accounting lives in the topology metrics (Acked/FailedTrees), so the hooks
// have nothing further to record.
func (s *actionSpout) Ack(any)  {}
func (s *actionSpout) Fail(any) {}

func actionOf(t *storm.Tuple) (feedback.Action, error) {
	v, err := t.Field("action")
	if err != nil {
		return feedback.Action{}, err
	}
	a, ok := v.(feedback.Action)
	if !ok {
		return feedback.Action{}, fmt.Errorf("topology: action field is %T", v)
	}
	return a, nil
}

// computeMFBolt runs Algorithm 1's arithmetic and emits the new vectors,
// regrouped by storage key, to MFStorage — compute and storage are separated
// exactly as in §5.1 so that each key has a single writer.
type computeMFBolt struct {
	sys *recommend.System
	ctx context.Context
	out *storm.BoltCollector
}

func (b *computeMFBolt) Prepare(cctx *storm.Context, out *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	b.out = out
	return nil
}
func (b *computeMFBolt) Cleanup() error { return nil }

func (b *computeMFBolt) Execute(t *storm.Tuple) error {
	a, err := actionOf(t)
	if err != nil {
		return err
	}
	group, err := b.sys.Profiles.GroupOf(b.ctx, a.UserID)
	if err != nil {
		return err
	}
	if err := b.step(demographic.GlobalGroup, a); err != nil {
		return err
	}
	if b.sys.Options().DemographicTraining && group != demographic.GlobalGroup {
		return b.step(group, a)
	}
	return nil
}

// step computes one model's update for the action and emits the new state.
func (b *computeMFBolt) step(group string, a feedback.Action) error {
	model, err := b.sys.Models.For(group)
	if err != nil {
		return err
	}
	rating, weight := model.Params().Weights.Confidence(a)
	// The global-mean counter is shared state with per-key atomic update;
	// it is observed here (compute side) for every action, using the
	// rule's own training-rating scale exactly as ProcessAction does.
	observed := 0.0
	if rating > 0 {
		observed = model.Params().TrainingRating(rating, weight)
	}
	if err := model.ObserveRating(b.ctx, observed); err != nil {
		return err
	}
	if rating == 0 {
		return nil
	}
	state, _, _, err := model.Load(b.ctx, a.UserID, a.VideoID)
	if err != nil {
		return err
	}
	mu, err := model.GlobalMean(b.ctx)
	if err != nil {
		return err
	}
	next := model.Params().Step(state, mu, rating, weight)
	if !core.StateFinite(next) {
		model.Stats().Diverged.Add(1)
		return nil // drop the update rather than store non-finite vectors
	}
	b.out.Emit(storm.Values{group + "|u|" + a.UserID, "user", group, a.UserID, next.UserVec, next.UserBias})
	b.out.Emit(storm.Values{group + "|i|" + a.VideoID, "item", group, a.VideoID, next.ItemVec, next.ItemBias})
	return nil
}

// mfStorageBolt writes freshly computed vectors; fields grouping by key
// guarantees it is the only writer for that vector.
type mfStorageBolt struct {
	sys *recommend.System
	ctx context.Context
}

func (b *mfStorageBolt) Prepare(cctx *storm.Context, _ *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	return nil
}
func (b *mfStorageBolt) Cleanup() error { return nil }

func (b *mfStorageBolt) Execute(t *storm.Tuple) error {
	kind, err := t.String("kind")
	if err != nil {
		return err
	}
	group, err := t.String("group")
	if err != nil {
		return err
	}
	id, err := t.String("id")
	if err != nil {
		return err
	}
	vecAny, err := t.Field("vec")
	if err != nil {
		return err
	}
	vec, ok := vecAny.([]float64)
	if !ok {
		return fmt.Errorf("topology: vec field is %T", vecAny)
	}
	biasAny, err := t.Field("bias")
	if err != nil {
		return err
	}
	bias, ok := biasAny.(float64)
	if !ok {
		return fmt.Errorf("topology: bias field is %T", biasAny)
	}
	model, err := b.sys.Models.For(group)
	if err != nil {
		return err
	}
	switch kind {
	case "user":
		return model.StoreUser(b.ctx, id, vec, bias)
	case "item":
		return model.StoreItem(b.ctx, id, vec, bias)
	default:
		return fmt.Errorf("topology: unknown vector kind %q", kind)
	}
}

// userHistoryBolt records behaviour histories and heats the demographic hot
// lists.
type userHistoryBolt struct {
	sys *recommend.System
	ctx context.Context
}

func (b *userHistoryBolt) Prepare(cctx *storm.Context, _ *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	return nil
}
func (b *userHistoryBolt) Cleanup() error { return nil }

func (b *userHistoryBolt) Execute(t *storm.Tuple) error {
	a, err := actionOf(t)
	if err != nil {
		return err
	}
	weight := weightOf(b.sys, a)
	if weight <= 0 {
		return nil
	}
	if err := b.sys.History.Append(b.ctx, a.UserID, a.VideoID, a.Timestamp); err != nil {
		return err
	}
	if err := b.sys.Hot.Record(b.ctx, demographic.GlobalGroup, a.VideoID, weight, a.Timestamp); err != nil {
		return err
	}
	if b.sys.Options().DemographicFiltering {
		group, err := b.sys.Profiles.GroupOf(b.ctx, a.UserID)
		if err != nil {
			return err
		}
		if group != demographic.GlobalGroup {
			return b.sys.Hot.Record(b.ctx, group, a.VideoID, weight, a.Timestamp)
		}
	}
	return nil
}

func weightOf(sys *recommend.System, a feedback.Action) float64 {
	return sys.Weights().Weight(a)
}

// getItemPairsBolt expands each positive action into (video, recent video)
// pairs, emitted in both directions so each video's table has an owner task.
type getItemPairsBolt struct {
	sys *recommend.System
	ctx context.Context
	out *storm.BoltCollector
}

func (b *getItemPairsBolt) Prepare(cctx *storm.Context, out *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	b.out = out
	return nil
}
func (b *getItemPairsBolt) Cleanup() error { return nil }

func (b *getItemPairsBolt) Execute(t *storm.Tuple) error {
	a, err := actionOf(t)
	if err != nil {
		return err
	}
	if weightOf(b.sys, a) <= 0 {
		return nil
	}
	group, err := b.sys.Profiles.GroupOf(b.ctx, a.UserID)
	if err != nil {
		return err
	}
	recent, err := b.sys.History.RecentVideos(b.ctx, a.UserID, b.sys.Options().PairWindow)
	if err != nil {
		return err
	}
	ts := a.Timestamp.UnixMilli()
	for _, pair := range simtable.Pairs(a.VideoID, recent) {
		b.out.Emit(storm.Values{pair[0], pair[1], group, ts})
		b.out.Emit(storm.Values{pair[1], pair[0], group, ts})
	}
	return nil
}

// itemPairSimBolt computes the fused pair similarity (Eq. 9–12's undamped
// part) for the pair's group — and for the global group when they differ.
//
// The bolt applies §5.1's cache technique: fields grouping routes all pairs
// with the same video1 to this task, so the task caches item vectors and
// catalog types locally with a short TTL and skips most store reads. A
// vector up to vectorCacheTTL stale shifts a pair score well within the
// online model's own step-to-step movement.
type itemPairSimBolt struct {
	sys     *recommend.System
	ctx     context.Context
	out     *storm.BoltCollector
	clock   func() time.Time              // nil = wall clock; set via Options.CacheClock
	vectors *lru.Cache[string, []float64] // key: group|video
	types   *lru.Cache[string, string]    // key: video
}

// Cache sizing for the ItemPairSim task (§5.1's cache technique).
const (
	vectorCacheSize = 4096
	vectorCacheTTL  = 2 * time.Second
)

func (b *itemPairSimBolt) Prepare(cctx *storm.Context, out *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	b.out = out
	b.vectors = lru.New[string, []float64](vectorCacheSize, vectorCacheTTL)
	b.types = lru.New[string, string](vectorCacheSize, 0) // types are immutable
	if b.clock != nil {
		b.vectors.SetClock(b.clock)
		b.types.SetClock(b.clock)
	}
	return nil
}
func (b *itemPairSimBolt) Cleanup() error { return nil }

func (b *itemPairSimBolt) Execute(t *storm.Tuple) error {
	v1, err := t.String("video1")
	if err != nil {
		return err
	}
	v2, err := t.String("video2")
	if err != nil {
		return err
	}
	group, err := t.String("group")
	if err != nil {
		return err
	}
	tsAny, err := t.Field("tsms")
	if err != nil {
		return err
	}
	ts, ok := tsAny.(int64)
	if !ok {
		return fmt.Errorf("topology: tsms field is %T", tsAny)
	}
	groups := []string{group}
	if b.sys.Options().DemographicTraining && group != demographic.GlobalGroup {
		groups = append(groups, demographic.GlobalGroup)
	}
	for _, g := range groups {
		score, err := b.pairScore(g, v1, v2)
		if err != nil {
			return err
		}
		b.out.Emit(storm.Values{v1, v2, score, g, ts})
	}
	return nil
}

func (b *itemPairSimBolt) pairScore(group, v1, v2 string) (float64, error) {
	tables, err := b.sys.Tables.For(group)
	if err != nil {
		return 0, err
	}
	y1, err := b.itemVector(group, v1)
	if err != nil {
		return 0, err
	}
	y2, err := b.itemVector(group, v2)
	if err != nil {
		return 0, err
	}
	t1, err := b.videoType(v1)
	if err != nil {
		return 0, err
	}
	t2, err := b.videoType(v2)
	if err != nil {
		return 0, err
	}
	return tables.Config().FuseVectors(y1, y2, t1, t2), nil
}

// itemVector reads a video's latent vector through the task-local TTL cache.
func (b *itemPairSimBolt) itemVector(group, video string) ([]float64, error) {
	return b.vectors.GetOrLoad(group+"|"+video, func() ([]float64, error) {
		model, err := b.sys.Models.For(group)
		if err != nil {
			return nil, err
		}
		vec, _, _, err := model.ItemVector(b.ctx, video)
		return vec, err
	})
}

// videoType reads a video's category through the task-local cache; catalog
// records are immutable, so no TTL is needed.
func (b *itemPairSimBolt) videoType(video string) (string, error) {
	return b.types.GetOrLoad(video, func() (string, error) {
		return b.sys.Catalog.Type(b.ctx, video)
	})
}

// banditRewardBolt attributes incoming actions to explored slates: fields
// grouping by user routes each user's actions (and their attribution record)
// to one task, which consumes the matching slate breadcrumb and emits a
// bounded reward tuple toward the state writer. On a system that is not
// exploring, the bolt is a pure pass-through — no store traffic, so existing
// scenarios' operation counts are untouched.
type banditRewardBolt struct {
	sys *recommend.System
	ctx context.Context
	out *storm.BoltCollector
}

func (b *banditRewardBolt) Prepare(cctx *storm.Context, out *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	b.out = out
	return nil
}
func (b *banditRewardBolt) Cleanup() error { return nil }

func (b *banditRewardBolt) Execute(t *storm.Tuple) error {
	if !b.sys.Options().Explore {
		return nil
	}
	a, err := actionOf(t)
	if err != nil {
		return err
	}
	weight := weightOf(b.sys, a)
	if weight <= 0 {
		return nil // impressions earn no reward
	}
	arm, ok, err := b.sys.Bandit.Take(b.ctx, a.UserID, a.VideoID)
	if err != nil {
		return err
	}
	if !ok {
		return nil // action not on an attributed slot
	}
	b.out.Emit(storm.Values{int64(arm), bandit.RewardFromWeight(weight), a.Timestamp.UnixMilli()})
	return nil
}

// banditStateBolt folds reward tuples into the shared posterior state. A
// failed write fails the tuple tree, so tracked runs replay the action —
// at-least-once, same as every storage bolt.
type banditStateBolt struct {
	sys *recommend.System
	ctx context.Context
}

func (b *banditStateBolt) Prepare(cctx *storm.Context, _ *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	return nil
}
func (b *banditStateBolt) Cleanup() error { return nil }

func (b *banditStateBolt) Execute(t *storm.Tuple) error {
	armAny, err := t.Field("arm")
	if err != nil {
		return err
	}
	armID, ok := armAny.(int64)
	if !ok {
		return fmt.Errorf("topology: arm field is %T", armAny)
	}
	rewardAny, err := t.Field("reward")
	if err != nil {
		return err
	}
	reward, ok := rewardAny.(float64)
	if !ok {
		return fmt.Errorf("topology: reward field is %T", rewardAny)
	}
	tsAny, err := t.Field("tsms")
	if err != nil {
		return err
	}
	ts, ok := tsAny.(int64)
	if !ok {
		return fmt.Errorf("topology: tsms field is %T", tsAny)
	}
	ev := bandit.RewardEvent{Arm: bandit.Arm(armID), Reward: reward, TsMs: ts}
	return b.sys.Bandit.Reward(b.ctx, ev)
}

// resultStorageBolt persists the top-N similar list updates; fields grouping
// by the owning video serializes writers per list.
type resultStorageBolt struct {
	sys *recommend.System
	ctx context.Context
}

func (b *resultStorageBolt) Prepare(cctx *storm.Context, _ *storm.BoltCollector) error {
	b.ctx = cctx.Ctx
	return nil
}
func (b *resultStorageBolt) Cleanup() error { return nil }

func (b *resultStorageBolt) Execute(t *storm.Tuple) error {
	v1, err := t.String("video1")
	if err != nil {
		return err
	}
	v2, err := t.String("video2")
	if err != nil {
		return err
	}
	group, err := t.String("group")
	if err != nil {
		return err
	}
	simAny, err := t.Field("sim")
	if err != nil {
		return err
	}
	score, ok := simAny.(float64)
	if !ok {
		return fmt.Errorf("topology: sim field is %T", simAny)
	}
	tsAny, err := t.Field("tsms")
	if err != nil {
		return err
	}
	ts, ok := tsAny.(int64)
	if !ok {
		return fmt.Errorf("topology: tsms field is %T", tsAny)
	}
	tables, err := b.sys.Tables.For(group)
	if err != nil {
		return err
	}
	return tables.UpdateDirected(b.ctx, v1, v2, score, time.UnixMilli(ts))
}
