package topology

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/core"
	"vidrec/internal/demographic"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
)

// TestTopologyAgainstNetworkedStore runs the full Figure 2 topology with all
// state in a remote TCP key-value store — the paper's actual deployment
// shape (Storm workers talking to a distributed KV service over the
// network). Correctness assertions focus on single-writer state (vectors,
// histories, similar tables), which the fields groupings guarantee even
// with the client's get-modify-set Update; multi-writer counters (global
// mean, hot lists) are only checked for presence.
func TestTopologyAgainstNetworkedStore(t *testing.T) {
	backing := kvstore.NewLocal(64)
	srv, err := kvstore.NewServer(context.Background(), backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := kvstore.DialContext(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	params := core.DefaultParams()
	params.Factors = 8
	sys, err := recommend.NewSystem(cli, params, simtable.DefaultConfig(), recommend.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d, actions := generatedActions(t)
	if err := d.FillCatalog(context.Background(), sys.Catalog); err != nil {
		t.Fatal(err)
	}
	if err := d.FillProfiles(context.Background(), sys.Profiles); err != nil {
		t.Fatal(err)
	}

	par := Parallelism{Spout: 1, ComputeMF: 2, MFStorage: 2, UserHistory: 2,
		GetItemPairs: 2, ItemPairSim: 2, ResultStorage: 2}
	topo, err := Build(sys, func(int) Source { return SliceSource(actions) }, par)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	m, _ := topo.MetricsFor(ComputeMFName)
	if m.Executed != uint64(len(actions)) || m.Failed != 0 {
		t.Fatalf("ComputeMF executed %d (failed %d), want %d", m.Executed, m.Failed, len(actions))
	}

	// Single-writer state must be present and readable through the remote
	// store.
	global, err := sys.Models.For(demographic.GlobalGroup)
	if err != nil {
		t.Fatal(err)
	}
	var trainedUser string
	for _, a := range actions {
		if sys.Weights().Weight(a) > 0 {
			trainedUser = a.UserID
			break
		}
	}
	if _, _, known, err := global.UserVector(context.Background(), trainedUser); err != nil || !known {
		t.Errorf("user %s vector missing from remote store: known=%v err=%v", trainedUser, known, err)
	}
	vids, err := sys.History.RecentVideos(context.Background(), trainedUser, 5)
	if err != nil || len(vids) == 0 {
		t.Errorf("history for %s missing: %v, %v", trainedUser, vids, err)
	}
	tables, _ := sys.Tables.For(demographic.GlobalGroup)
	now := actions[len(actions)-1].Timestamp
	found := false
	for _, v := range d.Videos() {
		sim, err := tables.Similar(context.Background(), v.Meta.ID, 3, now)
		if err != nil {
			t.Fatal(err)
		}
		if len(sim) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no similar tables in remote store")
	}

	// End-to-end: serving works against the remote store.
	sys.SetClock(func() time.Time { return now })
	res, err := sys.Recommend(context.Background(), recommend.Request{UserID: trainedUser, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Videos) == 0 {
		t.Error("no recommendations served from the remote store")
	}

	// Everything really lives server-side.
	if n, _ := backing.Len(context.Background()); n == 0 {
		t.Error("backing store empty — state did not cross the network")
	}
}
