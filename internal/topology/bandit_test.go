package topology

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/bandit"
	"vidrec/internal/catalog"
	"vidrec/internal/core"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
	"vidrec/internal/recommend"
	"vidrec/internal/simtable"
	"vidrec/internal/topn"
)

func newExploreSystem(t *testing.T) *recommend.System {
	t.Helper()
	params := core.DefaultParams()
	params.Factors = 8
	opts := recommend.DefaultOptions()
	opts.Explore = true
	opts.ExploreSeed = 99
	sys, err := recommend.NewSystem(kvstore.NewLocal(32), params, simtable.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestBanditRewardLine drives the streaming half of the feedback loop: a
// pre-attributed slate's videos are acted on through the topology, and the
// BanditReward → BanditState line consumes the attributions and moves the
// posteriors — the same transition recommend.System.Ingest applies inline.
func TestBanditRewardLine(t *testing.T) {
	ctx := context.Background()
	sys := newExploreSystem(t)
	base := time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC)
	for _, id := range []string{"a", "b", "c"} {
		if err := sys.Catalog.Put(ctx, catalog.Video{ID: id, Type: "movie", Length: time.Minute}); err != nil {
			t.Fatal(err)
		}
	}
	// Attribute a served slate by hand: slot a→mf, slot b→hot, with the
	// matching pull charges so rewards land without the wins-cap truncating.
	pulls := [bandit.NumArms]int{bandit.ArmMF: 1, bandit.ArmHot: 1}
	if err := sys.Bandit.RecordPulls(ctx, &pulls, base); err != nil {
		t.Fatal(err)
	}
	slate := []topn.Entry{{ID: "a", Score: 0.9}, {ID: "b", Score: 0.8}}
	if err := sys.Bandit.Attribute(ctx, "u1", slate, []bandit.Arm{bandit.ArmMF, bandit.ArmHot}); err != nil {
		t.Fatal(err)
	}

	actions := []feedback.Action{
		// Click on the mf-armed slot: reward 1/4.
		{UserID: "u1", VideoID: "a", Type: feedback.Click, Timestamp: base.Add(time.Minute)},
		// Share of the hot-armed slot: reward 4/4 = 1.
		{UserID: "u1", VideoID: "b", Type: feedback.Share, Timestamp: base.Add(2 * time.Minute)},
		// Unattributed video and wrong user: neither earns anything.
		{UserID: "u1", VideoID: "c", Type: feedback.Click, Timestamp: base.Add(3 * time.Minute)},
		{UserID: "u2", VideoID: "a", Type: feedback.Click, Timestamp: base.Add(4 * time.Minute)},
		// Impression on an attributed slot: weight 0, no reward, and the
		// attribution survives for a later real action.
		{UserID: "u1", VideoID: "a", Type: feedback.Impress, Timestamp: base.Add(5 * time.Minute)},
	}
	topo := runTopology(t, sys, actions, DefaultParallelism())
	for _, name := range []string{BanditRewardName, BanditStateName} {
		m, err := topo.MetricsFor(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Failed != 0 {
			t.Fatalf("%s failed %d tuples", name, m.Failed)
		}
	}

	st, err := sys.Bandit.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Wins[bandit.ArmMF] != 0.25 {
		t.Errorf("mf wins = %v, want 0.25 (one click)", st.Wins[bandit.ArmMF])
	}
	if st.Wins[bandit.ArmHot] != 1 {
		t.Errorf("hot wins = %v, want 1 (one share)", st.Wins[bandit.ArmHot])
	}
	if st.Wins[bandit.ArmSim] != 0 {
		t.Errorf("sim wins = %v, want 0 (never attributed)", st.Wins[bandit.ArmSim])
	}
	// Both attributed slots were consumed; u1's record is retired.
	if attrs, _ := sys.Bandit.Attributions(ctx, "u1"); attrs != nil {
		t.Errorf("attributions not drained: %v", attrs)
	}
}

// TestBanditLineInertWhenExploreOff pins the no-op guarantee the existing
// scenarios' fault schedules rely on: with Explore off, the reward bolts
// perform zero bandit store traffic no matter what actions flow.
func TestBanditLineInertWhenExploreOff(t *testing.T) {
	ctx := context.Background()
	sys := newSystem(t)
	_, actions := generatedActions(t)
	runTopology(t, sys, actions[:200], DefaultParallelism())

	st, err := sys.Bandit.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st != (bandit.State{}) {
		t.Errorf("explore-off topology wrote bandit state: %+v", st)
	}
}
