package objcache

import (
	"context"

	"vidrec/internal/kvstore"
)

// invalidatingStore decorates a kvstore.Store so every write drops the
// written key's cached decoded object. This is the single hook that keeps
// the cache coherent: components never invalidate by hand, they just write
// through the store they were constructed with, exactly as before.
//
// Invalidation happens after the inner operation returns — the shard-version
// guard in Cache.Load then guarantees no reader can install a decode of the
// pre-write bytes afterwards. Failed writes invalidate too: dropping a
// still-valid entry costs one re-read, while skipping an invalidation on a
// partially applied write could serve stale objects forever.
type invalidatingStore struct {
	inner kvstore.Store
	cache *Cache
}

// WrapStore returns a Store whose writes invalidate cache. A nil cache
// returns inner unchanged.
func WrapStore(inner kvstore.Store, cache *Cache) kvstore.Store {
	if cache == nil {
		return inner
	}
	return &invalidatingStore{inner: inner, cache: cache}
}

// Get implements kvstore.Store. Raw reads pass through: byte-level callers
// (Update read-modify-write cycles, snapshotting) want the store's truth,
// and the decoded-object cache would have to re-encode to serve them.
func (s *invalidatingStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	return s.inner.Get(ctx, key)
}

// MGet implements kvstore.Store.
func (s *invalidatingStore) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	return s.inner.MGet(ctx, keys)
}

// Len implements kvstore.Store.
func (s *invalidatingStore) Len(ctx context.Context) (int, error) {
	return s.inner.Len(ctx)
}

// Set implements kvstore.Store, invalidating key after the write.
func (s *invalidatingStore) Set(ctx context.Context, key string, val []byte) error {
	err := s.inner.Set(ctx, key, val)
	s.cache.Invalidate(key)
	return err
}

// Delete implements kvstore.Store, invalidating key after the delete.
func (s *invalidatingStore) Delete(ctx context.Context, key string) (bool, error) {
	ok, err := s.inner.Delete(ctx, key)
	s.cache.Invalidate(key)
	return ok, err
}

// Update implements kvstore.Store, invalidating key after the read-modify-
// write commits.
func (s *invalidatingStore) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	err := s.inner.Update(ctx, key, fn)
	s.cache.Invalidate(key)
	return err
}
