package objcache

import (
	"context"
	"sync"
	"testing"

	"vidrec/internal/kvstore"
)

// switchableStore delegates to an inner store but can be flipped to fail
// every operation — a replica dying and coming back, from the cache's view.
type switchableStore struct {
	inner kvstore.Store

	mu   sync.Mutex
	dead bool // guarded by mu
}

func (s *switchableStore) setDead(dead bool) {
	s.mu.Lock()
	s.dead = dead
	s.mu.Unlock()
}

func (s *switchableStore) check() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return kvstore.ErrInjected
	}
	return nil
}

func (s *switchableStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := s.check(); err != nil {
		return nil, false, err
	}
	return s.inner.Get(ctx, key)
}

func (s *switchableStore) Set(ctx context.Context, key string, val []byte) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.inner.Set(ctx, key, val)
}

func (s *switchableStore) Delete(ctx context.Context, key string) (bool, error) {
	if err := s.check(); err != nil {
		return false, err
	}
	return s.inner.Delete(ctx, key)
}

func (s *switchableStore) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	return s.inner.MGet(ctx, keys)
}

func (s *switchableStore) Update(ctx context.Context, key string, fn func(cur []byte, exists bool) ([]byte, bool)) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.inner.Update(ctx, key, fn)
}

func (s *switchableStore) Len(ctx context.Context) (int, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return s.inner.Len(ctx)
}

// TestWrapStoreCoherentAcrossReplicas pins the composition rule the serving
// stack relies on: ONE cache wrapped around the Replicated store (not one per
// replica) stays coherent through replica failover, because every write path
// still runs through the single WrapStore decorator regardless of which
// replicas accepted the write.
func TestWrapStoreCoherentAcrossReplicas(t *testing.T) {
	ctx := context.Background()
	primary := &switchableStore{inner: kvstore.NewLocal(4)}
	secondary := kvstore.NewLocal(4)
	repl, err := kvstore.NewReplicated(primary, secondary)
	if err != nil {
		t.Fatal(err)
	}
	cache := New(0)
	store := WrapStore(repl, cache)

	read := func(key string) (string, bool) {
		v, present, err := Cached(cache, key, func() (string, bool, error) {
			b, ok, err := store.Get(ctx, key)
			if err != nil || !ok {
				return "", false, err
			}
			return string(b), true, nil
		})
		if err != nil {
			t.Fatalf("read %q: %v", key, err)
		}
		return v, present
	}

	// Healthy: write replicates everywhere, read caches the decode.
	if err := store.Set(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, _ := read("k"); v != "v1" {
		t.Fatalf("read = %q, want v1", v)
	}

	// Primary dies. A write through the wrapped store lands only on the
	// surviving replica — but it MUST still invalidate the cached decode of
	// the old value.
	primary.setDead(true)
	if err := store.Set(ctx, "k", []byte("v2")); err != nil {
		t.Fatalf("Set with dead primary = %v, want write-all to absorb it", err)
	}
	if v, _ := read("k"); v != "v2" {
		t.Fatalf("read after failover write = %q — stale cache survived replica failover", v)
	}

	// Primary comes back holding the pre-outage value (stale replica). The
	// cache must keep serving what it decoded — the read-first-healthy order
	// now prefers the stale primary, and the cached v2 papering over that is
	// exactly the coherence-vs-staleness trade DESIGN.md documents; what must
	// NOT happen is an error or a cache entry for a value never written.
	primary.setDead(false)
	if v, present := read("k"); !present || (v != "v2" && v != "v1") {
		t.Fatalf("read after primary recovery = %q,%v — value was never written", v, present)
	}

	// A fresh write replicates everywhere again and invalidates; every
	// subsequent read — cached or not — agrees.
	if err := store.Set(ctx, "k", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if v, _ := read("k"); v != "v3" {
		t.Fatalf("read after recovery write = %q, want v3", v)
	}
	cache.Flush()
	if v, _ := read("k"); v != "v3" {
		t.Fatalf("uncached read after recovery write = %q, want v3", v)
	}

	// Delete through the stack leaves a coherent negative entry.
	if _, err := store.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, present := read("k"); present {
		t.Fatal("read after replicated delete still present")
	}
}
