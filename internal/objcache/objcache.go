// Package objcache is the serving fast path's decoded-value read cache: a
// sharded, read-through cache of *decoded* store objects (item vectors,
// biases, similar-video lists, hot lists, histories, profiles) keyed by the
// exact key-value store key their encoded form lives under.
//
// The paper hits millisecond top-N latency over a shared memory KV tier
// (§4.1, §5.1) by keeping the per-request store traffic constant and small;
// against a networked store every read is a TCP round trip and every hit
// re-runs a binary decode. objcache removes both costs for warm keys while
// keeping reads coherent:
//
//   - Coherence comes from write-through invalidation, not TTLs: WrapStore
//     (store.go) decorates the kvstore.Store every component writes through,
//     so each Set/Delete/Update drops the key's cached object. Under the
//     topology's single-writer-per-key discipline (fields grouping, §5.1) a
//     reader therefore never sees a value older than the writer's last
//     committed write — a sequential write→read always observes the new
//     value, which is what keeps the golden serving test and the sim
//     harness's state digests byte-identical with the cache on or off.
//   - The remaining concurrent window (a reader decoding an old value while
//     the writer commits) is closed with shard versions: Load records the
//     shard's version before the backing fetch and refuses to install the
//     decoded object if any invalidation touched the shard in between, so a
//     stale decode can never outlive the write that obsoleted it.
//
// Cached objects are shared across callers and MUST be treated as immutable;
// every consumer either reads them in place (vector dot products) or copies
// into fresh output slices (list truncation). Absent keys are cached too
// (present=false) — negative entries are coherent under the same
// invalidation rule and save the round trip that cold-start scoring would
// otherwise pay per request.
package objcache

import (
	"sync"

	"vidrec/internal/lru"
	"vidrec/internal/metrics"
)

// shardCount spreads keys over independently locked shards so topology
// workers and serving goroutines don't contend on one mutex. Power of two.
const shardCount = 32

// DefaultCapacity is the total entry budget used when a caller passes a
// non-positive capacity to New. Entries are decoded objects (a vector is a
// few hundred bytes), so the default costs a few tens of MB at worst.
const DefaultCapacity = 1 << 15

// Cache is a sharded read-through cache of decoded store objects. All
// methods are safe for concurrent use.
type Cache struct {
	shards [shardCount]cacheShard
	stats  Stats
}

type cacheShard struct {
	mu      sync.Mutex
	entries *lru.Cache[string, cacheEntry] // guarded by mu
	version uint64                         // guarded by mu; bumped by Invalidate/Flush
}

// cacheEntry is one cached decode result. present=false is a negative entry:
// the key was read and did not exist.
type cacheEntry struct {
	value   any
	present bool
}

// Stats are the cache's cumulative operation counters (kvstore.Stats-style),
// updated atomically.
type Stats struct {
	Hits          metrics.Counter
	Misses        metrics.Counter
	Puts          metrics.Counter
	Invalidations metrics.Counter
}

// StatsSnapshot is a point-in-time copy of the counters plus the eviction
// and occupancy totals aggregated across shards.
type StatsSnapshot struct {
	Hits, Misses, Puts, Invalidations uint64
	Evictions                         uint64
	Entries                           int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s StatsSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// New returns a cache bounded to roughly capacity entries in total; a
// non-positive capacity selects DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := capacity / shardCount
	if per < 1 {
		per = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = lru.New[string, cacheEntry](per, 0) // no TTL: invalidation keeps it coherent
	}
	return c
}

// shardFor hashes key with inline FNV-1a (no hash.Hash allocation) and
// returns its shard.
func (c *Cache) shardFor(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h&(shardCount-1)]
}

// Lookup returns the cached decode result for key. ok reports whether the
// key is cached at all; present distinguishes a cached value from a cached
// absence.
//
// hotpath: the warm serving path is built on allocation-free cache hits
func (c *Cache) Lookup(key string) (v any, present, ok bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries.Get(key)
	s.mu.Unlock()
	if !ok {
		c.stats.Misses.Inc()
		return nil, false, false
	}
	c.stats.Hits.Inc()
	return e.value, e.present, true
}

// Version returns the key's shard version. Batch loaders capture it before
// the backing fetch and pass it to StoreIfUnchanged so a fetch that raced a
// write never installs the stale decode.
//
// hotpath: called per key on warm batch reads
func (c *Cache) Version(key string) uint64 {
	s := c.shardFor(key)
	s.mu.Lock()
	v := s.version
	s.mu.Unlock()
	return v
}

// StoreIfUnchanged installs a decode result only if no invalidation touched
// the key's shard since version was captured (see Version).
//
// hotpath: the install half of the warm read-through
func (c *Cache) StoreIfUnchanged(key string, v any, present bool, version uint64) {
	s := c.shardFor(key)
	s.mu.Lock()
	if s.version == version {
		s.entries.Put(key, cacheEntry{value: v, present: present})
		s.mu.Unlock()
		c.stats.Puts.Inc()
		return
	}
	s.mu.Unlock()
}

// Store unconditionally installs a decode result for key. Use only when the
// value is known-current (e.g. it was just written through the store);
// loaders racing writers go through Load or Version/StoreIfUnchanged.
func (c *Cache) Store(key string, v any, present bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	s.entries.Put(key, cacheEntry{value: v, present: present})
	s.mu.Unlock()
	c.stats.Puts.Inc()
}

// Load returns the cached decode result for key, or runs load, caches its
// result and returns it. A load error is returned without caching anything.
// The shard-version guard makes the read-through safe against concurrent
// invalidation: if a write lands between the miss and the load's return, the
// (possibly stale) result is returned to this caller but not cached.
func (c *Cache) Load(key string, load func() (v any, present bool, err error)) (any, bool, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries.Get(key); ok {
		s.mu.Unlock()
		c.stats.Hits.Inc()
		return e.value, e.present, nil
	}
	version := s.version
	s.mu.Unlock()
	c.stats.Misses.Inc()

	v, present, err := load()
	if err != nil {
		return nil, false, err
	}
	c.StoreIfUnchanged(key, v, present, version)
	return v, present, nil
}

// Invalidate drops the key's cached object and bumps the shard version so
// in-flight loads of any key in the shard cannot install stale results.
func (c *Cache) Invalidate(key string) {
	s := c.shardFor(key)
	s.mu.Lock()
	s.entries.Remove(key)
	s.version++
	s.mu.Unlock()
	c.stats.Invalidations.Inc()
}

// Flush empties the cache (benchmarks use it to measure cold-cache serving).
func (c *Cache) Flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		// Rebuild rather than iterate-and-remove; capacity is unchanged.
		s.entries = lru.New[string, cacheEntry](s.entries.Cap(), 0)
		s.version++
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.entries.Len()
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns the cache's cumulative counters.
func (c *Cache) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Hits:          c.stats.Hits.Load(),
		Misses:        c.stats.Misses.Load(),
		Puts:          c.stats.Puts.Load(),
		Invalidations: c.stats.Invalidations.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		snap.Evictions += s.entries.Evictions()
		snap.Entries += s.entries.Len()
		s.mu.Unlock()
	}
	return snap
}

// Cached is the typed read-through helper components build their fast paths
// on. A nil cache degrades to calling load directly, so callers need no
// cache-enabled/-disabled branches; the returned ok reports presence (a
// cached or loaded absence returns the zero T and false).
func Cached[T any](c *Cache, key string, load func() (T, bool, error)) (T, bool, error) {
	if c == nil {
		return load()
	}
	// alloccheck: one adapter closure per read-through is inside the warm budget
	v, present, err := c.Load(key, func() (any, bool, error) {
		tv, ok, err := load()
		if err != nil {
			return nil, false, err
		}
		return tv, ok, nil
	})
	var zero T
	if err != nil {
		return zero, false, err
	}
	if !present {
		return zero, false, nil
	}
	return v.(T), true, nil
}
