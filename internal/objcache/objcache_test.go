package objcache

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"vidrec/internal/kvstore"
)

func TestLookupStoreInvalidate(t *testing.T) {
	c := New(0)
	if _, _, ok := c.Lookup("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Store("k", 42, true)
	v, present, ok := c.Lookup("k")
	if !ok || !present || v.(int) != 42 {
		t.Fatalf("Lookup = (%v, %v, %v), want (42, true, true)", v, present, ok)
	}
	c.Invalidate("k")
	if _, _, ok := c.Lookup("k"); ok {
		t.Fatal("Lookup hit after Invalidate")
	}
}

func TestNegativeEntries(t *testing.T) {
	c := New(0)
	c.Store("missing", nil, false)
	v, present, ok := c.Lookup("missing")
	if !ok {
		t.Fatal("negative entry was not cached")
	}
	if present || v != nil {
		t.Fatalf("negative entry = (%v, %v), want (nil, false)", v, present)
	}
	// A write through the store must upgrade the negative entry.
	c.Invalidate("missing")
	c.Store("missing", "now-here", true)
	v, present, ok = c.Lookup("missing")
	if !ok || !present || v.(string) != "now-here" {
		t.Fatalf("after invalidate+store: (%v, %v, %v)", v, present, ok)
	}
}

func TestLoadCachesResult(t *testing.T) {
	c := New(0)
	calls := 0
	load := func() (any, bool, error) { calls++; return "v", true, nil }
	for i := 0; i < 3; i++ {
		v, present, err := c.Load("k", load)
		if err != nil || !present || v.(string) != "v" {
			t.Fatalf("Load %d = (%v, %v, %v)", i, v, present, err)
		}
	}
	if calls != 1 {
		t.Fatalf("backing load ran %d times, want 1", calls)
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := New(0)
	boom := fmt.Errorf("store down")
	if _, _, err := c.Load("k", func() (any, bool, error) { return nil, false, boom }); err != boom {
		t.Fatalf("Load error = %v, want %v", err, boom)
	}
	if _, _, ok := c.Lookup("k"); ok {
		t.Fatal("failed load left a cache entry")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after failed load, want 0", c.Len())
	}
}

// TestStaleLoadNotInstalled is the shard-version guard: a load that raced an
// invalidation must not install its (stale) result.
func TestStaleLoadNotInstalled(t *testing.T) {
	c := New(0)
	_, _, err := c.Load("k", func() (any, bool, error) {
		// A write lands while the backing fetch is in flight.
		c.Invalidate("k")
		return "stale", true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Lookup("k"); ok {
		t.Fatal("stale load result was installed despite concurrent invalidation")
	}
}

func TestStoreIfUnchanged(t *testing.T) {
	c := New(0)
	ver := c.Version("k")
	c.Invalidate("k")
	c.StoreIfUnchanged("k", "stale", true, ver)
	if _, _, ok := c.Lookup("k"); ok {
		t.Fatal("StoreIfUnchanged installed under a bumped version")
	}
	ver = c.Version("k")
	c.StoreIfUnchanged("k", "fresh", true, ver)
	if v, _, ok := c.Lookup("k"); !ok || v.(string) != "fresh" {
		t.Fatal("StoreIfUnchanged refused a current version")
	}
}

func TestFlushAndLen(t *testing.T) {
	c := New(0)
	for i := 0; i < 10; i++ {
		c.Store(fmt.Sprintf("k%d", i), i, true)
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Flush, want 0", c.Len())
	}
	if _, _, ok := c.Lookup("k3"); ok {
		t.Fatal("Lookup hit after Flush")
	}
}

func TestSnapshotCounters(t *testing.T) {
	c := New(0)
	c.Lookup("a")         // miss
	c.Store("a", 1, true) // put
	c.Lookup("a")         // hit
	c.Invalidate("a")     // invalidation
	snap := c.Snapshot()
	if snap.Hits != 1 || snap.Misses != 1 || snap.Puts != 1 || snap.Invalidations != 1 {
		t.Fatalf("snapshot = %+v, want 1 of each", snap)
	}
	if got := snap.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	if (StatsSnapshot{}).HitRate() != 0 {
		t.Fatal("zero snapshot HitRate should be 0")
	}
}

func TestEvictionsCounted(t *testing.T) {
	// Capacity shardCount means one entry per shard: a second key landing
	// in any occupied shard must evict.
	c := New(shardCount)
	for i := 0; i < 4*shardCount; i++ {
		c.Store(fmt.Sprintf("key-%d", i), i, true)
	}
	snap := c.Snapshot()
	if snap.Evictions == 0 {
		t.Fatal("overfilled cache reported zero evictions")
	}
	if snap.Entries > shardCount {
		t.Fatalf("Entries = %d exceeds capacity %d", snap.Entries, shardCount)
	}
}

func TestCachedHelper(t *testing.T) {
	c := New(0)
	calls := 0
	load := func() ([]int, bool, error) { calls++; return []int{1, 2}, true, nil }
	for i := 0; i < 2; i++ {
		v, ok, err := Cached(c, "k", load)
		if err != nil || !ok || len(v) != 2 {
			t.Fatalf("Cached = (%v, %v, %v)", v, ok, err)
		}
	}
	if calls != 1 {
		t.Fatalf("load ran %d times through Cached, want 1", calls)
	}
	// nil cache degrades to a direct call each time.
	calls = 0
	for i := 0; i < 2; i++ {
		if _, _, err := Cached[[]int](nil, "k", load); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil-cache Cached ran load %d times, want 2", calls)
	}
	// Absence yields the zero value.
	v, ok, err := Cached(c, "absent", func() (string, bool, error) { return "ignored", false, nil })
	if err != nil || ok || v != "" {
		t.Fatalf("absent Cached = (%q, %v, %v), want (\"\", false, nil)", v, ok, err)
	}
}

// TestWrapStoreCoherence is the write→invalidate→re-read rule: after any
// write through the wrapped store, a cached read must see the new value.
func TestWrapStoreCoherence(t *testing.T) {
	ctx := context.Background()
	cache := New(0)
	store := WrapStore(kvstore.NewLocal(4), cache)

	read := func(key string) string {
		v, _, err := Cached(cache, key, func() (string, bool, error) {
			b, ok, err := store.Get(ctx, key)
			if err != nil || !ok {
				return "", false, err
			}
			return string(b), true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	if err := store.Set(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got := read("k"); got != "v1" {
		t.Fatalf("read = %q, want v1", got)
	}
	if err := store.Set(ctx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got := read("k"); got != "v2" {
		t.Fatalf("read after Set = %q — stale cache survived a write", got)
	}
	if err := store.Update(ctx, "k", func(cur []byte, ok bool) ([]byte, bool) {
		return append(cur, '!'), true
	}); err != nil {
		t.Fatal(err)
	}
	if got := read("k"); got != "v2!" {
		t.Fatalf("read after Update = %q, want v2!", got)
	}
	if _, err := store.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if got := read("k"); got != "" {
		t.Fatalf("read after Delete = %q, want absence", got)
	}
	// And the negative entry must upgrade on the next write.
	if err := store.Set(ctx, "k", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if got := read("k"); got != "v3" {
		t.Fatalf("read after re-Set = %q — negative entry survived a write", got)
	}
}

// TestWrapStoreCoherenceConcurrent hammers one key with a writer and several
// cached readers; run under -race this exercises the shard-version guard.
// Readers must only ever observe values the writer actually wrote, and once
// the writer finishes, the final read must see the last write.
func TestWrapStoreCoherenceConcurrent(t *testing.T) {
	ctx := context.Background()
	cache := New(0)
	store := WrapStore(kvstore.NewLocal(4), cache)
	const writes = 200

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i <= writes; i++ {
			if err := store.Set(ctx, "k", []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("Set: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				v, present, err := cache.Load("k", func() (any, bool, error) {
					b, ok, err := store.Get(ctx, "k")
					if err != nil || !ok {
						return nil, false, err
					}
					return string(b), true, nil
				})
				if err != nil {
					t.Errorf("Load: %v", err)
					return
				}
				if present && v.(string) == "" {
					t.Error("read an empty value that was never written")
					return
				}
			}
		}()
	}
	wg.Wait()

	want := fmt.Sprintf("v%d", writes)
	v, present, err := cache.Load("k", func() (any, bool, error) {
		b, ok, err := store.Get(ctx, "k")
		if err != nil || !ok {
			return nil, false, err
		}
		return string(b), true, nil
	})
	if err != nil || !present || v.(string) != want {
		t.Fatalf("final read = (%v, %v, %v), want (%q, true, nil) — a stale decode outlived the last write", v, present, err, want)
	}
}

func TestWrapStoreNilCachePassthrough(t *testing.T) {
	inner := kvstore.NewLocal(1)
	if got := WrapStore(inner, nil); got != kvstore.Store(inner) {
		t.Fatal("WrapStore(inner, nil) should return inner unchanged")
	}
}
