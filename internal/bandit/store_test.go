package bandit

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/topn"
)

func newTestStore(t *testing.T) (*Store, kvstore.Store) {
	t.Helper()
	kv := kvstore.NewLocal(4)
	cache := objcache.New(64)
	wrapped := objcache.WrapStore(kv, cache)
	s, err := New("sys", wrapped)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.SetCache(cache)
	return s, wrapped
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", kvstore.NewLocal(1)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("sys", nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestStateFreshIsPrior(t *testing.T) {
	s, _ := newTestStore(t)
	st, err := s.State(context.Background())
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if st != (State{}) {
		t.Errorf("fresh store state = %+v, want zero (uniform priors)", st)
	}
}

func TestRecordPullsAndReward(t *testing.T) {
	s, _ := newTestStore(t)
	ctx := context.Background()
	ts := time.UnixMilli(1_700_000_000_000)

	pulls := [NumArms]int{ArmMF: 5, ArmSim: 2, ArmHot: 1}
	if err := s.RecordPulls(ctx, &pulls, ts); err != nil {
		t.Fatalf("RecordPulls: %v", err)
	}
	if err := s.Reward(ctx, RewardEvent{Arm: ArmSim, Reward: 0.25, TsMs: ts.UnixMilli() + 1000}); err != nil {
		t.Fatalf("Reward: %v", err)
	}

	st, err := s.State(ctx)
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	want := State{
		Pulls: [NumArms]float64{ArmMF: 5, ArmSim: 2, ArmHot: 1},
		Wins:  [NumArms]float64{ArmSim: 0.25},
	}
	if st != want {
		t.Errorf("state after pulls+reward = %+v, want %+v", st, want)
	}

	// The write-through wrapper must have invalidated the cached decode:
	// a second reward shows up in the very next read.
	if err := s.Reward(ctx, RewardEvent{Arm: ArmSim, Reward: 0.5, TsMs: ts.UnixMilli() + 2000}); err != nil {
		t.Fatalf("Reward: %v", err)
	}
	st, err = s.State(ctx)
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	if st.Wins[ArmSim] != 0.75 {
		t.Errorf("cached read missed the write-through invalidation: wins = %v, want 0.75", st.Wins[ArmSim])
	}
}

func TestRecordPullsValidation(t *testing.T) {
	s, _ := newTestStore(t)
	ctx := context.Background()
	bad := [NumArms]int{ArmMF: -1}
	if err := s.RecordPulls(ctx, &bad, time.UnixMilli(1)); err == nil {
		t.Error("negative pull count accepted")
	}
	var zero [NumArms]int
	if err := s.RecordPulls(ctx, &zero, time.UnixMilli(1)); err != nil {
		t.Errorf("zero pulls should be a no-op, got %v", err)
	}
	if st, _ := s.State(ctx); st != (State{}) {
		t.Errorf("state mutated by rejected/no-op charges: %+v", st)
	}
}

func TestRewardValidation(t *testing.T) {
	s, _ := newTestStore(t)
	ctx := context.Background()
	for _, ev := range []RewardEvent{
		{Arm: Arm(9), Reward: 0.5},
		{Arm: ArmMF, Reward: -0.1},
		{Arm: ArmMF, Reward: 1.5},
	} {
		if err := s.Reward(ctx, ev); err == nil {
			t.Errorf("invalid event %+v accepted", ev)
		}
	}
}

// TestCorruptStateResets pins the poison-resistance contract: a corrupt
// stored record is replaced by priors plus the incoming charge, and a
// corrupt record behind State() is an error rather than garbage posteriors.
func TestCorruptStateResets(t *testing.T) {
	s, kv := newTestStore(t)
	ctx := context.Background()
	key := kvstore.Key("sys.bandit", stateID)

	if err := kv.Set(ctx, key, []byte("garbage")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if _, err := s.State(ctx); err == nil {
		t.Error("corrupt state decoded without error")
	}

	pulls := [NumArms]int{ArmHot: 3}
	if err := s.RecordPulls(ctx, &pulls, time.UnixMilli(5000)); err != nil {
		t.Fatalf("RecordPulls over corrupt record: %v", err)
	}
	st, err := s.State(ctx)
	if err != nil {
		t.Fatalf("State after reset: %v", err)
	}
	if st.Pulls[ArmHot] != 3 || st.Wins != ([NumArms]float64{}) {
		t.Errorf("corrupt record not reset to priors+charge: %+v", st)
	}
}

func TestAttributeTakeRoundtrip(t *testing.T) {
	s, _ := newTestStore(t)
	ctx := context.Background()
	slate := []topn.Entry{{ID: "v1", Score: 0.9}, {ID: "v2", Score: 0.8}, {ID: "v3", Score: 0.7}}
	arms := []Arm{ArmMF, ArmHot, ArmSim}

	if err := s.Attribute(ctx, "u1", slate, arms); err != nil {
		t.Fatalf("Attribute: %v", err)
	}
	attrs, err := s.Attributions(ctx, "u1")
	if err != nil || len(attrs) != 3 {
		t.Fatalf("Attributions = %v, %v; want 3 records", attrs, err)
	}

	arm, ok, err := s.Take(ctx, "u1", "v2")
	if err != nil || !ok || arm != ArmHot {
		t.Fatalf("Take(v2) = %v, %v, %v; want ArmHot, true, nil", arm, ok, err)
	}
	// Credit is consumed: the same action again earns nothing.
	if _, ok, _ := s.Take(ctx, "u1", "v2"); ok {
		t.Error("second Take of same video still credited")
	}
	// Unattributed video: no credit, record untouched.
	if _, ok, _ := s.Take(ctx, "u1", "vX"); ok {
		t.Error("unattributed video credited")
	}
	if attrs, _ := s.Attributions(ctx, "u1"); len(attrs) != 2 {
		t.Errorf("after one Take, %d attributions remain, want 2", len(attrs))
	}

	// Draining the slate retires the record entirely.
	s.Take(ctx, "u1", "v1")
	s.Take(ctx, "u1", "v3")
	if attrs, _ := s.Attributions(ctx, "u1"); attrs != nil {
		t.Errorf("drained slate left a record: %v", attrs)
	}
}

func TestAttributeReplacesPrevious(t *testing.T) {
	s, _ := newTestStore(t)
	ctx := context.Background()
	if err := s.Attribute(ctx, "u1", []topn.Entry{{ID: "old"}}, []Arm{ArmMF}); err != nil {
		t.Fatal(err)
	}
	if err := s.Attribute(ctx, "u1", []topn.Entry{{ID: "new"}}, []Arm{ArmSim}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Take(ctx, "u1", "old"); ok {
		t.Error("stale attribution survived a re-serve")
	}
	if arm, ok, _ := s.Take(ctx, "u1", "new"); !ok || arm != ArmSim {
		t.Errorf("latest attribution Take = %v, %v", arm, ok)
	}
}

func TestAttributeValidation(t *testing.T) {
	s, _ := newTestStore(t)
	ctx := context.Background()
	slate := []topn.Entry{{ID: "v1"}}
	if err := s.Attribute(ctx, "", slate, []Arm{ArmMF}); err == nil {
		t.Error("empty user accepted")
	}
	if err := s.Attribute(ctx, "u1", slate, []Arm{ArmMF, ArmSim}); err == nil {
		t.Error("mismatched slate/arms lengths accepted")
	}
	if err := s.Attribute(ctx, "u1", slate, []Arm{Arm(9)}); err == nil {
		t.Error("invalid arm accepted")
	}
	if err := s.Attribute(ctx, "u1", nil, nil); err != nil {
		t.Errorf("empty slate should be a no-op, got %v", err)
	}
	if _, _, err := s.Take(ctx, "", "v"); err == nil {
		t.Error("Take with empty user accepted")
	}
	if _, _, err := s.Take(ctx, "u", ""); err == nil {
		t.Error("Take with empty video accepted")
	}
}

// TestTakeDropsCorruptRecord: malformed attribution bytes cost the credit,
// never an error on the ingest path and never a poisoned posterior.
func TestTakeDropsCorruptRecord(t *testing.T) {
	s, kv := newTestStore(t)
	ctx := context.Background()
	key := kvstore.Key("sys.battr", "u1")
	if err := kv.Set(ctx, key, []byte{0xFF, 0x01}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Take(ctx, "u1", "v1"); ok || err != nil {
		t.Fatalf("Take over corrupt record = %v, %v; want false, nil", ok, err)
	}
	if _, ok, err := kv.Get(ctx, key); err != nil || ok {
		t.Errorf("corrupt attribution record not dropped (ok=%v err=%v)", ok, err)
	}
	if _, err := s.Attributions(ctx, "u1"); err != nil {
		t.Errorf("Attributions after drop: %v", err)
	}
}

func TestStateCodecRoundtrip(t *testing.T) {
	st := State{
		Pulls: [NumArms]float64{ArmMF: 10, ArmSim: 4, ArmHot: 7},
		Wins:  [NumArms]float64{ArmMF: 3.5, ArmSim: 4, ArmHot: 0},
	}
	got, ms, err := DecodeState(EncodeState(st, 123456))
	if err != nil {
		t.Fatalf("roundtrip: %v", err)
	}
	if got != st || ms != 123456 {
		t.Errorf("roundtrip = %+v @ %d, want %+v @ 123456", got, ms, st)
	}

	for name, b := range map[string][]byte{
		"empty":      {},
		"short":      {1, 2, 3},
		"no-floats":  kvstore.EncodeInt64(1),
		"wrong-card": append(kvstore.EncodeInt64(1), kvstore.EncodeFloats([]float64{1, 2})...),
		"wins>pulls": EncodeState(State{Wins: [NumArms]float64{ArmMF: 5}}, 1),
	} {
		if _, _, err := DecodeState(b); err == nil {
			t.Errorf("%s: corrupt record decoded without error", name)
		}
	}
}

func TestApplyCapsWins(t *testing.T) {
	var st State
	st.Pulls[ArmMF] = 1
	st.Apply(RewardEvent{Arm: ArmMF, Reward: 1})
	st.Apply(RewardEvent{Arm: ArmMF, Reward: 1})
	if st.Wins[ArmMF] != 1 {
		t.Errorf("wins = %v, want capped at pulls (1)", st.Wins[ArmMF])
	}
	st.Apply(RewardEvent{Arm: Arm(9), Reward: 1}) // invalid arm: ignored
	if err := st.Validate(); err != nil {
		t.Errorf("state invalid after capped applies: %v", err)
	}
}
