package bandit

import (
	"math"
	"testing"

	"vidrec/internal/kvstore"
)

// FuzzRewardCodec pins the decode contract: whatever bytes arrive, either
// DecodeState errors, or the decoded state passes Validate and survives an
// encode/decode roundtrip — a decoded State is always safe to sample from.
func FuzzRewardCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(EncodeState(State{}, 0))
	f.Add(EncodeState(State{
		Pulls: [NumArms]float64{ArmMF: 10, ArmSim: 4, ArmHot: 7},
		Wins:  [NumArms]float64{ArmMF: 3.5, ArmSim: 4},
	}, 1_700_000_000_000))
	// Hand-built poison: NaN pulls smuggled into otherwise valid framing.
	f.Add(append(kvstore.EncodeInt64(1), kvstore.EncodeFloats([]float64{
		math.NaN(), 0, 0, 0, 0, 0,
	})...))
	f.Add(append(kvstore.EncodeInt64(1), kvstore.EncodeFloats([]float64{
		1, 1, 1, math.Inf(1), 0, 0,
	})...))

	f.Fuzz(func(t *testing.T, b []byte) {
		st, ms, err := DecodeState(b)
		if err != nil {
			if st != (State{}) {
				t.Fatalf("error path leaked partial state %+v", st)
			}
			return
		}
		if verr := st.Validate(); verr != nil {
			t.Fatalf("decoded state fails Validate: %v (bytes %x)", verr, b)
		}
		// Sampling from any accepted state must stay in range.
		th := NewThompson(1)
		for i := 0; i < 4; i++ {
			a := th.Pick(&st)
			if !a.Valid() {
				t.Fatalf("Pick over decoded state returned invalid arm %d", uint8(a))
			}
		}
		got, gotMs, rerr := DecodeState(EncodeState(st, ms))
		if rerr != nil || got != st || gotMs != ms {
			t.Fatalf("roundtrip mismatch: %+v @ %d vs %+v @ %d (err %v)", got, gotMs, st, ms, rerr)
		}
	})
}

// FuzzRewardEvent pins the ingest gate: Validate accepts exactly the events
// whose Apply keeps a valid state valid, and non-finite rewards never pass.
func FuzzRewardEvent(f *testing.F) {
	f.Add(uint8(0), 0.25, int64(1000))
	f.Add(uint8(2), 1.0, int64(0))
	f.Add(uint8(9), 0.5, int64(-1))
	f.Add(uint8(1), math.NaN(), int64(5))
	f.Add(uint8(1), math.Inf(1), int64(5))
	f.Add(uint8(0), -0.5, int64(5))

	f.Fuzz(func(t *testing.T, arm uint8, reward float64, tsms int64) {
		ev := RewardEvent{Arm: Arm(arm), Reward: reward, TsMs: tsms}
		err := ev.Validate()
		if math.IsNaN(reward) || math.IsInf(reward, 0) {
			if err == nil {
				t.Fatalf("non-finite reward %v validated", reward)
			}
			return
		}
		if err != nil {
			return
		}
		st := State{Pulls: [NumArms]float64{ArmMF: 2, ArmSim: 2, ArmHot: 2}}
		st.Apply(ev)
		if verr := st.Validate(); verr != nil {
			t.Fatalf("validated event %+v broke state: %v", ev, verr)
		}
	})
}
