package bandit

import (
	"math"
	"math/rand/v2"
	"testing"

	"vidrec/internal/feedback"
)

// simulateBernoulli runs a policy against a Bernoulli environment with the
// given per-arm success probabilities for pulls rounds, using envSeed for
// the environment's own (separate) RNG, and returns per-arm pull counts and
// the cumulative regret against always playing the best arm.
func simulateBernoulli(p Policy, probs [NumArms]float64, pulls int, envSeed uint64) (counts [NumArms]int, regret float64) {
	env := rand.New(rand.NewPCG(envSeed, envSeed^0xABCD))
	best := probs[0]
	for _, q := range probs {
		if q > best {
			best = q
		}
	}
	var st State
	for i := 0; i < pulls; i++ {
		a := p.Pick(&st)
		counts[a]++
		st.Pulls[a]++
		if env.Float64() < probs[a] {
			st.Wins[a]++
		}
		regret += best - probs[a]
	}
	return counts, regret
}

// TestThompsonConvergence is the headline property: over 10k pulls on a
// clearly separated Bernoulli environment, Thompson sampling concentrates
// on the best arm and its cumulative regret is far below the uniform
// policy's — and sublinear, spending most of its mistakes early.
func TestThompsonConvergence(t *testing.T) {
	probs := [NumArms]float64{ArmMF: 0.5, ArmSim: 0.1, ArmHot: 0.8}
	const pulls = 10000

	counts, regret := simulateBernoulli(NewThompson(1), probs, pulls, 99)
	if share := float64(counts[ArmHot]) / pulls; share < 0.85 {
		t.Errorf("best arm drew %.1f%% of 10k pulls, want >= 85%%", 100*share)
	}

	// Uniform baseline: expected per-pull regret is best - mean(probs).
	mean := (probs[0] + probs[1] + probs[2]) / float64(NumArms)
	uniformRegret := pulls * (0.8 - mean)
	if regret > uniformRegret/4 {
		t.Errorf("thompson regret %.1f not far below uniform's %.1f", regret, uniformRegret)
	}

	// Sublinearity: the second half of the horizon must cost much less than
	// the first — a policy with linear regret spends evenly.
	_, regretHalf := simulateBernoulli(NewThompson(1), probs, pulls/2, 99)
	secondHalf := regret - regretHalf
	if secondHalf > regretHalf/2 {
		t.Errorf("regret is not sublinear: first half %.1f, second half %.1f", regretHalf, secondHalf)
	}
}

// TestEpsilonGreedySplit pins the epsilon split with a chi-square-style
// tolerance: against a frozen state whose best arm is unambiguous, the
// exploit picks are deterministic, so non-best picks happen exactly when
// the policy explores AND the uniform draw lands elsewhere —
// p = ε·(k-1)/k. The observed split must sit within the χ²(1) 1% critical
// value of that expectation.
func TestEpsilonGreedySplit(t *testing.T) {
	const (
		epsilon = 0.3
		n       = 20000
	)
	st := State{
		Pulls: [NumArms]float64{ArmMF: 100, ArmSim: 100, ArmHot: 100},
		Wins:  [NumArms]float64{ArmMF: 10, ArmSim: 95, ArmHot: 10},
	}
	e := NewEpsilonGreedy(5, epsilon)
	nonBest := 0
	for i := 0; i < n; i++ {
		if e.Pick(&st) != ArmSim {
			nonBest++
		}
	}
	p := epsilon * float64(NumArms-1) / float64(NumArms)
	expected := p * n
	chi2 := sq(float64(nonBest)-expected)/expected + sq(float64(n-nonBest)-(1-p)*n)/((1-p)*n)
	if chi2 > 6.635 { // χ²(1) at the 1% level
		t.Errorf("epsilon split off: %d/%d non-best picks, expected %.0f (chi2 %.2f > 6.635)", nonBest, n, expected, chi2)
	}
}

func sq(x float64) float64 { return x * x }

// TestEpsilonGreedyExact pins the exact-value corners: ε=0 always exploits
// (and breaks fresh-state ties toward the lowest arm index), ε=1 never
// consults the means at all.
func TestEpsilonGreedyExact(t *testing.T) {
	var st State
	greedy := NewEpsilonGreedy(7, 0)
	for i := 0; i < 100; i++ {
		if got := greedy.Pick(&st); got != ArmMF {
			t.Fatalf("pick %d: fresh-state tie broke to %v, want %v (lowest index)", i, got, ArmMF)
		}
	}
	st.Pulls[ArmHot], st.Wins[ArmHot] = 10, 10
	for i := 0; i < 100; i++ {
		if got := greedy.Pick(&st); got != ArmHot {
			t.Fatalf("pick %d: ε=0 chose %v, want the dominant %v", i, got, ArmHot)
		}
	}

	// ε=1: every arm must be visited, and the split stays near uniform.
	explorer := NewEpsilonGreedy(7, 1)
	var counts [NumArms]int
	const n = 9000
	for i := 0; i < n; i++ {
		counts[explorer.Pick(&st)]++
	}
	for a, c := range counts {
		if math.Abs(float64(c)-float64(n/NumArms)) > 0.1*n {
			t.Errorf("ε=1 arm %v drew %d of %d, want near %d", Arm(a), c, n, n/NumArms)
		}
	}
}

// TestPickDeterminism replays both policies under the same seed and state
// trajectory and demands identical pick sequences — the property the golden
// explored slate and the sim serve-digest stand on.
func TestPickDeterminism(t *testing.T) {
	run := func(p Policy) []Arm {
		env := rand.New(rand.NewPCG(3, 4))
		var st State
		out := make([]Arm, 0, 1000)
		for i := 0; i < 1000; i++ {
			a := p.Pick(&st)
			st.Pulls[a]++
			if env.Float64() < 0.4 {
				st.Wins[a]++
			}
			out = append(out, a)
		}
		return out
	}
	for _, mk := range []func() Policy{
		func() Policy { return NewThompson(11) },
		func() Policy { return NewEpsilonGreedy(11, 0.2) },
	} {
		a, b := run(mk()), run(mk())
		name := mk().Name()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: pick %d differs across same-seed runs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

// TestPosteriorExact pins the Beta parameterization with exact values.
func TestPosteriorExact(t *testing.T) {
	var st State
	st.Pulls[ArmSim], st.Wins[ArmSim] = 3, 2
	p := st.Posterior(ArmSim)
	if p.Alpha != 3 || p.Beta != 2 {
		t.Errorf("posterior after 3 pulls / 2 wins = Beta(%v,%v), want Beta(3,2)", p.Alpha, p.Beta)
	}
	if got := p.Mean(); got != 0.6 {
		t.Errorf("Beta(3,2) mean = %v, want 0.6", got)
	}
	fresh := st.Posterior(ArmMF)
	if fresh.Alpha != 1 || fresh.Beta != 1 || fresh.Mean() != 0.5 {
		t.Errorf("fresh posterior = Beta(%v,%v), want the uniform Beta(1,1)", fresh.Alpha, fresh.Beta)
	}
	// Defensive flooring: wins beyond pulls must not produce Beta < 1.
	st.Wins[ArmSim] = 5
	if p := st.Posterior(ArmSim); p.Beta != 1 {
		t.Errorf("wins>pulls posterior Beta = %v, want floored to 1", p.Beta)
	}
}

// TestGammaSampleMoments checks the Marsaglia–Tsang sampler against the
// Gamma distribution's known mean (= shape) within a seeded tolerance,
// including the boosted shape<1 branch.
func TestGammaSampleMoments(t *testing.T) {
	th := NewThompson(21)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		const n = 60000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := th.gammaSample(shape)
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("gamma(%v) sample %v out of range", shape, x)
			}
			sum += x
		}
		if mean := sum / n; math.Abs(mean-shape) > 0.05*shape {
			t.Errorf("gamma(%v) sample mean %.4f, want within 5%% of %v", shape, mean, shape)
		}
	}
}

// TestBetaSampleRange draws across skewed posteriors and demands every
// sample in [0,1] with the mean tracking Alpha/(Alpha+Beta).
func TestBetaSampleRange(t *testing.T) {
	th := NewThompson(31)
	for _, p := range []Posterior{{1, 1}, {50, 2}, {2, 50}, {1, 9}} {
		const n = 40000
		sum := 0.0
		for i := 0; i < n; i++ {
			x := th.betaSample(p.Alpha, p.Beta)
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("beta(%v,%v) sample %v outside [0,1]", p.Alpha, p.Beta, x)
			}
			sum += x
		}
		if mean := sum / n; math.Abs(mean-p.Mean()) > 0.02 {
			t.Errorf("beta(%v,%v) sample mean %.4f, want near %.4f", p.Alpha, p.Beta, mean, p.Mean())
		}
	}
}

// TestRewardFromWeight pins the weight→reward mapping against the feedback
// package's actual confidence scale: the maximum default weight maps to
// exactly 1, a click to 0.25, and garbage to 0.
func TestRewardFromWeight(t *testing.T) {
	w := feedback.DefaultWeights()
	maxW := 0.0
	for _, v := range w.Static {
		if v > maxW {
			maxW = v
		}
	}
	if got := RewardFromWeight(maxW); got != 1 {
		t.Errorf("max default weight %v maps to reward %v, want exactly 1 (scale drifted?)", maxW, got)
	}
	if got := RewardFromWeight(w.Static[feedback.Click]); got != 0.25 {
		t.Errorf("click weight maps to %v, want 0.25", got)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3} {
		got := RewardFromWeight(bad)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("RewardFromWeight(%v) = %v, want clamped into [0,1]", bad, got)
		}
	}
	if got := RewardFromWeight(100); got != 1 {
		t.Errorf("oversized weight maps to %v, want clamped to 1", got)
	}
}

// TestArmString covers the wire names and the out-of-range rendering.
func TestArmString(t *testing.T) {
	for a, want := range map[Arm]string{ArmMF: "mf", ArmSim: "sim", ArmHot: "hot"} {
		if a.String() != want {
			t.Errorf("Arm(%d).String() = %q, want %q", uint8(a), a.String(), want)
		}
	}
	if Arm(7).Valid() || !ArmHot.Valid() {
		t.Error("arm validity misclassified")
	}
	if Arm(7).String() != "arm(7)" {
		t.Errorf("out-of-range arm renders %q", Arm(7).String())
	}
}

// TestEpsilonGreedyClamps pins the constructor's epsilon clamping.
func TestEpsilonGreedyClamps(t *testing.T) {
	if e := NewEpsilonGreedy(1, math.NaN()); e.Epsilon() != 0 {
		t.Errorf("NaN epsilon clamped to %v, want 0", e.Epsilon())
	}
	if e := NewEpsilonGreedy(1, -0.5); e.Epsilon() != 0 {
		t.Errorf("negative epsilon clamped to %v, want 0", e.Epsilon())
	}
	if e := NewEpsilonGreedy(1, 2); e.Epsilon() != 1 {
		t.Errorf("oversized epsilon clamped to %v, want 1", e.Epsilon())
	}
}

// TestStateValidate covers the validation corners DecodeState relies on.
func TestStateValidate(t *testing.T) {
	var ok State
	ok.Pulls[0], ok.Wins[0] = 5, 3
	if err := ok.Validate(); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	cases := []State{
		{Pulls: [NumArms]float64{math.NaN(), 0, 0}},
		{Pulls: [NumArms]float64{math.Inf(1), 0, 0}},
		{Pulls: [NumArms]float64{-1, 0, 0}},
		{Wins: [NumArms]float64{0, -2, 0}},
		{Pulls: [NumArms]float64{1, 0, 0}, Wins: [NumArms]float64{2, 0, 0}},
	}
	for i, st := range cases {
		if err := st.Validate(); err == nil {
			t.Errorf("case %d: invalid state %+v accepted", i, st)
		}
	}
}
