//go:build race

package bandit

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation inflates AllocsPerRun counts.
const raceEnabled = true
