package bandit

import (
	"fmt"
	"math"

	"vidrec/internal/kvstore"
)

// RewardEvent is one unit of feedback flowing back to the bandit: the arm
// that served a slot earned reward for it. Events ride the storm topology
// (the BanditReward → BanditState line) and the sequential Ingest path
// alike; Validate is the single gate both cross before any state changes.
type RewardEvent struct {
	// Arm is the candidate source being credited.
	Arm Arm
	// Reward is the bounded payoff in [0, 1] — an implicit-feedback
	// confidence weight scaled by RewardFromWeight.
	Reward float64
	// TsMs is the action's UnixMilli timestamp, stamped into the state
	// record for the sim tier's sanity sweep.
	TsMs int64
}

// Validate rejects events that could poison the posteriors: unknown arms
// and rewards that are NaN, infinite, or outside [0, 1]. Rewards above 1
// would let wins outrun pulls, breaking the Beta parameterization.
func (ev RewardEvent) Validate() error {
	if !ev.Arm.Valid() {
		return fmt.Errorf("bandit: unknown arm %d", uint8(ev.Arm))
	}
	if math.IsNaN(ev.Reward) || math.IsInf(ev.Reward, 0) {
		return fmt.Errorf("bandit: reward must be finite, got %v", ev.Reward)
	}
	if ev.Reward < 0 || ev.Reward > 1 {
		return fmt.Errorf("bandit: reward must be in [0,1], got %v", ev.Reward)
	}
	return nil
}

// maxConfidenceWeight is the largest implicit-feedback confidence the
// pipeline emits: feedback.DefaultWeights' Share weight (Table 1 extended,
// §3.2). RewardFromWeight normalizes against it so a share is full reward.
const maxConfidenceWeight = 4.0

// RewardFromWeight maps an implicit-feedback confidence weight w_ui to a
// bounded [0, 1] bandit reward: w/4 clamped, so a bare click earns 0.25 and
// a share earns 1. Non-finite or negative weights earn nothing — the weight
// layer validates its own inputs, but the bandit never trusts that.
func RewardFromWeight(w float64) float64 {
	r := w / maxConfidenceWeight
	switch {
	case math.IsNaN(r) || r < 0:
		return 0
	case r > 1:
		return 1
	}
	return r
}

// Apply folds one validated event into the state. Wins are capped at the
// arm's pulls: a reward can never credit more than the slots actually
// served, so a validated state stays validated under any event sequence.
func (s *State) Apply(ev RewardEvent) {
	if !ev.Arm.Valid() {
		return
	}
	w := s.Wins[ev.Arm] + ev.Reward
	if w > s.Pulls[ev.Arm] {
		w = s.Pulls[ev.Arm]
	}
	s.Wins[ev.Arm] = w
}

// stateFloats is the payload width of an encoded State: pulls then wins.
const stateFloats = 2 * NumArms

// EncodeState renders the state as an 8-byte UnixMilli stamp followed by
// the pull and win counters — the stamped-record layout the hot lists and
// similar tables use, so the sim tier's store sweep can bound the timestamp
// the same way.
func EncodeState(st State, updatedAtMs int64) []byte {
	var fs [stateFloats]float64
	copy(fs[:NumArms], st.Pulls[:])
	copy(fs[NumArms:], st.Wins[:])
	return append(kvstore.EncodeInt64(updatedAtMs), kvstore.EncodeFloats(fs[:])...)
}

// DecodeState parses an encoded state record and validates it. Corrupt
// bytes, wrong counter counts, and any non-finite / negative / wins>pulls
// state are errors — a decoded State is always safe to sample from, which
// is the property FuzzRewardCodec pins.
func DecodeState(b []byte) (State, int64, error) {
	var st State
	if len(b) < 8 {
		return st, 0, fmt.Errorf("bandit: state record shorter than its timestamp prefix")
	}
	ms, err := kvstore.DecodeInt64(b[:8])
	if err != nil {
		return st, 0, fmt.Errorf("bandit: corrupt state timestamp: %w", err)
	}
	fs, err := kvstore.DecodeFloats(b[8:])
	if err != nil {
		return st, 0, fmt.Errorf("bandit: corrupt state counters: %w", err)
	}
	if len(fs) != stateFloats {
		return st, 0, fmt.Errorf("bandit: state has %d counters, want %d", len(fs), stateFloats)
	}
	copy(st.Pulls[:], fs[:NumArms])
	copy(st.Wins[:], fs[NumArms:])
	if err := st.Validate(); err != nil {
		return State{}, 0, err
	}
	return st, ms, nil
}

// Attribution records which arm filled one served slot — the breadcrumb
// that lets a later action on the video reward the right arm.
type Attribution struct {
	Video string
	Arm   Arm
}
