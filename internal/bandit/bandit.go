// Package bandit implements the exploration layer the paper's title
// promises: multi-armed bandit policies over the serving pipeline's blended
// candidate sources. Each slot of a recommendation list is treated as one
// pull of a four-armed bandit — the MF-ranked candidates (Eq. 2), the
// similar-table expansion, the demographic hot list, and the ANN retrieval
// (LSH over item factor vectors, when enabled) — and implicit
// feedback on served videos flows back as bounded rewards, so the slate
// composition shifts toward whichever source is earning clicks *right now*
// (the online-matching formulation of PAPERS.md's real-time bandit system).
//
// Determinism is a design constraint, not an afterthought: policies draw
// from an injected seeded RNG (rand.NewPCG), state lives in plain float
// counters with an explicit codec, and no code path consults the wall clock
// or global randomness — the same seed and reward history replay the exact
// slate sequence byte for byte, which is what lets the sim tier digest
// explored serving output and the golden test pin a slate to a file.
package bandit

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Arm identifies one candidate source feeding the blended slate.
type Arm uint8

const (
	// ArmMF is the personalized MF ranking (Eq. 2 scores, rank order).
	ArmMF Arm = iota
	// ArmSim is the similar-table expansion in seed order — the raw
	// candidate stream before ranking re-orders it.
	ArmSim
	// ArmHot is the demographic hot list (popularity order).
	ArmHot
	// ArmANN is the LSH approximate-nearest-neighbour retrieval over item
	// factor vectors (probe order). The pool is empty unless the serving
	// path runs with ANN retrieval enabled, in which case its candidates
	// rank by the same Eq. 2 scores as every other arm.
	ArmANN

	numArms
)

// NumArms is the number of candidate-source arms.
const NumArms = int(numArms)

var armNames = [NumArms]string{ArmMF: "mf", ArmSim: "sim", ArmHot: "hot", ArmANN: "ann"}

// String returns the arm's wire name.
func (a Arm) String() string {
	if int(a) < NumArms {
		return armNames[a]
	}
	return fmt.Sprintf("arm(%d)", uint8(a))
}

// Valid reports whether a names a real arm.
func (a Arm) Valid() bool { return int(a) < NumArms }

// State is the bandit's durable reward state: per-arm pull and win totals.
// Pulls count served slots attributed to the arm; Wins accumulate the [0,1]
// rewards those slots later earned. The pair induces the Beta posterior of
// Posterior — fresh state means uniform Beta(1,1) priors on every arm.
type State struct {
	Pulls [NumArms]float64
	Wins  [NumArms]float64
}

// Posterior is a Beta(Alpha, Beta) belief over one arm's reward rate.
type Posterior struct {
	Alpha, Beta float64
}

// Mean returns the posterior mean Alpha/(Alpha+Beta).
func (p Posterior) Mean() float64 { return p.Alpha / (p.Alpha + p.Beta) }

// Posterior returns the Beta posterior for arm a under a uniform Beta(1,1)
// prior: Alpha = 1 + wins, Beta = 1 + (pulls - wins). The losses term is
// floored at zero so a hand-built state with wins > pulls still yields a
// proper distribution.
func (s *State) Posterior(a Arm) Posterior {
	losses := s.Pulls[a] - s.Wins[a]
	if losses < 0 {
		losses = 0
	}
	return Posterior{Alpha: 1 + s.Wins[a], Beta: 1 + losses}
}

// Validate checks that the state can safely parameterize posteriors: every
// counter finite and non-negative, and no arm's wins exceeding its pulls.
func (s *State) Validate() error {
	for a := 0; a < NumArms; a++ {
		p, w := s.Pulls[a], s.Wins[a]
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("bandit: arm %s has non-finite counters pulls=%v wins=%v", Arm(a), p, w)
		}
		if p < 0 || w < 0 {
			return fmt.Errorf("bandit: arm %s has negative counters pulls=%v wins=%v", Arm(a), p, w)
		}
		if w > p {
			return fmt.Errorf("bandit: arm %s has wins %v exceeding pulls %v", Arm(a), w, p)
		}
	}
	return nil
}

// Policy names and policy selection strings (recommend.Options.ExplorePolicy,
// recserve's -explore-policy flag).
const (
	PolicyThompson      = "thompson"
	PolicyEpsilonGreedy = "epsilon-greedy"
)

// Policy picks the arm for one slate slot given the current reward state.
// Implementations own a seeded RNG and are deterministic: the pick sequence
// is a pure function of (seed, state sequence). They are NOT safe for
// concurrent use — the serving path serializes picks per system.
type Policy interface {
	// Name returns the policy's selection string (PolicyThompson, ...).
	Name() string
	// Pick samples one arm from the state's posteriors.
	Pick(st *State) Arm
}

// Thompson is Thompson sampling: each pick draws θ_a ~ Beta(α_a, β_a) for
// every arm and plays the argmax, so an arm is chosen with exactly the
// posterior probability that it is the best one — exploration decays
// automatically as posteriors sharpen.
type Thompson struct {
	rng *rand.Rand
}

// NewThompson returns a Thompson-sampling policy with a seeded PCG source.
func NewThompson(seed uint64) *Thompson {
	return &Thompson{rng: rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))}
}

// Name implements Policy.
func (t *Thompson) Name() string { return PolicyThompson }

// Pick implements Policy: sample every arm's posterior, play the argmax.
// Ties break toward the lowest arm index, which keeps the pick a pure
// function of the drawn samples.
//
// hotpath: slate re-ranking samples once per served slot
func (t *Thompson) Pick(st *State) Arm {
	best := ArmMF
	bestSample := math.Inf(-1)
	for a := 0; a < NumArms; a++ {
		p := st.Posterior(Arm(a))
		if s := t.betaSample(p.Alpha, p.Beta); s > bestSample {
			best, bestSample = Arm(a), s
		}
	}
	return best
}

// betaSample draws from Beta(a, b) as Ga/(Ga+Gb) with two Gamma draws.
func (t *Thompson) betaSample(a, b float64) float64 {
	ga := t.gammaSample(a)
	gb := t.gammaSample(b)
	if ga+gb == 0 {
		return 0.5 // both shapes degenerate; split the tie deterministically
	}
	return ga / (ga + gb)
}

// gammaSample draws from Gamma(shape, 1) via Marsaglia–Tsang squeeze
// rejection. Shapes below 1 use the boosting identity
// Gamma(a) = Gamma(a+1)·U^(1/a); validated states always have shape ≥ 1
// (α = 1 + wins, β = 1 + losses), so the boost is defensive only.
func (t *Thompson) gammaSample(shape float64) float64 {
	if shape < 1 {
		u := t.rng.Float64()
		for u == 0 {
			u = t.rng.Float64()
		}
		return t.gammaSample(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := t.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := t.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// EpsilonGreedy explores a fixed fraction of slots: with probability epsilon
// the slot's arm is uniform over all arms, otherwise it is the arm with the
// highest posterior mean (ties toward the lowest index).
type EpsilonGreedy struct {
	rng     *rand.Rand
	epsilon float64
}

// NewEpsilonGreedy returns an epsilon-greedy policy with a seeded PCG
// source. Epsilon is clamped to [0, 1]; NaN explores nothing.
func NewEpsilonGreedy(seed uint64, epsilon float64) *EpsilonGreedy {
	switch {
	case !(epsilon >= 0): // also catches NaN
		epsilon = 0
	case epsilon > 1:
		epsilon = 1
	}
	return &EpsilonGreedy{
		rng:     rand.New(rand.NewPCG(seed, seed^0xD1B54A32D192ED03)),
		epsilon: epsilon,
	}
}

// Name implements Policy.
func (e *EpsilonGreedy) Name() string { return PolicyEpsilonGreedy }

// Epsilon returns the exploration fraction in force.
func (e *EpsilonGreedy) Epsilon() float64 { return e.epsilon }

// Pick implements Policy.
//
// hotpath: slate re-ranking samples once per served slot
func (e *EpsilonGreedy) Pick(st *State) Arm {
	if e.rng.Float64() < e.epsilon {
		return Arm(e.rng.IntN(NumArms))
	}
	best := ArmMF
	bestMean := st.Posterior(ArmMF).Mean()
	for a := 1; a < NumArms; a++ {
		if m := st.Posterior(Arm(a)).Mean(); m > bestMean {
			best, bestMean = Arm(a), m
		}
	}
	return best
}
