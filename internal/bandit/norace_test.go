//go:build !race

package bandit

// See race_test.go.
const raceEnabled = false
