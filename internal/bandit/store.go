package bandit

import (
	"context"
	"fmt"
	"time"

	"vidrec/internal/kvstore"
	"vidrec/internal/objcache"
	"vidrec/internal/topn"
)

// Store persists the bandit's reward state and per-user slate attributions
// in the shared key-value store, following the same component idiom as the
// demographic hot tracker: one namespace per record family, read-modify-
// write through kv.Update, and a decoded-value read cache on the serving-
// path read (the state record) with write-through invalidation.
//
// Two namespaces:
//
//	<name>.bandit:arms    the single State record (pulls/wins per arm)
//	<name>.battr:<user>   the user's last explored slate's attributions
//
// Both use dot-joined namespaces, so they deliberately sit OUTSIDE the
// "<name>/" model/simtable key prefix: a total model blackout (the
// degraded-serving drill) leaves reward state reachable — though the
// degraded path never samples, so nothing writes it during one either.
type Store struct {
	kv      kvstore.Store
	stateNS string
	attrNS  string
	cache   *objcache.Cache // nil disables the decoded-state read cache
}

// stateID is the single state record's id within the bandit namespace.
const stateID = "arms"

// New returns a bandit store rooted at the component namespace name (the
// same root the other pipeline components share, typically "sys").
func New(name string, kv kvstore.Store) (*Store, error) {
	if name == "" {
		return nil, fmt.Errorf("bandit: name must not be empty")
	}
	if kv == nil {
		return nil, fmt.Errorf("bandit: store must not be nil")
	}
	return &Store{kv: kv, stateNS: name + ".bandit", attrNS: name + ".battr"}, nil
}

// SetCache attaches a decoded-value read cache for the state record. The
// cache must wrap the same store via objcache.WrapStore so RecordPulls and
// Reward invalidate it.
func (s *Store) SetCache(c *objcache.Cache) { s.cache = c }

// State returns the current reward state, reading the decoded record
// through the cache. A missing record is the uniform prior (zero State);
// a corrupt or invalid record is an error — sampling never sees it.
func (s *Store) State(ctx context.Context) (State, error) {
	key := kvstore.Key(s.stateNS, stateID)
	// alloccheck: one loader closure per read-through is inside the explore budget
	st, _, err := objcache.Cached(s.cache, key, func() (State, bool, error) {
		raw, ok, err := s.kv.Get(ctx, key)
		if err != nil {
			return State{}, false, fmt.Errorf("bandit: get state: %w", err)
		}
		if !ok {
			return State{}, true, nil // fresh system: uniform priors
		}
		st, _, err := DecodeState(raw)
		if err != nil {
			return State{}, false, err
		}
		return st, true, nil
	})
	return st, err
}

// RecordPulls charges one served slate's slots to their arms in a single
// read-modify-write: pulls[a] slots were filled from arm a at time ts. A
// corrupt stored record is replaced by the priors plus this charge — bad
// bytes reset the bandit rather than poisoning or wedging it.
func (s *Store) RecordPulls(ctx context.Context, pulls *[NumArms]int, ts time.Time) error {
	total := 0
	for _, n := range pulls {
		if n < 0 {
			return fmt.Errorf("bandit: negative pull count %d", n)
		}
		total += n
	}
	if total == 0 {
		return nil
	}
	key := kvstore.Key(s.stateNS, stateID)
	// alloccheck: one update closure per explored request (explore budget)
	return s.kv.Update(ctx, key, func(cur []byte, ok bool) ([]byte, bool) {
		var st State
		stamp := ts.UnixMilli()
		if ok {
			if prev, prevMs, err := DecodeState(cur); err == nil {
				st = prev
				if prevMs > stamp {
					stamp = prevMs
				}
			}
		}
		for a := 0; a < NumArms; a++ {
			st.Pulls[a] += float64(pulls[a])
		}
		return EncodeState(st, stamp), true
	})
}

// Reward folds one validated reward event into the state. Invalid events
// are rejected before any store traffic; a corrupt stored record is
// replaced by the priors plus this event.
func (s *Store) Reward(ctx context.Context, ev RewardEvent) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	key := kvstore.Key(s.stateNS, stateID)
	return s.kv.Update(ctx, key, func(cur []byte, ok bool) ([]byte, bool) {
		var st State
		stamp := ev.TsMs
		if ok {
			if prev, prevMs, err := DecodeState(cur); err == nil {
				st = prev
				if prevMs > stamp {
					stamp = prevMs
				}
			}
		}
		st.Apply(ev)
		return EncodeState(st, stamp), true
	})
}

// Attribute overwrites the user's slate attributions with the just-served
// explored slate: slate[i] was filled from arms[i]. Only the latest
// explored slate is attributable — re-serving replaces the breadcrumbs, the
// way a screenful of recommendations replaces the previous screenful.
func (s *Store) Attribute(ctx context.Context, userID string, slate []topn.Entry, arms []Arm) error {
	if userID == "" {
		return fmt.Errorf("bandit: user id must not be empty")
	}
	if len(slate) != len(arms) {
		return fmt.Errorf("bandit: slate has %d entries but %d arms", len(slate), len(arms))
	}
	if len(slate) == 0 {
		return nil
	}
	entries := make([]topn.Entry, len(slate)) // alloccheck: attribution record build, one per explored request (explore budget)
	for i, e := range slate {
		if !arms[i].Valid() {
			return fmt.Errorf("bandit: slot %d has unknown arm %d", i, uint8(arms[i]))
		}
		entries[i] = topn.Entry{ID: e.ID, Score: float64(arms[i])}
	}
	return s.kv.Set(ctx, kvstore.Key(s.attrNS, userID), kvstore.EncodeEntries(entries))
}

// Take consumes the attribution for (user, video): if the video sits in the
// user's attributed slate, the owning arm is returned and the entry removed
// (first matching action wins the credit; repeat actions on the same slot
// earn nothing more). A corrupt attribution record is dropped whole —
// malformed bytes can cost credit, never corrupt posteriors.
func (s *Store) Take(ctx context.Context, userID, videoID string) (Arm, bool, error) {
	if userID == "" || videoID == "" {
		return 0, false, fmt.Errorf("bandit: user and video ids must not be empty")
	}
	var (
		arm   Arm
		found bool
	)
	err := s.kv.Update(ctx, kvstore.Key(s.attrNS, userID), func(cur []byte, ok bool) ([]byte, bool) {
		if !ok {
			return nil, false // no attributions: leave the key absent
		}
		entries, err := kvstore.DecodeEntries(cur)
		if err != nil {
			return nil, false // corrupt record: drop it
		}
		kept := entries[:0]
		for _, e := range entries {
			a := Arm(e.Score)
			if !found && e.ID == videoID && float64(a) == e.Score && a.Valid() {
				arm, found = a, true
				continue
			}
			kept = append(kept, e)
		}
		if !found {
			return cur, true // unrelated action: record unchanged
		}
		if len(kept) == 0 {
			return nil, false // slate fully credited: retire the record
		}
		return kvstore.EncodeEntries(kept), true
	})
	if err != nil {
		return 0, false, fmt.Errorf("bandit: take attribution: %w", err)
	}
	return arm, found, nil
}

// Attributions returns the user's currently attributed slate, oldest slot
// first — a diagnostic read for tests and the stats endpoint.
func (s *Store) Attributions(ctx context.Context, userID string) ([]Attribution, error) {
	raw, ok, err := s.kv.Get(ctx, kvstore.Key(s.attrNS, userID))
	if err != nil || !ok {
		return nil, err
	}
	entries, err := kvstore.DecodeEntries(raw)
	if err != nil {
		return nil, fmt.Errorf("bandit: corrupt attributions for %s: %w", userID, err)
	}
	out := make([]Attribution, 0, len(entries))
	for _, e := range entries {
		out = append(out, Attribution{Video: e.ID, Arm: Arm(e.Score)})
	}
	return out, nil
}
