package bandit

import "testing"

// TestPickZeroAlloc pins the per-slot sampling cost: both policies must pick
// without heap allocation, since the explore path calls Pick once per served
// slot inside the warm-path alloc budget.
func TestPickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	st := State{
		Pulls: [NumArms]float64{ArmMF: 50, ArmSim: 30, ArmHot: 20},
		Wins:  [NumArms]float64{ArmMF: 10, ArmSim: 15, ArmHot: 2},
	}
	for _, p := range []Policy{NewThompson(1), NewEpsilonGreedy(1, 0.1)} {
		allocs := testing.AllocsPerRun(1000, func() {
			_ = p.Pick(&st)
		})
		if allocs != 0 {
			t.Errorf("%s: Pick allocates %.1f per call, want 0", p.Name(), allocs)
		}
	}
}
