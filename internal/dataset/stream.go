package dataset

import (
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"vidrec/internal/feedback"
)

// Stream lazily produces the dataset's action tuples in timestamp order.
// Each selection event expands into an engagement funnel whose depth follows
// the hidden preference: every shown video yields an Impress, interested
// users click, play, watch some fraction (PlayTime), and the most engaged
// comment, like or share — mirroring the action inventory of Table 1.
type Stream struct {
	d    *Dataset
	rng  *rand.Rand
	day  int
	evt  int
	qpos int
	que  []feedback.Action

	userCum     []float64 // cumulative activity weights for user sampling
	userCumSum  float64
	zipfCum     []float64 // cumulative zipf weights for rank sampling
	rankToVideo []int
}

// Stream returns a fresh deterministic action stream over the configured
// days. Multiple streams from one dataset are identical.
func (d *Dataset) Stream() *Stream {
	s := &Stream{
		d:   d,
		rng: rand.New(rand.NewPCG(d.cfg.Seed^0xA5A5A5A5A5A5A5A5, d.cfg.Seed+17)),
	}
	s.userCum = make([]float64, len(d.users))
	for i, u := range d.users {
		s.userCumSum += 0.05 + u.activity // floor keeps every user reachable
		s.userCum[i] = s.userCumSum
	}
	s.zipfCum = make([]float64, len(d.zipfW))
	var acc float64
	for i, w := range d.zipfW {
		acc += w
		s.zipfCum[i] = acc
	}
	s.rankToVideo = make([]int, len(d.videos))
	for vi := range d.videos {
		s.rankToVideo[d.videos[vi].rank] = vi
	}
	return s
}

// Next returns the next action and whether one was available.
func (s *Stream) Next() (feedback.Action, bool) {
	for s.qpos >= len(s.que) {
		if s.day >= s.d.cfg.Days {
			return feedback.Action{}, false
		}
		s.que = s.que[:0]
		s.qpos = 0
		s.emitEvent()
		s.evt++
		if s.evt >= s.d.cfg.EventsPerDay {
			s.evt = 0
			s.day++
		}
	}
	a := s.que[s.qpos]
	s.qpos++
	return a, true
}

// All drains the stream into a slice.
func (s *Stream) All() []feedback.Action {
	var out []feedback.Action
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// AllActions generates the complete stream as a slice.
func (d *Dataset) AllActions() []feedback.Action { return d.Stream().All() }

func (s *Stream) pickUser() int {
	x := s.rng.Float64() * s.userCumSum
	return sort.SearchFloat64s(s.userCum, x)
}

// pickByPopularity samples a video with day-drifted Zipf weights.
func (s *Stream) pickByPopularity(day int) int {
	x := s.rng.Float64() * s.zipfCum[len(s.zipfCum)-1]
	effRank := sort.SearchFloat64s(s.zipfCum, x)
	shift := int(float64(day) * s.d.cfg.TrendDriftPerDay * float64(s.d.cfg.Videos))
	baseRank := ((effRank-shift)%len(s.rankToVideo) + len(s.rankToVideo)) % len(s.rankToVideo)
	return s.rankToVideo[baseRank]
}

// emitEvent simulates one visit: the user examines a small candidate panel
// (popular videos mixed with random discoveries), every examined video is
// impressed, and the best-liked one goes through the engagement funnel.
func (s *Stream) emitEvent() {
	d := s.d
	ui := s.pickUser()
	ts := d.cfg.Start.
		Add(time.Duration(s.day) * 24 * time.Hour).
		Add(time.Duration(float64(s.evt) / float64(d.cfg.EventsPerDay) * float64(24*time.Hour)))

	const panel = 6
	best := -1
	bestScore := -1e18
	bestCasual := false
	examined := make([]int, 0, panel)
	for k := 0; k < panel; k++ {
		var vi int
		trending := k < panel/2
		if trending {
			vi = s.pickByPopularity(s.day)
		} else {
			vi = s.rng.IntN(len(d.videos))
		}
		dup := false
		for _, e := range examined {
			if e == vi {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		examined = append(examined, vi)
		// Gumbel-noised choice: preference-driven but stochastic, with a
		// curiosity bonus for trending videos — people click what everyone
		// clicks.
		score := d.preference(ui, vi) + 0.25*gumbel(s.rng)
		if trending {
			score += 0.12
		}
		if score > bestScore {
			bestScore, best, bestCasual = score, vi, trending
		}
	}
	user := d.users[ui].ID
	// Impressions for the examined panel, in examination order.
	for i, vi := range examined {
		s.que = append(s.que, feedback.Action{
			UserID: user, VideoID: d.videos[vi].Meta.ID,
			Type: feedback.Impress, Timestamp: ts.Add(time.Duration(i) * time.Millisecond),
		})
	}
	if best < 0 {
		return
	}
	s.funnel(ui, best, ts.Add(time.Second), bestCasual)
}

// funnel expands one chosen video into the engagement cascade. Casual
// (trend-following) watches click like everyone else but engage shallowly:
// the video was chosen because it was everywhere, not out of deep interest.
// This is the systematic gap between click traffic and engagement depth that
// makes confidence weights an unreliable *rating*: tomorrow's most-watched
// videos earn today's lowest weights.
func (s *Stream) funnel(ui, vi int, ts time.Time, casual bool) {
	d := s.d
	p := d.preference(ui, vi)
	// Clicks follow choice propensity; engagement depth is what casual
	// trend-watching cuts.
	depth := p
	if casual {
		depth *= 0.55
	}
	user := d.users[ui].ID
	video := d.videos[vi].Meta

	emit := func(typ feedback.ActionType, offset time.Duration, view time.Duration) {
		s.que = append(s.que, feedback.Action{
			UserID: user, VideoID: video.ID, Type: typ,
			ViewTime: view, VideoLength: video.Length,
			Timestamp: ts.Add(offset),
		})
	}

	if s.rng.Float64() >= 0.08+0.84*p {
		return // impressed but never clicked
	}
	emit(feedback.Click, 0, 0)
	if s.rng.Float64() >= 0.92 {
		return // clicked but playback never started
	}
	emit(feedback.Play, time.Second, 0)
	// View rate is a noisy, *confounded* witness of interest (§3.2): "the
	// fact that a user watched a video in its entirety is not enough to
	// conclude that he actually liked it, while a user may watch a
	// favorite video for just a short period because of time limitation.
	// Both the video length and the user engagement level influence the
	// signal quality." We model exactly that: every view is capped by an
	// exponential session time budget (long videos rarely finish even when
	// loved; short ones finish regardless), and a quarter of plays are
	// distracted views whose length says nothing at all.
	var vrate float64
	if s.rng.Float64() < 0.55 {
		vrate = s.rng.Float64()
	} else {
		vrate = depth*(0.45+0.75*s.rng.Float64()) + 0.05*s.rng.NormFloat64()
	}
	budgetMin := s.rng.ExpFloat64() * 25 // session budget, mean 25 minutes
	if cap := budgetMin / video.Length.Minutes(); vrate > cap {
		vrate = cap
	}
	if vrate < 0.01 {
		vrate = 0.01
	}
	if vrate > 1 {
		vrate = 1
	}
	view := time.Duration(vrate * float64(video.Length))
	emit(feedback.PlayTime, time.Second+view, view)
	after := 2*time.Second + view
	// Comments happen on any play and are complaint-dominated: disliked
	// videos draw more comments than loved ones. Table 1's weight of 3 for
	// comments is therefore exactly the kind of "inappropriate guess" §3.2
	// warns about — a strong positive rating assigned to a behaviour that,
	// in truth, skews negative. Models that trust weight magnitudes
	// inherit this systematic error.
	if s.rng.Float64() < 0.02+0.10*(1-p) {
		emit(feedback.Comment, after, 0)
	}
	if vrate > 0.5 {
		// Likes and shares remain genuine endorsements, gated on having
		// actually watched, with a small bot/misclick floor.
		if s.rng.Float64() < 0.02+0.25*depth {
			emit(feedback.Like, after+time.Second, 0)
		}
		if s.rng.Float64() < 0.02+0.10*depth {
			emit(feedback.Share, after+2*time.Second, 0)
		}
	}
}

// gumbel draws standard Gumbel noise (argmax of noised scores ≈ softmax
// choice).
func gumbel(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(-math.Log(u))
}
