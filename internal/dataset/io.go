package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
)

// TSV serialization for action streams and entity tables, so generated
// workloads can be inspected, versioned, and replayed by external tools.
// One action per line:
//
//	ts_ms <TAB> user <TAB> video <TAB> action <TAB> view_ms <TAB> length_ms

// WriteActions writes actions as TSV.
func WriteActions(w io.Writer, actions []feedback.Action) error {
	bw := bufio.NewWriter(w)
	for _, a := range actions {
		_, err := fmt.Fprintf(bw, "%d\t%s\t%s\t%s\t%d\t%d\n",
			a.Timestamp.UnixMilli(), a.UserID, a.VideoID, a.Type,
			a.ViewTime.Milliseconds(), a.VideoLength.Milliseconds())
		if err != nil {
			return fmt.Errorf("dataset: write action: %w", err)
		}
	}
	return bw.Flush()
}

// ReadActions parses a TSV action stream written by WriteActions.
func ReadActions(r io.Reader) ([]feedback.Action, error) {
	var out []feedback.Action
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 6 {
			return nil, fmt.Errorf("dataset: line %d: %d fields, want 6", line, len(fields))
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad timestamp: %w", line, err)
		}
		typ, err := feedback.ParseActionType(fields[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		view, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad view time: %w", line, err)
		}
		length, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad video length: %w", line, err)
		}
		out = append(out, feedback.Action{
			UserID:      fields[1],
			VideoID:     fields[2],
			Type:        typ,
			ViewTime:    time.Duration(view) * time.Millisecond,
			VideoLength: time.Duration(length) * time.Millisecond,
			Timestamp:   time.UnixMilli(ts),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read actions: %w", err)
	}
	return out, nil
}

// WriteCatalog writes the video catalog as TSV: id, type, length_ms.
func WriteCatalog(w io.Writer, videos []Video) error {
	bw := bufio.NewWriter(w)
	for i := range videos {
		m := videos[i].Meta
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\n", m.ID, m.Type, m.Length.Milliseconds()); err != nil {
			return fmt.Errorf("dataset: write catalog: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCatalog parses a TSV catalog written by WriteCatalog.
func ReadCatalog(r io.Reader) ([]catalog.Video, error) {
	var out []catalog.Video
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 3 {
			return nil, fmt.Errorf("dataset: catalog line %d: %d fields, want 3", line, len(fields))
		}
		ms, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: catalog line %d: bad length: %w", line, err)
		}
		out = append(out, catalog.Video{
			ID: fields[0], Type: fields[1],
			Length: time.Duration(ms) * time.Millisecond,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read catalog: %w", err)
	}
	return out, nil
}

// WriteProfiles writes registered users' profiles as TSV:
// user, gender, age, education.
func WriteProfiles(w io.Writer, users []User) error {
	bw := bufio.NewWriter(w)
	for i := range users {
		p := users[i].Profile
		if !p.Registered {
			continue
		}
		_, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%d\n", p.UserID, p.Gender, p.Age, p.Education)
		if err != nil {
			return fmt.Errorf("dataset: write profiles: %w", err)
		}
	}
	return bw.Flush()
}

// ReadProfiles parses a TSV profile table written by WriteProfiles.
func ReadProfiles(r io.Reader) ([]demographic.Profile, error) {
	var out []demographic.Profile
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 4 {
			return nil, fmt.Errorf("dataset: profile line %d: %d fields, want 4", line, len(fields))
		}
		nums := make([]int, 3)
		for i := 0; i < 3; i++ {
			n, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return nil, fmt.Errorf("dataset: profile line %d: %w", line, err)
			}
			nums[i] = n
		}
		out = append(out, demographic.Profile{
			UserID:     fields[0],
			Registered: true,
			Gender:     demographic.Gender(nums[0]),
			Age:        demographic.AgeBand(nums[1]),
			Education:  demographic.Education(nums[2]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read profiles: %w", err)
	}
	return out, nil
}
