// Package dataset generates the synthetic user-action streams that stand in
// for Tencent Video's proprietary production logs (DESIGN.md §3, substitution
// 1). A hidden ground-truth model — per-user and per-video latent traits, a
// demographic-group × video-type taste matrix, Zipf-skewed popularity with
// daily trend drift — emits <user, video, action, timestamp> tuples through
// the same engagement funnel the paper's Table 1 lists (Impress → Click →
// Play → PlayTime → Comment/Like/Share).
//
// The generator preserves the workload properties the paper's algorithms
// exploit:
//
//   - implicit-only feedback whose action types order by confidence;
//   - a sparse global user-video matrix (~0.5%) that densifies inside
//     demographic groups (Table 3 vs Table 4);
//   - demographic variation in rating patterns (the group taste matrix),
//     which demographic training (§5.2.2) can capture and global training
//     cannot;
//   - popularity skew plus daily trend drift, exercising the similar-video
//     tables' time factor and the online model's adaptivity;
//   - unregistered users with no profile (the global-group fallback path).
//
// Everything is deterministic in Config.Seed, so experiments reproduce
// exactly.
package dataset

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/demographic"
)

// Config parametrizes a synthetic workload.
type Config struct {
	// Seed makes the whole dataset (entities and stream) reproducible.
	Seed uint64
	// Users and Videos size the universe.
	Users, Videos int
	// Types is the number of fine-grained video categories.
	Types int
	// Factors is the dimensionality of the hidden trait vectors.
	Factors int
	// Days is the stream length; the paper's protocol trains on the first
	// Days−1 and tests on the last.
	Days int
	// EventsPerDay is the number of video-selection events per day; each
	// event expands into a funnel of 1–6 actions.
	EventsPerDay int
	// ZipfExponent skews video popularity (≈1 is web-like).
	ZipfExponent float64
	// TrendDriftPerDay is the fraction of the popularity ranking that
	// rotates each day (0 = static trends, 0.2 = hot set largely replaced
	// within a week).
	TrendDriftPerDay float64
	// GroupInfluence scales the demographic taste component relative to
	// the individual trait match. Higher values make demographic training
	// more valuable.
	GroupInfluence float64
	// RegisteredShare is the fraction of users with a profile; the rest
	// are unregistered and fall into the global group.
	RegisteredShare float64
	// Start is the stream's first instant.
	Start time.Time
}

// DefaultConfig returns a laptop-scale workload shaped like the paper's
// cleaned dataset: one week of actions over a few thousand active users.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Users:            2000,
		Videos:           600,
		Types:            12,
		Factors:          8,
		Days:             7,
		EventsPerDay:     40000,
		ZipfExponent:     1.05,
		TrendDriftPerDay: 0.08,
		GroupInfluence:   0.6,
		RegisteredShare:  0.65,
		Start:            time.Date(2016, 3, 7, 0, 0, 0, 0, time.UTC),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0 || c.Videos <= 1:
		return fmt.Errorf("dataset: need at least 1 user and 2 videos, got %d/%d", c.Users, c.Videos)
	case c.Types <= 0:
		return fmt.Errorf("dataset: Types must be positive, got %d", c.Types)
	case c.Factors <= 0:
		return fmt.Errorf("dataset: Factors must be positive, got %d", c.Factors)
	case c.Days <= 0:
		return fmt.Errorf("dataset: Days must be positive, got %d", c.Days)
	case c.EventsPerDay <= 0:
		return fmt.Errorf("dataset: EventsPerDay must be positive, got %d", c.EventsPerDay)
	case c.ZipfExponent <= 0:
		return fmt.Errorf("dataset: ZipfExponent must be positive, got %v", c.ZipfExponent)
	case c.TrendDriftPerDay < 0 || c.TrendDriftPerDay > 1:
		return fmt.Errorf("dataset: TrendDriftPerDay must be in [0,1], got %v", c.TrendDriftPerDay)
	case c.RegisteredShare < 0 || c.RegisteredShare > 1:
		return fmt.Errorf("dataset: RegisteredShare must be in [0,1], got %v", c.RegisteredShare)
	}
	return nil
}

// User is one synthetic user: a demographic profile, a hidden trait vector,
// and an activity level (how often they show up in the stream).
type User struct {
	ID       string
	Profile  demographic.Profile
	traits   []float64
	activity float64
}

// Video is one synthetic video: catalog metadata, a hidden trait vector, a
// base quality, and a popularity rank that drifts daily.
type Video struct {
	Meta    catalog.Video
	traits  []float64
	quality float64
	rank    int // base popularity rank, 0 = most popular
}

// Dataset is a generated universe plus the machinery to stream actions and
// to answer ground-truth queries (used by the A/B testing simulator).
type Dataset struct {
	cfg      Config
	users    []User
	videos   []Video
	userIdx  map[string]int
	videoIdx map[string]int
	// groupTaste[g][t] is the demographic taste of group-index g for video
	// type t, derived deterministically from the seed.
	groupTaste map[string][]float64
	zipfW      []float64 // zipf weight by popularity rank
	zipfSum    float64
}

// Generate builds the user and video universes for the configuration.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dataset{
		cfg:        cfg,
		userIdx:    make(map[string]int, cfg.Users),
		videoIdx:   make(map[string]int, cfg.Videos),
		groupTaste: make(map[string][]float64),
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9E3779B97F4A7C15))

	// Registered users cluster into a handful of demographic personas —
	// the paper's "dozens of groups" over 10M users, downscaled
	// proportionally so each group holds enough users to train on.
	personas := []demographic.Profile{
		{Registered: true, Gender: demographic.GenderMale, Age: demographic.Age18to24, Education: demographic.EduBachelor},
		{Registered: true, Gender: demographic.GenderFemale, Age: demographic.Age18to24, Education: demographic.EduBachelor},
		{Registered: true, Gender: demographic.GenderMale, Age: demographic.Age25to34, Education: demographic.EduPostgraduate},
		{Registered: true, Gender: demographic.GenderFemale, Age: demographic.Age25to34, Education: demographic.EduSecondary},
		{Registered: true, Gender: demographic.GenderMale, Age: demographic.Age35to49, Education: demographic.EduSecondary},
		{Registered: true, Gender: demographic.GenderFemale, Age: demographic.Age50Plus, Education: demographic.EduSecondary},
	}
	d.users = make([]User, cfg.Users)
	for i := range d.users {
		id := fmt.Sprintf("u%05d", i)
		prof := demographic.Profile{UserID: id}
		if rng.Float64() < cfg.RegisteredShare {
			prof = personas[rng.IntN(len(personas))]
			prof.UserID = id
		}
		d.users[i] = User{
			ID:       id,
			Profile:  prof,
			traits:   randUnitVec(rng, cfg.Factors),
			activity: math.Pow(rng.Float64(), 2), // few heavy users, many light
		}
		d.userIdx[id] = i
	}

	d.videos = make([]Video, cfg.Videos)
	perm := rng.Perm(cfg.Videos)
	for i := range d.videos {
		id := fmt.Sprintf("v%05d", i)
		typ := fmt.Sprintf("type%02d", rng.IntN(cfg.Types))
		length := time.Duration(60+rng.IntN(84*60)) * time.Second
		d.videos[i] = Video{
			Meta:    catalog.Video{ID: id, Type: typ, Length: length},
			traits:  randUnitVec(rng, cfg.Factors),
			quality: 0.4 * rng.NormFloat64(),
			rank:    perm[i],
		}
		d.videoIdx[id] = i
	}

	// Group taste vectors: one weight per video type and demographic
	// group, fixed for the dataset's lifetime.
	groupSet := map[string]bool{demographic.GlobalGroup: true}
	for _, u := range d.users {
		groupSet[u.Profile.Group()] = true
	}
	groups := make([]string, 0, len(groupSet))
	for g := range groupSet {
		groups = append(groups, g)
	}
	sort.Strings(groups) // draw in stable order: determinism across runs
	for _, g := range groups {
		taste := make([]float64, cfg.Types)
		for t := range taste {
			taste[t] = 2*rng.Float64() - 1
		}
		d.groupTaste[g] = taste
	}

	// Zipf weights over popularity ranks.
	d.zipfW = make([]float64, cfg.Videos)
	for r := range d.zipfW {
		d.zipfW[r] = 1 / math.Pow(float64(r+1), cfg.ZipfExponent)
		d.zipfSum += d.zipfW[r]
	}
	return d, nil
}

func randUnitVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	var norm float64
	for i := range v {
		v[i] = rng.NormFloat64()
		norm += v[i] * v[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		norm = 1
	}
	for i := range v {
		v[i] /= norm
	}
	return v
}

// Config returns the generating configuration.
func (d *Dataset) Config() Config { return d.cfg }

// Users returns the user universe.
func (d *Dataset) Users() []User { return d.users }

// Videos returns the video universe.
func (d *Dataset) Videos() []Video { return d.videos }

// typeIndex extracts the numeric type index from a "typeNN" label.
func typeIndex(typ string) int {
	var n int
	fmt.Sscanf(typ, "type%d", &n)
	return n
}

// Preference is the hidden ground-truth affinity of a user for a video,
// mapped to (0, 1). It combines the individual trait match, the user's
// demographic group's taste for the video's type, and the video's intrinsic
// quality. The A/B testing simulator clicks according to this value, so
// online CTR measures genuine model quality.
func (d *Dataset) Preference(userID, videoID string) float64 {
	ui, uok := d.userIdx[userID]
	vi, vok := d.videoIdx[videoID]
	if !uok || !vok {
		return 0.05 // strangers click rarely
	}
	return d.preference(ui, vi)
}

func (d *Dataset) preference(ui, vi int) float64 {
	u, v := &d.users[ui], &d.videos[vi]
	var dot float64
	for i := range u.traits {
		dot += u.traits[i] * v.traits[i]
	}
	taste := d.groupTaste[u.Profile.Group()][typeIndex(v.Meta.Type)]
	score := 2.2*dot + d.cfg.GroupInfluence*taste + v.quality
	return 1 / (1 + math.Exp(-score))
}

// popWeight returns the popularity weight of video vi on the given day,
// implementing trend drift: the popularity ranking rotates by
// TrendDriftPerDay·Videos positions each day, so yesterday's hits cool off.
func (d *Dataset) popWeight(vi, day int) float64 {
	shift := int(float64(day) * d.cfg.TrendDriftPerDay * float64(d.cfg.Videos))
	rank := (d.videos[vi].rank + shift) % d.cfg.Videos
	return d.zipfW[rank]
}

// PopularOnDay returns the index-ordered top-k video ids by ground-truth
// popularity on a day — used by tests and by the trend-tracking experiment.
func (d *Dataset) PopularOnDay(day, k int) []string {
	type rv struct {
		id string
		w  float64
	}
	best := make([]rv, 0, k)
	for vi := range d.videos {
		w := d.popWeight(vi, day)
		if len(best) < k {
			best = append(best, rv{d.videos[vi].Meta.ID, w})
		} else {
			minIdx := 0
			for i := range best {
				if best[i].w < best[minIdx].w {
					minIdx = i
				}
			}
			if w > best[minIdx].w {
				best[minIdx] = rv{d.videos[vi].Meta.ID, w}
			}
		}
	}
	out := make([]string, len(best))
	for i, b := range best {
		out[i] = b.id
	}
	return out
}

// FillCatalog writes every video's metadata into a catalog.
func (d *Dataset) FillCatalog(ctx context.Context, cat *catalog.Catalog) error {
	for i := range d.videos {
		if err := cat.Put(ctx, d.videos[i].Meta); err != nil {
			return err
		}
	}
	return nil
}

// FillProfiles writes every registered user's profile into a profile table.
// Unregistered users stay absent, exactly like production traffic.
func (d *Dataset) FillProfiles(ctx context.Context, p *demographic.Profiles) error {
	for i := range d.users {
		if !d.users[i].Profile.Registered {
			continue
		}
		if err := p.Put(ctx, d.users[i].Profile); err != nil {
			return err
		}
	}
	return nil
}
