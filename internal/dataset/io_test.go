package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestActionsTSVRoundTrip(t *testing.T) {
	cfg := smallConfig()
	cfg.EventsPerDay = 200
	d := mustGenerate(t, cfg)
	want := d.AllActions()

	var buf bytes.Buffer
	if err := WriteActions(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadActions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip lost actions: %d vs %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		g := got[i]
		// Timestamps round to milliseconds in the TSV encoding.
		if g.UserID != w.UserID || g.VideoID != w.VideoID || g.Type != w.Type ||
			g.Timestamp.UnixMilli() != w.Timestamp.UnixMilli() ||
			g.ViewTime.Milliseconds() != w.ViewTime.Milliseconds() ||
			g.VideoLength.Milliseconds() != w.VideoLength.Milliseconds() {
			t.Fatalf("action %d differs: %+v vs %+v", i, g, w)
		}
	}
}

func TestReadActionsSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1000\tu1\tv1\tclick\t0\t0\n"
	got, err := ReadActions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].UserID != "u1" {
		t.Errorf("ReadActions = %+v", got)
	}
}

func TestReadActionsRejectsMalformed(t *testing.T) {
	cases := []string{
		"1000\tu1\tv1\tclick\t0",      // missing field
		"xxx\tu1\tv1\tclick\t0\t0",    // bad timestamp
		"1000\tu1\tv1\tnope\t0\t0",    // bad action type
		"1000\tu1\tv1\tclick\tbad\t0", // bad view time
		"1000\tu1\tv1\tclick\t0\tbad", // bad length
	}
	for i, in := range cases {
		if _, err := ReadActions(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed line accepted", i)
		}
	}
}

func TestCatalogTSVRoundTrip(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, d.Videos()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d.Videos()) {
		t.Fatalf("catalog round trip: %d vs %d", len(got), len(d.Videos()))
	}
	for i, v := range d.Videos() {
		if got[i] != v.Meta {
			t.Fatalf("video %d differs: %+v vs %+v", i, got[i], v.Meta)
		}
	}
	if _, err := ReadCatalog(strings.NewReader("a\tb")); err == nil {
		t.Error("malformed catalog line accepted")
	}
}

func TestProfilesTSVRoundTrip(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, d.Users()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	registered := 0
	byID := map[string]bool{}
	for _, u := range d.Users() {
		if u.Profile.Registered {
			registered++
			byID[u.ID] = true
		}
	}
	if len(got) != registered {
		t.Fatalf("profiles round trip: %d vs %d registered", len(got), registered)
	}
	for _, p := range got {
		if !byID[p.UserID] {
			t.Errorf("unexpected profile %s", p.UserID)
		}
		if !p.Registered {
			t.Error("read profile not marked registered")
		}
	}
	if _, err := ReadProfiles(strings.NewReader("u\t1\t2")); err == nil {
		t.Error("malformed profile line accepted")
	}
}
