package dataset

import (
	"context"
	"testing"
	"time"

	"vidrec/internal/catalog"
	"vidrec/internal/demographic"
	"vidrec/internal/feedback"
	"vidrec/internal/kvstore"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Users = 200
	c.Videos = 80
	c.Days = 3
	c.EventsPerDay = 2000
	return c
}

func mustGenerate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Videos = 1 },
		func(c *Config) { c.Types = 0 },
		func(c *Config) { c.Factors = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.EventsPerDay = 0 },
		func(c *Config) { c.ZipfExponent = 0 },
		func(c *Config) { c.TrendDriftPerDay = 1.5 },
		func(c *Config) { c.RegisteredShare = -0.1 },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := mustGenerate(t, cfg).AllActions()
	b := mustGenerate(t, cfg).AllActions()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a := mustGenerate(t, cfg).AllActions()
	cfg.Seed = 999
	b := mustGenerate(t, cfg).AllActions()
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

func TestStreamTimestampsWithinRangeAndOrdered(t *testing.T) {
	cfg := smallConfig()
	d := mustGenerate(t, cfg)
	// Funnel offsets extend an event by up to a full video length (~85 min)
	// past the day boundary.
	end := cfg.Start.Add(time.Duration(cfg.Days)*24*time.Hour + 2*time.Hour)
	var prevEvent time.Time
	for _, a := range d.AllActions() {
		if a.Timestamp.Before(cfg.Start) || a.Timestamp.After(end) {
			t.Fatalf("timestamp %v outside stream window", a.Timestamp)
		}
		// Impress actions mark event starts; they must not go backwards by
		// more than a funnel's internal spread.
		if a.Type == feedback.Impress {
			if a.Timestamp.Before(prevEvent.Add(-2 * time.Hour)) {
				t.Fatalf("event time regressed: %v after %v", a.Timestamp, prevEvent)
			}
			prevEvent = a.Timestamp
		}
	}
}

func TestFunnelStructure(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	counts := map[feedback.ActionType]int{}
	for _, a := range d.AllActions() {
		counts[a.Type]++
		if a.Type == feedback.PlayTime {
			if a.VideoLength <= 0 || a.ViewTime <= 0 || a.ViewTime > a.VideoLength {
				t.Fatalf("malformed PlayTime action: %+v", a)
			}
		}
	}
	// The funnel must narrow monotonically.
	if counts[feedback.Impress] <= counts[feedback.Click] {
		t.Errorf("impressions %d not above clicks %d", counts[feedback.Impress], counts[feedback.Click])
	}
	if counts[feedback.Click] < counts[feedback.Play] {
		t.Errorf("clicks %d below plays %d", counts[feedback.Click], counts[feedback.Play])
	}
	if counts[feedback.Play] < counts[feedback.PlayTime] {
		t.Errorf("plays %d below playtimes %d", counts[feedback.Play], counts[feedback.PlayTime])
	}
	if counts[feedback.PlayTime] == 0 || counts[feedback.Comment] == 0 {
		t.Error("funnel never reached deep engagement")
	}
	if counts[feedback.Comment] >= counts[feedback.PlayTime] {
		t.Errorf("comments %d not rarer than playtimes %d", counts[feedback.Comment], counts[feedback.PlayTime])
	}
}

func TestPreferenceProperties(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	u := d.Users()[0].ID
	for _, v := range d.Videos()[:20] {
		p := d.Preference(u, v.Meta.ID)
		if p <= 0 || p >= 1 {
			t.Fatalf("preference %v outside (0,1)", p)
		}
	}
	if p := d.Preference("ghost", d.Videos()[0].Meta.ID); p != 0.05 {
		t.Errorf("unknown user preference = %v, want 0.05", p)
	}
}

func TestPreferenceReflectsGroupTaste(t *testing.T) {
	// Average preference for a type must vary across demographic groups —
	// the signal demographic training exploits.
	cfg := smallConfig()
	cfg.GroupInfluence = 1.5
	d := mustGenerate(t, cfg)
	byGroup := map[string][]float64{}
	for _, u := range d.Users() {
		g := u.Profile.Group()
		var sum float64
		n := 0
		for _, v := range d.Videos() {
			if v.Meta.Type == "type01" {
				sum += d.Preference(u.ID, v.Meta.ID)
				n++
			}
		}
		if n > 0 {
			byGroup[g] = append(byGroup[g], sum/float64(n))
		}
	}
	means := map[string]float64{}
	for g, vals := range byGroup {
		if len(vals) < 3 {
			continue
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		means[g] = s / float64(len(vals))
	}
	var lo, hi = 2.0, -1.0
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo < 0.05 {
		t.Errorf("group taste spread %v too small; groups indistinguishable", hi-lo)
	}
}

func TestTrendDriftChangesHotSet(t *testing.T) {
	cfg := smallConfig()
	cfg.TrendDriftPerDay = 0.3
	d := mustGenerate(t, cfg)
	day0 := d.PopularOnDay(0, 10)
	day2 := d.PopularOnDay(2, 10)
	set0 := map[string]bool{}
	for _, v := range day0 {
		set0[v] = true
	}
	overlap := 0
	for _, v := range day2 {
		if set0[v] {
			overlap++
		}
	}
	if overlap == len(day2) {
		t.Error("hot set identical across days despite drift")
	}
}

func TestFillCatalogAndProfiles(t *testing.T) {
	d := mustGenerate(t, smallConfig())
	kv := kvstore.NewLocal(4)
	cat, _ := catalog.New("c", kv)
	if err := d.FillCatalog(context.Background(), cat); err != nil {
		t.Fatal(err)
	}
	v := d.Videos()[3].Meta
	got, ok, _ := cat.Get(context.Background(), v.ID)
	if !ok || got != v {
		t.Errorf("catalog record = %+v, %v; want %+v", got, ok, v)
	}
	profs, _ := demographic.NewProfiles("p", kv)
	if err := d.FillProfiles(context.Background(), profs); err != nil {
		t.Fatal(err)
	}
	regSeen, unregSeen := false, false
	for _, u := range d.Users() {
		_, ok, _ := profs.Get(context.Background(), u.ID)
		if u.Profile.Registered {
			regSeen = true
			if !ok {
				t.Fatalf("registered user %s missing profile", u.ID)
			}
		} else {
			unregSeen = true
			if ok {
				t.Fatalf("unregistered user %s has a stored profile", u.ID)
			}
		}
	}
	if !regSeen || !unregSeen {
		t.Error("dataset lacks a mix of registered and unregistered users")
	}
}

func TestSplitByDay(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 3
	d := mustGenerate(t, cfg)
	all := d.AllActions()
	train, test := SplitByDay(all, cfg.Start, 2)
	if len(train)+len(test) != len(all) {
		t.Fatalf("split loses actions: %d + %d != %d", len(train), len(test), len(all))
	}
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("degenerate split")
	}
	cut := cfg.Start.Add(48 * time.Hour)
	for _, a := range train {
		if !a.Timestamp.Before(cut) {
			t.Fatal("train action after the cut")
		}
	}
	for _, a := range test {
		if a.Timestamp.Before(cut) {
			t.Fatal("test action before the cut")
		}
	}
}

func TestFilterActive(t *testing.T) {
	mk := func(u, v string) feedback.Action {
		return feedback.Action{UserID: u, VideoID: v, Type: feedback.Click}
	}
	var actions []feedback.Action
	// u1: 4 actions on v1; u2: 1 action on v1; u3: 4 actions spread thin.
	for i := 0; i < 4; i++ {
		actions = append(actions, mk("u1", "v1"))
	}
	actions = append(actions, mk("u2", "v1"))
	actions = append(actions, mk("u3", "v1"), mk("u3", "v2"), mk("u3", "v3"), mk("u3", "v4"))

	got := FilterActive(actions, 4, 5)
	// u2 is dropped (1 action). v1 keeps 8 actions from u1+u3 ≥ 5; v2-v4
	// have 1 each and are dropped.
	if len(got) != 5 {
		t.Fatalf("FilterActive kept %d actions, want 5", len(got))
	}
	for _, a := range got {
		if a.UserID == "u2" || a.VideoID != "v1" {
			t.Errorf("unexpected surviving action %+v", a)
		}
	}
}

func TestComputeStats(t *testing.T) {
	mk := func(u, v string) feedback.Action {
		return feedback.Action{UserID: u, VideoID: v}
	}
	train := []feedback.Action{mk("u1", "v1"), mk("u1", "v2"), mk("u2", "v1")}
	test := []feedback.Action{mk("u1", "v2")}
	s := ComputeStats(train, test)
	if s.Users != 2 || s.Videos != 2 || s.Actions != 3 || s.TestActions != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Sparsity != 3.0/4.0 {
		t.Errorf("sparsity = %v, want 0.75", s.Sparsity)
	}
}

func TestGroupByAndLargestGroups(t *testing.T) {
	groupOf := func(u string) string {
		switch u {
		case "a", "b":
			return "g1"
		case "c":
			return "g2"
		default:
			return "global"
		}
	}
	actions := []feedback.Action{
		{UserID: "a"}, {UserID: "a"}, {UserID: "b"},
		{UserID: "c"},
		{UserID: "z"}, {UserID: "z"}, {UserID: "z"}, {UserID: "z"},
	}
	byGroup := GroupBy(actions, groupOf)
	if len(byGroup["g1"]) != 3 || len(byGroup["g2"]) != 1 || len(byGroup["global"]) != 4 {
		t.Errorf("GroupBy sizes = %d/%d/%d", len(byGroup["g1"]), len(byGroup["g2"]), len(byGroup["global"]))
	}
	top := LargestGroups(byGroup, 2)
	// global is excluded; g1 (3) then g2 (1).
	if len(top) != 2 || top[0] != "g1" || top[1] != "g2" {
		t.Errorf("LargestGroups = %v", top)
	}
}

func TestGroupSparsityDenserThanGlobal(t *testing.T) {
	// The premise of demographic training (§5.2.2, Table 4): per-group
	// matrices are denser than the global one.
	cfg := smallConfig()
	cfg.EventsPerDay = 4000
	d := mustGenerate(t, cfg)
	all := d.AllActions()
	filtered := FilterActive(all, 20, 20)
	if len(filtered) == 0 {
		t.Skip("filter removed everything at this scale")
	}
	global := ComputeStats(filtered, nil)
	byGroup := GroupBy(filtered, d.GroupOf)
	groups := LargestGroups(byGroup, 3)
	if len(groups) == 0 {
		t.Fatal("no demographic groups found")
	}
	denser := 0
	for _, g := range groups {
		gs := ComputeStats(byGroup[g], nil)
		if gs.Sparsity > global.Sparsity {
			denser++
		}
	}
	if denser == 0 {
		t.Errorf("no group denser than global (global sparsity %v)", global.Sparsity)
	}
}
