package dataset

import (
	"time"

	"vidrec/internal/feedback"
)

// This file implements the paper's experimental protocol (§6.1): collect one
// week of data, "reserve users who have more than 50 actions and videos with
// more than 50 related actions", train on the first six days and test on the
// last (Table 3), and report per-demographic-group statistics with sparsity
// = #Actions / (#Users × #Videos) (Table 4).

// SplitByDay partitions actions into the first trainDays (train) and the
// rest (test), measuring days from start.
func SplitByDay(actions []feedback.Action, start time.Time, trainDays int) (train, test []feedback.Action) {
	cut := start.Add(time.Duration(trainDays) * 24 * time.Hour)
	for _, a := range actions {
		if a.Timestamp.Before(cut) {
			train = append(train, a)
		} else {
			test = append(test, a)
		}
	}
	return train, test
}

// FilterActive applies the paper's cleaning rule: keep only users with at
// least minUser actions and videos with at least minVideo actions. Counting
// precedes filtering (one pass each, user rule first), matching the paper's
// single cleaning step rather than a fixpoint.
func FilterActive(actions []feedback.Action, minUser, minVideo int) []feedback.Action {
	userCount := make(map[string]int)
	for _, a := range actions {
		userCount[a.UserID]++
	}
	videoCount := make(map[string]int)
	for _, a := range actions {
		if userCount[a.UserID] >= minUser {
			videoCount[a.VideoID]++
		}
	}
	out := make([]feedback.Action, 0, len(actions))
	for _, a := range actions {
		if userCount[a.UserID] >= minUser && videoCount[a.VideoID] >= minVideo {
			out = append(out, a)
		}
	}
	return out
}

// Stats summarizes a train/test split the way Table 3 reports it.
type Stats struct {
	Users       int
	Videos      int
	Actions     int
	TestActions int
	// Sparsity is #Actions / (#Users × #Videos), as a fraction (Table 4
	// prints it in percent).
	Sparsity float64
}

// ComputeStats derives Table 3-style statistics from a split.
func ComputeStats(train, test []feedback.Action) Stats {
	users := make(map[string]bool)
	videos := make(map[string]bool)
	for _, a := range train {
		users[a.UserID] = true
		videos[a.VideoID] = true
	}
	s := Stats{
		Users:       len(users),
		Videos:      len(videos),
		Actions:     len(train),
		TestActions: len(test),
	}
	if s.Users > 0 && s.Videos > 0 {
		s.Sparsity = float64(s.Actions) / (float64(s.Users) * float64(s.Videos))
	}
	return s
}

// GroupBy partitions actions by the group each action's user belongs to,
// using the supplied resolver (typically demographic.Profiles.GroupOf or
// Dataset.GroupOf).
func GroupBy(actions []feedback.Action, groupOf func(userID string) string) map[string][]feedback.Action {
	out := make(map[string][]feedback.Action)
	for _, a := range actions {
		g := groupOf(a.UserID)
		out[g] = append(out[g], a)
	}
	return out
}

// GroupOf returns the demographic group of a generated user (ground truth,
// no store round trip).
func (d *Dataset) GroupOf(userID string) string {
	ui, ok := d.userIdx[userID]
	if !ok {
		return ""
	}
	return d.users[ui].Profile.Group()
}

// LargestGroups returns the k groups with the most actions, descending,
// excluding the global group — the paper selects the "three largest
// demographic groups" for Table 4 and Figures 3–5.
func LargestGroups(byGroup map[string][]feedback.Action, k int) []string {
	type gc struct {
		g string
		n int
	}
	var all []gc
	for g, acts := range byGroup {
		if g == "" || g == "global" {
			continue
		}
		all = append(all, gc{g, len(acts)})
	}
	for i := 0; i < len(all); i++ { // selection sort: k is tiny
		maxIdx := i
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[maxIdx].n || (all[j].n == all[maxIdx].n && all[j].g < all[maxIdx].g) {
				maxIdx = j
			}
		}
		all[i], all[maxIdx] = all[maxIdx], all[i]
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].g
	}
	return out
}
