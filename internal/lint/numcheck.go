package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// numcheck is the numeric-hygiene pass for the math-bearing packages. The
// model invariant the repo guarantees — "model state is always finite" — dies
// at exactly four kinds of sites, and this pass flags all of them:
//
//  1. float division whose denominator is neither a nonzero constant nor
//     guarded by a visible zero/size check — the classic 0/0 = NaN factory
//     (CTR with zero impressions, averages over empty slices);
//  2. domain-restricted math calls (Log, Log2, Log10, Log1p, Sqrt) whose
//     argument is not a provably in-domain constant and not guarded —
//     log10(0) = -Inf is how an unclamped view rate poisons an SGD step;
//  3. float == / != between two non-constant operands, which is almost
//     always a rounding-sensitive bug (comparisons against a constant
//     sentinel like 0 or 1 are allowed — those are exactness checks);
//  4. arithmetic performed inline in the argument of an EncodeFloat /
//     EncodeFloats call — model-state writes must store a named, clampable
//     value, not a fresh expression nobody range-checked.
//
// A guard is an enclosing if whose condition mentions one of the operand's
// identifiers, or an earlier same-block if that mentions one and always
// terminates (the early-return idiom). The check is syntactic on purpose:
// it forces the guard to be visibly near the use, which is also what a
// human reviewer needs.
//
// False positives are silenced with a justification comment on the line or
// the line above:
//
//	// numcheck: <why this is finite>
func init() {
	Register(&Pass{
		Name: "numcheck",
		Doc:  "no NaN/Inf sources: unguarded divisions, out-of-domain math calls, float equality, unchecked model-state writes",
		Scope: []string{
			"internal/core", "internal/feedback", "internal/simtable", "internal/vecmath",
			"fixtures/numcheck",
		},
		Run: runNumcheck,
	})
}

// domainFuncs maps math functions to the constant domain test their argument
// must pass when it is constant. Non-constant arguments need a guard.
var domainFuncs = map[string]func(v constant.Value) bool{
	"Log":   func(v constant.Value) bool { return constant.Sign(v) > 0 },
	"Log2":  func(v constant.Value) bool { return constant.Sign(v) > 0 },
	"Log10": func(v constant.Value) bool { return constant.Sign(v) > 0 },
	"Log1p": func(v constant.Value) bool { return constant.Compare(v, token.GTR, constant.MakeInt64(-1)) },
	"Sqrt":  func(v constant.Value) bool { return constant.Sign(v) >= 0 },
}

func runNumcheck(u *Unit) []Finding {
	c := &numChecker{u: u}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkStack(fd.Body, c.visit)
		}
	}
	return c.findings
}

type numChecker struct {
	u        *Unit
	findings []Finding
}

func (c *numChecker) hatch(pos token.Pos) bool {
	txt, ok := c.u.CommentAt(pos)
	return ok && strings.Contains(txt, "numcheck:")
}

func (c *numChecker) report(pos token.Pos, format string, args ...any) {
	if c.hatch(pos) {
		return
	}
	c.findings = append(c.findings, c.u.finding("numcheck", pos, format, args...))
}

func (c *numChecker) visit(n ast.Node, stack []ast.Node) bool {
	switch x := n.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.QUO:
			c.checkDivision(x, stack)
		case token.EQL, token.NEQ:
			c.checkFloatEquality(x)
		}
	case *ast.CallExpr:
		c.checkMathDomain(x, stack)
		c.checkEncodeWrite(x)
	}
	return true
}

// isFloat reports whether the expression has floating-point type.
func (c *numChecker) isFloat(e ast.Expr) bool {
	tv, ok := c.u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// constVal returns the compile-time constant value of e, or nil.
func (c *numChecker) constVal(e ast.Expr) constant.Value {
	if tv, ok := c.u.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func (c *numChecker) checkDivision(div *ast.BinaryExpr, stack []ast.Node) {
	if !c.isFloat(div) {
		return // integer division by zero panics loudly; not this pass's problem
	}
	den := unparen(div.Y)
	if v := c.constVal(den); v != nil {
		if constant.Sign(v) != 0 {
			return
		}
		c.report(div.Pos(), "division by constant zero")
		return
	}
	if c.guarded(den, stack) {
		return
	}
	c.report(div.Pos(), "float division by %s without a visible zero guard (0/0 is NaN; guard or annotate '// numcheck: <why>')", exprString(den))
}

func (c *numChecker) checkMathDomain(call *ast.CallExpr, stack []ast.Node) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	pkg, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := c.u.Info.Uses[pkg].(*types.PkgName)
	if !ok || pn.Imported().Path() != "math" {
		return
	}
	inDomain, restricted := domainFuncs[sel.Sel.Name]
	if !restricted {
		return
	}
	arg := unparen(call.Args[0])
	if v := c.constVal(arg); v != nil {
		if inDomain(v) {
			return
		}
		c.report(call.Pos(), "math.%s of out-of-domain constant %s yields NaN/Inf", sel.Sel.Name, v.String())
		return
	}
	if c.guarded(arg, stack) {
		return
	}
	c.report(call.Pos(), "math.%s(%s) without a visible domain guard (non-positive input yields NaN/Inf; guard or annotate '// numcheck: <why>')", sel.Sel.Name, exprString(arg))
}

func (c *numChecker) checkFloatEquality(cmp *ast.BinaryExpr) {
	if !c.isFloat(cmp.X) && !c.isFloat(cmp.Y) {
		return
	}
	if c.constVal(cmp.X) != nil || c.constVal(cmp.Y) != nil {
		return // comparison against a constant sentinel is an exactness check
	}
	c.report(cmp.Pos(), "float %s between computed values is rounding-sensitive; compare against a tolerance or annotate '// numcheck: <why>'", cmp.Op)
}

// checkEncodeWrite flags EncodeFloat/EncodeFloats calls whose argument embeds
// arithmetic: the value being persisted into model state was never a named
// quantity anyone could clamp or validate.
func (c *numChecker) checkEncodeWrite(call *ast.CallExpr) {
	var name string
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return
	}
	if name != "EncodeFloat" && name != "EncodeFloats" {
		return
	}
	for _, arg := range call.Args {
		var bad ast.Node
		ast.Inspect(arg, func(n ast.Node) bool {
			if bad != nil {
				return false
			}
			if b, ok := n.(*ast.BinaryExpr); ok {
				switch b.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					bad = b
					return false
				}
			}
			return true
		})
		if bad != nil {
			c.report(call.Pos(), "model-state write %s(...) computes its value inline; bind and clamp it first so the stored parameter is validated", name)
			return
		}
	}
}

// guarded reports whether expr is protected by a visible condition: an
// enclosing if whose condition mentions one of expr's identifiers, or an
// earlier statement in an enclosing block that is an if mentioning one whose
// body always terminates (early-return guard).
func (c *numChecker) guarded(expr ast.Expr, stack []ast.Node) bool {
	names := identNames(expr)
	if len(names) == 0 {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if condMentions(s.Cond, names) {
				return true
			}
		case *ast.BlockStmt:
			// Which child of this block are we under?
			var child ast.Node
			if i+1 < len(stack) {
				child = stack[i+1]
			}
			for _, st := range s.List {
				if st == child {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && ifs.Body != nil && terminates(ifs.Body.List) && condMentions(ifs.Cond, names) {
					return true
				}
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// Don't look for guards outside the enclosing function: a check
			// in the caller's frame is invisible at this site.
			return false
		}
	}
	return false
}

// identNames collects the identifier names appearing in e — variable roots,
// selector fields, and len/cap operands — the vocabulary a guard condition
// would use to talk about it.
func identNames(e ast.Expr) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name != "float64" && id.Name != "float32" {
			names[id.Name] = true
		}
		return true
	})
	return names
}

// condMentions reports whether the condition expression uses any of the
// names.
func condMentions(cond ast.Expr, names map[string]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
