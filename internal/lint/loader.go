package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader turns a Go module on disk into type-checked Units using only the
// standard library: go/parser for syntax, go/types for semantics, and the
// "source" importer for out-of-module (standard library) dependencies.
// In-module imports are resolved by type-checking module packages in
// dependency order and caching the results, so the loader never needs export
// data or an external build system.

// Unit is one type-checked package plus the lookup tables passes need.
type Unit struct {
	// Path is the full import path (module path + relative directory).
	Path string
	// RelPath is the directory relative to the module root ("" for the
	// root package). Pass scoping matches against RelPath.
	RelPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// comments maps filename -> line -> comment text for every line a
	// comment appears on (or spans). Justification-comment lookups use it.
	comments map[string]map[int]string
}

// Posn returns the position of pos in u's file set.
func (u *Unit) Posn(pos token.Pos) token.Position { return u.Fset.Position(pos) }

// CommentAt returns the comment text attached to the line of pos: a comment
// on the same line, or one on the line immediately above. ok is false when
// neither exists.
func (u *Unit) CommentAt(pos token.Pos) (text string, ok bool) {
	p := u.Posn(pos)
	lines := u.comments[p.Filename]
	if lines == nil {
		return "", false
	}
	if t, ok := lines[p.Line]; ok {
		return t, true
	}
	if t, ok := lines[p.Line-1]; ok {
		return t, true
	}
	return "", false
}

func (u *Unit) indexComments() {
	u.comments = make(map[string]map[int]string)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				start := u.Posn(c.Pos())
				end := u.Posn(c.End())
				m := u.comments[start.Filename]
				if m == nil {
					m = make(map[int]string)
					u.comments[start.Filename] = m
				}
				for line := start.Line; line <= end.Line; line++ {
					if m[line] != "" {
						m[line] += " "
					}
					m[line] += c.Text
				}
			}
		}
	}
}

// Loader loads and type-checks the packages of one module.
type Loader struct {
	Root       string // module root directory (holds go.mod)
	ModulePath string // module path declared in go.mod
	// IncludeTests adds _test.go files of each package (external test
	// packages are still skipped).
	IncludeTests bool

	fset    *token.FileSet
	std     types.Importer
	checked map[string]*Unit // by import path
}

// NewLoader returns a loader for the module rooted at dir. It reads go.mod to
// learn the module path.
func NewLoader(dir string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       dir,
		ModulePath: mod,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		checked:    make(map[string]*Unit),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			rest = strings.TrimSpace(rest)
			if p, err := strconv.Unquote(rest); err == nil {
				return p, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// LoadModule parses and type-checks every package under the module root,
// returning units in dependency order. Directories named testdata, vendor,
// or starting with "." or "_" are skipped, as are _test.go files unless
// IncludeTests is set.
func (l *Loader) LoadModule() ([]*Unit, error) {
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	parsed := make(map[string]*parsedPkg, len(dirs)) // by import path
	for _, dir := range dirs {
		p, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			continue // no buildable files
		}
		parsed[p.path] = p
	}
	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}
	units := make([]*Unit, 0, len(order))
	for _, path := range order {
		u, err := l.check(parsed[path])
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// LoadDir parses and type-checks the single package in dir (which may be
// outside the module, e.g. a test fixture). Imports must resolve through the
// standard library or already-loaded module packages.
func (l *Loader) LoadDir(dir, importPath string) (*Unit, error) {
	p, err := l.parseDirAs(dir, importPath, importPath)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	return l.check(p)
}

type parsedPkg struct {
	path    string // import path
	rel     string // module-relative dir
	dir     string
	files   []*ast.File
	imports []string // in-module imports only
}

func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk %s: %w", l.Root, err)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) parseDir(dir string) (*parsedPkg, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	path := l.ModulePath
	if rel != "" {
		path = l.ModulePath + "/" + rel
	}
	return l.parseDirAs(dir, path, rel)
}

func (l *Loader) parseDirAs(dir, path, rel string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	p := &parsedPkg{path: path, rel: rel, dir: dir}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		// External test packages (package foo_test) would need their own
		// unit; keep the loader simple and skip them.
		if strings.HasSuffix(file.Name.Name, "_test") {
			continue
		}
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if inModule(ipath, l.ModulePath) && !seen[ipath] {
				seen[ipath] = true
				p.imports = append(p.imports, ipath)
			}
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

func inModule(importPath, module string) bool {
	return importPath == module || strings.HasPrefix(importPath, module+"/")
}

// topoSort orders packages so every in-module import precedes its importer.
func topoSort(pkgs map[string]*parsedPkg) ([]string, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(pkgs))
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		color[path] = gray
		for _, dep := range pkgs[path].imports {
			p, ok := pkgs[dep]
			if !ok {
				continue // import of a dir with no buildable files; types will complain
			}
			switch color[p.path] {
			case gray:
				return fmt.Errorf("lint: import cycle through %s", p.path)
			case white:
				if err := visit(p.path); err != nil {
					return err
				}
			}
		}
		color[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if color[path] == white {
			if err := visit(path); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// Import implements types.Importer: in-module packages come from the cache of
// already-checked units, everything else falls through to the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if u, ok := l.checked[path]; ok {
		return u.Pkg, nil
	}
	if inModule(path, l.ModulePath) {
		return nil, fmt.Errorf("lint: module package %s not yet loaded (import cycle?)", path)
	}
	return l.std.Import(path)
}

func (l *Loader) check(p *parsedPkg) (*Unit, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(p.path, l.fset, p.files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s failed:\n\t%s", p.path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.path, err)
	}
	u := &Unit{
		Path:    p.path,
		RelPath: p.rel,
		Dir:     p.dir,
		Fset:    l.fset,
		Files:   p.files,
		Pkg:     pkg,
		Info:    info,
	}
	u.indexComments()
	l.checked[p.path] = u
	return u, nil
}
