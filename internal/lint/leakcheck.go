package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// leakcheck enforces resource-lifetime discipline on the serving and storage
// layers: every acquired resource must reach its release on all return paths
// — including error paths, which is where leaks hide in practice (a redial
// loop that drops connections on failed handshakes starves the file-
// descriptor table long before anyone reads a metric).
//
// Tracked acquisitions and their releases:
//
//   - net.Dial / net.DialTimeout / net.Listen, (net.Dialer).Dial(Context),
//     (net.Listener).Accept        -> Close
//   - os.Open / os.Create / os.OpenFile -> Close
//   - time.NewTicker / time.NewTimer    -> Stop
//   - context.WithCancel / WithTimeout / WithDeadline -> calling the
//     CancelFunc
//   - (sync.Pool).Get -> Put on the same pool (the serve-scratch discipline)
//
// A resource is safe when its release is deferred, when it escapes the
// function (returned, stored in a field/map/composite, passed to another
// function, sent on a channel, or captured by a closure — ownership moves
// with it), or when a flow walk shows the release before every return. The
// walk is optimistic where static analysis must be: a release anywhere in a
// loop body counts for the code after the loop, and a release in any
// select/switch clause counts for the whole statement (a timer Stopped in
// the ctx.Done arm while the <-t.C arm falls through is the correct idiom,
// not a leak). `v, err := acquire()` followed by a return under a test of
// that same err is exempt — the resource was never valid.
//
// Two shapes are findings outright: time.Tick (its ticker can never be
// stopped), and a send on an unbuffered locally-made channel inside a `go
// func` body with no surrounding select — if the receiver vanishes, the
// goroutine blocks forever.
//
// The hatch, on the line or the line above the acquisition or the reported
// site:
//
//	// leakcheck: <why the lifetime is safe>
func init() {
	Register(&Pass{
		Name: "leakcheck",
		Doc:  "acquired resources (conns, files, tickers, cancels, pool slots) must be released on every path",
		Scope: []string{
			"internal/kvstore", "internal/recommend", "internal/objcache",
			"internal/core", "internal/storm", "internal/bandit",
			"cmd",
			"fixtures/leakcheck",
		},
		Run: runLeakcheck,
	})
}

func runLeakcheck(u *Unit) []Finding {
	c := &leakChecker{u: u}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkScope(fd.Body)
			// Each func literal is its own lifetime scope: resources
			// acquired inside it must be released inside it (or escape
			// from it).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					c.checkScope(lit.Body)
				}
				return true
			})
			c.checkGoroutineSends(fd.Body)
			c.checkTick(fd.Body)
		}
	}
	return c.findings
}

type leakChecker struct {
	u        *Unit
	findings []Finding
}

func (c *leakChecker) hatched(pos token.Pos) bool {
	txt, ok := c.u.CommentAt(pos)
	return ok && strings.Contains(txt, "leakcheck:")
}

func (c *leakChecker) report(pos token.Pos, format string, args ...any) {
	if c.hatched(pos) {
		return
	}
	c.findings = append(c.findings, c.u.finding("leakcheck", pos, format, args...))
}

// resource is one tracked acquisition within a scope.
type resource struct {
	obj     types.Object // the bound identifier
	name    string
	kind    string       // "connection", "file", "ticker", ...
	release string       // method name; "" means calling the bound func (CancelFunc)
	relDesc string       // how to release, for messages
	errObj  types.Object // error bound at the same acquisition, if any
	pool    string       // for sync.Pool gets: exprString of the pool
	acqStmt ast.Stmt
	pos     token.Pos
}

// acquisitionKind classifies call; ok is false for non-acquiring calls.
// relIdx is the tuple position of the resource in the call's results.
func (c *leakChecker) acquisitionKind(call *ast.CallExpr) (kind, release, relDesc string, relIdx int, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", 0, false
	}
	if pkg, isPkg := unparen(sel.X).(*ast.Ident); isPkg {
		if pn, isName := c.u.Info.Uses[pkg].(*types.PkgName); isName {
			switch pn.Imported().Path() {
			case "os":
				switch sel.Sel.Name {
				case "Open", "Create", "OpenFile":
					return "file", "Close", "Close", 0, true
				}
			case "net":
				switch sel.Sel.Name {
				case "Dial", "DialTimeout":
					return "connection", "Close", "Close", 0, true
				case "Listen", "ListenTCP", "ListenUnix":
					return "listener", "Close", "Close", 0, true
				}
			case "time":
				switch sel.Sel.Name {
				case "NewTicker":
					return "ticker", "Stop", "Stop", 0, true
				case "NewTimer":
					return "timer", "Stop", "Stop", 0, true
				}
			case "context":
				switch sel.Sel.Name {
				case "WithCancel", "WithTimeout", "WithDeadline":
					return "cancel function", "", "calling it", 1, true
				}
			}
			return "", "", "", 0, false
		}
	}
	selInfo, isMethod := c.u.Info.Selections[sel]
	if !isMethod {
		return "", "", "", 0, false
	}
	recv := namedFrom(selInfo.Recv())
	if recv == nil || recv.Obj().Pkg() == nil {
		return "", "", "", 0, false
	}
	switch recv.Obj().Pkg().Path() + "." + recv.Obj().Name() {
	case "net.Dialer":
		if sel.Sel.Name == "Dial" || sel.Sel.Name == "DialContext" {
			return "connection", "Close", "Close", 0, true
		}
	case "net.Listener", "net.TCPListener", "net.UnixListener":
		if strings.HasPrefix(sel.Sel.Name, "Accept") {
			return "connection", "Close", "Close", 0, true
		}
	case "sync.Pool":
		if sel.Sel.Name == "Get" {
			return "pooled object", "Put", "Put back on " + exprString(sel.X), 0, true
		}
	}
	return "", "", "", 0, false
}

// checkScope analyzes one function body (a declaration's or a literal's):
// finds acquisitions bound directly in this scope (not in nested literals)
// and verifies each reaches its release.
func (c *leakChecker) checkScope(body *ast.BlockStmt) {
	var resources []*resource
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && len(stack) > 0 {
			return false // nested literal: its own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, release, relDesc, relIdx, ok := c.acquisitionKind(call)
		if !ok {
			return true
		}
		if r, discarded := c.bindResource(call, kind, release, relDesc, relIdx, stack); r != nil {
			resources = append(resources, r)
		} else if discarded {
			c.report(call.Pos(), "%s from %s is discarded, so it can never be released", kind, exprString(call.Fun))
		}
		return true
	})
	// One CFG serves every resource in the scope; each gets its own
	// liveness problem solved over it.
	var g *CFG
	for _, r := range resources {
		if c.hatched(r.pos) {
			continue
		}
		if c.hasDeferredRelease(body, r) || c.escapes(body, r) {
			continue
		}
		if g == nil {
			g = BuildCFG(body)
		}
		c.flowResource(g, r)
	}
}

// bindResource locates the identifier the acquired value is bound to.
// discarded is true when the result is dropped on the floor (expression
// statement or blank identifier); a nil resource with discarded false means
// ownership transferred at the call site (returned, passed along, stored)
// and the caller of that construct is responsible.
func (c *leakChecker) bindResource(call *ast.CallExpr, kind, release, relDesc string, relIdx int, stack []ast.Node) (*resource, bool) {
	// Walk up through parens/type asserts to the statement using the call.
	i := len(stack) - 1
	for i >= 0 {
		switch stack[i].(type) {
		case *ast.ParenExpr, *ast.TypeAssertExpr:
			i--
			continue
		}
		break
	}
	if i < 0 {
		return nil, false
	}
	switch st := stack[i].(type) {
	case *ast.ExprStmt:
		return nil, true
	case *ast.AssignStmt:
		// Only direct binding: x, err := call(...).
		if len(st.Rhs) != 1 {
			return nil, false
		}
		rhs := unparen(st.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = unparen(ta.X)
		}
		if rhs != call {
			return nil, false
		}
		if relIdx >= len(st.Lhs) {
			return nil, false
		}
		id, ok := unparen(st.Lhs[relIdx]).(*ast.Ident)
		if !ok {
			return nil, false // bound into a field or index: escaped
		}
		if id.Name == "_" {
			return nil, true
		}
		obj := c.u.Info.Defs[id]
		if obj == nil {
			obj = c.u.Info.Uses[id]
		}
		if obj == nil {
			return nil, false
		}
		r := &resource{
			obj: obj, name: id.Name, kind: kind,
			release: release, relDesc: relDesc,
			acqStmt: st, pos: call.Pos(),
		}
		if release == "Put" {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				r.pool = exprString(sel.X)
			}
		}
		// Remember the err bound alongside, for the err-guard exemption.
		for j, lhs := range st.Lhs {
			if j == relIdx {
				continue
			}
			if eid, ok := unparen(lhs).(*ast.Ident); ok && eid.Name != "_" {
				var eobj types.Object = c.u.Info.Defs[eid]
				if eobj == nil {
					eobj = c.u.Info.Uses[eid]
				}
				if eobj != nil && eobj.Type() != nil && types.Identical(eobj.Type(), errorType) {
					r.errObj = eobj
				}
			}
		}
		return r, false
	}
	return nil, false // return value, call argument, composite: ownership moved
}

// flowResource runs the per-resource liveness analysis on the flowcheck
// engine and reports returns reachable while the resource is live, plus
// fall-off-the-end leaks.
func (c *leakChecker) flowResource(g *CFG, r *resource) {
	p := &leakProblem{c: c, r: r}
	res := Solve[bool](g, p)
	WalkStates[bool](g, p, res, func(n ast.Node, before bool, _ *Block) {
		ret, ok := n.(*ast.ReturnStmt)
		if ok && before && !c.releasesIn(ret, r) {
			c.report(ret.Pos(), "%s %q acquired earlier can reach this return unreleased; %s on every path (or annotate '// leakcheck: <why>')",
				r.kind, r.name, r.relDesc)
		}
	})
	for _, e := range g.FallEdges() {
		if res.Out[e.From] {
			c.report(r.pos, "%s %q is never released; defer its %s or release it before the function returns (or annotate '// leakcheck: <why>')",
				r.kind, r.name, r.relDesc)
			break
		}
	}
}

// isRelease reports whether call releases r (f.Close(), t.Stop(), cancel(),
// pool.Put(x)).
func (c *leakChecker) isRelease(call *ast.CallExpr, r *resource) bool {
	fun := unparen(call.Fun)
	if r.release == "" { // CancelFunc: calling the bound identifier
		id, ok := fun.(*ast.Ident)
		return ok && c.u.Info.Uses[id] == r.obj
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != r.release {
		return false
	}
	if r.pool != "" { // pool.Put(resource)
		if exprString(sel.X) != r.pool {
			return false
		}
		for _, a := range call.Args {
			if id, ok := unparen(a).(*ast.Ident); ok && c.u.Info.Uses[id] == r.obj {
				return true
			}
		}
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	return ok && c.u.Info.Uses[id] == r.obj
}

// hasDeferredRelease finds `defer f.Close()` or `defer func() { ...
// f.Close() ... }()` anywhere in the scope.
func (c *leakChecker) hasDeferredRelease(body *ast.BlockStmt, r *resource) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if c.isRelease(d.Call, r) {
			found = true
			return false
		}
		if lit, ok := unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && c.isRelease(call, r) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// escapes reports whether r's identifier leaves the scope: returned, stored
// into a field/map/composite, passed as an argument, sent on a channel,
// address-taken, aliased, or captured by a closure. Ownership moves with the
// value; the new owner is responsible for the release.
func (c *leakChecker) escapes(body *ast.BlockStmt, r *resource) bool {
	escaped := false
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || c.u.Info.Uses[id] != r.obj {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		parent := stack[len(stack)-1]
		// Receiver position of a method call (f.Close(), f.Read(buf)) is
		// plain use, not escape.
		if sel, ok := parent.(*ast.SelectorExpr); ok && unparen(sel.X) == ast.Expr(id) {
			return true
		}
		switch p := parent.(type) {
		case *ast.CallExpr:
			for _, a := range p.Args {
				if unparen(a) == ast.Expr(id) && !c.isRelease(p, r) {
					escaped = true
				}
			}
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				escaped = true
			}
		case *ast.KeyValueExpr, *ast.CompositeLit:
			escaped = true
		case *ast.SendStmt:
			escaped = true
		case *ast.IndexExpr:
			escaped = true // map/slice key or element involving the resource
		case *ast.AssignStmt:
			if p == r.acqStmt {
				return true
			}
			for _, rhs := range p.Rhs {
				if unparen(rhs) == ast.Expr(id) {
					escaped = true // aliased; tracking stops here
				}
			}
		}
		if escaped {
			return false
		}
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ReturnStmt, *ast.CompositeLit, *ast.FuncLit:
				escaped = true
				return false
			}
		}
		return true
	})
	return escaped
}

// leakProblem is the per-resource liveness analysis on the flowcheck engine:
// state true means r has been acquired and not yet released along this path.
// The hand-rolled walker's optimistic rules map onto the engine's hooks:
// the err-guard exemption is an edge refinement (liveness dies on the taken
// branch of any leaf condition mentioning the acquisition's error), and the
// clause/loop optimism is a block refinement keyed on the CFG's role tags.
type leakProblem struct {
	c *leakChecker
	r *resource
}

func (p *leakProblem) Bottom() bool         { return false }
func (p *leakProblem) Entry() bool          { return false }
func (p *leakProblem) Join(a, b bool) bool  { return a || b }
func (p *leakProblem) Equal(a, b bool) bool { return a == b }

func (p *leakProblem) Transfer(s bool, n ast.Node, _ *Block) bool {
	if n == ast.Node(p.r.acqStmt) {
		return true
	}
	if rs, ok := n.(*ast.RangeStmt); ok {
		// The loop-head node stands for the whole range statement, but only
		// its operand executes here; the body's releases flow through the
		// body blocks and the after-loop refinement.
		if p.c.releasesIn(rs.X, p.r) {
			return false
		}
		return s
	}
	if p.c.releasesIn(n, p.r) {
		return false
	}
	return s
}

// RefineEdge kills liveness on the taken branch of a condition that tests
// the acquisition's own error (any polarity, matching the walker it
// replaced): the resource was never valid there, so returns inside the
// guarded branch are exempt.
func (p *leakProblem) RefineEdge(s bool, e *Edge) bool {
	if s && e.Kind == EdgeCond && e.Branch && p.r.errObj != nil && p.c.condMentionsErr(e.Cond, p.r) {
		return false
	}
	return s
}

// RefineBlock applies construct-level optimism: a release in any
// switch/select clause counts for the whole statement (a timer Stopped in
// the ctx.Done arm while the <-t.C arm falls through is the correct idiom,
// not a leak), and a release anywhere in a loop body counts for the code
// after the loop.
func (p *leakProblem) RefineBlock(s bool, blk *Block) bool {
	if !s || blk.Stmt == nil {
		return s
	}
	switch blk.Kind {
	case KindClause:
		if p.c.releasesIn(blk.Stmt, p.r) {
			return false
		}
	case KindAfter:
		switch st := blk.Stmt.(type) {
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if p.c.releasesIn(st, p.r) {
				return false
			}
		case *ast.ForStmt:
			if p.c.releasesIn(st.Body, p.r) {
				return false
			}
		case *ast.RangeStmt:
			if p.c.releasesIn(st.Body, p.r) {
				return false
			}
		}
	}
	return s
}

// releasesIn reports whether the subtree contains a release of r outside
// defers and nested function literals.
func (c *leakChecker) releasesIn(n ast.Node, r *resource) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch x := m.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if c.isRelease(x, r) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (c *leakChecker) condMentionsErr(cond ast.Expr, r *resource) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.u.Info.Uses[id] == r.errObj {
			found = true
		}
		return !found
	})
	return found
}

// checkGoroutineSends flags sends on unbuffered locally-created channels
// inside `go func` bodies when no select surrounds the send: the goroutine
// has no way out if the receiver is gone.
func (c *leakChecker) checkGoroutineSends(body *ast.BlockStmt) {
	// Channels made unbuffered in this function.
	unbuffered := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 || len(st.Lhs) != 1 {
			return true
		}
		call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
			return true
		}
		t := c.u.Info.Types[call].Type
		if t == nil {
			return true
		}
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return true
		}
		if len(call.Args) > 1 {
			v := c.u.Info.Types[call.Args[1]].Value
			if v == nil || v.String() != "0" {
				return true // buffered (or unknowable) capacity
			}
		}
		if id, ok := unparen(st.Lhs[0]).(*ast.Ident); ok {
			if obj := c.u.Info.Defs[id]; obj != nil {
				unbuffered[obj] = true
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		walkStack(lit.Body, func(m ast.Node, stack []ast.Node) bool {
			send, ok := m.(*ast.SendStmt)
			if !ok {
				return true
			}
			id, ok := unparen(send.Chan).(*ast.Ident)
			if !ok || !unbuffered[c.u.Info.Uses[id]] {
				return true
			}
			for _, anc := range stack {
				if _, inSelect := anc.(*ast.SelectStmt); inSelect {
					return true
				}
			}
			c.report(send.Arrow, "send on unbuffered channel %q in a goroutine with no select: if the receiver is gone the goroutine blocks forever (select against a done channel, or buffer the channel)", id.Name)
			return true
		})
		return true
	})
}

// checkTick flags time.Tick: the ticker it creates can never be stopped.
func (c *leakChecker) checkTick(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Tick" {
			return true
		}
		if pkg, ok := unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := c.u.Info.Uses[pkg].(*types.PkgName); ok && pn.Imported().Path() == "time" {
				c.report(call.Pos(), "time.Tick leaks its ticker; use time.NewTicker and defer Stop")
			}
		}
		return true
	})
}
