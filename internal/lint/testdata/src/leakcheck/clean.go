package leakcheck

import (
	"bytes"
	"context"
	"net"
	"os"
	"time"
)

// Slurp is the canonical shape: err-guarded acquisition, deferred release.
func Slurp(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()
	buf := make([]byte, 64)
	n, _ := f.Read(buf) // short read is fine for this fixture
	return n, nil
}

// WriteAll releases explicitly on both the error path and the success path.
func WriteAll(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, werr := f.Write(data); werr != nil {
		_ = f.Close()
		return werr
	}
	return f.Close()
}

type wrapped struct {
	conn net.Conn
}

// Wrap hands ownership to the caller through the struct; the wrapper's
// closer is responsible now.
func Wrap(addr string) (*wrapped, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &wrapped{conn: conn}, nil
}

// SleepCtx is the cancellable-timer idiom: Stop lives in one select arm and
// the fired-timer arm needs no Stop — leakcheck's optimistic clause handling
// must accept it.
func SleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Deadline defers its cancel, the standard shape.
func Deadline(ctx context.Context, addr string) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return (&net.Dialer{}).DialContext(dctx, "tcp", addr)
}

// Borrow pairs the pool Get with a deferred Put.
func Borrow(id string) string {
	b := scratch.Get().(*bytes.Buffer)
	defer scratch.Put(b)
	b.Reset()
	b.WriteString(id)
	return b.String()
}

// Fanout sends on a buffered channel: the goroutine can always finish even
// if the receiver gives up early.
func Fanout(events []string) string {
	ch := make(chan string, len(events))
	go func() {
		for _, e := range events {
			ch <- e
		}
		close(ch)
	}()
	return <-ch
}

// Guarded sends under a select with an escape arm, so the goroutine exits
// when the consumer is gone.
func Guarded(done chan struct{}, events []string) chan string {
	ch := make(chan string)
	go func() {
		defer close(ch)
		for _, e := range events {
			select {
			case ch <- e:
			case <-done:
				return
			}
		}
	}()
	return ch
}
