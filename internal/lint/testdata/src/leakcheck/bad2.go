package leakcheck

import (
	"bytes"
	"context"
	"net"
	"sync"
	"time"
)

// Fetch cancels on success but leaks the context (and its timer) when the
// dial fails.
func Fetch(ctx context.Context, addr string) error {
	dctx, cancel := context.WithTimeout(ctx, time.Second)
	conn, err := (&net.Dialer{}).DialContext(dctx, "tcp", addr)
	if err != nil {
		return err // cancel never called on this path
	}
	defer func() { _ = conn.Close() }()
	cancel()
	return nil
}

var scratch = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Render takes a buffer from the pool and never puts it back, so the pool
// degenerates to plain allocation.
func Render(id string) string {
	b := scratch.Get().(*bytes.Buffer)
	b.Reset()
	b.WriteString(id)
	return b.String() // b never returned to scratch
}

// Notify sends on an unbuffered channel from a goroutine with no way out:
// once the receiver stops listening, the goroutine blocks forever.
func Notify(events []string) string {
	ch := make(chan string)
	go func() {
		for _, e := range events {
			ch <- e // blocks forever if the receiver is gone
		}
		close(ch)
	}()
	return <-ch
}

// Discard drops the ticker on the floor; nothing can ever stop it.
func Discard(d time.Duration) {
	time.NewTicker(d) // result discarded
}
