package leakcheck

import (
	"net"
	"os"
	"time"
)

// ReadHeader closes on the success path and on the open failure, but the
// read-error return leaks the descriptor.
func ReadHeader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err // exempt: the open failed, there is nothing to close
	}
	buf := make([]byte, 16)
	if n, rerr := f.Read(buf); rerr != nil || n < 16 {
		return nil, rerr // leaks f on the read-error path
	}
	return buf, f.Close()
}

// Probe never closes the connection at all.
func Probe(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	return nil // conn is never closed
}

// Poll's ticker has no Stop anywhere.
func Poll(stop chan struct{}, work func()) {
	t := time.NewTicker(time.Second)
	for {
		select {
		case <-t.C:
			work()
		case <-stop:
			return // ticker t still running
		}
	}
}

// Spin uses time.Tick, whose ticker can never be stopped.
func Spin(n int) int {
	total := 0
	for range time.Tick(time.Millisecond) { // time.Tick leaks
		total++
		if total >= n {
			break
		}
	}
	return total
}
