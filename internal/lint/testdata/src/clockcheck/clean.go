package clockcheck

import (
	"math/rand"
	"time"
)

// sampler is the discipline the pass wants: an injected clock and a seeded
// RNG instance, both pure functions of constructor arguments.
type sampler struct {
	rng   *rand.Rand
	clock func() time.Time
}

func newSampler(seed int64, clock func() time.Time) *sampler {
	// Constructors are allowed: rand.New/rand.NewSource build the seeded
	// instance rather than touching the global RNG.
	return &sampler{rng: rand.New(rand.NewSource(seed)), clock: clock}
}

func (s *sampler) pick(n int) int { return s.rng.Intn(n) } // method on a seeded instance

func (s *sampler) now() time.Time { return s.clock() }

// defaultClock shows the escape hatch: a production default that every
// sim-covered caller overrides.
func defaultClock() func() time.Time {
	// clockcheck: production default; tests and the sim inject via newSampler.
	return time.Now
}

func stampWithInlineHatch() time.Time {
	return time.Now() // clockcheck: same-line hatch form
}
