package clockcheck

import "math/rand"

// pickOne draws from the process-global RNG — unseedable from a scenario, so
// two runs of the same seed diverge.
func pickOne(n int) int {
	return rand.Intn(n) // global RNG call
}

func jitterFactor() float64 {
	return rand.Float64() // global RNG call
}

func shuffleAll(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
