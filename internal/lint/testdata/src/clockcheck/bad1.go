// Package clockcheck seeds wall-clock reads the pass must flag: ambient time
// leaking into state that the simulation harness needs to replay bit-for-bit.
package clockcheck

import "time"

type cache struct {
	clock func() time.Time
}

func newCache() *cache {
	return &cache{clock: time.Now} // bare reference, no hatch comment
}

func age(start time.Time) time.Duration {
	return time.Since(start) // wall-clock read
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // wall-clock read
}
