package nilcheck

type counter struct{ n int }

type registry struct {
	byName map[string]*counter
}

// BumpBeforeCheck dereferences the comma-ok value before consulting ok.
func (r *registry) BumpBeforeCheck(name string) {
	c, ok := r.byName[name]
	c.n++ // used before the comma-ok check
	if !ok {
		return
	}
}

// ResetOnMissPath dereferences the value on the path where ok is false.
func (r *registry) ResetOnMissPath(name string) {
	c, ok := r.byName[name]
	if !ok {
		c.n = 0 // ok is false here: c is nil
	}
}

type sink interface{ put(int) }

// DrainWrongArm calls through a type-asserted interface in the !ok arm.
func DrainWrongArm(v any) {
	s, ok := v.(sink)
	if !ok {
		s.put(0) // assertion failed: s is nil
	}
}
