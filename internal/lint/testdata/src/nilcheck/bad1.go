// Package nilcheck seeds nil-misuse for the nilcheck pass: dereferences on
// the error path, uses before the comma-ok check, and nil-map writes.
package nilcheck

import (
	"errors"
	"os"
)

type record struct {
	id   int
	tags []string
}

// load follows the standard contract: nil record exactly when err != nil.
// The pass summarizes this from the `return nil, ...` shape below.
func load(path string) (*record, error) {
	if path == "" {
		return nil, errors.New("empty path")
	}
	return &record{id: 1}, nil
}

// UseOnErrPath dereferences the record inside the err != nil branch.
func UseOnErrPath(path string) int {
	r, err := load(path)
	if err != nil {
		return r.id // deref on the error path: r is nil here
	}
	return r.id
}

// CloseOnErrPath does the classic cleanup-of-nothing: os.Open's file is nil
// whenever it fails (external call, stdlib contract assumed).
func CloseOnErrPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		f.Close() // deref on the error path: f is nil here
		return err
	}
	return f.Close()
}

// SliceOnErrPath indexes an err-dependent slice on the error path.
func loadTags(path string) ([]string, error) {
	if path == "" {
		return nil, errors.New("empty path")
	}
	return []string{"a"}, nil
}

func SliceOnErrPath(path string) string {
	tags, err := loadTags(path)
	if err != nil {
		return tags[0] // index of a nil slice on the error path
	}
	return tags[0]
}

// CountTags writes through a map that is declared but never made.
func CountTags(tags []string) map[string]int {
	var counts map[string]int
	for _, t := range tags {
		counts[t]++ // write to nil map
	}
	return counts
}
