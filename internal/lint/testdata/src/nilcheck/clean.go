package nilcheck

import "io"

// Guarded uses the record only after the err check: the standard shape.
func Guarded(path string) int {
	r, err := load(path)
	if err != nil {
		return -1
	}
	return r.id
}

// EarlyReturn checks the comma-ok result before the first use.
func (r *registry) EarlyReturn(name string) int {
	c, ok := r.byName[name]
	if !ok {
		return 0
	}
	return c.n
}

// ShortCircuit relies on && ordering: c is dereferenced only when ok held.
func (r *registry) ShortCircuit(name string) int {
	if c, ok := r.byName[name]; ok && c.n > 0 {
		return c.n
	}
	return 0
}

// MadeMap is initialized before the writes.
func MadeMap(tags []string) map[string]int {
	counts := make(map[string]int, len(tags))
	for _, t := range tags {
		counts[t]++
	}
	return counts
}

// MadeOnEveryPath assigns the map on both branches before writing.
func MadeOnEveryPath(small bool) map[string]int {
	var m map[string]int
	if small {
		m = map[string]int{}
	} else {
		m = make(map[string]int, 64)
	}
	m["x"] = 1
	return m
}

// NilMapRead is legal: reading a nil map yields the zero value.
func NilMapRead(key string) int {
	var m map[string]int
	return m[key]
}

// PartialResult uses a non-nilable result on the error path — fine, Read
// returns a meaningful count alongside its error.
func PartialResult(r io.Reader, buf []byte) int {
	n, err := r.Read(buf)
	if err != nil {
		return n
	}
	return n
}

// ErrPathLen calls the nil-safe builtins on the error path.
func ErrPathLen(path string) int {
	tags, err := loadTags(path)
	if err != nil {
		return len(tags)
	}
	return len(tags)
}

// DirectNilCheck re-tests the value itself instead of err.
func DirectNilCheck(path string) int {
	r, _ := load(path)
	if r == nil {
		return -1
	}
	return r.id
}

// RefilledOnMiss rebinds the value on the !ok path, so the merged use is
// safe.
func (r *registry) RefilledOnMiss(name string) int {
	c, ok := r.byName[name]
	if !ok {
		c = &counter{}
	}
	return c.n
}

// NilGuardMake tests the map itself before the write.
func NilGuardMake(m map[string]int, k string) map[string]int {
	if m == nil {
		m = make(map[string]int)
	}
	m[k]++
	return m
}

// Hatched documents a contract the analysis cannot see.
func Hatched(path string) int {
	r, err := load(path)
	if err != nil {
		// nilcheck: test double returns a partial record with every error
		return r.id
	}
	return r.id
}
