// Package goroutinecheck is a lint fixture: seeded unjoinable goroutine
// launches. Expectations live in internal/lint/lint_test.go.
package goroutinecheck

func work() {}

// FireAndForget launches an untracked call.
func FireAndForget() {
	go work()
}

// LiteralLeak launches an untracked literal.
func LiteralLeak() {
	go func() {
		work()
	}()
}
