package goroutinecheck

import (
	"context"
	"sync"
)

type server struct {
	wg sync.WaitGroup
}

func (s *server) loop() {}

// Start ties the worker to the server's WaitGroup via the preceding Add.
func (s *server) Start() {
	s.wg.Add(1)
	go s.loop()
}

// WaitGroupTied joins through Done/Wait.
func WaitGroupTied() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// ChannelTied hands results back on a channel the caller owns.
func ChannelTied() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 1
		close(out)
	}()
	return out
}

// ContextTied stops when the caller cancels.
func ContextTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Detached uses the explicit escape hatch.
func Detached() {
	go work() // vidlint:detached demo of the explicit escape hatch
}
