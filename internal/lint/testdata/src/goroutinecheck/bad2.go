package goroutinecheck

import "time"

// TickerLeak ranges over a channel created inside the goroutine; nothing
// outside can join or stop it.
func TickerLeak() {
	go func() { // nothing outside can stop this ticker loop
		for range time.Tick(time.Second) {
			work()
		}
	}()
}

// LocalChannel only touches a channel it made itself, so no one can join it.
func LocalChannel() {
	go func() { // the channel never escapes the literal
		ch := make(chan int, 1)
		ch <- 1
	}()
}
