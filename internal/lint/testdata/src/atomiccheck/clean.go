package atomiccheck

import "sync/atomic"

type counter struct {
	n atomic.Int64
}

// Touch exercises every legal use: method calls, address-of, and loads
// through a pointer to the atomic.
func Touch(c *counter) int64 {
	c.n.Add(1)
	c.n.Store(2)
	p := &c.n
	return p.Load()
}

// ByPointer iterates without copying the elements.
func ByPointer(list []*counter) int64 {
	var total int64
	for _, c := range list {
		total += c.n.Load()
	}
	return total
}

// Indexed addresses array elements in place.
func Indexed(arr *[4]atomic.Int64) int64 {
	arr[0].Add(1)
	var total int64
	for i := range arr {
		total += arr[i].Load()
	}
	return total
}
