// Package atomiccheck is a lint fixture: seeded misuses of sync/atomic
// values. Expectations live in internal/lint/lint_test.go.
package atomiccheck

import "sync/atomic"

type stats struct {
	hits atomic.Uint64
}

// PlainWrite assigns through the atomic instead of calling Store.
func PlainWrite(s *stats) {
	s.hits = atomic.Uint64{}
}

// SnapshotCopy copies the whole atomic-bearing struct by value.
func SnapshotCopy(s *stats) uint64 {
	cp := *s
	return cp.hits.Load()
}
