package atomiccheck

import "sync/atomic"

type gauge struct {
	v atomic.Int64
}

// ByValue receives the atomic-bearing struct by value.
func ByValue(g gauge) int64 {
	return g.v.Load()
}

// RangeCopy binds each element by value, copying the atomics per iteration.
func RangeCopy(list []gauge) int64 {
	var total int64
	for _, g := range list {
		total += g.v.Load()
	}
	return total
}
