package blockcheck

import (
	"sync"
	"time"
)

// Serve is the request entry point; its callees inherit hotness through the
// call graph.
//
// hotpath: per-request scoring entry
func Serve(vs []float64) float64 {
	return slowRank(vs)
}

// slowRank is hot via Serve and stalls every request.
func slowRank(vs []float64) float64 {
	time.Sleep(time.Millisecond) // sleeping in a hot callee
	var t float64
	for _, v := range vs {
		t += v
	}
	return t
}

type gate struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

// Drain waits on the group while holding the lock: nothing that needs g.mu
// can finish, so the wait can deadlock outright.
func (g *gate) Drain() {
	g.mu.Lock()
	g.wg.Wait() // waiting on the group with g.mu held
	g.mu.Unlock()
}
