// Package blockcheck seeds waits in the wrong places for the blockcheck
// pass: blocking operations under a held mutex and on hotpath functions.
package blockcheck

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	conns map[string]net.Conn
}

// Refresh sleeps while holding the table lock: every reader stalls for the
// full second.
func (s *server) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Second) // sleeping with s.mu held
}

// Push writes to the network while holding the lock.
func (s *server) Push(key string, b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.conns[key]
	_, err := c.Write(b) // network write with s.mu held
	return err
}

// Handoff sends on a known-unbuffered channel while holding the lock: if the
// receiver is slow, the lock is held until it drains.
func (s *server) Handoff(v int) {
	ch := make(chan int)
	s.mu.Lock()
	ch <- v // unbuffered send with s.mu held
	s.mu.Unlock()
}

// pair nests one acquisition inside another.
type pair struct {
	a, b sync.Mutex
}

// Both takes a second lock while holding the first — a wait under contention
// with p.a pinned.
func (p *pair) Both() {
	p.a.Lock()
	p.b.Lock() // second lock acquired with p.a held
	p.b.Unlock()
	p.a.Unlock()
}
