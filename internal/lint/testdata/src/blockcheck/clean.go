package blockcheck

import (
	"net"
	"sync"
	"time"
)

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// UnlockFirst releases the lock before the blocking call: the wait stalls
// only this caller.
func (c *cache) UnlockFirst(conn net.Conn, b []byte) error {
	c.mu.Lock()
	c.m["k"] = 1
	c.mu.Unlock()
	_, err := conn.Write(b)
	return err
}

// SelectEscape sends on an unbuffered channel, but inside a select with a
// default arm — it never blocks.
func SelectEscape(v int) bool {
	ch := make(chan int)
	select {
	case ch <- v:
		return true
	default:
		return false
	}
}

type box struct{ mu sync.Mutex }

// BufferedSend has capacity one, so the send under the lock completes
// immediately.
func (b *box) BufferedSend(v int) {
	ch := make(chan int, 1)
	b.mu.Lock()
	ch <- v
	b.mu.Unlock()
}

// BranchRelease unlocks on every path before sleeping: the must-hold set is
// empty at the sleep.
func (c *cache) BranchRelease(fast bool) {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
	time.Sleep(time.Millisecond)
}

// HotClean is hot but never waits.
//
// hotpath: allocation-free accumulation
func HotClean(vs []float64) float64 {
	var t float64
	for _, v := range vs {
		t += v
	}
	return t
}

// SpawnedWaiter blocks inside a goroutine literal — a separate scope that
// holds nothing, so the send is that goroutine's own business.
func (c *cache) SpawnedWaiter(out chan<- int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
		out <- 1
	}()
	c.m["k"]++
}

// Hatched documents an intentional bounded pause under the lock.
func (c *cache) Hatched() {
	c.mu.Lock()
	// blockcheck: test-only throttle, held for a bounded millisecond
	time.Sleep(time.Millisecond)
	c.mu.Unlock()
}
