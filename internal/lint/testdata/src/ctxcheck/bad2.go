package ctxcheck

import (
	"context"
	"net"
	"time"
)

type server struct {
	ln net.Listener
}

// serve accepts connections with no shutdown story and no justification.
func (s *server) serve() error {
	for {
		conn, err := s.ln.Accept() // blocking accept, no ctx and no hatch
		if err != nil {
			return err
		}
		_ = conn.Close()
	}
}

// run threads a context, but the goroutine body it spawns does not take it —
// the literal is its own function and is judged on its own parameters.
func run(ctx context.Context, done chan<- struct{}) {
	go func() {
		time.Sleep(time.Millisecond) // literal has no ctx parameter
		done <- struct{}{}
	}()
	<-ctx.Done()
}
