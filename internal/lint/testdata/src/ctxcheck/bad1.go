// Package ctxcheck fixture: context-propagation violations.
package ctxcheck

import (
	"context"
	"net"
	"time"
)

// poll blocks with no way for a caller to cancel the wait.
func poll() {
	time.Sleep(50 * time.Millisecond) // blocking sleep, no ctx parameter
}

// dial uses the non-cancellable dial in a function without a context.
func dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // net.Dial, no ctx parameter
}

// freshRoot mints a root context deep inside library code, severing every
// deadline the caller set.
func freshRoot() context.Context {
	return context.Background() // root context outside cmd/
}
