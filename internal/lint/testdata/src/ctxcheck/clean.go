package ctxcheck

import (
	"context"
	"net"
	"time"
)

// wait takes a context, so the caller can bound the whole operation even
// though the sleep itself is plain.
func wait(ctx context.Context) {
	time.Sleep(time.Millisecond)
	<-ctx.Done()
}

// dialWithDeadline uses the cancellable dialer; DialContext is not a
// blocking primitive because the ctx bounds it.
func dialWithDeadline(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

type loop struct {
	ln net.Listener
}

// acceptLoop's shutdown is structural — the owner closes the listener — which
// the justification comment records.
func (l *loop) acceptLoop(handle func(net.Conn)) error {
	for {
		// ctxcheck: shutdown is l.ln.Close from the owner, not cancellation
		conn, err := l.ln.Accept()
		if err != nil {
			return err
		}
		handle(conn)
	}
}
