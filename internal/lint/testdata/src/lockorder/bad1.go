// Package lockorder fixture: lock-order inversions the pass must catch.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// TransferAB takes the locks in A-then-B order.
func TransferAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // edge A.mu -> B.mu: half of the cycle
	a.n--
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// TransferBA inverts the order through a call: it holds B.mu while calling
// lockedIncA, which acquires A.mu — the edge only exists across the call
// graph.
func TransferBA(a *A, b *B) {
	b.mu.Lock()
	lockedIncA(a) // edge B.mu -> A.mu, via the call graph
	b.n--
	b.mu.Unlock()
}

func lockedIncA(a *A) {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
