package lockorder

import "sync"

type C struct {
	mu sync.Mutex
	v  int
}

type D struct {
	mu sync.Mutex
	v  int
}

// The intended global order is declared below; Swap then violates it, so the
// pass reports the contradiction without needing a second code path to close
// the cycle.
//
// lockorder: lockorder.D.mu before lockorder.C.mu

// Swap acquires C.mu first, inverting the declared order.
func Swap(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock() // contradicts the declared order
	c.v, d.v = d.v, c.v
	d.mu.Unlock()
	c.mu.Unlock()
}

// A declaration naming a lock class that does not exist is stale and must be
// reported too.
//
// lockorder: lockorder.Missing.mu before lockorder.C.mu

func touch(c *C) {
	c.mu.Lock()
	c.v++
	c.mu.Unlock()
}
