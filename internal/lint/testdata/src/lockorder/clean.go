package lockorder

import "sync"

type CleanA struct {
	mu sync.Mutex
	n  int
}

type CleanB struct {
	mu sync.Mutex
	n  int
}

// lockorder: lockorder.CleanA.mu before lockorder.CleanB.mu

// MoveOne and MoveAll both follow the declared CleanA-then-CleanB order, so
// the acquisition graph stays acyclic. MoveOne uses deferred unlocks, which
// keep the lock held to function exit — the pass must not treat the defer as
// an early release.
func MoveOne(a *CleanA, b *CleanB) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	a.n--
	b.n++
}

func MoveAll(a *CleanA, b *CleanB) {
	a.mu.Lock()
	b.mu.Lock()
	for i := 0; i < 3; i++ {
		a.n--
		b.n++
	}
	b.mu.Unlock()
	a.mu.Unlock()
}
