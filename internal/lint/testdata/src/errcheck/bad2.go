package errcheck

// TupleBlank discards the error half of a tuple return with no reason.
func TupleBlank() int {

	v, _ := failTwo()
	return v
}

// GoDropped launches a call whose error vanishes with the goroutine.
func GoDropped() {
	go fail()
}
