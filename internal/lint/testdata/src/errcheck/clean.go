package errcheck

import (
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

// Handled propagates the error.
func Handled() error {
	if err := fail(); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

// Justified documents why the discarded error is ignorable.
func Justified() {
	_ = fail() // error is injected only under test fault configs; safe to drop
}

// NeverFailingWriters exercises the excluded contracts: hash.Hash and
// strings.Builder writes cannot fail, and the fmt print family is exempt.
func NeverFailingWriters() string {
	h := fnv.New64a()
	h.Write([]byte("key"))
	var b strings.Builder
	b.WriteString("value")
	fmt.Fprintln(os.Stderr, "status")
	fmt.Println("done")
	return b.String()
}
