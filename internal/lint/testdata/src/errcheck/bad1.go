// Package errcheck is a lint fixture: seeded discarded-error violations.
// Expectations live in internal/lint/lint_test.go. Take care editing the
// blank-assignment cases: a comment on (or directly above) those lines would
// count as a justification and suppress the finding being tested.
package errcheck

import "errors"

func fail() error { return errors.New("boom") }

func failTwo() (int, error) { return 1, errors.New("boom") }

// Dropped calls a failing function as a bare statement.
func Dropped() {
	fail() // a comment here is not an escape hatch for a dropped call
}

// DeferDropped drops the error of a deferred call.
func DeferDropped() {
	defer fail()
}

// BlankNoComment discards to blank with no stated reason.
func BlankNoComment() {

	_ = fail()
}
