package alloccheck

type engine struct {
	weights map[string]float64
}

type result struct {
	total float64
	ids   []string
}

// Rank is a hot root; score becomes hot through the method value f — the
// callgraph reference-edge regression rides along here.
// hotpath
func (e *engine) Rank(ids []string) *result {
	total := 0.0
	for id := range e.weights { // ranging over a map in a hot function
		total += e.weights[id]
	}
	f := e.score
	for _, id := range ids {
		total += f(id)
	}
	return &result{total: total} // &T{} escapes to the heap
}

// score is hot only through the method value in Rank.
func (e *engine) score(id string) float64 {
	buf := []float64{e.weights[id]} // slice literal in a hot callee
	return buf[0]
}

// hotpath
func Collect(ids []string, n int) int {
	seen := make(map[string]bool) // make(map) per call
	for _, id := range ids {
		seen[id] = true
	}
	cb := func() int { return n } // closure capturing n
	return len(seen) + cb()
}
