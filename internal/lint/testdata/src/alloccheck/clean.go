package alloccheck

import "fmt"

// Sum allocates nothing: plain loops over caller-owned slices are the hot
// path's bread and butter.
// hotpath
func Sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Reuse demonstrates the budgeted idioms: constant-capacity make, append to
// a buf[:0] reuse slice, and append through a caller-sized parameter.
// hotpath
func Reuse(dst []string, ids []string) []string {
	tmp := make([]string, 0, 8) // constant capacity: bounded, budgeted
	tmp = append(tmp, ids...)
	for _, id := range tmp {
		dst = append(dst, id)
	}
	scratch := dst[:0]
	scratch = append(scratch, tmp...)
	return scratch
}

// Snapshot's copy is the API contract; the hatch names the accepted
// allocation.
// hotpath
func Snapshot(src []float64) []float64 {
	out := make([]float64, len(src)) // alloccheck: snapshot copy is the API contract
	copy(out, src)
	return out
}

// Check allocates only on failure returns, which are exempt: the request is
// already lost when the error is built.
// hotpath
func Check(id string, err error) error {
	if err != nil {
		return fmt.Errorf("check %s: %w", id, err)
	}
	return nil
}

// Cold is not annotated and not reachable from a hot root, so its
// allocations are nobody's business.
func Cold(ids []string) []string {
	out := make([]string, 0, len(ids))
	m := map[string]bool{}
	for _, id := range ids {
		if !m[id] {
			m[id] = true
			out = append(out, "cold:"+id)
		}
	}
	return out
}
