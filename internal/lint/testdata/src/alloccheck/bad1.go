package alloccheck

import "fmt"

// Serve is this fixture's annotated hot root.
// hotpath
func Serve(ids []string, n int) []string {
	out := make([]string, 0, n) // make with non-constant capacity
	for _, id := range ids {
		out = append(out, tag(id))
	}
	return out
}

// tag is hot transitively, via Serve.
func tag(id string) string {
	return "v:" + id // string concat in a hot callee
}

// hotpath
func Describe(id string, score float64) string {
	return fmt.Sprintf("%s=%.2f", id, score) // fmt formatting in a hot function
}

// hotpath
func Grow(ids []string) []string {
	var out []string
	for _, id := range ids {
		out = append(out, id) // append to a never-pre-sized slice
	}
	return out
}

// hotpath
func Box(n int) {
	sink(n) // boxing an int into an interface argument
}

func sink(v any) { _ = v }
