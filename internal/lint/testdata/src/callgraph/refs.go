// Package callgraph is the regression fixture for call-graph construction:
// every function below must get an edge to the function it calls or merely
// references, including the method-value and stored-function shapes that the
// original builder missed.
package callgraph

type server struct {
	handler func(string) int
}

func (s *server) score(id string) int { return len(id) }

// direct is the baseline shape: a plain method call.
func direct(s *server) int { return s.score("a") }

// methodValue binds the method to a variable first — the call through h is
// invisible to syntactic resolution, so the edge must come from the
// reference to s.score.
func methodValue(s *server) int {
	h := s.score
	return h("b")
}

// storedField stashes a function in a struct field; whoever invokes the
// field runs helper, so storedField -> helper must be an edge.
func storedField() *server {
	return &server{handler: helper}
}

// asArg passes helper as a value; apply is a direct edge, helper a
// reference edge.
func asArg() int {
	return apply(helper)
}

func apply(f func(string) int) int { return f("c") }

func helper(id string) int { return len(id) + 1 }
