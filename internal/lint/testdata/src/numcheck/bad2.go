package numcheck

// EncodeFloats is a stand-in for the model-state write path; the pass keys on
// the function name, exactly as it does for kvcodec's real encoder.
func EncodeFloats(vals ...float64) []byte {
	return make([]byte, 8*len(vals))
}

// update writes a freshly computed expression straight into model state —
// nothing ever range-checked the value being persisted.
func update(w, g, lr float64) []byte {
	return EncodeFloats(w - lr*g) // inline arithmetic into a state write
}

// wrongGuard checks one variable but divides by another; the guard must
// mention the denominator to count.
func wrongGuard(sum, n, scale float64) float64 {
	if scale > 0 {
		return sum / n // guard mentions scale, not n
	}
	return 0
}
