// Package numcheck fixture: NaN/Inf sources the pass must catch.
package numcheck

import "math"

// CTR divides without checking the denominator: zero impressions make NaN.
func CTR(clicks, impressions float64) float64 {
	return clicks / impressions // unguarded division
}

// Entropy feeds an unguarded value to a domain-restricted function.
func Entropy(p float64) float64 {
	return -p * math.Log2(p) // unguarded log
}

// Converged compares two computed floats exactly.
func Converged(prev, next float64) bool {
	return prev == next // rounding-sensitive equality
}

// BadRoot passes a constant that is outside the domain.
func BadRoot() float64 {
	return math.Sqrt(-1) // constant out of domain
}
