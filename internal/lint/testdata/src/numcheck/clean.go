package numcheck

import "math"

const epsilon = 1e-9

// SafeCTR guards the denominator with an enclosing if.
func SafeCTR(clicks, impressions float64) float64 {
	if impressions > 0 {
		return clicks / impressions
	}
	return 0
}

// Mean uses the early-return guard idiom: the if terminates, so control only
// reaches the division when the slice is non-empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Weight guards the log argument before taking it, the Eq. 6 idiom.
func Weight(a, b, vrate float64) float64 {
	if vrate <= 0 {
		return 0
	}
	return a + b*math.Log10(vrate)
}

// Halve divides by a nonzero constant.
func Halve(x float64) float64 { return x / 2 }

// IsUnset compares against a constant sentinel, which is an exactness check.
func IsUnset(x float64) bool { return x == 0 }

// Near compares with a tolerance instead of ==.
func Near(a, b float64) bool { return math.Abs(a-b) < epsilon }

// EncodeFloat is the single-value stand-in for the state-write path.
func EncodeFloat(v float64) []byte { return make([]byte, 8) }

// checkedWrite binds and validates the value before persisting it, so the
// stored parameter is a named, clamped quantity.
func checkedWrite(w, g, lr float64) []byte {
	next := w - lr*g
	if math.IsNaN(next) || math.IsInf(next, 0) {
		next = 0
	}
	return EncodeFloat(next)
}

// scaled is hatched: the justification comment vouches for the denominator.
func scaled(x float64, n int) float64 {
	// numcheck: n is a slice length from the caller, always >= 1 here
	return x / float64(n)
}
