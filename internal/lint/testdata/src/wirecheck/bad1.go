// Package wirecheck seeds wire-unsafe message types for the wirecheck pass:
// structs with unexported, chan, func, sync, and error fields crossing the
// gob boundary and the storm transport.
package wirecheck

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// Values is the fixture stand-in for the storm tuple payload; its composite
// literals count as wire roots.
type Values []any

// payload is an interface nothing registers an implementation for.
type payload interface{ wireTag() }

// message crosses the gob boundary in Send below; nearly every field is a
// wire hazard.
type message struct {
	Key     string
	seq     int        // unexported: silently dropped
	Notify  chan int   // a chan cannot cross the wire
	Mu      sync.Mutex // process-local lock in a message
	Err     error      // error values do not gob-encode
	Cb      func()     // func: unencodable
	Payload payload    // no registered implementation
}

func Send(buf *bytes.Buffer, m message) error {
	enc := gob.NewEncoder(buf)
	return enc.Encode(m)
}

// update crosses the storm transport below with an unexported vector and a
// chan field — the tuple arrives missing its payload and Encode rejects the
// chan outright.
type update struct {
	Key  string
	vec  []float32     // unexported: dropped from the tuple
	Done chan struct{} // chan riding the transport
}

// Emit puts the whole update struct on the wire as a tuple element.
func Emit(u update) Values {
	return Values{u.Key, u}
}
