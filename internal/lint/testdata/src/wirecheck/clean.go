package wirecheck

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
)

// shape's implementation is registered in init below, so carrying it in a
// message is fine: the decoder knows how to instantiate a circle.
type shape interface{ Area() float64 }

type circle struct{ R float64 }

func (c circle) Area() float64 { return c.R * c.R * 3 }

func init() {
	gob.Register(circle{})
}

// envelope is fully wire-safe: exported fields, a registered interface, a
// self-marshaling timestamp, and plain container types.
type envelope struct {
	From  string
	Body  shape
	Sent  stamp
	Sizes map[string][]int64
}

// stamp owns its wire format via MarshalBinary, so its unexported fields
// never reach gob's reflection.
type stamp struct{ sec, nsec int64 }

func (s stamp) MarshalBinary() ([]byte, error) {
	b := make([]byte, 16)
	binary.BigEndian.PutUint64(b, uint64(s.sec))
	binary.BigEndian.PutUint64(b[8:], uint64(s.nsec))
	return b, nil
}

func (s *stamp) UnmarshalBinary(b []byte) error {
	s.sec = int64(binary.BigEndian.Uint64(b))
	s.nsec = int64(binary.BigEndian.Uint64(b[8:]))
	return nil
}

func SendClean(buf *bytes.Buffer, e envelope) error {
	return gob.NewEncoder(buf).Encode(e)
}

// framed carries a decode-side scratch buffer the wire never sees; the hatch
// records the contract.
type framed struct {
	Seq uint64
	// wirecheck: scratch is rebuilt locally after decode, never sent
	scratch []byte
}

func Reframe(buf *bytes.Buffer) (framed, error) {
	var f framed
	err := gob.NewDecoder(buf).Decode(&f)
	return f, err
}

// PutClean places only concrete, exported-field values on the transport.
func PutClean(key string, c circle) Values {
	return Values{key, c}
}
