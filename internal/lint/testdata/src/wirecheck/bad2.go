package wirecheck

import (
	"bytes"
	"encoding/gob"
)

// header is itself clean, but its Trace field drags in a struct with an
// unexported field two levels down — the closure has to walk through
// header -> trace -> []hop to find it.
type header struct {
	ID    string
	Trace trace
}

type trace struct {
	Hops []hop
}

type hop struct {
	Site   string
	spanID uint64 // unexported, two structs deep
}

func Receive(buf *bytes.Buffer) (header, error) {
	var h header
	dec := gob.NewDecoder(buf)
	err := dec.Decode(&h)
	return h, err
}

// marker has no gob.Register'd implementation anywhere in the package.
type marker interface{ mark() }

// Broadcast puts an interface-typed value on the transport with no
// registration to back it: the receiving side cannot instantiate it.
func Broadcast(v marker) Values {
	return Values{v} // unregistered interface element
}
