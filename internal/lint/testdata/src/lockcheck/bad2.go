package lockcheck

import "sync"

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// HalfLocked reads under the read lock, then again after releasing it.
func (t *table) HalfLocked(k string) int {
	t.mu.RLock()
	v := t.m[k]
	t.mu.RUnlock()
	if v == 0 {
		return t.m["default"]
	}
	return v
}

// orphan annotates a guard that does not exist as a sibling mutex field.
type orphan struct {
	n int // guarded by missing
}
