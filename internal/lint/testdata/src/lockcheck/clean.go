package lockcheck

import "sync"

type gauge struct {
	mu  sync.Mutex
	val int // guarded by mu
}

// newGauge may touch the field bare: constructors run before the value is
// shared, and lockcheck exempts them by name.
func newGauge() *gauge {
	g := &gauge{}
	g.val = 1
	return g
}

// Set holds the lock for the whole access via defer.
func (g *gauge) Set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val = v
}

// EarlyReturn uses the unlock-before-return pattern on both paths.
func (g *gauge) EarlyReturn(v int) int {
	g.mu.Lock()
	if v < 0 {
		g.mu.Unlock()
		return -1
	}
	out := g.val
	g.mu.Unlock()
	return out
}

// bump assumes the caller holds mu.
func (g *gauge) bump() { g.val++ }

// Bump exercises the caller-holds contract from the locked side.
func (g *gauge) Bump() {
	g.mu.Lock()
	g.bump()
	g.mu.Unlock()
}
