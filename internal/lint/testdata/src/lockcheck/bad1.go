// Package lockcheck is a lint fixture: seeded violations of the
// "// guarded by <mu>" annotation contract. Expectations live in
// internal/lint/lint_test.go.
package lockcheck

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// BareInc touches the guarded field with no lock at all.
func (c *counter) BareInc() {
	c.n++
}

// LeakAfterUnlock keeps using the field after releasing the mutex.
func (c *counter) LeakAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2
}
