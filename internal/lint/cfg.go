package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfg.go builds the intraprocedural control-flow graph the flowcheck engine
// (dataflow.go) solves over. One CFG is built per function body (or function
// literal body); the builder decomposes Go's structured control flow into
// basic blocks connected by edges:
//
//   - if/else, for, range, switch, type switch, and select each get dedicated
//     role-tagged blocks (if.then, loop.body, select.clause, ...) so passes
//     can recognize the construct a block belongs to without re-walking the
//     AST;
//   - short-circuit conditions are decomposed: `a && b` and `a || b` become
//     separate blocks per leaf operand, and every branch edge records the
//     *leaf* condition it tests plus the truth value taken, which is what
//     branch-sensitive passes (nilcheck's err != nil refinement) key on;
//   - return and panic statements edge to the synthetic exit block (with
//     EdgeReturn / EdgePanic kinds); falling off the end of the body is an
//     EdgeFall edge, so "can control reach the end of the function in state
//     X" is a reachability question on the exit block's in-edges;
//   - break/continue (labeled or not), goto, and fallthrough resolve to real
//     edges; defers are collected in CFG.Defers (they run at exit, outside
//     the forward flow).
//
// The graph is deliberately syntactic: one node list per block in source
// order, no SSA, no expression temporaries. That is the right granularity
// for the lint passes, which reason about statements and go/types objects
// rather than values.

// BlockKind tags the structural role of a block. Passes use roles to apply
// construct-level refinements (leakcheck's optimistic "a release in any
// select arm counts for the whole statement" rule keys on KindClause and
// KindAfter blocks).
type BlockKind string

const (
	KindEntry    BlockKind = "entry"
	KindExit     BlockKind = "exit"
	KindBody     BlockKind = "body"      // plain straight-line code
	KindCond     BlockKind = "cond"      // one leaf of a decomposed condition
	KindThen     BlockKind = "if.then"   // Stmt = *ast.IfStmt
	KindElse     BlockKind = "if.else"   // Stmt = *ast.IfStmt
	KindLoopBody BlockKind = "loop.body" // Stmt = *ast.ForStmt or *ast.RangeStmt
	KindLoopPost BlockKind = "for.post"  // Stmt = *ast.ForStmt
	KindClause   BlockKind = "clause"    // Stmt = switch/typeswitch/select stmt
	KindAfter    BlockKind = "after"     // join block after a construct; Stmt = the construct
)

// EdgeKind distinguishes how control transfers along an edge.
type EdgeKind uint8

const (
	EdgeNormal EdgeKind = iota
	EdgeCond            // branch on Edge.Cond being Edge.Branch
	EdgeReturn          // a return statement, into exit
	EdgePanic           // a panic call, into exit
	EdgeFall            // implicit return: control fell off the end of the body
)

// Edge is one control transfer between blocks.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	// Cond is the leaf condition tested on an EdgeCond edge (after
	// short-circuit decomposition it is never an && / || expression), and
	// Branch is the truth value of Cond along this edge.
	Cond   ast.Expr
	Branch bool
}

// Block is a basic block: nodes execute in order, then control leaves along
// exactly one of Succs.
type Block struct {
	Index int
	Kind  BlockKind
	// Stmt is the construct this block belongs to, for role-tagged blocks
	// (the IfStmt of a then/else block, the loop of a body/after block, the
	// switch/select of a clause block). Nil for plain body blocks.
	Stmt ast.Stmt
	// Nodes holds statements and decomposed condition leaves in source
	// order. Compound statements (if/for/switch/...) never appear; their
	// pieces are distributed across blocks. Defer statements appear in
	// their block (for position) and in CFG.Defers.
	Nodes []ast.Node

	Succs []*Edge
	Preds []*Edge

	// Reachable is true when the block can be reached from entry. The
	// builder leaves dead blocks (code after return/branch) in the graph
	// with Reachable=false; solvers and report walks skip them.
	Reachable bool
}

func (b *Block) String() string {
	s := fmt.Sprintf("b%d(%s", b.Index, b.Kind)
	if len(b.Nodes) > 0 {
		s += fmt.Sprintf(",%d nodes", len(b.Nodes))
	}
	return s + ")"
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Body   *ast.BlockStmt
	Blocks []*Block // Blocks[0] is Entry; Exit is the last-created synthetic block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the body (outside nested
	// function literals), in source order. Deferred calls run between the
	// last forward node and exit on every path.
	Defers []*ast.DeferStmt
}

// FallEdges returns exit's incoming implicit-return edges from reachable
// code: the points where control can actually fall off the end of the
// function. (Dead tails — code after an infinite loop or a select whose arms
// all return — also end in a structural fall edge, but control never gets
// there.)
func (g *CFG) FallEdges() []*Edge {
	var out []*Edge
	for _, e := range g.Exit.Preds {
		if e.Kind == EdgeFall && e.From.Reachable {
			out = append(out, e)
		}
	}
	return out
}

// BuildCFG constructs the CFG of one function or literal body. Nested
// function literals are opaque: their statements belong to their own CFG,
// built by whoever analyzes the literal.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{Body: body}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock(KindEntry, nil)
	g.Exit = &Block{Kind: KindExit} // indexed last, after building
	cur := b.stmtList(g.Entry, body.List)
	if cur != nil {
		b.edge(cur, g.Exit, EdgeFall)
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	b.markReachable()
	return g
}

type cfgBuilder struct {
	g *CFG
	// loops tracks enclosing break/continue targets, innermost last.
	loops []loopFrame
	// labels maps label names to their target blocks (created on demand for
	// forward gotos).
	labels map[string]*Block
	// labeledLoop communicates a pending label to the next loop/switch
	// statement so labeled break/continue resolve.
	pendingLabel string
}

type loopFrame struct {
	label     string
	breakTo   *Block
	contTo    *Block // nil for switch/select frames (break only)
	isSwitch  bool
	fallsInto *Block // fallthrough target while building switch clauses
}

func (b *cfgBuilder) newBlock(kind BlockKind, stmt ast.Stmt) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind, Stmt: stmt}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind) *Edge {
	e := &Edge{From: from, To: to, Kind: kind}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
	return e
}

func (b *cfgBuilder) condEdge(from, to *Block, cond ast.Expr, branch bool) {
	e := b.edge(from, to, EdgeCond)
	e.Cond = cond
	e.Branch = branch
}

// stmtList builds list starting in cur; it returns the block holding the
// fall-through end of the list, or nil when every path transferred away.
func (b *cfgBuilder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminator still gets blocks so its nodes
			// exist in the graph (unreachable, skipped by solvers).
			cur = b.newBlock(KindBody, nil)
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, st.List)

	case *ast.LabeledStmt:
		// The label targets the statement it precedes: loops register it as
		// their frame label; any other statement gets a join block gotos can
		// land on.
		target := b.labelBlock(st.Label.Name)
		b.edge(cur, target, EdgeNormal)
		b.pendingLabel = st.Label.Name
		return b.stmt(target, st.Stmt)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, st)
		b.edge(cur, b.g.Exit, EdgeReturn)
		return nil

	case *ast.BranchStmt:
		return b.branch(cur, st)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, st)
		cur.Nodes = append(cur.Nodes, st)
		return cur

	case *ast.IfStmt:
		return b.ifStmt(cur, st)

	case *ast.ForStmt:
		return b.forStmt(cur, st)

	case *ast.RangeStmt:
		return b.rangeStmt(cur, st)

	case *ast.SwitchStmt:
		return b.switchStmt(cur, st, st.Init, st.Tag, st.Body)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, st, st.Init, nil, st.Body)

	case *ast.SelectStmt:
		return b.selectStmt(cur, st)

	default:
		cur.Nodes = append(cur.Nodes, s)
		if isPanicStmt(s) {
			b.edge(cur, b.g.Exit, EdgePanic)
			return nil
		}
		return cur
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = make(map[string]*Block)
	}
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock(KindBody, nil)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) branch(cur *Block, st *ast.BranchStmt) *Block {
	cur.Nodes = append(cur.Nodes, st)
	switch st.Tok {
	case token.GOTO:
		b.edge(cur, b.labelBlock(st.Label.Name), EdgeNormal)
		return nil
	case token.FALLTHROUGH:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].isSwitch && b.loops[i].fallsInto != nil {
				b.edge(cur, b.loops[i].fallsInto, EdgeNormal)
				return nil
			}
		}
		return nil
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if st.Label != nil && f.label != st.Label.Name {
				continue
			}
			b.edge(cur, f.breakTo, EdgeNormal)
			return nil
		}
		return nil
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.contTo == nil {
				continue // switch/select frames: continue passes through
			}
			if st.Label != nil && f.label != st.Label.Name {
				continue
			}
			b.edge(cur, f.contTo, EdgeNormal)
			return nil
		}
		return nil
	}
	return cur
}

// cond decomposes a boolean expression into leaf-condition blocks, wiring
// the true path to t and the false path to f. cur is the block the first
// leaf evaluates in.
func (b *cfgBuilder) cond(cur *Block, e ast.Expr, t, f *Block) {
	switch x := unparen(e).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND: // a && b: b evaluates only when a is true
			mid := b.newBlock(KindCond, nil)
			b.cond(cur, x.X, mid, f)
			b.cond(mid, x.Y, t, f)
			return
		case token.LOR: // a || b: b evaluates only when a is false
			mid := b.newBlock(KindCond, nil)
			b.cond(cur, x.X, t, mid)
			b.cond(mid, x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(cur, x.X, f, t)
			return
		}
	}
	leaf := unparen(e)
	cur.Nodes = append(cur.Nodes, leaf)
	b.condEdge(cur, t, leaf, true)
	b.condEdge(cur, f, leaf, false)
}

func (b *cfgBuilder) ifStmt(cur *Block, st *ast.IfStmt) *Block {
	b.takeLabel() // labels on if are goto-only targets; already wired
	if st.Init != nil {
		cur = b.stmt(cur, st.Init)
	}
	then := b.newBlock(KindThen, st)
	after := b.newBlock(KindAfter, st)
	var els *Block
	if st.Else != nil {
		els = b.newBlock(KindElse, st)
	} else {
		els = after
	}
	if cur == nil { // init terminated (can't actually happen: inits are simple stmts)
		return after
	}
	b.cond(cur, st.Cond, then, els)
	if end := b.stmtList(then, st.Body.List); end != nil {
		b.edge(end, after, EdgeNormal)
	}
	if st.Else != nil {
		var end *Block
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			end = b.stmtList(els, e.List)
		default: // else if
			end = b.stmt(els, st.Else)
		}
		if end != nil {
			b.edge(end, after, EdgeNormal)
		}
	}
	return after
}

func (b *cfgBuilder) forStmt(cur *Block, st *ast.ForStmt) *Block {
	label := b.takeLabel()
	if st.Init != nil {
		cur = b.stmt(cur, st.Init)
	}
	head := b.newBlock(KindCond, st)
	body := b.newBlock(KindLoopBody, st)
	after := b.newBlock(KindAfter, st)
	var post *Block
	contTo := head
	if st.Post != nil {
		post = b.newBlock(KindLoopPost, st)
		contTo = post
	}
	b.edge(cur, head, EdgeNormal)
	if st.Cond != nil {
		b.cond(head, st.Cond, body, after)
	} else {
		b.edge(head, body, EdgeNormal)
	}
	b.loops = append(b.loops, loopFrame{label: label, breakTo: after, contTo: contTo})
	end := b.stmtList(body, st.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	if end != nil {
		b.edge(end, contTo, EdgeNormal)
	}
	if post != nil {
		if p := b.stmt(post, st.Post); p != nil {
			b.edge(p, head, EdgeNormal)
		}
	}
	return after
}

func (b *cfgBuilder) rangeStmt(cur *Block, st *ast.RangeStmt) *Block {
	label := b.takeLabel()
	head := b.newBlock(KindCond, st)
	body := b.newBlock(KindLoopBody, st)
	after := b.newBlock(KindAfter, st)
	// The RangeStmt node itself stands for the per-iteration work: evaluate
	// X (once, but position-wise here) and bind the iteration variables.
	head.Nodes = append(head.Nodes, st)
	b.edge(cur, head, EdgeNormal)
	b.edge(head, body, EdgeNormal)  // another element
	b.edge(head, after, EdgeNormal) // exhausted
	b.loops = append(b.loops, loopFrame{label: label, breakTo: after, contTo: head})
	end := b.stmtList(body, st.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	if end != nil {
		b.edge(end, head, EdgeNormal)
	}
	return after
}

// switchStmt builds expression and type switches: head evaluates init and
// tag, each clause gets its own block, fallthrough chains clause bodies, and
// a missing default adds a head -> after edge.
func (b *cfgBuilder) switchStmt(cur *Block, st ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) *Block {
	label := b.takeLabel()
	if init != nil {
		cur = b.stmt(cur, init)
	}
	if tag != nil {
		cur.Nodes = append(cur.Nodes, tag)
	}
	if ts, ok := st.(*ast.TypeSwitchStmt); ok {
		cur.Nodes = append(cur.Nodes, ts.Assign)
	}
	after := b.newBlock(KindAfter, st)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(KindClause, st)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		b.edge(cur, blocks[i], EdgeNormal)
	}
	if !hasDefault {
		b.edge(cur, after, EdgeNormal)
	}
	for i, cc := range clauses {
		next := after
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, isSwitch: true, fallsInto: next})
		if end := b.stmtList(blocks[i], cc.Body); end != nil {
			b.edge(end, after, EdgeNormal)
		}
		b.loops = b.loops[:len(b.loops)-1]
	}
	return after
}

func (b *cfgBuilder) selectStmt(cur *Block, st *ast.SelectStmt) *Block {
	label := b.takeLabel()
	after := b.newBlock(KindAfter, st)
	anyClause := false
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		anyClause = true
		blk := b.newBlock(KindClause, st)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.edge(cur, blk, EdgeNormal)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, isSwitch: true})
		if end := b.stmtList(blk, cc.Body); end != nil {
			b.edge(end, after, EdgeNormal)
		}
		b.loops = b.loops[:len(b.loops)-1]
	}
	if !anyClause {
		// select {} blocks forever: no edge out.
		cur.Nodes = append(cur.Nodes, st)
		return after // unreachable join, kept for structural uniformity
	}
	return after
}

// markReachable flood-fills from entry.
func (b *cfgBuilder) markReachable() {
	var stack []*Block
	b.g.Entry.Reachable = true
	stack = append(stack, b.g.Entry)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range blk.Succs {
			if !e.To.Reachable {
				e.To.Reachable = true
				stack = append(stack, e.To)
			}
		}
	}
}

// isPanicStmt reports whether s is an expression statement calling the
// panic builtin.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// debugString renders the CFG for tests and troubleshooting: one line per
// block with its kind and successor list.
func (g *CFG) debugString() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if !blk.Reachable {
			sb.WriteString(" dead")
		}
		sb.WriteString(" ->")
		for _, e := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", e.To.Index)
			switch e.Kind {
			case EdgeCond:
				if e.Branch {
					sb.WriteString("(T)")
				} else {
					sb.WriteString("(F)")
				}
			case EdgeReturn:
				sb.WriteString("(ret)")
			case EdgePanic:
				sb.WriteString("(panic)")
			case EdgeFall:
				sb.WriteString("(fall)")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
