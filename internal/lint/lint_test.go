package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixture tests prove each pass catches its seeded violations and stays
// quiet on the clean file. Every fixture package under testdata/src/<pass>
// has bad*.go files with deliberate violations and a clean.go with legal
// code; the harness demands an exact match — every expectation must be hit,
// and any finding on an unexpected line fails the test (so clean.go staying
// clean is checked for free).

// expect is one finding a fixture is seeded with. The offending line is
// located at run time by searching the fixture file for a unique snippet, so
// editing a fixture doesn't silently desynchronize line numbers.
type expect struct {
	file    string // base name within the fixture dir
	snippet string // unique source text on the offending line
	substr  string // required substring of the finding message
}

func fixtureDir(pass string) string {
	return filepath.Join("testdata", "src", pass)
}

func loadFixture(t *testing.T, pass string) *Unit {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	u, err := l.LoadDir(fixtureDir(pass), "fixtures/"+pass)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pass, err)
	}
	return u
}

// findLine returns the 1-based line of the first occurrence of snippet.
func findLine(t *testing.T, path, snippet string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, snippet) {
			return i + 1
		}
	}
	t.Fatalf("%s: snippet %q not found", path, snippet)
	return 0
}

func runFixture(t *testing.T, passName string, expects []expect) {
	t.Helper()
	u := loadFixture(t, passName)
	p := PassByName(passName)
	if p == nil {
		t.Fatalf("pass %q not registered", passName)
	}
	var findings []Finding
	if p.Run != nil {
		findings = p.Run(u)
	} else {
		findings = p.RunModule(NewProgram([]*Unit{u}))
	}

	type loc struct {
		file string
		line int
	}
	want := make(map[loc][]string)
	for _, e := range expects {
		path := filepath.Join(fixtureDir(passName), e.file)
		l := loc{e.file, findLine(t, path, e.snippet)}
		want[l] = append(want[l], e.substr)
	}
	got := make(map[loc][]string)
	for _, f := range findings {
		l := loc{filepath.Base(f.File), f.Line}
		got[l] = append(got[l], f.Message)
	}
	for l, subs := range want {
		msgs := got[l]
		if len(msgs) == 0 {
			t.Errorf("%s:%d: expected a finding matching %q, got none", l.file, l.line, subs)
			continue
		}
		for _, sub := range subs {
			matched := false
			for _, m := range msgs {
				if strings.Contains(m, sub) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s:%d: no finding matches %q; got %q", l.file, l.line, sub, msgs)
			}
		}
	}
	for l, msgs := range got {
		if _, ok := want[l]; !ok {
			t.Errorf("unexpected finding at %s:%d: %q", l.file, l.line, msgs)
		}
	}
}

func TestLockcheckFixtures(t *testing.T) {
	runFixture(t, "lockcheck", []expect{
		{"bad1.go", "c.n++", "without holding"},
		{"bad1.go", "c.n = 2", "without holding"},
		{"bad2.go", `return t.m["default"]`, "without holding"},
		{"bad2.go", "guarded by missing", "names no sync.Mutex/RWMutex"},
	})
}

func TestAtomiccheckFixtures(t *testing.T) {
	runFixture(t, "atomiccheck", []expect{
		{"bad1.go", "s.hits = atomic.Uint64{}", "plain value access"},
		{"bad1.go", "cp := *s", "copies a"},
		{"bad2.go", "func ByValue(g gauge)", "passed by value"},
		{"bad2.go", "for _, g := range list", "range value"},
	})
}

func TestErrcheckFixtures(t *testing.T) {
	runFixture(t, "errcheck", []expect{
		{"bad1.go", "not an escape hatch", "discards its error result"},
		{"bad1.go", "defer fail()", "discards its error result"},
		{"bad1.go", "_ = fail()", "no justification comment"},
		{"bad2.go", "v, _ := failTwo()", "no justification comment"},
		{"bad2.go", "go fail()", "discards its error result"},
	})
}

func TestGoroutinecheckFixtures(t *testing.T) {
	runFixture(t, "goroutinecheck", []expect{
		{"bad1.go", "go work()", "not joinable"},
		{"bad1.go", "go func() {", "not joinable"},
		{"bad2.go", "stop this ticker loop", "not joinable"},
		{"bad2.go", "never escapes the literal", "not joinable"},
	})
}

func TestClockcheckFixtures(t *testing.T) {
	runFixture(t, "clockcheck", []expect{
		{"bad1.go", "clock: time.Now", "time.Now"},
		{"bad1.go", "time.Since(start)", "time.Since"},
		{"bad1.go", "time.Until(deadline)", "time.Until"},
		{"bad2.go", "rand.Intn(n)", "process-global RNG"},
		{"bad2.go", "rand.Float64()", "process-global RNG"},
		{"bad2.go", "rand.Shuffle", "process-global RNG"},
	})
}

func TestLockorderFixtures(t *testing.T) {
	runFixture(t, "lockorder", []expect{
		{"bad1.go", "half of the cycle", "cycle"},
		{"bad1.go", "via the call graph", "lockorder.A.mu acquired while holding lockorder.B.mu"},
		{"bad2.go", "contradicts the declared order", "contradicting declared"},
		{"bad2.go", "contradicts the declared order", "cycle"},
		{"bad2.go", "lockorder.Missing.mu", "unknown lock class"},
	})
}

func TestNumcheckFixtures(t *testing.T) {
	runFixture(t, "numcheck", []expect{
		{"bad1.go", "unguarded division", "without a visible zero guard"},
		{"bad1.go", "unguarded log", "math.Log2"},
		{"bad1.go", "rounding-sensitive equality", "rounding-sensitive"},
		{"bad1.go", "constant out of domain", "out-of-domain constant"},
		{"bad2.go", "inline arithmetic into a state write", "bind and clamp"},
		{"bad2.go", "guard mentions scale, not n", "without a visible zero guard"},
	})
}

func TestCtxcheckFixtures(t *testing.T) {
	runFixture(t, "ctxcheck", []expect{
		{"bad1.go", "blocking sleep, no ctx parameter", "time.Sleep"},
		{"bad1.go", "net.Dial, no ctx parameter", "net.Dial"},
		{"bad1.go", "root context outside cmd/", "context.Background()"},
		{"bad2.go", "blocking accept, no ctx and no hatch", "Accept"},
		{"bad2.go", "literal has no ctx parameter", "time.Sleep"},
	})
}

func TestAlloccheckFixtures(t *testing.T) {
	runFixture(t, "alloccheck", []expect{
		{"bad1.go", "make with non-constant capacity", "non-constant size"},
		{"bad1.go", `return "v:" + id`, "string concatenation"},
		{"bad1.go", "fmt formatting in a hot function", "fmt.Sprintf"},
		{"bad1.go", "append to a never-pre-sized slice", "never pre-sized"},
		{"bad1.go", "boxing an int into an interface", "boxes a int"},
		{"bad2.go", "ranging over a map in a hot function", "ranging over a map"},
		{"bad2.go", "&T{} escapes to the heap", "allocates on the heap"},
		{"bad2.go", "slice literal in a hot callee", "hot via alloccheck.engine.Rank"},
		{"bad2.go", "make(map) per call", "make(map)"},
		{"bad2.go", "closure capturing n", "captures \"n\""},
	})
}

func TestLeakcheckFixtures(t *testing.T) {
	runFixture(t, "leakcheck", []expect{
		{"bad1.go", "leaks f on the read-error path", "can reach this return unreleased"},
		{"bad1.go", "conn is never closed", `connection "conn"`},
		{"bad1.go", "ticker t still running", `ticker "t"`},
		{"bad1.go", "time.Tick leaks", "time.Tick"},
		{"bad2.go", "cancel never called on this path", "cancel function"},
		{"bad2.go", "b never returned to scratch", "pooled object"},
		{"bad2.go", "blocks forever if the receiver is gone", "unbuffered channel"},
		{"bad2.go", "result discarded", "discarded"},
	})
}

func TestNilcheckFixtures(t *testing.T) {
	runFixture(t, "nilcheck", []expect{
		{"bad1.go", "deref on the error path: r is nil here", "may be nil here"},
		{"bad1.go", "deref on the error path: f is nil here", "may be nil here"},
		{"bad1.go", "index of a nil slice on the error path", "may be nil here"},
		{"bad1.go", "write to nil map", "write to nil map"},
		{"bad2.go", "used before the comma-ok check", "before its comma-ok result"},
		{"bad2.go", "ok is false here: c is nil", `comma-ok result "ok" is false`},
		{"bad2.go", "assertion failed: s is nil", `comma-ok result "ok" is false`},
	})
}

func TestBlockcheckFixtures(t *testing.T) {
	runFixture(t, "blockcheck", []expect{
		{"bad1.go", "sleeping with s.mu held", "time.Sleep while holding s.mu"},
		{"bad1.go", "network write with s.mu held", "network write"},
		{"bad1.go", "unbuffered send with s.mu held", `send on unbuffered channel "ch"`},
		{"bad1.go", "second lock acquired with p.a held", "acquiring p.b while holding p.a"},
		{"bad2.go", "sleeping in a hot callee", "hot function blockcheck.slowRank (hot via blockcheck.Serve)"},
		{"bad2.go", "waiting on the group with g.mu held", "sync.WaitGroup.Wait while holding g.mu"},
	})
}

func TestWirecheckFixtures(t *testing.T) {
	runFixture(t, "wirecheck", []expect{
		{"bad1.go", "unexported: silently dropped", "gob silently drops it"},
		{"bad1.go", "a chan cannot cross the wire", "which gob cannot encode"},
		{"bad1.go", "process-local lock in a message", "synchronization state"},
		{"bad1.go", "error values do not gob-encode", "does not gob-encode"},
		{"bad1.go", "func: unencodable", "which gob cannot encode"},
		{"bad1.go", "no registered implementation", "no gob.Register'd implementation"},
		{"bad1.go", "unexported: dropped from the tuple", "via the storm transport"},
		{"bad1.go", "chan riding the transport", "which gob cannot encode"},
		{"bad2.go", "unexported, two structs deep", "gob silently drops it"},
		{"bad2.go", "unregistered interface element", "interface-valued element crossing the storm transport"},
	})
}

func TestPassScoping(t *testing.T) {
	p := &Pass{Scope: []string{"internal/storm", "cmd"}}
	for rel, wantApplies := range map[string]bool{
		"internal/storm":     true,
		"internal/storm/sub": true,
		"internal/stormy":    false,
		"cmd/recserve":       true,
		"internal/kvstore":   false,
		"":                   false,
	} {
		if got := p.AppliesTo(rel); got != wantApplies {
			t.Errorf("AppliesTo(%q) = %v, want %v", rel, got, wantApplies)
		}
	}
	everywhere := &Pass{}
	if !everywhere.AppliesTo("anything/at/all") {
		t.Error("a pass with no scope should apply everywhere")
	}
}

// TestRepoIsClean is the standing guarantee behind `make lint`: the module's
// own tree must produce zero findings. It type-checks the whole repo with the
// source importer, so it is the slowest test in the package.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(units, Passes()) {
		t.Errorf("repo is not lint-clean: %s", f)
	}
}
