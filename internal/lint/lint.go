// Package lint is vidrec's from-scratch static-analysis framework, built
// entirely on the standard library (go/parser, go/ast, go/types,
// go/importer). It exists because the serving and training stack runs online
// SGD updates and top-N serving concurrently over shared state: data races
// and swallowed errors there silently corrupt model state rather than crash.
// The passes encode the repo's concurrency and error-handling discipline so
// every future change is checked mechanically:
//
//   - lockcheck: fields annotated "// guarded by <mu>" may only be accessed
//     while that mutex is held.
//   - atomiccheck: sync/atomic values may not be copied or accessed without
//     their Load/Store/Add/... methods.
//   - errcheck: error results in the storage/topology/training/cmd layers
//     may not be silently discarded.
//   - goroutinecheck: goroutines in the topology runtime and commands must
//     be joinable (WaitGroup, channel, or context).
//   - clockcheck: packages on the simulation harness's replay path take
//     injected clocks and seeded RNGs — no time.Now, no global math/rand.
//
// On top of the per-function checks sits the dataflow suite, which follows
// facts across function and package boundaries through a static call graph
// (callgraph.go):
//
//   - lockorder: the global lock-acquisition order must be acyclic; cycles
//     are potential AB-BA deadlocks.
//   - numcheck: the math-bearing packages may not introduce NaN/Inf —
//     unguarded divisions, out-of-domain math calls, float equality, and
//     unchecked model-state writes are findings.
//   - ctxcheck: serving/network paths thread context.Context; root contexts
//     are minted only in cmd/.
//
// New passes register themselves in an init function via Register; see
// lockcheck.go (per-unit) or lockorder.go (module-level) for the shape.
// cmd/vidlint is the command-line driver; baseline.go lets a new pass gate
// on new findings while a recorded backlog is burned down.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one diagnostic produced by a pass.
type Finding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Pass)
}

// Pass is one analysis. Exactly one of Run and RunModule is set: Run is
// invoked once per Unit whose RelPath matches Scope; RunModule is invoked
// once with the whole program, for passes whose property only exists across
// package boundaries (lock-acquisition order through the call graph).
type Pass struct {
	Name string
	Doc  string
	// Scope lists module-relative path prefixes the pass applies to; nil
	// means every package. RunModule passes receive every unit and apply
	// their own scoping.
	Scope     []string
	Run       func(u *Unit) []Finding
	RunModule func(p *Program) []Finding
}

// AppliesTo reports whether the pass runs on a package at the given
// module-relative path.
func (p *Pass) AppliesTo(rel string) bool {
	if len(p.Scope) == 0 {
		return true
	}
	for _, prefix := range p.Scope {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return true
		}
	}
	return false
}

var registry []*Pass

// Register adds a pass to the global registry. Passes self-register from
// init functions; adding a new pass is a new file with an init and a Run.
func Register(p *Pass) { registry = append(registry, p) }

// Passes returns the registered passes sorted by name.
func Passes() []*Pass {
	out := make([]*Pass, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PassByName returns the named pass, or nil.
func PassByName(name string) *Pass {
	for _, p := range registry {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Run applies each pass to each unit it scopes to (module-level passes run
// once over the whole program) and returns all findings sorted by position.
//
// Execution is parallel: module passes fan out across a bounded worker pool,
// and per-unit passes fan out across packages on the same pool. Both are
// safe because a loaded Unit is read-only, the shared token.FileSet
// synchronizes internally, and Program's lazy call graph is behind a
// sync.Once. Every parallel result lands in its own indexed slot and the
// final position sort canonicalizes the merged order, so output is
// deterministic regardless of scheduling.
func Run(units []*Unit, passes []*Pass) []Finding {
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}

	var modPasses []*Pass
	for _, p := range passes {
		if p.RunModule != nil {
			modPasses = append(modPasses, p)
		}
	}
	byModPass := make([][]Finding, len(modPasses))
	if len(modPasses) > 0 {
		prog := NewProgram(units)
		runPool(len(modPasses), workers, func(i int) {
			byModPass[i] = modPasses[i].RunModule(prog)
		})
	}

	byUnit := make([][]Finding, len(units))
	runPool(len(units), workers, func(i int) {
		u := units[i]
		for _, p := range passes {
			if p.Run != nil && p.AppliesTo(u.RelPath) {
				byUnit[i] = append(byUnit[i], p.Run(u)...)
			}
		}
	})

	var findings []Finding
	for _, fs := range byModPass {
		findings = append(findings, fs...)
	}
	for _, fs := range byUnit {
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return findings
}

// runPool invokes fn(0..n-1) across at most workers goroutines and waits for
// all of them. fn must write only to its own indexed slot.
func runPool(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if n == 0 {
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// finding builds a Finding at pos. The file is reported module-relative so
// findings (and the baseline entries derived from them) are stable across
// checkouts.
func (u *Unit) finding(pass string, pos token.Pos, format string, args ...any) Finding {
	p := u.Posn(pos)
	file := p.Filename
	if base := filepath.Base(file); u.RelPath != "" {
		file = path.Join(u.RelPath, base)
	} else {
		file = base
	}
	return Finding{
		Pass:    pass,
		File:    file,
		Line:    p.Line,
		Col:     p.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// ---- shared AST / type helpers ----

// walkStack traverses the AST rooted at n, calling fn with each node and the
// stack of its ancestors (outermost first, not including n). Returning false
// from fn prunes the subtree.
func walkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// namedFrom unwraps pointers and aliases down to a *types.Named, or nil.
func namedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isPkgType reports whether t (or *t) is the named type pkgPath.name.
func isPkgType(t types.Type, pkgPath string, names ...string) bool {
	n := namedFrom(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkgPath {
		return false
	}
	for _, name := range names {
		if n.Obj().Name() == name {
			return true
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isMutexType(t types.Type) bool {
	return isPkgType(t, "sync", "Mutex", "RWMutex")
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
// Pointers to atomics are freely copyable and deliberately do not match.
func isAtomicType(t types.Type) bool {
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return isPkgType(t, "sync/atomic",
		"Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value")
}

// containsAtomic reports whether a value of type t embeds sync/atomic state
// (directly, in a struct field, or in an array element), meaning a by-value
// copy would tear concurrent updates.
func containsAtomic(t types.Type) bool {
	return containsAtomic1(t, make(map[types.Type]bool))
}

func containsAtomic1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isAtomicType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsAtomic1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsAtomic1(u.Elem(), seen)
	}
	return false
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// errorResults returns the result positions of call that have type error,
// and the total number of results. A nil slice means the call yields no
// errors (or is not a function call at all, e.g. a conversion).
func errorResults(u *Unit, call *ast.CallExpr) (positions []int, n int) {
	tv, ok := u.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversion, not a call
		return nil, 0
	}
	res := u.Info.Types[call]
	if res.Type == nil {
		return nil, 0
	}
	switch t := res.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				positions = append(positions, i)
			}
		}
		return positions, t.Len()
	default:
		if types.Identical(res.Type, errorType) {
			return []int{0}, 1
		}
		return nil, 1
	}
}

// terminates reports whether the statement list always transfers control out
// of the enclosing block (return, branch, or panic) — used to prune merge
// states in control-flow approximations.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// exprString renders a small expression for diagnostics (identifiers and
// selector chains; anything else comes back abbreviated).
func exprString(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	default:
		return "<expr>"
	}
}
