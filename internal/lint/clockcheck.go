package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// clockcheck enforces the simulation harness's determinism contract
// (internal/sim): every package the harness replays through must be a pure
// function of its inputs, which means no ambient time or randomness. Two
// things are findings inside the scoped packages:
//
//   - a reference to time.Now, time.Since, or time.Until — called or taken
//     as a value. Deterministic components take an injected clock
//     (func() time.Time) and the sim wires in its virtual clock;
//   - a call to a package-level math/rand or math/rand/v2 function (the
//     process-global RNG). Constructors (rand.New, rand.NewPCG, ...) are
//     fine — a seeded *rand.Rand instance is exactly the discipline the
//     pass is asking for.
//
// The escape hatch is `// clockcheck: <why>` on the offending line or the
// line above, for default values that every sim-covered caller overrides
// (e.g. a clock field defaulting to time.Now behind a SetClock).

func init() {
	Register(&Pass{
		Name: "clockcheck",
		Doc:  "sim-covered packages take injected clocks and seeded RNGs; no time.Now or global math/rand",
		Scope: []string{
			"internal/storm", "internal/topology", "internal/recommend",
			"internal/simtable", "internal/kvstore", "internal/core",
			"internal/history", "internal/demographic", "internal/catalog",
			"internal/feedback", "internal/dataset", "internal/lru",
			"internal/topn", "internal/metrics", "internal/vecmath",
			"internal/sim", "internal/objcache", "internal/bandit",
			"fixtures/clockcheck",
		},
		Run: runClockcheck,
	})
}

// wallClockFuncs are the time package functions that read the wall clock.
// Timer constructors (NewTimer, After) are ctxcheck's territory; these three
// leak nondeterminism into computed state.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runClockcheck(u *Unit) []Finding {
	var findings []Finding
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if !wallClockFuncs[fn.Name()] {
					return true
				}
				if hatchedClock(u, sel) {
					return true
				}
				findings = append(findings, u.finding("clockcheck", sel.Pos(),
					"reads the wall clock via time.%s: take an injected clock func() time.Time so the sim harness can replay deterministically (or annotate '// clockcheck: <why>')",
					fn.Name()))
			case "math/rand", "math/rand/v2":
				if strings.HasPrefix(fn.Name(), "New") {
					return true // constructors build the seeded instances we want
				}
				if hatchedClock(u, sel) {
					return true
				}
				findings = append(findings, u.finding("clockcheck", sel.Pos(),
					"uses the process-global RNG %s.%s: use a seeded *rand.Rand so the sim harness can replay deterministically (or annotate '// clockcheck: <why>')",
					fn.Pkg().Name(), fn.Name()))
			}
			return true
		})
	}
	return findings
}

func hatchedClock(u *Unit, sel *ast.SelectorExpr) bool {
	txt, ok := u.CommentAt(sel.Pos())
	return ok && strings.Contains(txt, "clockcheck:")
}
