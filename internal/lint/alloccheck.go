package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// alloccheck enforces the serving-path allocation budget statically. The
// paper's real-time requirement holds only while the warm Recommend path
// stays in the microsecond range; the repo's defense used to be a handful of
// AllocsPerRun pins on leaf functions, which a stray fmt.Sprintf or unsized
// append three calls up silently erodes until a benchmark regresses.
//
// Functions whose declaration carries a "// hotpath" comment (on the line
// above `func`, conventionally the last doc-comment line, optionally
// "// hotpath: <why>") are hot roots. Hotness propagates transitively
// through the static call graph — including method values and functions
// stored in fields or passed as arguments (callgraph.go reference edges).
// Interface method calls resolve to the interface method, which has no body,
// so propagation stops there; implementations reachable only through an
// interface need their own annotation (that is why the kvstore codec helpers
// are annotated even though Recommend reaches them via the Store interface).
//
// Inside a hot function these constructs are findings:
//
//   - make of a map or channel, or of a slice with a non-constant length or
//     capacity (a constant-capacity make is a bounded, budgeted allocation);
//     new(T)
//   - append to a slice that is never visibly pre-sized (no make, slice
//     expression like buf[:0], or function-call origin in the body; fields,
//     elements, and parameters are assumed amortized or caller-sized)
//   - fmt.* formatting calls and non-constant string concatenation
//   - string <-> []byte/[]rune conversions of non-constant operands
//   - map and slice composite literals, and &T{} (a plain T{} value is not
//     flagged)
//   - func literals that capture variables from the enclosing function
//     (captures force heap allocation of the closure and the captured slot);
//     the literal's body is not walked — allocations inside it are charged
//     to the functions it calls, which the call graph marks hot
//   - ranging over a map (nondeterministic order and per-iteration overhead
//     on a scoring loop)
//
// Constructs on failure paths are exempt: inside an `if err != nil` body,
// inside a return that carries a non-nil error, or inside a panic argument,
// allocation happens when the request is already lost. Everything else needs
// either remediation or a justification hatch on the line (or the line
// above):
//
//	// alloccheck: <why this allocation is part of the budget>
//
// The hatch is deliberate friction: every accepted allocation is named,
// counted by `make lint-stats`, and auditable against the AllocsPerRun pins.
func init() {
	Register(&Pass{
		Name:      "alloccheck",
		Doc:       "no unbudgeted allocations in // hotpath functions and their transitive callees",
		RunModule: runAlloccheck,
	})
}

// hasMarker reports whether a comment contains marker as a standalone word
// (or "marker:" prefix), so prose like "the hot path" never triggers it.
func hasMarker(txt, marker string) bool {
	for _, f := range strings.Fields(txt) {
		if f == marker || strings.HasPrefix(f, marker+":") {
			return true
		}
	}
	return false
}

// shortFuncName renders pkg.Func or pkg.Recv.Func for diagnostics — short
// enough for a finding, qualified enough to be unambiguous in this module.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedFrom(sig.Recv().Type()); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func runAlloccheck(p *Program) []Finding {
	g := p.CallGraph()
	hot := hotSet(p) // shared with blockcheck, see hotpath.go

	var findings []Finding
	for _, fn := range g.Functions() {
		via, isHot := hot[fn]
		if !isHot {
			continue
		}
		u, fd := g.DeclOf(fn)
		if fd == nil {
			continue
		}
		c := &allocChecker{u: u, fd: fd, name: shortFuncName(fn), via: via}
		c.check()
		findings = append(findings, c.findings...)
	}
	return findings
}

type allocChecker struct {
	u        *Unit
	fd       *ast.FuncDecl
	name     string // short name of the hot function being checked
	via      string // immediate hot caller, "" for an annotated root
	findings []Finding

	params map[types.Object]bool // parameters + named results (caller-sized)
}

func (c *allocChecker) report(stack []ast.Node, pos token.Pos, format string, args ...any) {
	if txt, ok := c.u.CommentAt(pos); ok && strings.Contains(txt, "alloccheck:") {
		return
	}
	if c.onFailurePath(stack) {
		return
	}
	where := "hot function " + c.name
	if c.via != "" {
		where += " (hot via " + c.via + ")"
	}
	c.findings = append(c.findings, c.u.finding("alloccheck", pos,
		"%s in %s", fmt.Sprintf(format, args...), where))
}

// onFailurePath reports whether the node whose ancestors are stack sits on a
// failure path: an `if <err-comparison>` body, a return carrying a non-nil
// error, or a panic argument. Allocation there happens when the request is
// already lost, so it cannot erode the warm budget.
func (c *allocChecker) onFailurePath(stack []ast.Node) bool {
	for _, n := range stack {
		switch x := n.(type) {
		case *ast.IfStmt:
			if c.condTestsError(x.Cond) {
				return true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if c.isErrorValue(res) {
					return true
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := c.u.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}

// condTestsError reports whether cond compares an error-typed operand
// (err != nil and friends).
func (c *allocChecker) condTestsError(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return !found
		}
		for _, op := range []ast.Expr{b.X, b.Y} {
			if t := c.u.Info.Types[op].Type; t != nil && types.Identical(t, errorType) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isErrorValue reports whether e is a non-nil expression assignable to
// error.
func (c *allocChecker) isErrorValue(e ast.Expr) bool {
	if id, ok := unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	t := c.u.Info.Types[e].Type
	return t != nil && t != types.Typ[types.UntypedNil] && types.AssignableTo(t, errorType)
}

func (c *allocChecker) check() {
	c.params = make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := c.u.Info.Defs[name]; obj != nil {
					c.params[obj] = true
				}
			}
		}
	}
	collect(c.fd.Type.Params)
	collect(c.fd.Type.Results)

	walkStack(c.fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if cap := c.firstCapture(x); cap != "" {
				c.report(stack, x.Pos(), "func literal captures %q from the enclosing function — the closure and its captures move to the heap", cap)
			}
			return false // allocations inside run when the closure runs; its callees are hot via the call graph
		case *ast.CallExpr:
			c.checkCall(x, stack)
		case *ast.BinaryExpr:
			c.checkConcat(x, stack)
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && c.isNonConstString(x.Lhs[0]) {
				c.report(stack, x.Pos(), "string += concatenation allocates a new string per call")
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(x, stack)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
					c.report(stack, x.Pos(), "&%s{...} allocates on the heap per call", typeLabel(c.u, x.X))
				}
			}
		case *ast.RangeStmt:
			if t := c.u.Info.Types[x.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.report(stack, x.Pos(), "ranging over a map (nondeterministic order, per-iteration overhead)")
				}
			}
		}
		return true
	})
}

func (c *allocChecker) checkCall(call *ast.CallExpr, stack []ast.Node) {
	// Builtins: make / new / append.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.u.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				c.checkMake(call, stack)
			case "new":
				c.report(stack, call.Pos(), "new(%s) allocates on the heap per call", typeLabel(c.u, call.Args[0]))
			case "append":
				c.checkAppend(call, stack)
			}
			return
		}
	}
	// fmt.* formatting.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkg, ok := unparen(sel.X).(*ast.Ident); ok {
			if pn, ok := c.u.Info.Uses[pkg].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(stack, call.Pos(), "fmt.%s formats through reflection and allocates", sel.Sel.Name)
				return
			}
		}
	}
	tv, ok := c.u.Info.Types[call.Fun]
	if !ok {
		return
	}
	// string <-> []byte/[]rune conversions copy their operand.
	if tv.IsType() && len(call.Args) == 1 {
		dst := c.u.Info.Types[call].Type
		src := c.u.Info.Types[call.Args[0]]
		if src.Value == nil && isStringBytesPair(dst, src.Type) {
			c.report(stack, call.Pos(), "%s conversion copies its operand", typeLabel(c.u, call.Fun))
		}
		return
	}
	// Interface boxing at call arguments: a non-constant, non-pointer
	// concrete value passed as an interface parameter escapes to the heap.
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			break
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if _, isTypeParam := pt.(*types.TypeParam); isTypeParam {
			continue // generic parameter; instantiation decides, not this site
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := c.u.Info.Types[arg]
		if at.Type == nil || at.Value != nil || at.Type == types.Typ[types.UntypedNil] {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Map, *types.Chan:
			continue // already a single word; no boxing allocation
		}
		c.report(stack, arg.Pos(), "passing %s boxes a %s into an interface", exprString(arg), at.Type.String())
	}
}

func (c *allocChecker) checkMake(call *ast.CallExpr, stack []ast.Node) {
	t := c.u.Info.Types[call].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.report(stack, call.Pos(), "make(map) allocates per call — hoist to a reused scratch structure")
	case *types.Chan:
		c.report(stack, call.Pos(), "make(chan) allocates per call")
	case *types.Slice:
		for _, size := range call.Args[1:] {
			if c.u.Info.Types[size].Value == nil {
				c.report(stack, call.Pos(), "make with non-constant size %s allocates an unbounded amount per call", exprString(size))
				return
			}
		}
	}
}

// checkAppend flags appends whose base slice is never visibly pre-sized:
// repeated growth reallocates log(n) times per call. Fields, elements, and
// parameters are exempt (amortized container growth or caller-sized
// buffers); locals are exempt when any assignment in the body gives them
// capacity (a make, a slice expression like buf[:0], or a call result).
func (c *allocChecker) checkAppend(call *ast.CallExpr, stack []ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // fields, elements, slice exprs, nested calls: exempt
	}
	obj := c.u.Info.Uses[id]
	if obj == nil || c.params[obj] {
		return
	}
	if c.hasPresizedOrigin(obj) {
		return
	}
	c.report(stack, call.Pos(), "append to %s, which is never pre-sized — grows by repeated reallocation", id.Name)
}

// hasPresizedOrigin reports whether any assignment to obj in the function
// body gives it visible capacity. Self-appends (x = append(x, ...)) do not
// count as origins.
func (c *allocChecker) hasPresizedOrigin(obj types.Object) bool {
	found := false
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				lid, ok := unparen(lhs).(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				if c.u.Info.Defs[lid] != obj && c.u.Info.Uses[lid] != obj {
					continue
				}
				if c.presizedExpr(st.Rhs[i], obj) {
					found = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if c.u.Info.Defs[name] != obj || i >= len(st.Values) {
					continue
				}
				if c.presizedExpr(st.Values[i], obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func (c *allocChecker) presizedExpr(e ast.Expr, obj types.Object) bool {
	switch x := unparen(e).(type) {
	case *ast.SliceExpr:
		return true // buf[:0] reuse idiom
	case *ast.CompositeLit:
		return true // flagged in its own right; the append is then fine
	case *ast.CallExpr:
		// A self-append is growth, not an origin; any other call (make
		// included — it gets its own finding if unsized) hands back a
		// sized slice.
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.u.Info.Uses[id].(*types.Builtin); isBuiltin {
				if len(x.Args) > 0 {
					if base, ok := unparen(x.Args[0]).(*ast.Ident); ok && (c.u.Info.Uses[base] == obj || c.u.Info.Defs[base] == obj) {
						return false
					}
				}
				return true
			}
		}
		return true
	}
	return false
}

func (c *allocChecker) checkConcat(b *ast.BinaryExpr, stack []ast.Node) {
	if b.Op != token.ADD || !c.isNonConstString(b) {
		return
	}
	// Report once per concatenation chain: (a+b)+c is two BinaryExprs on
	// one expression; the parent already covers the child.
	if len(stack) > 0 {
		if p, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok && p.Op == token.ADD && c.isNonConstString(p) {
			return
		}
	}
	c.report(stack, b.Pos(), "string concatenation allocates a new string per call")
}

func (c *allocChecker) isNonConstString(e ast.Expr) bool {
	tv, ok := c.u.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func (c *allocChecker) checkCompositeLit(lit *ast.CompositeLit, stack []ast.Node) {
	// &T{} is handled at the UnaryExpr, where the escape happens.
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			return
		}
	}
	t := c.u.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.report(stack, lit.Pos(), "map literal allocates per call")
	case *types.Slice:
		c.report(stack, lit.Pos(), "slice literal allocates per call")
	}
}

// firstCapture returns the name of the first variable lit captures from the
// enclosing function, or "".
func (c *allocChecker) firstCapture(lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.u.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = function-local (not package-level) and declared
		// outside the literal.
		if v.Parent() == nil || v.Parent() == c.u.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = id.Name
		}
		return true
	})
	return captured
}

// isStringBytesPair reports whether dst/src are a string <-> []byte or
// string <-> []rune conversion pair.
func isStringBytesPair(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}

// typeLabel renders the type expression at e for a message.
func typeLabel(u *Unit, e ast.Expr) string {
	if t := u.Info.Types[e].Type; t != nil {
		s := t.String()
		// Strip the module path for readability; findings stay stable
		// because the module path never varies.
		if i := strings.LastIndex(s, "/"); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	return exprString(e)
}
