package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goroutinecheck requires every goroutine launched in the topology runtime
// (internal/storm), the storage tier (internal/kvstore), and the commands
// (cmd/...) to be joinable: a fire-and-forget goroutine outlives shutdown,
// races teardown, and leaks under test. A `go` statement passes when the
// analysis can see one of:
//
//   - a sync.WaitGroup tie: the goroutine body calls Done/Add on a
//     WaitGroup, or (for `go f(...)` calls) a wg.Add(...) appears in the
//     statements immediately before the launch;
//   - a channel tie: the body sends on, closes, or receives from a channel
//     that outlives the goroutine (captured variable or field — channels
//     created by the body itself, like time.Tick's, do not count);
//   - a context tie: the body references a context.Context (ctx.Done
//     selection included), or one is passed as an argument.
//
// The escape hatch is an explicit annotation on the `go` statement's line:
// `// vidlint:detached <why>`.

func init() {
	Register(&Pass{
		Name:  "goroutinecheck",
		Doc:   "goroutines in storm/kvstore/cmd must be tied to a WaitGroup, channel, or context",
		Scope: []string{"internal/storm", "internal/kvstore", "cmd"},
		Run:   runGoroutinecheck,
	})
}

func runGoroutinecheck(u *Unit) []Finding {
	c := &goChecker{u: u}
	for _, f := range u.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				c.checkGo(g, stack)
			}
			return true
		})
	}
	return c.findings
}

type goChecker struct {
	u        *Unit
	findings []Finding
}

func (c *goChecker) checkGo(g *ast.GoStmt, stack []ast.Node) {
	if txt, ok := c.u.CommentAt(g.Pos()); ok && strings.Contains(txt, "vidlint:detached") {
		return
	}
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if c.literalTied(lit) {
			return
		}
	} else {
		if c.callTied(g, stack) {
			return
		}
	}
	c.findings = append(c.findings, c.u.finding("goroutinecheck", g.Pos(),
		"goroutine is not joinable: tie it to a WaitGroup, channel, or context (or annotate the launch '// vidlint:detached <why>')"))
}

// literalTied inspects a `go func(){...}` body for a join mechanism.
func (c *goChecker) literalTied(lit *ast.FuncLit) bool {
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			if c.outlivesLiteral(x.Chan, lit) {
				tied = true
			}
		case *ast.UnaryExpr:
			// <-ch receive
			if x.Op == token.ARROW && c.outlivesLiteral(x.X, lit) {
				tied = true
			}
		case *ast.RangeStmt:
			if c.isChan(x.X) && c.outlivesLiteral(x.X, lit) {
				tied = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if c.outlivesLiteral(x.Args[0], lit) {
					tied = true
				}
			}
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if c.isWaitGroupMethod(sel, "Done", "Add", "Wait") {
					tied = true
				}
			}
		case *ast.Ident:
			if obj := c.u.Info.Uses[x]; obj != nil && isContextType(obj.Type()) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// callTied handles `go f(a, b)` launches: joinable arguments, or a
// WaitGroup.Add in the statements just before the launch (the
// wg.Add(1); go s.loop() idiom).
func (c *goChecker) callTied(g *ast.GoStmt, stack []ast.Node) bool {
	for _, a := range g.Call.Args {
		tv, ok := c.u.Info.Types[a]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if c.chanType(t) || isContextType(t) || isPkgType(t, "sync", "WaitGroup") {
			return true
		}
	}
	// Look back a few statements in the enclosing block for wg.Add.
	block := enclosingBlock(g, stack)
	if block == nil {
		return false
	}
	idx := -1
	for i, s := range block {
		if s == ast.Stmt(g) {
			idx = i
			break
		}
	}
	for i := idx - 1; i >= 0 && i >= idx-3; i-- {
		es, ok := block[i].(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := unparen(es.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && c.isWaitGroupMethod(sel, "Add") {
			return true
		}
	}
	return false
}

// outlivesLiteral reports whether the channel expression refers to state
// from outside the literal: a field selection, or an identifier declared
// before the literal's body. Direct call results (time.Tick(...)) and
// body-local channels do not outlive the goroutine's launch site.
func (c *goChecker) outlivesLiteral(e ast.Expr, lit *ast.FuncLit) bool {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		// Field or method-call chain rooted outside (a.done, ctx.Done()).
		return true
	case *ast.CallExpr:
		// ctx.Done() and friends: a method call on captured state counts;
		// a plain function call result (time.Tick) does not.
		if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := c.u.Info.Types[sel.X]; ok && tv.Type != nil && !tv.IsType() {
				if _, isPkg := c.u.Info.Uses[rootIdent(sel.X)].(*types.PkgName); !isPkg {
					return true
				}
			}
		}
		return false
	case *ast.Ident:
		obj := c.u.Info.Uses[x]
		if obj == nil {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	return false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (c *goChecker) isChan(e ast.Expr) bool {
	tv, ok := c.u.Info.Types[e]
	return ok && tv.Type != nil && c.chanType(tv.Type)
}

func (c *goChecker) chanType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func (c *goChecker) isWaitGroupMethod(sel *ast.SelectorExpr, names ...string) bool {
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	tv, ok := c.u.Info.Types[sel.X]
	return ok && tv.Type != nil && isPkgType(tv.Type, "sync", "WaitGroup")
}

func isContextType(t types.Type) bool {
	n := namedFrom(t)
	if n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context" {
		return true
	}
	return false
}

// enclosingBlock returns the statement list that directly contains g.
func enclosingBlock(g *ast.GoStmt, stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			return b.List
		case *ast.CaseClause:
			return b.Body
		case *ast.CommClause:
			return b.Body
		}
	}
	return nil
}
