package lint

import "go/ast"

// dataflow.go is the flowcheck engine's solver half: a generic forward
// worklist fixpoint over the CFGs cfg.go builds. A pass supplies a Problem —
// an abstract lattice (Bottom, Join, Equal) plus a Transfer function over
// block nodes — and gets back the in/out state of every reachable block.
//
// Contract (documented in DESIGN.md §7):
//
//   - The lattice must have finite height for the solver to terminate on its
//     own: every Join chain s0 ⊑ s0⊔s1 ⊑ ... must stabilize. All in-tree
//     passes use finite lattices (liveness booleans, small fact enums, held-
//     lock sets bounded by the locks in one function).
//   - Transfer must be monotone in practice: growing the input state must not
//     shrink the output. The engine does not verify this; a non-monotone
//     transfer oscillates and is cut off by widening.
//   - Widening backstop: after a block has been recomputed maxVisits times,
//     the solver calls Widen (if the problem provides one) to force an
//     over-approximation, and unconditionally stops revisiting a block after
//     2*maxVisits — a termination guard, not a precision feature. A pass
//     with an infinite-height lattice must provide Widen or accept the cut.
//   - Edge refinement (RefineEdge) sharpens the state flowing along a branch
//     edge using the leaf condition the CFG recorded (err != nil on the true
//     edge means the err-bound resource was never valid). Block refinement
//     (RefineBlock) adjusts the merged in-state of role-tagged blocks
//     (leakcheck's optimistic select-arm rule). Both are optional.
//
// States are values, not pointers into shared structure: Transfer and the
// refiners must return states that can be retained by the solver (copy
// before mutating a map-backed state).

// Problem is one forward dataflow analysis over a CFG.
type Problem[S any] interface {
	// Bottom is the no-information state merged into unreached block inputs.
	Bottom() S
	// Entry is the state on function entry.
	Entry() S
	// Transfer computes the state after executing node n in state s.
	Transfer(s S, n ast.Node, blk *Block) S
	// Join merges two states at a control-flow merge point.
	Join(a, b S) S
	// Equal reports whether two states carry the same information (fixpoint
	// detection).
	Equal(a, b S) bool
}

// EdgeRefiner lets a problem sharpen the state propagated along a branch
// edge (the CFG records the leaf condition and its truth value on the edge).
type EdgeRefiner[S any] interface {
	RefineEdge(s S, e *Edge) S
}

// BlockRefiner lets a problem adjust a block's merged in-state based on the
// block's structural role (construct-level optimism, region exemptions).
type BlockRefiner[S any] interface {
	RefineBlock(s S, blk *Block) S
}

// Widener accelerates (or forces) convergence for lattices with long chains:
// Widen(old, new) must be an upper bound of both.
type Widener[S any] interface {
	Widen(old, new S) S
}

// maxVisits bounds how many times one block is recomputed before widening
// kicks in; 2*maxVisits is the hard cut.
const maxVisits = 32

// FlowResult holds the fixpoint: the state at block entry (after merge and
// block refinement) and at block exit (after all node transfers).
type FlowResult[S any] struct {
	In  map[*Block]S
	Out map[*Block]S
}

// Solve runs the forward worklist algorithm to fixpoint and returns the
// per-block states. Unreachable blocks keep Bottom in/out and are never
// transferred.
func Solve[S any](g *CFG, p Problem[S]) *FlowResult[S] {
	res := &FlowResult[S]{
		In:  make(map[*Block]S, len(g.Blocks)),
		Out: make(map[*Block]S, len(g.Blocks)),
	}
	for _, blk := range g.Blocks {
		res.In[blk] = p.Bottom()
		res.Out[blk] = p.Bottom()
	}
	refEdge, hasEdgeRef := p.(EdgeRefiner[S])
	refBlock, hasBlockRef := p.(BlockRefiner[S])
	widen, hasWiden := p.(Widener[S])

	// Seed with every reachable block in index order (roughly topological
	// for structured code), so each is computed at least once; changes
	// re-queue successors until fixpoint.
	visits := make(map[*Block]int, len(g.Blocks))
	inQueue := make(map[*Block]bool, len(g.Blocks))
	var queue []*Block
	for _, blk := range g.Blocks {
		if blk.Reachable {
			queue = append(queue, blk)
			inQueue[blk] = true
		}
	}

	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		inQueue[blk] = false

		visits[blk]++
		if visits[blk] > 2*maxVisits {
			continue // termination guard; state stays at its last widened value
		}

		var in S
		if blk == g.Entry {
			in = p.Entry()
		} else {
			in = p.Bottom()
			for _, e := range blk.Preds {
				if !e.From.Reachable {
					continue
				}
				s := res.Out[e.From]
				if hasEdgeRef {
					s = refEdge.RefineEdge(s, e)
				}
				in = p.Join(in, s)
			}
		}
		if hasBlockRef {
			in = refBlock.RefineBlock(in, blk)
		}
		if visits[blk] > maxVisits && hasWiden {
			in = widen.Widen(res.In[blk], in)
		}
		res.In[blk] = in

		out := in
		for _, n := range blk.Nodes {
			out = p.Transfer(out, n, blk)
		}
		if visits[blk] > 1 && p.Equal(out, res.Out[blk]) {
			continue // no change; successors already saw this state
		}
		res.Out[blk] = out
		for _, e := range blk.Succs {
			if !inQueue[e.To] {
				inQueue[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return res
}

// WalkStates replays the fixpoint through every reachable block in index
// order, calling visit with the state *before* each node. Passes use it as
// the reporting sweep once Solve has converged.
func WalkStates[S any](g *CFG, p Problem[S], res *FlowResult[S], visit func(n ast.Node, before S, blk *Block)) {
	for _, blk := range g.Blocks {
		if !blk.Reachable {
			continue
		}
		s := res.In[blk]
		for _, n := range blk.Nodes {
			visit(n, s, blk)
			s = p.Transfer(s, n, blk)
		}
	}
}
