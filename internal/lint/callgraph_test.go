package lint

import (
	"go/types"
	"testing"
)

// TestCallGraphReferenceEdges is the regression test for the method-value
// blind spot: calls made through method values, function-typed fields, and
// function arguments must still produce edges, or every pass built on the
// graph (lockorder, hotness propagation) silently under-reports.
func TestCallGraphReferenceEdges(t *testing.T) {
	u := loadFixture(t, "callgraph")
	g := NewProgram([]*Unit{u}).CallGraph()

	fn := func(name string) *types.Func {
		for _, f := range g.Functions() {
			if f.Name() == name {
				return f
			}
		}
		t.Fatalf("function %q not in call graph", name)
		return nil
	}
	callees := func(name string) map[string]bool {
		out := make(map[string]bool)
		for _, cs := range g.CalleesOf(fn(name)) {
			out[cs.Callee.Name()] = true
		}
		return out
	}

	for caller, callee := range map[string]string{
		"direct":      "score",  // plain method call (pre-existing behavior)
		"methodValue": "score",  // h := s.score; h(x)
		"storedField": "helper", // &server{handler: helper}
		"asArg":       "helper", // apply(helper)
	} {
		if !callees(caller)[callee] {
			t.Errorf("missing edge %s -> %s; got %v", caller, callee, callees(caller))
		}
	}
	if !callees("asArg")["apply"] {
		t.Errorf("direct edge asArg -> apply lost; got %v", callees("asArg"))
	}
	// A reference must not double-count a direct call: direct() has exactly
	// one edge to score.
	n := 0
	for _, cs := range g.CalleesOf(fn("direct")) {
		if cs.Callee.Name() == "score" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("direct -> score recorded %d times, want 1", n)
	}
}
