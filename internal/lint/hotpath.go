package lint

import "go/types"

// hotSet computes the module's hot-function set: functions whose declaration
// carries a "// hotpath" marker are roots, and hotness floods transitively
// through the static call graph (direct calls, method values, references —
// see callgraph.go). Interface method calls resolve to the interface method,
// which has no body, so propagation stops there; implementations reachable
// only through an interface need their own annotation.
//
// The result maps each hot function to the immediate caller that made it hot
// ("" for an annotated root), so findings can explain themselves. alloccheck
// and blockcheck share this: the same functions that must not allocate must
// not block.
func hotSet(p *Program) map[*types.Func]string {
	g := p.CallGraph()
	hot := make(map[*types.Func]string)
	var queue []*types.Func
	for _, fn := range g.Functions() {
		u, fd := g.DeclOf(fn)
		if fd == nil {
			continue
		}
		if txt, ok := u.CommentAt(fd.Pos()); ok && hasMarker(txt, "hotpath") {
			hot[fn] = ""
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, cs := range g.CalleesOf(fn) {
			if _, seen := hot[cs.Callee]; !seen {
				hot[cs.Callee] = shortFuncName(fn)
				queue = append(queue, cs.Callee)
			}
		}
	}
	return hot
}
