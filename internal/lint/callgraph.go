package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Program is the whole-module view handed to cross-package passes: every
// type-checked unit plus a lazily-built static call graph. Per-function
// passes see one Unit at a time; dataflow passes like lockorder need to
// follow calls across package boundaries, which is exactly what this type
// packages up.
type Program struct {
	Units []*Unit

	cgOnce sync.Once
	cg     *CallGraph // built on first CallGraph() call
}

// NewProgram wraps units for module-level analysis.
func NewProgram(units []*Unit) *Program {
	return &Program{Units: units}
}

// CallGraph returns the program's static call graph, building it on first
// use. Module passes run concurrently (lint.Run), so the build is behind a
// sync.Once.
func (p *Program) CallGraph() *CallGraph {
	p.cgOnce.Do(func() { p.cg = buildCallGraph(p.Units) })
	return p.cg
}

// UnitFor returns the unit a function was declared in, or nil.
func (p *Program) UnitFor(fn *types.Func) *Unit {
	if d, ok := p.CallGraph().decls[fn]; ok {
		return d.unit
	}
	return nil
}

// CallGraph is a static, declaration-level call graph: an edge f -> g means
// the body of f contains a call expression that resolves to g, or a
// reference to g as a value (a method value like `h := s.score`, a function
// passed as an argument, or a function stored in a field) — a referenced
// function may be invoked later through the value, so dataflow passes must
// assume the edge is live. Resolution is purely syntactic+type-based —
// direct calls, method calls on concrete receivers, and interface method
// calls (which resolve to the interface method object, not its
// implementations). Calls through values whose origin is not visible in the
// body (e.g. a function received as a parameter) are still missed. That
// under-approximation is the standard trade-off for a stdlib-only linter: it
// can miss an edge, so passes built on it report "potential" rather than
// "proven" properties.
type CallGraph struct {
	decls map[*types.Func]*funcDecl
	calls map[*types.Func][]CallSite
}

type funcDecl struct {
	unit *Unit
	decl *ast.FuncDecl
}

// CallSite is one resolved call inside a function body.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// DeclOf returns the declaration of fn, or (nil, nil) for functions without
// a body in the module (interface methods, stdlib, function values).
func (g *CallGraph) DeclOf(fn *types.Func) (*Unit, *ast.FuncDecl) {
	d, ok := g.decls[fn]
	if !ok {
		return nil, nil
	}
	return d.unit, d.decl
}

// CalleesOf returns the resolved call sites in fn's body, in source order.
func (g *CallGraph) CalleesOf(fn *types.Func) []CallSite {
	return g.calls[fn]
}

// Functions returns every declared function in the graph, sorted by full
// name for determinism.
func (g *CallGraph) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

func buildCallGraph(units []*Unit) *CallGraph {
	g := &CallGraph{
		decls: make(map[*types.Func]*funcDecl),
		calls: make(map[*types.Func][]CallSite),
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.decls[fn] = &funcDecl{unit: u, decl: fd}
				// First sweep: direct calls. Idents consumed as the callee
				// of a call are remembered so the reference sweep below
				// doesn't double-count them.
				direct := make(map[*ast.Ident]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch fun := unparen(call.Fun).(type) {
					case *ast.Ident:
						direct[fun] = true
					case *ast.SelectorExpr:
						direct[fun.Sel] = true
					}
					if callee := resolveCallee(u, call); callee != nil {
						g.calls[fn] = append(g.calls[fn], CallSite{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
				// Second sweep: method values and stored function
				// references (`h := s.score`, `go run(fn)`, func-typed
				// struct fields). Any use of a declared function other than
				// calling it directly means the function may run wherever
				// the value flows, so it gets an edge too.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || direct[id] {
						return true
					}
					if ref, ok := u.Info.Uses[id].(*types.Func); ok {
						g.calls[fn] = append(g.calls[fn], CallSite{Callee: ref, Pos: id.Pos()})
					}
					return true
				})
			}
		}
	}
	return g
}

// resolveCallee maps a call expression to the *types.Func it statically
// invokes, or nil for conversions, builtins, and calls through values.
func resolveCallee(u *Unit, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := u.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
