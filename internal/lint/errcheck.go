package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errcheck forbids silently discarded error results in the layers where a
// swallowed error corrupts state instead of crashing: the storage tier
// (internal/kvstore), the topology runtime (internal/storm), the online
// trainer (internal/core), and the commands (cmd/...). Three shapes are
// flagged:
//
//   - a call whose error result is dropped on the floor (expression
//     statement, go statement, or deferred call);
//   - an error assigned to the blank identifier without a justification —
//     `_ = f()` or `v, _ := g()` is only allowed when a comment on the same
//     line (or the line above) says why the error is ignorable;
//
// Well-known never-failing writers (hash.Hash, strings.Builder,
// bytes.Buffer, and the fmt print family on them or on the std streams) are
// excluded, matching the contracts in their docs.

func init() {
	Register(&Pass{
		Name:  "errcheck",
		Doc:   "error results in kvstore/storm/core/cmd must be handled or justified",
		Scope: []string{"internal/kvstore", "internal/storm", "internal/core", "cmd"},
		Run:   runErrcheck,
	})
}

func runErrcheck(u *Unit) []Finding {
	c := &errChecker{u: u}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok {
					c.checkDiscardedCall(call, "")
				}
			case *ast.DeferStmt:
				c.checkDiscardedCall(s.Call, "deferred ")
			case *ast.GoStmt:
				c.checkDiscardedCall(s.Call, "goroutine ")
			case *ast.AssignStmt:
				c.checkAssign(s)
			case *ast.ValueSpec:
				c.checkValueSpec(s)
			}
			return true
		})
	}
	return c.findings
}

type errChecker struct {
	u        *Unit
	findings []Finding
}

func (c *errChecker) report(n ast.Node, format string, args ...any) {
	c.findings = append(c.findings, c.u.finding("errcheck", n.Pos(), format, args...))
}

func (c *errChecker) checkDiscardedCall(call *ast.CallExpr, kind string) {
	errPos, _ := errorResults(c.u, call)
	if len(errPos) == 0 || c.excluded(call) {
		return
	}
	c.report(call, "%scall %s discards its error result; handle it or assign to _ with a justification comment",
		kind, exprString(call.Fun))
}

// checkAssign flags error results landing in a blank identifier without a
// justification comment.
func (c *errChecker) checkAssign(s *ast.AssignStmt) {
	// Tuple form: v, _ := f()
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		errPos, n := errorResults(c.u, call)
		if n != len(s.Lhs) || c.excluded(call) {
			return
		}
		for _, i := range errPos {
			c.checkBlank(s.Lhs[i], call)
		}
		return
	}
	// Parallel form: a, b = x, y (including 1:1 `_ = f()`).
	if len(s.Rhs) == len(s.Lhs) {
		for i, rhs := range s.Rhs {
			tv, ok := c.u.Info.Types[rhs]
			if !ok || tv.Type == nil || !types.Identical(tv.Type, errorType) {
				continue
			}
			if call, ok := unparen(rhs).(*ast.CallExpr); ok && c.excluded(call) {
				continue
			}
			c.checkBlank(s.Lhs[i], rhs)
		}
	}
}

func (c *errChecker) checkValueSpec(s *ast.ValueSpec) {
	if len(s.Values) == 1 && len(s.Names) > 1 {
		call, ok := unparen(s.Values[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		errPos, n := errorResults(c.u, call)
		if n != len(s.Names) || c.excluded(call) {
			return
		}
		for _, i := range errPos {
			c.checkBlank(s.Names[i], call)
		}
	}
}

func (c *errChecker) checkBlank(lhs ast.Expr, at ast.Node) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	if txt, ok := c.u.CommentAt(at.Pos()); ok && strings.TrimSpace(txt) != "" {
		return // justified
	}
	c.report(at, "error discarded with _ and no justification comment; say why it is safe to ignore")
}

// excluded reports whether the call's error contract is "never fails" per
// the standard library docs.
func (c *errChecker) excluded(call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print family: errors only reflect the writer's errors.
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if pkg, ok := c.u.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			name := sel.Sel.Name
			if name == "Print" || name == "Printf" || name == "Println" {
				return true
			}
			if (name == "Fprint" || name == "Fprintf" || name == "Fprintln") && len(call.Args) > 0 {
				return c.neverFailingWriter(call.Args[0])
			}
			return false
		}
	}
	// Methods on never-failing writers: Write and friends on hash.Hash,
	// strings.Builder, bytes.Buffer.
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return c.neverFailingWriter(sel.X)
	}
	return false
}

// neverFailingWriter reports whether e is a writer documented never to
// return a write error: os.Stdout/os.Stderr (best-effort diagnostics),
// *strings.Builder, *bytes.Buffer, or any hash.Hash implementation.
func (c *errChecker) neverFailingWriter(e ast.Expr) bool {
	if sel, ok := unparen(e).(*ast.SelectorExpr); ok {
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			if pkg, ok := c.u.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" {
				if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
					return true
				}
			}
		}
	}
	tv, ok := c.u.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if isPkgType(t, "strings", "Builder") || isPkgType(t, "bytes", "Buffer") {
		return true
	}
	return implementsHash(t)
}

// implementsHash reports whether t satisfies hash.Hash structurally (Write +
// Sum + Reset + Size + BlockSize), without importing the hash package at
// lint time.
func implementsHash(t types.Type) bool {
	need := map[string]bool{"Write": false, "Sum": false, "Reset": false, "Size": false, "BlockSize": false}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		if _, ok := need[name]; ok {
			need[name] = true
		}
	}
	for _, got := range need {
		if !got {
			return false
		}
	}
	return true
}
