package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomiccheck enforces two rules about sync/atomic typed values
// (atomic.Int64, atomic.Uint64, atomic.Bool, ...):
//
//  1. they must only be touched through their methods — a plain read
//     (x := c.count), plain write (c.count = v), or any other value use
//     bypasses the memory-ordering guarantees and races with concurrent
//     Load/Add callers;
//  2. values whose type *contains* atomic state (the Metrics / Stats /
//     Histogram counter blocks) must not be copied by value: the copy tears
//     concurrent updates and silently forks the counters.
//
// Taking the address (&c.count) and calling methods (c.count.Add(1)) are the
// only sanctioned uses.

func init() {
	Register(&Pass{
		Name: "atomiccheck",
		Doc:  "sync/atomic values must be used via their methods and never copied",
		Run:  runAtomiccheck,
	})
}

func runAtomiccheck(u *Unit) []Finding {
	c := &atomicChecker{u: u, seen: make(map[token.Pos]bool)}
	for _, f := range u.Files {
		// Declarations: by-value receivers, params, and results of types
		// containing atomics are copies at every call.
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				c.checkFieldList(x.Recv, "receiver")
				if x.Type != nil {
					c.checkFieldList(x.Type.Params, "parameter")
					c.checkFieldList(x.Type.Results, "result")
				}
			case *ast.FuncLit:
				c.checkFieldList(x.Type.Params, "parameter")
				c.checkFieldList(x.Type.Results, "result")
			}
			return true
		})
		walkStack(f, c.visit)
	}
	return c.findings
}

type atomicChecker struct {
	u        *Unit
	findings []Finding
	seen     map[token.Pos]bool // dedupe: one finding per offending position
}

func (c *atomicChecker) report(n ast.Node, format string, args ...any) {
	if c.seen[n.Pos()] {
		return
	}
	c.seen[n.Pos()] = true
	c.findings = append(c.findings, c.u.finding("atomiccheck", n.Pos(), format, args...))
}

func (c *atomicChecker) checkFieldList(fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := c.u.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsAtomic(tv.Type) {
			c.report(field, "%s of type %s contains sync/atomic fields and is passed by value; use a pointer", kind, tv.Type)
		}
	}
}

func (c *atomicChecker) visit(n ast.Node, stack []ast.Node) bool {
	if r, ok := n.(*ast.RangeStmt); ok {
		c.checkRangeValue(r)
		return true
	}
	e, ok := n.(ast.Expr)
	if !ok {
		return true
	}
	tv, ok := c.u.Info.Types[e]
	if !ok || tv.Type == nil || !tv.IsValue() {
		return true
	}
	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	if isAtomicType(tv.Type) {
		if !atomicUseOK(e, parent) {
			c.report(e, "%s has type %s; use its Load/Store/Add/Swap methods instead of a plain value access",
				exprString(e), tv.Type)
		}
		return true
	}
	// Copy rule: an existing location of a type containing atomics used as a
	// value (assigned, passed, returned, or bound by range).
	if containsAtomic(tv.Type) && isLocationExpr(e) && copiesValue(e, parent) {
		c.report(e, "%s copies a %s by value, tearing its sync/atomic fields; use a pointer",
			exprString(e), tv.Type)
	}
	return true
}

// atomicUseOK reports whether an atomic-typed expression appears in a
// sanctioned context: as the receiver of a method selection, as the operand
// of &, or as the X of a further selection/index that will itself be checked.
func atomicUseOK(e ast.Expr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == e // receiver of .Load()/.Store()/... (methods are its only members)
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.StarExpr:
		return true // *ptr: the deref result is checked at its own position
	case *ast.ParenExpr:
		return true // inner use is judged against the paren's parent
	case *ast.KeyValueExpr:
		return p.Key == e // struct-literal field name, not a value use
	case nil:
		return true
	}
	return false
}

// isLocationExpr reports whether e denotes an existing storage location
// (rather than a freshly built value, whose copy is the initialization).
func isLocationExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// copiesValue reports whether parent consumes e as a value copy.
func copiesValue(e ast.Expr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == e {
				return true
			}
		}
	case *ast.ValueSpec:
		for _, v := range p.Values {
			if v == e {
				return true
			}
		}
	case *ast.CallExpr:
		for _, a := range p.Args {
			if a == e {
				return true
			}
		}
	case *ast.ReturnStmt:
		for _, r := range p.Results {
			if r == e {
				return true
			}
		}
	case *ast.CompositeLit:
		for _, el := range p.Elts {
			if el == e {
				return true
			}
		}
	case *ast.KeyValueExpr:
		return p.Value == e
	}
	return false
}

// checkRangeValue flags `for _, v := range xs` when binding v copies an
// atomic-bearing element; iterate by index (or over pointers) instead.
func (c *atomicChecker) checkRangeValue(r *ast.RangeStmt) {
	v, ok := r.Value.(*ast.Ident)
	if !ok || v.Name == "_" {
		return
	}
	obj := c.u.Info.Defs[v]
	if obj == nil {
		if obj = c.u.Info.Uses[v]; obj == nil {
			return
		}
	}
	t := obj.Type()
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsAtomic(t) {
		c.report(v, "range value %s copies a %s per iteration, tearing its sync/atomic fields; iterate by index", v.Name, t)
	}
}
