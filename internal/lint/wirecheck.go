package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// wirecheck guards the serialization boundary the distributed deployment
// rides on: every type that reaches a gob Encode/Decode call, a gob.Register
// registration, or the storm transport (a storm.Values tuple payload) must
// actually survive the wire:
//
//   - unexported struct fields are silently dropped by gob — the message
//     arrives, decodes without error, and is missing data;
//   - chan and func fields make Encode fail at runtime;
//   - sync.Mutex / WaitGroup / sync/atomic state is process-local by
//     definition and must never be part of a message;
//   - error fields do not encode (the stdlib error implementations are
//     unexported structs); carry a message string instead, like kvstore's
//     response.ErrMsg;
//   - interface-typed fields and tuple elements need at least one
//     gob.Register'd concrete implementation, or Decode has nothing to
//     instantiate.
//
// Types implementing gob.GobEncoder or encoding.BinaryMarshaler are opaque
// to the check — they own their wire format (time.Time is the everyday
// case). The closure follows exported fields through pointers, slices,
// arrays, and maps, so a violation buried two structs deep is still found.
//
// The hatch, on the line or the line above the reported field or element:
//
//	// wirecheck: <why the type is safe on the wire>
func init() {
	Register(&Pass{
		Name:      "wirecheck",
		Doc:       "types crossing the gob/storm wire must encode fully: exported fields, no chan/func/sync state, registered interface impls",
		RunModule: runWirecheck,
	})
}

// wireTransportTypes names the tuple-payload types whose composite literals
// count as wire roots: what goes into a storm tuple crosses process
// boundaries in the distributed deployment.
var wireTransportTypes = map[string]bool{
	"vidrec/internal/storm.Values": true,
	"fixtures/wirecheck.Values":    true,
}

func runWirecheck(prog *Program) []Finding {
	c := &wireChecker{
		prog:     prog,
		visited:  make(map[string]bool),
		reported: make(map[string]bool),
	}
	// First sweep: collect gob.Register'd concrete types module-wide, so
	// interface coverage sees registrations from any package.
	for _, u := range prog.Units {
		c.collectRegistered(u)
	}
	// Second sweep: find wire roots and close over their field types.
	for _, u := range prog.Units {
		c.collectRoots(u)
	}
	return c.findings
}

type wireChecker struct {
	prog       *Program
	registered []types.Type
	findings   []Finding
	visited    map[string]bool // type closure, keyed by types.Type.String()
	reported   map[string]bool // finding dedup, keyed by position+message
}

func (c *wireChecker) collectRegistered(u *Unit) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := gobPkgCall(u, call)
			if !ok {
				return true
			}
			var arg ast.Expr
			switch name {
			case "Register":
				if len(call.Args) == 1 {
					arg = call.Args[0]
				}
			case "RegisterName":
				if len(call.Args) == 2 {
					arg = call.Args[1]
				}
			}
			if arg == nil {
				return true
			}
			if t := u.Info.Types[arg].Type; t != nil {
				c.registered = append(c.registered, t)
			}
			return true
		})
	}
}

// gobPkgCall reports whether call is encoding/gob package-level function
// `name` (gob.Register, gob.RegisterName).
func gobPkgCall(u *Unit, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := u.Info.Uses[pkg].(*types.PkgName)
	if !ok || pn.Imported().Path() != "encoding/gob" {
		return "", false
	}
	return sel.Sel.Name, true
}

func (c *wireChecker) collectRoots(u *Unit) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				c.rootFromCall(u, x)
			case *ast.CompositeLit:
				c.rootFromTransport(u, x)
			}
			return true
		})
	}
}

// rootFromCall handles (gob.Encoder).Encode / (gob.Decoder).Decode argument
// types and gob.Register'd types.
func (c *wireChecker) rootFromCall(u *Unit, call *ast.CallExpr) {
	if name, ok := gobPkgCall(u, call); ok {
		var arg ast.Expr
		switch name {
		case "Register":
			if len(call.Args) == 1 {
				arg = call.Args[0]
			}
		case "RegisterName":
			if len(call.Args) == 2 {
				arg = call.Args[1]
			}
		}
		if arg != nil {
			if t := u.Info.Types[arg].Type; t != nil {
				c.checkType(t, u, arg.Pos(), "gob.Register")
			}
		}
		return
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	if sel.Sel.Name != "Encode" && sel.Sel.Name != "Decode" {
		return
	}
	selInfo, ok := u.Info.Selections[sel]
	if !ok || !isPkgType(selInfo.Recv(), "encoding/gob", "Encoder", "Decoder") {
		return
	}
	t := u.Info.Types[call.Args[0]].Type
	if t == nil {
		return
	}
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	c.checkType(t, u, call.Args[0].Pos(), "gob."+sel.Sel.Name)
}

// rootFromTransport treats every element of a storm.Values literal as
// crossing the wire.
func (c *wireChecker) rootFromTransport(u *Unit, lit *ast.CompositeLit) {
	named := namedFrom(u.Info.Types[lit].Type)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if !wireTransportTypes[full] {
		return
	}
	for _, elt := range lit.Elts {
		t := u.Info.Types[elt].Type
		if t == nil {
			continue
		}
		if iface, ok := t.Underlying().(*types.Interface); ok {
			if !c.covered(iface) {
				c.report(u, elt.Pos(),
					"interface-valued element crossing the storm transport has no gob.Register'd implementation; register the concrete types in an init (or annotate '// wirecheck: <why>')")
			}
			continue
		}
		c.checkType(t, u, elt.Pos(), "the storm transport")
	}
}

// checkType walks the wire closure of t, reporting fields gob would drop or
// reject. rootU/rootPos locate the wire crossing for types declared outside
// the module.
func (c *wireChecker) checkType(t types.Type, rootU *Unit, rootPos token.Pos, via string) {
	key := t.String()
	if c.visited[key] {
		return
	}
	c.visited[key] = true

	switch u := t.Underlying().(type) {
	case *types.Pointer:
		c.checkType(u.Elem(), rootU, rootPos, via)
	case *types.Slice:
		c.checkType(u.Elem(), rootU, rootPos, via)
	case *types.Array:
		c.checkType(u.Elem(), rootU, rootPos, via)
	case *types.Map:
		c.checkType(u.Key(), rootU, rootPos, via)
		c.checkType(u.Elem(), rootU, rootPos, via)
	case *types.Struct:
		if wireOpaque(t) {
			return // owns its wire format (GobEncoder / BinaryMarshaler)
		}
		c.checkStruct(t, u, rootU, rootPos, via)
	}
}

func (c *wireChecker) checkStruct(t types.Type, st *types.Struct, rootU *Unit, rootPos token.Pos, via string) {
	tname := t.String()
	if named := namedFrom(t); named != nil {
		tname = named.Obj().Name()
	}
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		u, pos := c.fieldSite(fv, rootU, rootPos)
		ft := fv.Type()
		switch {
		case !fv.Exported():
			c.report(u, pos, "unexported field %q of %s reaches the wire via %s: gob silently drops it, so the peer decodes a partial message (export it, or annotate '// wirecheck: <why>')",
				fv.Name(), tname, via)
		case isChanOrFunc(ft):
			c.report(u, pos, "field %q of %s reaches the wire via %s but has type %s, which gob cannot encode (drop it from the message, or annotate '// wirecheck: <why>')",
				fv.Name(), tname, via, ft.String())
		case isSyncState(ft):
			c.report(u, pos, "field %q of %s carries process-local synchronization state (%s) across the wire via %s (keep locks out of messages, or annotate '// wirecheck: <why>')",
				fv.Name(), tname, ft.String(), via)
		case types.Identical(ft, errorType):
			c.report(u, pos, "error field %q of %s does not gob-encode (stdlib errors are unexported types); carry a message string instead, like kvstore's response.ErrMsg (or annotate '// wirecheck: <why>')",
				fv.Name(), tname)
		default:
			if iface, ok := ft.Underlying().(*types.Interface); ok {
				if !c.covered(iface) {
					c.report(u, pos, "interface field %q of %s has no gob.Register'd implementation, so Decode has nothing to instantiate (register the concrete types in an init, or annotate '// wirecheck: <why>')",
						fv.Name(), tname)
				}
				continue
			}
			c.checkType(ft, rootU, rootPos, via)
		}
	}
}

// fieldSite resolves the unit and position to report a field finding at: the
// field's own declaration when its package is in the analyzed program, else
// the wire-crossing site.
func (c *wireChecker) fieldSite(fv *types.Var, rootU *Unit, rootPos token.Pos) (*Unit, token.Pos) {
	for _, u := range c.prog.Units {
		if u.Pkg == fv.Pkg() {
			return u, fv.Pos()
		}
	}
	return rootU, rootPos
}

func (c *wireChecker) report(u *Unit, pos token.Pos, format string, args ...any) {
	if txt, ok := u.CommentAt(pos); ok && strings.Contains(txt, "wirecheck:") {
		return
	}
	f := u.finding("wirecheck", pos, format, args...)
	key := f.File + ":" + f.Message
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.findings = append(c.findings, f)
}

// covered reports whether at least one registered concrete type satisfies
// the interface (directly or through a pointer receiver).
func (c *wireChecker) covered(iface *types.Interface) bool {
	for _, rt := range c.registered {
		if types.Implements(rt, iface) {
			return true
		}
		if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				return true
			}
		}
	}
	return false
}

func isChanOrFunc(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Chan, *types.Signature:
		return true
	}
	return false
}

// isSyncState matches the sync and sync/atomic types that must never be part
// of a message.
func isSyncState(t types.Type) bool {
	return isPkgType(t, "sync", "Mutex", "RWMutex", "WaitGroup", "Once", "Map", "Pool", "Cond") ||
		isPkgType(t, "sync/atomic", "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value")
}

// wireOpaque reports whether the type encodes itself: gob.GobEncoder or
// encoding.BinaryMarshaler on T or *T.
func wireOpaque(t types.Type) bool {
	return hasWireMethod(t, "GobEncode") || hasWireMethod(t, "MarshalBinary")
}

func hasWireMethod(t types.Type, name string) bool {
	if lookupMethod(types.NewMethodSet(t), name) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return lookupMethod(types.NewMethodSet(types.NewPointer(t)), name)
	}
	return false
}

func lookupMethod(ms *types.MethodSet, name string) bool {
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
