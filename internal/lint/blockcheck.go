package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// blockcheck keeps waits off the latency-critical paths. Two rules, both
// flowing through the shared CFG/dataflow engine:
//
//  1. No blocking operation while holding a mutex. The held-lock set is a
//     must-hold forward dataflow (intersection at joins), so a lock released
//     on every branch before the wait stays silent, and `defer mu.Unlock()`
//     correctly keeps the lock held to the end of the function.
//
//  2. No blocking operation in a hot function. Hotness is the same
//     call-graph flood alloccheck uses (hotpath.go): the functions that must
//     not allocate on the serving path must not wait on it either.
//
// Blocking operations:
//
//   - time.Sleep
//   - network I/O: net.Dial / DialTimeout / Listen / ListenPacket, and
//     Read / Write / Accept / ReadFrom / WriteTo on net package types
//     (net.Conn, net.Listener, *net.TCPConn, ...)
//   - a send or receive on a channel made unbuffered in the same function,
//     unless it sits in a select arm (the other arms are the escape)
//   - (*sync.WaitGroup).Wait
//   - a second mutex Lock/RLock while one is already held (rule 1 only —
//     a first Lock in a hot function is ordinary and stays silent)
//
// Function literals are analyzed as separate scopes with an empty entry
// lock-set: a goroutine body runs after the spawning statement returns, so
// the spawner's locks say nothing about what the literal holds.
//
// The hatch, on the line or the line above the blocking operation:
//
//	// blockcheck: <why this wait is bounded and acceptable>
func init() {
	Register(&Pass{
		Name: "blockcheck",
		Doc:  "no blocking ops while holding a lock or inside // hotpath functions",
		Scope: []string{
			"internal", "cmd",
			"fixtures/blockcheck",
		},
		RunModule: runBlockcheck,
	})
}

func runBlockcheck(prog *Program) []Finding {
	hot := hotSet(prog)
	pass := PassByName("blockcheck")
	var findings []Finding
	for _, u := range prog.Units {
		if !pass.AppliesTo(u.RelPath) {
			continue
		}
		c := &blockChecker{u: u}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				hotVia, isHot := "", false
				if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
					hotVia, isHot = hot[fn]
					if isHot {
						c.hotName = shortFuncName(fn)
					}
				}
				c.hot, c.hotVia = isHot, hotVia
				c.checkBody(fd.Body)
				// Literals run on their own goroutine or at defer time as
				// often as inline; each gets a fresh scope, never hot.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						c.hot, c.hotVia, c.hotName = false, "", ""
						c.checkBody(lit.Body)
					}
					return true
				})
			}
		}
		findings = append(findings, c.findings...)
	}
	return findings
}

type blockChecker struct {
	u        *Unit
	hot      bool
	hotVia   string
	hotName  string
	findings []Finding

	unbuffered map[types.Object]bool // chans made unbuffered in this function
	commNodes  map[ast.Node]bool     // select CommClause comm statements
	reported   map[token.Pos]bool
}

func (c *blockChecker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	if txt, ok := c.u.CommentAt(pos); ok && strings.Contains(txt, "blockcheck:") {
		return
	}
	c.reported[pos] = true
	c.findings = append(c.findings, c.u.finding("blockcheck", pos, format, args...))
}

func (c *blockChecker) checkBody(body *ast.BlockStmt) {
	c.unbuffered = make(map[types.Object]bool)
	c.commNodes = make(map[ast.Node]bool)
	c.reported = make(map[token.Pos]bool)
	c.prescan(body)

	g := BuildCFG(body)
	p := &lockProblem{c: c}
	res := Solve[lockSet](g, p)
	WalkStates[lockSet](g, p, res, func(n ast.Node, before lockSet, _ *Block) {
		if before == nil {
			return
		}
		c.scanNode(n, before)
	})
}

// prescan records which local channels are provably unbuffered (made with no
// capacity or a constant zero) and which statements are select comm clauses
// (exempt from the channel-op rule: the other arms are the escape).
func (c *blockChecker) prescan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			for _, cl := range x.Body.List {
				if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
					c.commNodes[comm.Comm] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || !c.isUnbufferedMake(x.Rhs[i]) {
					continue
				}
				if obj := c.objOf(id); obj != nil {
					c.unbuffered[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i >= len(x.Values) || !c.isUnbufferedMake(x.Values[i]) {
					continue
				}
				if obj := c.u.Info.Defs[name]; obj != nil {
					c.unbuffered[obj] = true
				}
			}
		}
		return true
	})
}

func (c *blockChecker) isUnbufferedMake(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := c.u.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	t := c.u.Info.Types[call].Type
	if t == nil {
		return false
	}
	if _, isChan := t.Underlying().(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) < 2 {
		return true // make(chan T): unbuffered
	}
	v := c.u.Info.Types[call.Args[1]].Value
	return v != nil && v.String() == "0"
}

func (c *blockChecker) objOf(id *ast.Ident) types.Object {
	if o := c.u.Info.Uses[id]; o != nil {
		return o
	}
	return c.u.Info.Defs[id]
}

// scanNode sweeps one CFG node for blocking operations, with the before
// lock-set in hand. RangeStmt appears whole in its head block, so only its
// operand is scanned here — body statements are their own nodes. Defer
// bodies run at exit with an unknown lock-set, and func literals are
// separate scopes; both subtrees are pruned.
func (c *blockChecker) scanNode(n ast.Node, held lockSet) {
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return
	}
	root := n
	if rs, ok := n.(*ast.RangeStmt); ok {
		root = rs.X
	}
	inComm := c.commNodes[n]
	ast.Inspect(root, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if !inComm {
				c.checkChanOp(x.Chan, "send on", held)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inComm {
				c.checkChanOp(x.X, "receive from", held)
			}
		case *ast.CallExpr:
			c.checkBlockingCall(x, held)
		}
		return true
	})
}

func (c *blockChecker) checkChanOp(ch ast.Expr, op string, held lockSet) {
	id, ok := unparen(ch).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.objOf(id)
	if obj == nil || !c.unbuffered[obj] {
		return
	}
	c.blocking(ch.Pos(), op+" unbuffered channel \""+id.Name+"\"", held, true)
}

// checkBlockingCall classifies call sites: time.Sleep, net package I/O,
// WaitGroup.Wait, and mutex acquisition (blocking only when a lock is
// already held).
func (c *blockChecker) checkBlockingCall(call *ast.CallExpr, held lockSet) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level calls: time.Sleep, net.Dial and friends.
	if pkg, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := c.u.Info.Uses[pkg].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Sleep" {
					c.blocking(call.Pos(), "time.Sleep", held, true)
				}
			case "net":
				switch sel.Sel.Name {
				case "Dial", "DialTimeout", "Listen", "ListenPacket":
					c.blocking(call.Pos(), "net."+sel.Sel.Name, held, true)
				}
			}
			return
		}
	}
	// Method calls: resolve the receiver type.
	selInfo, ok := c.u.Info.Selections[sel]
	if !ok {
		return
	}
	recv := selInfo.Recv()
	switch sel.Sel.Name {
	case "Read", "Write", "Accept", "ReadFrom", "WriteTo":
		if isNetType(recv) {
			c.blocking(call.Pos(), "network "+strings.ToLower(sel.Sel.Name)+" ("+exprString(sel.X)+"."+sel.Sel.Name+")", held, true)
		}
	case "Wait":
		if isPkgType(recv, "sync", "WaitGroup") {
			c.blocking(call.Pos(), "sync.WaitGroup.Wait", held, true)
		}
	case "Lock", "RLock":
		if isMutexType(recv) && len(held) > 0 {
			c.blocking(call.Pos(), "acquiring "+exprString(sel.X), held, false)
		}
	}
}

// blocking reports op under whichever rule applies: a held lock first, then
// hotness (hotInScope gates ops that are only a problem under a lock).
func (c *blockChecker) blocking(pos token.Pos, op string, held lockSet, hotInScope bool) {
	if len(held) > 0 {
		c.report(pos, "%s while holding %s — the lock is held for the full wait, stalling every contender (release it before blocking, or annotate '// blockcheck: <why>')",
			op, held.oneLock())
		return
	}
	if c.hot && hotInScope {
		where := "hot function " + c.hotName
		if c.hotVia != "" {
			where += " (hot via " + c.hotVia + ")"
		}
		c.report(pos, "%s in %s — the serving path must not wait (move it off the request path, or annotate '// blockcheck: <why>')",
			op, where)
	}
}

// isNetType reports whether t (possibly a pointer) is a named type from the
// net package — net.Conn, net.Listener, *net.TCPConn, ...
func isNetType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named := namedFrom(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net"
}

// lockSet is the must-hold lock state: receiver expression -> held. nil
// means "not yet reached" (top), distinct from the empty set.
type lockSet map[string]bool

// oneLock renders a deterministic representative of the held set for a
// finding message.
func (s lockSet) oneLock() string {
	best := ""
	for k := range s {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockProblem is the must-hold forward dataflow: Lock adds, Unlock removes,
// and joins intersect so only locks held on every inbound path count.
type lockProblem struct {
	c *blockChecker
}

func (p *lockProblem) Bottom() lockSet { return nil }
func (p *lockProblem) Entry() lockSet  { return lockSet{} }

func (p *lockProblem) Join(a, b lockSet) lockSet {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (p *lockProblem) Equal(a, b lockSet) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (p *lockProblem) Transfer(s lockSet, n ast.Node, _ *Block) lockSet {
	if s == nil {
		return nil // unreached in-state stays unreached
	}
	if _, isDefer := n.(*ast.DeferStmt); isDefer {
		return s // deferred Unlock runs at return, not here
	}
	root := n
	if rs, ok := n.(*ast.RangeStmt); ok {
		root = rs.X // the body is its own nodes; see cfg.go
	}
	out := s
	cloned := false
	set := func(key string, held bool) {
		if !cloned {
			c := lockSet{}
			for k := range out {
				c[k] = true
			}
			out, cloned = c, true
		}
		if held {
			out[key] = true
		} else {
			delete(out, key)
		}
	}
	ast.Inspect(root, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := p.c.u.Info.Selections[sel]
			if !ok || !isMutexType(selInfo.Recv()) {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				set(exprString(sel.X), true)
			case "Unlock", "RUnlock":
				set(exprString(sel.X), false)
			}
		}
		return true
	})
	return out
}
