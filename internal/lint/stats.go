package lint

import "strings"

// PassStats summarizes one pass's outcome for a run: how many findings
// survived the baseline, how many the baseline suppressed, and how many
// inline escape hatches the scanned source carries for the pass. The hatch
// count is the honest cost of the pass's discipline — every hatch is a
// human-reviewed exception, and `make lint-stats` keeps that number visible
// instead of letting exceptions accrete silently.
type PassStats struct {
	Pass      string `json:"pass"`
	Findings  int    `json:"findings"`
	Baselined int    `json:"baselined"`
	Hatches   int    `json:"hatches"`
}

// hatchMarker returns the inline comment marker that suppresses a pass.
// Every pass uses "<name>:" except goroutinecheck, whose historical marker
// is "vidlint:detached".
func hatchMarker(name string) string {
	if name == "goroutinecheck" {
		return "vidlint:detached"
	}
	return name + ":"
}

// CollectStats builds per-pass counters from one run. all is the pre-baseline
// finding set and kept the post-baseline survivors; hatch comments are
// counted across every loaded unit's source comments.
func CollectStats(units []*Unit, passes []*Pass, all, kept []Finding) []PassStats {
	allN := make(map[string]int)
	for _, f := range all {
		allN[f.Pass]++
	}
	keptN := make(map[string]int)
	for _, f := range kept {
		keptN[f.Pass]++
	}
	hatch := make(map[string]int)
	for _, u := range units {
		for _, file := range u.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					// A hatch comment leads with its marker ("// alloccheck:
					// reason ..."); requiring the prefix keeps prose that
					// merely quotes a marker (pass documentation examples)
					// out of the count.
					txt := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
					for _, p := range passes {
						if strings.HasPrefix(txt, hatchMarker(p.Name)) {
							hatch[p.Name]++
						}
					}
				}
			}
		}
	}
	out := make([]PassStats, 0, len(passes))
	for _, p := range passes {
		out = append(out, PassStats{
			Pass:      p.Name,
			Findings:  keptN[p.Name],
			Baselined: allN[p.Name] - keptN[p.Name],
			Hatches:   hatch[p.Name],
		})
	}
	return out
}
