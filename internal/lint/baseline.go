package lint

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is a suppression list: known findings that predate a pass and are
// accepted until fixed. It lets a new pass land and gate CI on *new*
// findings immediately, while the backlog is burned down separately.
//
// Entries are keyed by (pass, file, message) — deliberately not by line, so
// unrelated edits that shift code around don't invalidate the baseline. The
// file format is one tab-separated entry per line:
//
//	pass<TAB>file<TAB>message
//
// Lines starting with '#' and blank lines are ignored. `vidlint
// -write-baseline` regenerates the file from current findings; `make
// lint-baseline` wraps that.
// A baseline is one-way: it records debt, it never accumulates more. Filter
// remembers which entries actually matched, Stale reports the ones that no
// longer suppress anything (they must be removed, not kept as dead weight),
// and Prune rewrites the file down to the matched set. Growing the file is
// only possible through an explicit -write-baseline of a new backlog.
type Baseline struct {
	entries map[string]bool
	matched map[string]bool
}

func baselineKey(f Finding) string {
	return f.Pass + "\t" + f.File + "\t" + f.Message
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline — the zero state suppresses nothing.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]bool), matched: make(map[string]bool)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only descriptor
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("lint: baseline: malformed entry %q (want pass<TAB>file<TAB>message)", line)
		}
		b.entries[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	return b, nil
}

// Len returns the number of suppressions.
func (b *Baseline) Len() int { return len(b.entries) }

// Filter returns the findings not covered by the baseline, and records which
// entries matched so Stale can report the leftovers.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if len(b.entries) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		if k := baselineKey(f); b.entries[k] {
			b.matched[k] = true
		} else {
			out = append(out, f)
		}
	}
	return out
}

// Stale returns the entries no Filter call has matched, sorted. A stale
// entry means the suppressed finding was fixed (or its message changed):
// either way the suppression is dead and keeping it would let the finding
// silently come back, so callers treat a non-empty result as an error.
func (b *Baseline) Stale() []string {
	var out []string
	for k := range b.entries {
		if !b.matched[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Prune rewrites the baseline file keeping only the entries that matched a
// finding, and returns how many stale entries were dropped. The result can
// only be equal to or smaller than the loaded file — Prune never adds.
func (b *Baseline) Prune(path string) (dropped int, err error) {
	keep := make([]string, 0, len(b.matched))
	for k := range b.matched {
		keep = append(keep, k)
	}
	sort.Strings(keep)
	if err := writeBaselineKeys(path, keep); err != nil {
		return 0, err
	}
	return len(b.entries) - len(keep), nil
}

// NewKeys returns the keys of findings not already covered by the baseline,
// sorted and deduplicated. A non-empty result means rewriting the baseline
// from these findings would grow it.
func (b *Baseline) NewKeys(findings []Finding) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range findings {
		k := baselineKey(f)
		if !b.entries[k] && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// WriteBaseline writes findings as a baseline file, sorted and deduplicated.
func WriteBaseline(path string, findings []Finding) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool, len(findings))
	for _, f := range findings {
		k := baselineKey(f)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return writeBaselineKeys(path, keys)
}

func writeBaselineKeys(path string, keys []string) error {
	var sb strings.Builder
	sb.WriteString("# vidlint baseline: accepted pre-existing findings (pass<TAB>file<TAB>message).\n")
	sb.WriteString("# Regenerate with `make lint-baseline`. An empty file means the tree is clean.\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("lint: baseline: %w", err)
	}
	return nil
}
