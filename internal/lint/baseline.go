package lint

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline is a suppression list: known findings that predate a pass and are
// accepted until fixed. It lets a new pass land and gate CI on *new*
// findings immediately, while the backlog is burned down separately.
//
// Entries are keyed by (pass, file, message) — deliberately not by line, so
// unrelated edits that shift code around don't invalidate the baseline. The
// file format is one tab-separated entry per line:
//
//	pass<TAB>file<TAB>message
//
// Lines starting with '#' and blank lines are ignored. `vidlint
// -write-baseline` regenerates the file from current findings; `make
// lint-baseline` wraps that.
type Baseline struct {
	entries map[string]bool
}

func baselineKey(f Finding) string {
	return f.Pass + "\t" + f.File + "\t" + f.Message
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline — the zero state suppresses nothing.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]bool)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only descriptor
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("lint: baseline: malformed entry %q (want pass<TAB>file<TAB>message)", line)
		}
		b.entries[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	return b, nil
}

// Len returns the number of suppressions.
func (b *Baseline) Len() int { return len(b.entries) }

// Filter returns the findings not covered by the baseline.
func (b *Baseline) Filter(findings []Finding) []Finding {
	if len(b.entries) == 0 {
		return findings
	}
	out := findings[:0]
	for _, f := range findings {
		if !b.entries[baselineKey(f)] {
			out = append(out, f)
		}
	}
	return out
}

// WriteBaseline writes findings as a baseline file, sorted and deduplicated.
func WriteBaseline(path string, findings []Finding) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool, len(findings))
	for _, f := range findings {
		k := baselineKey(f)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# vidlint baseline: accepted pre-existing findings (pass<TAB>file<TAB>message).\n")
	sb.WriteString("# Regenerate with `make lint-baseline`. An empty file means the tree is clean.\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return fmt.Errorf("lint: baseline: %w", err)
	}
	return nil
}
