package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// lockorder is the module-level deadlock detector: it builds a global
// lock-acquisition graph — which mutex classes are taken while others are
// held, following static calls across package boundaries — and reports
// cycles as potential AB-BA deadlocks.
//
// A "lock class" is a mutex declaration site: a struct field of type
// sync.Mutex/RWMutex (all instances of the struct share the class, which is
// the right granularity for AB-BA between different types) or a package-level
// mutex variable. An edge A -> B is recorded when B is acquired — directly
// or transitively through a call — while A is held.
//
// The declaration convention: a comment anywhere in the module of the form
//
//	// lockorder: <A> before <B>
//
// (class names as reported in findings, e.g. "kvstore.Server.mu before
// kvstore.Client.mu") declares the intended global order. Declared edges
// join the graph, so a declared order plus a contradicting acquisition forms
// a cycle and is reported even before a second code path closes the loop;
// an acquisition that directly contradicts a declaration is additionally
// reported on its own line.
//
// Like the call graph it runs on, the analysis under-approximates (calls
// through function values and interface dispatch are not followed), so a
// clean report is evidence, not proof — but every reported cycle is a real
// ordering inversion in the source.

func init() {
	Register(&Pass{
		Name:      "lockorder",
		Doc:       "no cycles in the global lock-acquisition order (potential deadlocks)",
		RunModule: runLockorder,
	})
}

var lockorderDeclRe = regexp.MustCompile(`lockorder:\s*([\w.]+)\s+before\s+([\w.]+)`)

// lockClass identifies one mutex declaration site.
type lockClass struct {
	obj  types.Object // field or package-level var
	name string       // display name, e.g. "kvstore.Server.mu"
}

type lockEdge struct {
	from, to *lockClass
	pos      token.Pos // acquisition that created the edge
	unit     *Unit
	declared bool // edge from a lockorder: comment, not from code
}

type lockorderChecker struct {
	prog    *Program
	classes map[types.Object]*lockClass
	byName  map[string]*lockClass
	edges   []lockEdge
	// acquires memoizes the transitive set of classes a function may
	// acquire; nil value marks in-progress nodes (cycle in call graph).
	acquires map[*types.Func]map[*lockClass]bool
	findings []Finding
}

func runLockorder(prog *Program) []Finding {
	c := &lockorderChecker{
		prog:     prog,
		classes:  make(map[types.Object]*lockClass),
		byName:   make(map[string]*lockClass),
		acquires: make(map[*types.Func]map[*lockClass]bool),
	}
	cg := prog.CallGraph()
	fns := cg.Functions()
	for _, fn := range fns {
		c.transAcquires(fn)
	}
	for _, fn := range fns {
		c.collectEdges(fn)
	}
	c.collectDeclarations()
	c.checkContradictions()
	c.checkCycles()
	return c.findings
}

// classOf interns the lock class for the mutex reached by expression
// recv.field (or a bare identifier for package-level mutexes), returning nil
// when the expression is not a recognizable mutex.
func (c *lockorderChecker) classOf(u *Unit, e ast.Expr) *lockClass {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		sel := u.Info.Selections[x]
		if sel == nil || sel.Kind() != types.FieldVal {
			// Could be pkg.Var.
			if obj, ok := u.Info.Uses[x.Sel].(*types.Var); ok && isMutexType(obj.Type()) {
				return c.intern(obj, obj.Pkg().Name()+"."+obj.Name())
			}
			return nil
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok || !isMutexType(field.Type()) {
			return nil
		}
		name := field.Name()
		if n := namedFrom(u.Info.Types[x.X].Type); n != nil {
			name = n.Obj().Name() + "." + name
		}
		if field.Pkg() != nil {
			name = field.Pkg().Name() + "." + name
		}
		return c.intern(field, name)
	case *ast.Ident:
		obj, _ := u.Info.Uses[x].(*types.Var)
		if obj == nil {
			obj, _ = u.Info.Defs[x].(*types.Var)
		}
		if obj == nil || !isMutexType(obj.Type()) {
			return nil
		}
		name := obj.Name()
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			name = obj.Pkg().Name() + "." + name
		}
		return c.intern(obj, name)
	}
	return nil
}

func (c *lockorderChecker) intern(obj types.Object, name string) *lockClass {
	if cl, ok := c.classes[obj]; ok {
		return cl
	}
	cl := &lockClass{obj: obj, name: name}
	c.classes[obj] = cl
	c.byName[name] = cl
	return cl
}

// acquireOp recognizes <mutex>.Lock() / RLock() calls and returns the class
// acquired; release reports Unlock/RUnlock.
func (c *lockorderChecker) acquireOp(u *Unit, call *ast.CallExpr) (cl *lockClass, acquire bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil, false
	}
	if tv, has := u.Info.Types[sel.X]; !has || !isMutexType(tv.Type) {
		return nil, false
	}
	return c.classOf(u, sel.X), acquire
}

// transAcquires computes the set of lock classes fn may acquire, following
// static calls. Call-graph cycles are cut by the in-progress marker.
func (c *lockorderChecker) transAcquires(fn *types.Func) map[*lockClass]bool {
	if got, ok := c.acquires[fn]; ok {
		if got == nil {
			return map[*lockClass]bool{} // recursion: contribute nothing extra
		}
		return got
	}
	c.acquires[fn] = nil // mark in progress
	out := make(map[*lockClass]bool)
	cg := c.prog.CallGraph()
	u, fd := cg.DeclOf(fn)
	if fd != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cl, acquire := c.acquireOp(u, call); cl != nil && acquire {
				out[cl] = true
			}
			return true
		})
		for _, site := range cg.CalleesOf(fn) {
			for cl := range c.transAcquires(site.Callee) {
				out[cl] = true
			}
		}
	}
	c.acquires[fn] = out
	return out
}

// collectEdges walks fn's body in source order tracking the held set, and
// records an edge for every acquisition (direct or via call) under a held
// lock. Deferred unlocks keep the lock held to the end of the function,
// which is what the edge semantics want.
func (c *lockorderChecker) collectEdges(fn *types.Func) {
	cg := c.prog.CallGraph()
	u, fd := cg.DeclOf(fn)
	if fd == nil {
		return
	}
	held := make(map[*lockClass]token.Pos) // class -> pos it was taken at
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			// A deferred Unlock runs at function exit, so the lock stays held
			// for the remainder of the walk — skip the call rather than
			// releasing early. Other deferred calls are walked normally.
			if cl, acquire := c.acquireOp(u, d.Call); cl != nil && !acquire {
				return false
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if cl, acquire := c.acquireOp(u, call); cl != nil {
			if acquire {
				for from := range held {
					if from != cl {
						c.edges = append(c.edges, lockEdge{from: from, to: cl, pos: call.Pos(), unit: u})
					}
				}
				held[cl] = call.Pos()
			} else {
				delete(held, cl)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		if callee := resolveCallee(u, call); callee != nil && callee != fn {
			for to := range c.transAcquires(callee) {
				for from := range held {
					if from != to {
						c.edges = append(c.edges, lockEdge{from: from, to: to, pos: call.Pos(), unit: u})
					}
				}
			}
		}
		return true
	})
}

// collectDeclarations turns declaration comments (the "<A> before <B>" form
// under the pass's comment prefix) into declared edges. Unknown class names
// are reported — a stale declaration is itself a finding.
func (c *lockorderChecker) collectDeclarations() {
	for _, u := range c.prog.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					m := lockorderDeclRe.FindStringSubmatch(cm.Text)
					if m == nil {
						continue
					}
					from, okFrom := c.byName[m[1]]
					to, okTo := c.byName[m[2]]
					if !okFrom || !okTo {
						missing := m[1]
						if okFrom {
							missing = m[2]
						}
						c.findings = append(c.findings, u.finding("lockorder", cm.Pos(),
							"declaration 'lockorder: %s before %s' names unknown lock class %q", m[1], m[2], missing))
						continue
					}
					c.edges = append(c.edges, lockEdge{from: from, to: to, pos: cm.Pos(), unit: u, declared: true})
				}
			}
		}
	}
}

// checkContradictions reports observed acquisitions that invert a declared
// order — the earliest possible deadlock warning, before a second code path
// completes the cycle.
func (c *lockorderChecker) checkContradictions() {
	declared := make(map[[2]*lockClass]bool)
	for _, e := range c.edges {
		if e.declared {
			declared[[2]*lockClass{e.from, e.to}] = true
		}
	}
	for _, e := range c.edges {
		if e.declared {
			continue
		}
		if declared[[2]*lockClass{e.to, e.from}] {
			c.findings = append(c.findings, e.unit.finding("lockorder", e.pos,
				"%s acquired while holding %s, contradicting declared 'lockorder: %s before %s'",
				e.to.name, e.from.name, e.to.name, e.from.name))
		}
	}
}

// checkCycles finds strongly connected components of the acquisition graph
// and reports every code edge inside one. Self-edges (A taken while A is
// held) never arise here — collectEdges skips them — so any SCC of size >= 2
// is a potential deadlock.
func (c *lockorderChecker) checkCycles() {
	// Adjacency over interned classes.
	adj := make(map[*lockClass]map[*lockClass]bool)
	for _, e := range c.edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[*lockClass]bool)
		}
		adj[e.from][e.to] = true
	}
	scc := stronglyConnected(adj)
	for _, e := range c.edges {
		if e.declared {
			continue // the code edge carries the report; declarations are context
		}
		if scc[e.from] != 0 && scc[e.from] == scc[e.to] {
			cycle := cycleNames(scc, scc[e.from])
			c.findings = append(c.findings, e.unit.finding("lockorder", e.pos,
				"lock order cycle (potential deadlock): %s acquired while holding %s; cycle members: %s",
				e.to.name, e.from.name, cycle))
		}
	}
}

// sccIDs assigns each class in a multi-node SCC a nonzero component id.
var sccNames map[int][]string // set by stronglyConnected for cycle reporting

func stronglyConnected(adj map[*lockClass]map[*lockClass]bool) map[*lockClass]int {
	// Tarjan's algorithm, iterative enough for lint-sized graphs via
	// recursion (lock graphs are tiny).
	index := make(map[*lockClass]int)
	low := make(map[*lockClass]int)
	onStack := make(map[*lockClass]bool)
	var stack []*lockClass
	comp := make(map[*lockClass]int)
	sccNames = make(map[int][]string)
	next, compID := 0, 0

	nodes := make([]*lockClass, 0, len(adj))
	seen := make(map[*lockClass]bool)
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })

	var visit func(v *lockClass)
	visit = func(v *lockClass) {
		next++
		index[v] = next
		low[v] = next
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]*lockClass, 0, len(adj[v]))
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Slice(tos, func(i, j int) bool { return tos[i].name < tos[j].name })
		for _, w := range tos {
			if index[w] == 0 {
				visit(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []*lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) >= 2 {
				compID++
				var names []string
				for _, m := range members {
					comp[m] = compID
					names = append(names, m.name)
				}
				sort.Strings(names)
				sccNames[compID] = names
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			visit(v)
		}
	}
	return comp
}

func cycleNames(comp map[*lockClass]int, id int) string {
	return strings.Join(sccNames[id], ", ")
}
