package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses a single function body and builds its CFG. The source
// is the body's statement list, without braces.
func buildTestCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// kindCount tallies reachable blocks by kind.
func kindCount(g *CFG) map[BlockKind]int {
	m := make(map[BlockKind]int)
	for _, b := range g.Blocks {
		if b.Reachable {
			m[b.Kind]++
		}
	}
	return m
}

// edgeKinds tallies edges out of reachable blocks by kind.
func edgeKinds(g *CFG) map[EdgeKind]int {
	m := make(map[EdgeKind]int)
	for _, b := range g.Blocks {
		if !b.Reachable {
			continue
		}
		for _, e := range b.Succs {
			m[e.Kind]++
		}
	}
	return m
}

func TestCFGShapes(t *testing.T) {
	tests := []struct {
		name string
		body string
		// expectations; zero values mean "don't check"
		kinds     map[BlockKind]int
		retEdges  int
		fallEdges int
		panics    int
		condEdges int
		defers    int
		deadKinds []BlockKind // kinds that must have at least one dead block
	}{
		{
			name:      "straight line",
			body:      "x := 1\ny := x\n_ = y",
			kinds:     map[BlockKind]int{KindEntry: 1, KindExit: 1},
			fallEdges: 1,
		},
		{
			name:     "return ends flow",
			body:     "x := 1\nreturn\n_ = x",
			retEdges: 1, fallEdges: 0,
		},
		{
			name:      "if without else falls through",
			body:      "if x() {\n\ty()\n}\nz()",
			kinds:     map[BlockKind]int{KindThen: 1, KindAfter: 1},
			condEdges: 2,
			fallEdges: 1,
		},
		{
			name:      "if else both return",
			body:      "if x() {\n\treturn\n} else {\n\treturn\n}",
			kinds:     map[BlockKind]int{KindThen: 1, KindElse: 1},
			retEdges:  2,
			fallEdges: 0,
		},
		{
			name: "short circuit and",
			body: "if a() && b() {\n\tc()\n}",
			// a's leaf in entry, b's leaf in a KindCond block: 4 branch edges
			kinds:     map[BlockKind]int{KindCond: 1},
			condEdges: 4,
			fallEdges: 1,
		},
		{
			name:      "short circuit or with not",
			body:      "if !a() || b() {\n\tc()\n}",
			condEdges: 4,
			fallEdges: 1,
		},
		{
			name:      "for loop",
			body:      "for i := 0; i < 10; i++ {\n\twork()\n}\ndone()",
			kinds:     map[BlockKind]int{KindLoopBody: 1, KindLoopPost: 1, KindAfter: 1},
			condEdges: 2,
			fallEdges: 1,
		},
		{
			name:      "infinite for without break strands after",
			body:      "for {\n\twork()\n}",
			fallEdges: 0,
			deadKinds: []BlockKind{KindAfter},
		},
		{
			name:      "for with break reaches after",
			body:      "for {\n\tif x() {\n\t\tbreak\n\t}\n}\ndone()",
			fallEdges: 1,
		},
		{
			name:      "range loop",
			body:      "for _, v := range xs {\n\tuse(v)\n}\ndone()",
			kinds:     map[BlockKind]int{KindLoopBody: 1, KindAfter: 1},
			fallEdges: 1,
		},
		{
			name:      "switch with default has no head to after edge",
			body:      "switch x() {\ncase 1:\n\ta()\ncase 2:\n\tb()\ndefault:\n\tc()\n}\ndone()",
			kinds:     map[BlockKind]int{KindClause: 3, KindAfter: 1},
			fallEdges: 1,
		},
		{
			name:      "switch fallthrough chains clauses",
			body:      "switch x() {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\n}\ndone()",
			kinds:     map[BlockKind]int{KindClause: 2},
			fallEdges: 1,
		},
		{
			name:      "type switch",
			body:      "switch v := x.(type) {\ncase int:\n\tuse(v)\ndefault:\n\tother(v)\n}",
			kinds:     map[BlockKind]int{KindClause: 2},
			fallEdges: 1,
		},
		{
			name:      "select arms",
			body:      "select {\ncase <-a:\n\tone()\ncase b <- v:\n\ttwo()\n}\ndone()",
			kinds:     map[BlockKind]int{KindClause: 2, KindAfter: 1},
			fallEdges: 1,
		},
		{
			name:      "select arms all return",
			body:      "select {\ncase <-a:\n\treturn\ncase <-b:\n\treturn\n}",
			retEdges:  2,
			fallEdges: 0,
			deadKinds: []BlockKind{KindAfter},
		},
		{
			name:      "panic edges to exit",
			body:      "if x() {\n\tpanic(\"boom\")\n}\ndone()",
			panics:    1,
			fallEdges: 1,
		},
		{
			name:   "defer collected and flow continues",
			body:   "defer cleanup()\nwork()",
			defers: 1, fallEdges: 1,
		},
		{
			name:      "labeled break from nested loop",
			body:      "outer:\nfor {\n\tfor {\n\t\tif x() {\n\t\t\tbreak outer\n\t\t}\n\t}\n}\ndone()",
			fallEdges: 1,
		},
		{
			name:      "goto backward",
			body:      "i := 0\nagain:\ni++\nif i < 3 {\n\tgoto again\n}\ndone()",
			fallEdges: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildTestCFG(t, tt.body)
			kinds := kindCount(g)
			edges := edgeKinds(g)
			for k, want := range tt.kinds {
				if kinds[k] != want {
					t.Errorf("reachable %s blocks = %d, want %d\n%s", k, kinds[k], want, g.debugString())
				}
			}
			if tt.retEdges != 0 || strings.Contains(tt.name, "return") {
				if edges[EdgeReturn] != tt.retEdges {
					t.Errorf("return edges = %d, want %d\n%s", edges[EdgeReturn], tt.retEdges, g.debugString())
				}
			}
			if got := len(g.FallEdges()); got != tt.fallEdges {
				t.Errorf("fall edges = %d, want %d\n%s", got, tt.fallEdges, g.debugString())
			}
			if edges[EdgePanic] != tt.panics {
				t.Errorf("panic edges = %d, want %d", edges[EdgePanic], tt.panics)
			}
			if tt.condEdges != 0 && edges[EdgeCond] != tt.condEdges {
				t.Errorf("cond edges = %d, want %d\n%s", edges[EdgeCond], tt.condEdges, g.debugString())
			}
			if len(g.Defers) != tt.defers {
				t.Errorf("defers = %d, want %d", len(g.Defers), tt.defers)
			}
			for _, k := range tt.deadKinds {
				dead := false
				for _, b := range g.Blocks {
					if b.Kind == k && !b.Reachable {
						dead = true
					}
				}
				if !dead {
					t.Errorf("expected a dead %s block\n%s", k, g.debugString())
				}
			}
			// Structural invariants on every shape.
			if !g.Entry.Reachable {
				t.Error("entry not reachable")
			}
			for _, b := range g.Blocks {
				for _, e := range b.Succs {
					if e.From != b {
						t.Errorf("edge from-pointer mismatch on b%d", b.Index)
					}
					found := false
					for _, pe := range e.To.Preds {
						if pe == e {
							found = true
						}
					}
					if !found {
						t.Errorf("edge b%d->b%d missing from preds", b.Index, e.To.Index)
					}
				}
			}
		})
	}
}

// TestCFGCondLeafEdges checks that decomposed branch edges carry the leaf
// condition, not the composite expression.
func TestCFGCondLeafEdges(t *testing.T) {
	g := buildTestCFG(t, "if a() && !b() {\n\tc()\n}\ndone()")
	var leaves []string
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Kind == EdgeCond && e.Branch {
				leaves = append(leaves, exprString(e.Cond))
			}
		}
	}
	if len(leaves) != 2 {
		t.Fatalf("true-branch leaf edges = %v, want 2", leaves)
	}
	for _, l := range leaves {
		if l != "a(...)" && l != "b(...)" {
			t.Errorf("leaf condition %q, want a(...) or b(...)", l)
		}
	}
	// The then-block is entered on b()'s *false* edge (it was negated).
	for _, b := range g.Blocks {
		if b.Kind != KindThen {
			continue
		}
		for _, e := range b.Preds {
			if e.Kind != EdgeCond {
				t.Errorf("then-block entered by non-cond edge")
			} else if exprString(e.Cond) == "b(...)" && e.Branch {
				t.Errorf("then-block entered on b()==true; negation should flip the branch")
			}
		}
	}
}
