package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// lockcheck enforces the repo's "// guarded by <mu>" annotation convention:
// a struct field carrying that comment may only be read or written while the
// named sibling sync.Mutex/RWMutex is held, and never mixed with bare
// accesses. The analysis is a per-function abstract interpretation over the
// AST: Lock/RLock on a tracked (variable, mutex) pair sets the held bit,
// Unlock/RUnlock clears it, branches fork the state and merge by
// intersection, and branches that terminate (return/break/panic) drop out of
// the merge — which is exactly the shape of the early-return unlock pattern
// the codebase uses. Deferred unlocks do not clear the bit, and goroutine
// bodies start with nothing held.
//
// Escape hatches, in order of preference:
//   - constructors (functions named new*/New*) are exempt: a value under
//     construction is not yet shared;
//   - a function whose doc comment says "caller holds <mu>" is checked as if
//     <mu> were already held (the doc is the lock contract).

func init() {
	Register(&Pass{
		Name: "lockcheck",
		Doc:  "fields annotated '// guarded by <mu>' must be accessed with <mu> held",
		Run:  runLockcheck,
	})
}

var (
	guardedByRe   = regexp.MustCompile(`guarded by (\w+)`)
	callerHoldsRe = regexp.MustCompile(`caller (?:must )?holds? (\w+)`)
)

func runLockcheck(u *Unit) []Finding {
	c := &lockChecker{u: u, guarded: make(map[types.Object]string)}
	c.collectAnnotations()
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return c.findings
}

type lockKey struct {
	base types.Object // the variable the struct is reached through
	mu   string       // mutex field name
}

type lockState map[lockKey]bool

func cloneState(st lockState) lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func intersectState(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if v && b[k] {
			out[k] = true
		}
	}
	return out
}

type lockChecker struct {
	u        *Unit
	guarded  map[types.Object]string // field object -> guarding mutex name
	preHeld  map[string]bool         // mutex names held per the doc contract
	findings []Finding
}

func (c *lockChecker) report(n ast.Node, format string, args ...any) {
	c.findings = append(c.findings, c.u.finding("lockcheck", n.Pos(), format, args...))
}

// collectAnnotations finds guarded-field annotations and validates that the
// named mutex exists as a sibling field.
func (c *lockChecker) collectAnnotations() {
	for _, f := range c.u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				txt := field.Doc.Text() + " " + field.Comment.Text()
				m := guardedByRe.FindStringSubmatch(txt)
				if m == nil {
					continue
				}
				mu := m[1]
				if !c.hasMutexField(st, mu) {
					c.report(field, "annotation 'guarded by %s' names no sync.Mutex/RWMutex field in this struct", mu)
					continue
				}
				for _, name := range field.Names {
					if obj := c.u.Info.Defs[name]; obj != nil {
						c.guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
}

func (c *lockChecker) hasMutexField(st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			if tv, ok := c.u.Info.Types[field.Type]; ok && isMutexType(tv.Type) {
				return true
			}
		}
	}
	return false
}

func (c *lockChecker) checkFunc(fd *ast.FuncDecl) {
	if len(c.guarded) == 0 {
		return
	}
	name := fd.Name.Name
	if len(name) >= 3 && (name[:3] == "new" || name[:3] == "New") {
		return // construction happens before the value is shared
	}
	c.preHeld = make(map[string]bool)
	for _, m := range callerHoldsRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		c.preHeld[m[1]] = true
	}
	c.block(fd.Body.List, make(lockState))
}

func (c *lockChecker) block(list []ast.Stmt, st lockState) lockState {
	for _, s := range list {
		st = c.stmt(s, st)
	}
	return st
}

func (c *lockChecker) stmt(s ast.Stmt, st lockState) lockState {
	switch s := s.(type) {
	case nil:
		return st
	case *ast.ExprStmt:
		if key, held, ok := c.lockOp(s.X); ok {
			st = cloneState(st)
			st[key] = held
			return st
		}
		c.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, st)
		}
		for _, e := range s.Lhs {
			c.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, st)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, st)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.IfStmt:
		st = c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		thenOut := c.block(s.Body.List, cloneState(st))
		thenTerm := terminates(s.Body.List)
		elseOut := st
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseOut = c.block(e.List, cloneState(st))
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseOut = c.stmt(e, cloneState(st))
		}
		switch {
		case thenTerm && elseTerm:
			return st // fallthrough is unreachable; keep entry state
		case thenTerm:
			return elseOut
		case elseTerm:
			return thenOut
		default:
			return intersectState(thenOut, elseOut)
		}
	case *ast.ForStmt:
		st = c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		c.block(s.Body.List, cloneState(st))
		c.stmt(s.Post, cloneState(st))
		return st // loops are assumed lock-balanced
	case *ast.RangeStmt:
		c.expr(s.X, st)
		c.block(s.Body.List, cloneState(st))
		return st
	case *ast.BlockStmt:
		return c.block(s.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		if _, _, ok := c.lockOp(s.Call); ok {
			return st // deferred unlock releases at exit, not here
		}
		c.expr(s.Call, st)
	case *ast.GoStmt:
		// The spawned goroutine holds nothing, whatever the parent holds.
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			c.block(lit.Body.List, make(lockState))
		} else {
			c.expr(s.Call.Fun, st)
		}
		for _, a := range s.Call.Args {
			c.expr(a, st)
		}
	case *ast.SwitchStmt:
		st = c.stmt(s.Init, st)
		c.expr(s.Tag, st)
		return c.mergeClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		st = c.stmt(s.Init, st)
		st = c.stmt(s.Assign, st)
		return c.mergeClauses(s.Body.List, st)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			sub := cloneState(st)
			sub = c.stmt(comm.Comm, sub)
			c.block(comm.Body, sub)
		}
		return st
	}
	return st
}

// mergeClauses analyzes switch/type-switch case bodies and merges the states
// of the clauses that fall through.
func (c *lockChecker) mergeClauses(clauses []ast.Stmt, st lockState) lockState {
	var merged lockState
	hasDefault := false
	for _, raw := range clauses {
		cc, ok := raw.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			c.expr(e, st)
		}
		out := c.block(cc.Body, cloneState(st))
		if terminates(cc.Body) {
			continue
		}
		if merged == nil {
			merged = out
		} else {
			merged = intersectState(merged, out)
		}
	}
	if merged == nil {
		return st
	}
	if !hasDefault {
		merged = intersectState(merged, st)
	}
	return merged
}

// expr checks guarded-field accesses in an expression under state st.
// Function literals are assumed to run synchronously and inherit the state
// (go statements are handled in stmt and reset it).
func (c *lockChecker) expr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.block(x.Body.List, cloneState(st))
			return false
		case *ast.KeyValueExpr:
			c.expr(x.Value, st) // keys of struct literals name fields, not accesses
			return false
		case *ast.SelectorExpr:
			c.checkSel(x, st)
		}
		return true
	})
}

func (c *lockChecker) checkSel(sel *ast.SelectorExpr, st lockState) {
	info := c.u.Info.Selections[sel]
	if info == nil || info.Kind() != types.FieldVal {
		return
	}
	mu, guarded := c.guarded[info.Obj()]
	if !guarded || c.preHeld[mu] {
		return
	}
	base := unparen(sel.X)
	if star, ok := base.(*ast.StarExpr); ok {
		base = unparen(star.X)
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		c.report(sel, "field %q (guarded by %s) accessed through %s; bind the struct to a variable so the lock can be verified",
			sel.Sel.Name, mu, exprString(sel.X))
		return
	}
	obj := c.u.Info.Uses[id]
	if obj == nil {
		obj = c.u.Info.Defs[id]
	}
	if obj == nil {
		return
	}
	if !st[lockKey{base: obj, mu: mu}] {
		c.report(sel, "field %q accessed without holding %s.%s (declared '// guarded by %s')",
			sel.Sel.Name, id.Name, mu, mu)
	}
}

// lockOp recognizes v.mu.Lock / RLock / Unlock / RUnlock calls on a mutex
// field reached through a simple variable, returning the tracked key and the
// resulting held state.
func (c *lockChecker) lockOp(e ast.Expr) (key lockKey, held bool, ok bool) {
	call, isCall := unparen(e).(*ast.CallExpr)
	if !isCall {
		return lockKey{}, false, false
	}
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		held = true
	case "Unlock", "RUnlock":
		held = false
	default:
		return lockKey{}, false, false
	}
	inner, isSel := unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, false, false
	}
	if tv, has := c.u.Info.Types[inner]; !has || !isMutexType(tv.Type) {
		return lockKey{}, false, false
	}
	baseID, isID := unparen(inner.X).(*ast.Ident)
	if !isID {
		return lockKey{}, false, false
	}
	obj := c.u.Info.Uses[baseID]
	if obj == nil {
		obj = c.u.Info.Defs[baseID]
	}
	if obj == nil {
		return lockKey{}, false, false
	}
	return lockKey{base: obj, mu: inner.Sel.Name}, held, true
}
