package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxcheck enforces context-propagation discipline in the serving and
// network layers. The recommend path is latency-bounded (the paper's
// real-time requirement); a blocking call that cannot be cancelled turns a
// slow peer into an unbounded stall, and a context.Background() deep in a
// library resets every deadline the caller set. Two rules:
//
//  1. context.Background() / context.TODO() may only be minted in cmd/
//     (process entry points own the root context). Everywhere else in scope,
//     accept a ctx from the caller.
//  2. Functions that invoke blocking primitives (time.Sleep, net.Dial,
//     net.DialTimeout, (*net.Dialer).Dial, (net.Listener).Accept) must take
//     a context.Context parameter, so the caller can bound the wait — and
//     the author is pushed toward the cancellable variant (DialContext,
//     timers selected against ctx.Done()).
//
// Lifecycle goroutines whose shutdown is structural (closing a listener)
// rather than cancellation-based are silenced with a justification comment
// on the line or the line above:
//
//	// ctxcheck: <why no context>
func init() {
	Register(&Pass{
		Name: "ctxcheck",
		Doc:  "serving/network paths thread context.Context; no context.Background() outside cmd/",
		Scope: []string{
			"internal/kvstore", "internal/recommend", "internal/storm", "internal/topology",
			"cmd",
			"fixtures/ctxcheck",
		},
		Run: runCtxcheck,
	})
}

// blockingFuncs lists package-level functions whose call blocks without a
// deadline, keyed by import path then name.
var blockingFuncs = map[string]map[string]string{
	"time": {"Sleep": "use a timer selected against ctx.Done()"},
	"net": {
		"Dial":        "use (&net.Dialer{}).DialContext",
		"DialTimeout": "use (&net.Dialer{}).DialContext",
	},
}

// blockingMethods lists methods that block, keyed by receiver type.
var blockingMethods = map[string]map[string]string{
	"net.Dialer":   {"Dial": "use DialContext"},
	"net.Listener": {"Accept": "close the listener on shutdown, or annotate '// ctxcheck: <why>'"},
	"net.TCPListener": {
		"Accept":    "close the listener on shutdown, or annotate '// ctxcheck: <why>'",
		"AcceptTCP": "close the listener on shutdown, or annotate '// ctxcheck: <why>'",
	},
}

func runCtxcheck(u *Unit) []Finding {
	c := &ctxChecker{u: u}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return c.findings
}

type ctxChecker struct {
	u        *Unit
	findings []Finding
}

func (c *ctxChecker) hatch(pos token.Pos) bool {
	txt, ok := c.u.CommentAt(pos)
	return ok && strings.Contains(txt, "ctxcheck:")
}

func (c *ctxChecker) report(pos token.Pos, format string, args ...any) {
	if c.hatch(pos) {
		return
	}
	c.findings = append(c.findings, c.u.finding("ctxcheck", pos, format, args...))
}

func (c *ctxChecker) checkFunc(fd *ast.FuncDecl) {
	hasCtx := funcTakesContext(c.u, fd.Type)
	// Track whether we are inside a func literal that itself takes a ctx —
	// then blocking calls inside it are that literal's business.
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Literals inherit the outer verdict unless they take their own
			// context; either way recursion continues with the stack telling
			// blockingOK which function owns the call.
			return true
		case *ast.CallExpr:
			c.checkCall(x, hasCtx, stack)
		}
		return true
	})
}

func (c *ctxChecker) checkCall(call *ast.CallExpr, outerHasCtx bool, stack []ast.Node) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Rule 1: context.Background()/TODO() outside cmd/.
	if pkg, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := c.u.Info.Uses[pkg].(*types.PkgName); ok && pn.Imported().Path() == "context" {
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				if !strings.HasPrefix(c.u.RelPath, "cmd") {
					c.report(call.Pos(), "context.%s() minted outside cmd/; accept a ctx from the caller so deadlines propagate (or annotate '// ctxcheck: <why>')", sel.Sel.Name)
				}
				return
			}
		}
	}
	name, advice, blocking := c.blockingCall(sel)
	if !blocking {
		return
	}
	if c.enclosingTakesContext(outerHasCtx, stack) {
		// The surrounding function threads a context; calling a blocking
		// primitive is still a smell, but the caller can at least bound the
		// whole operation. Only the ctx-less case is a finding.
		return
	}
	c.report(call.Pos(), "blocking call %s in a function without a context.Context parameter; %s", name, advice)
}

// blockingCall classifies sel as a known blocking primitive.
func (c *ctxChecker) blockingCall(sel *ast.SelectorExpr) (name, advice string, blocking bool) {
	// Package-level: time.Sleep, net.Dial, ...
	if pkg, ok := unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := c.u.Info.Uses[pkg].(*types.PkgName); ok {
			if m := blockingFuncs[pn.Imported().Path()]; m != nil {
				if adv, ok := m[sel.Sel.Name]; ok {
					return pn.Imported().Path() + "." + sel.Sel.Name, adv, true
				}
			}
			return "", "", false
		}
	}
	// Method: receiver type decides.
	selInfo, ok := c.u.Info.Selections[sel]
	if !ok {
		return "", "", false
	}
	recv := namedFrom(selInfo.Recv())
	if recv == nil || recv.Obj().Pkg() == nil {
		// Interface types (net.Listener) are named too; namedFrom handles
		// them. A nil here is an anonymous type — not ours.
		return "", "", false
	}
	key := recv.Obj().Pkg().Path() + "." + recv.Obj().Name()
	if m := blockingMethods[key]; m != nil {
		if adv, ok := m[sel.Sel.Name]; ok {
			return "(" + key + ")." + sel.Sel.Name, adv, true
		}
	}
	return "", "", false
}

// enclosingTakesContext reports whether the function owning the call — the
// innermost func literal on the stack, or the declaration itself — has a
// context.Context parameter.
func (c *ctxChecker) enclosingTakesContext(outerHasCtx bool, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return funcTakesContext(c.u, lit.Type)
		}
	}
	return outerHasCtx
}

// funcTakesContext reports whether any parameter has type context.Context.
func funcTakesContext(u *Unit, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := u.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isPkgType(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}
