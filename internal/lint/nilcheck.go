package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nilcheck tracks values whose nil-ness is correlated with a sibling result
// — the `v, err := f()` and `v, ok := m[k]` shapes — through the flowcheck
// engine, and reports dereferences on the path where the value is nil:
//
//   - v from a call that returns nil alongside a non-nil error (decided by a
//     module-wide "returns-nil-when-error" summary for in-tree functions, and
//     assumed — the standard library contract — for external ones) must not
//     be dereferenced on the err != nil path;
//   - v from a comma-ok map read, type assertion, or channel receive must not
//     be dereferenced before the ok result is checked, nor on the !ok path;
//   - a map declared `var m map[K]V` and never made must not be written.
//
// Dereference means a selector, *v, an index of a slice/array/pointer, a map
// write, a call of a func value, or a send on the channel. Map reads, len,
// cap, range, and passing the value along are all legal on nil and stay
// silent. Branch conditions refine the facts per short-circuit leaf: the
// engine's edge refinement sees `err != nil`, `ok`, and `v == nil` tests
// with their taken polarity, so `ok && v.n > 0` is clean.
//
// The hatch, on the line or the line above the reported use:
//
//	// nilcheck: <why the value is non-nil here>
func init() {
	Register(&Pass{
		Name: "nilcheck",
		Doc:  "values that are nil on the error or !ok path must not be dereferenced there",
		Scope: []string{
			"internal/kvstore", "internal/recommend", "internal/objcache",
			"internal/core", "internal/storm", "internal/bandit",
			"cmd",
			"fixtures/nilcheck",
		},
		RunModule: runNilcheck,
	})
}

func runNilcheck(prog *Program) []Finding {
	sums := buildNilSummaries(prog)
	pass := PassByName("nilcheck")
	var findings []Finding
	for _, u := range prog.Units {
		if !pass.AppliesTo(u.RelPath) {
			continue
		}
		c := &nilChecker{u: u, sums: sums}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c.checkBody(fd.Body)
				// Each literal gets its own flow analysis; facts do not
				// cross the closure boundary.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						c.checkBody(lit.Body)
					}
					return true
				})
			}
		}
		findings = append(findings, c.findings...)
	}
	return findings
}

// nilSummaries records, per declared function, which nilable result
// positions are returned as a literal nil alongside a non-nil error — the
// `return nil, err` contract the error-path refinement keys on. declared
// marks every function with a body in the module, so the checker can tell
// "summarized as never-nil" from "external, assume the stdlib contract".
type nilSummaries struct {
	nilOnErr map[*types.Func]map[int]bool
	declared map[*types.Func]bool
}

func buildNilSummaries(prog *Program) *nilSummaries {
	sums := &nilSummaries{
		nilOnErr: make(map[*types.Func]map[int]bool),
		declared: make(map[*types.Func]bool),
	}
	for _, u := range prog.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sums.declared[fn] = true
				summarizeReturns(u, fn, fd, sums)
			}
		}
	}
	return sums
}

func summarizeReturns(u *Unit, fn *types.Func, fd *ast.FuncDecl, sums *nilSummaries) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	errIdx := -1
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != res.Len() {
			return true
		}
		if isNilExpr(u, ret.Results[errIdx]) {
			return true // success return: err is literal nil
		}
		for i := 0; i < res.Len(); i++ {
			if i == errIdx || !isNilable(res.At(i).Type()) {
				continue
			}
			if isNilExpr(u, ret.Results[i]) {
				m := sums.nilOnErr[fn]
				if m == nil {
					m = make(map[int]bool)
					sums.nilOnErr[fn] = m
				}
				m[i] = true
			}
		}
		return true
	})
}

// isNilable reports whether a value of type t can be nil.
func isNilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Signature, *types.Chan:
		return true
	}
	return false
}

func isNilExpr(u *Unit, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := u.Info.Uses[id].(*types.Nil)
	return isNil
}

// ---- the dataflow problem ----

type nilStatus uint8

const (
	nsCond nilStatus = iota + 1 // nil iff the dep says error / !ok; not yet branched on
	nsNil                       // nil on this path
	nsOK                        // checked non-nil on this path
)

type nilDep uint8

const (
	depErr nilDep = iota + 1 // dep is the error bound at the same call
	depOk                    // dep is the comma-ok boolean
	depMap                   // declared nil map; no dep object
)

// nilFact is the abstract value of one tracked object.
type nilFact struct {
	status nilStatus
	kind   nilDep
	dep    types.Object // the err or ok object (nil for depMap)
	src    string       // origin, for diagnostics
}

// nilState maps tracked objects to facts. States are treated as immutable
// values: all mutation goes through with/without, which copy.
type nilState map[types.Object]nilFact

func (s nilState) clone() nilState {
	out := make(nilState, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s nilState) with(obj types.Object, f nilFact) nilState {
	out := s.clone()
	out[obj] = f
	return out
}

func (s nilState) without(obj types.Object) nilState {
	if _, ok := s[obj]; !ok {
		return s
	}
	out := s.clone()
	delete(out, obj)
	return out
}

type nilChecker struct {
	u        *Unit
	sums     *nilSummaries
	findings []Finding
}

func (c *nilChecker) report(pos token.Pos, format string, args ...any) {
	if txt, ok := c.u.CommentAt(pos); ok && strings.Contains(txt, "nilcheck:") {
		return
	}
	c.findings = append(c.findings, c.u.finding("nilcheck", pos, format, args...))
}

func (c *nilChecker) objOf(id *ast.Ident) types.Object {
	if o := c.u.Info.Uses[id]; o != nil {
		return o
	}
	return c.u.Info.Defs[id]
}

func (c *nilChecker) checkBody(body *ast.BlockStmt) {
	g := BuildCFG(body)
	p := &nilProblem{c: c}
	res := Solve[nilState](g, p)
	WalkStates[nilState](g, p, res, func(n ast.Node, before nilState, _ *Block) {
		c.reportUses(n, before)
	})
}

type nilProblem struct {
	c *nilChecker
}

func (p *nilProblem) Bottom() nilState { return nil }
func (p *nilProblem) Entry() nilState  { return nil }

// Join is pointwise. A fact present on one path only survives (the object is
// scoped to, or rebound on, the other path). Facts that disagree but share a
// dep re-merge to nsCond: after `if err != nil {...} else {...}`, v is still
// nil exactly when err is non-nil. Facts with different deps are dropped.
func (p *nilProblem) Join(a, b nilState) nilState {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(nilState, len(a)+len(b))
	for k, fa := range a {
		fb, ok := b[k]
		switch {
		case !ok:
			out[k] = fa
		case fa == fb:
			out[k] = fa
		case fa.kind == fb.kind && fa.dep == fb.dep:
			fa.status = nsCond
			out[k] = fa
		}
	}
	for k, fb := range b {
		if _, ok := a[k]; !ok {
			out[k] = fb
		}
	}
	return out
}

func (p *nilProblem) Equal(a, b nilState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, fa := range a {
		if fb, ok := b[k]; !ok || fa != fb {
			return false
		}
	}
	return true
}

func (p *nilProblem) Transfer(s nilState, n ast.Node, _ *Block) nilState {
	switch st := n.(type) {
	case *ast.AssignStmt:
		return p.c.transferAssign(s, st)
	case *ast.DeclStmt:
		return p.c.transferDecl(s, st)
	case *ast.RangeStmt:
		// Loop-head node: only the iteration variables rebind here.
		if id, ok := unparen2(st.Key).(*ast.Ident); ok {
			if obj := p.c.objOf(id); obj != nil {
				s = s.without(obj)
			}
		}
		if id, ok := unparen2(st.Value).(*ast.Ident); ok {
			if obj := p.c.objOf(id); obj != nil {
				s = s.without(obj)
			}
		}
		return s
	}
	return s
}

// unparen2 is unparen tolerating a nil expression.
func unparen2(e ast.Expr) ast.Expr {
	if e == nil {
		return nil
	}
	return unparen(e)
}

func (c *nilChecker) transferAssign(s nilState, st *ast.AssignStmt) nilState {
	// Every reassigned identifier loses its old fact first.
	for _, lhs := range st.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if obj := c.objOf(id); obj != nil {
				s = s.without(obj)
			}
		}
	}
	if len(st.Rhs) != 1 {
		return s
	}
	rhs := unparen(st.Rhs[0])

	// v, ok := m[k] / x.(T) / <-ch
	if len(st.Lhs) == 2 {
		isCommaOk := false
		switch r := rhs.(type) {
		case *ast.IndexExpr, *ast.TypeAssertExpr:
			isCommaOk = true
		case *ast.UnaryExpr:
			isCommaOk = r.Op == token.ARROW
		}
		if isCommaOk {
			vID, vOK := unparen(st.Lhs[0]).(*ast.Ident)
			okID, okOK := unparen(st.Lhs[1]).(*ast.Ident)
			if vOK && okOK && vID.Name != "_" && okID.Name != "_" {
				vObj, okObj := c.objOf(vID), c.objOf(okID)
				if vObj != nil && okObj != nil && isNilable(vObj.Type()) {
					return s.with(vObj, nilFact{status: nsCond, kind: depOk, dep: okObj, src: okID.Name})
				}
			}
			return s
		}
	}

	// v, err := f(...): track v when f's summary (or the external default)
	// says it is nil whenever err is non-nil.
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return s
	}
	tuple, ok := c.u.Info.Types[call].Type.(*types.Tuple)
	if !ok || tuple.Len() != len(st.Lhs) {
		return s
	}
	errIdx := -1
	var errObj types.Object
	for i := 0; i < tuple.Len(); i++ {
		if !types.Identical(tuple.At(i).Type(), errorType) {
			continue
		}
		if id, ok := unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
			if obj := c.objOf(id); obj != nil {
				errIdx, errObj = i, obj
			}
		}
	}
	if errObj == nil {
		return s
	}
	callee := resolveCallee(c.u, call)
	if callee == nil {
		return s
	}
	src := exprString(call.Fun)
	for i := 0; i < tuple.Len(); i++ {
		if i == errIdx || !isNilable(tuple.At(i).Type()) {
			continue
		}
		if c.sums.declared[callee] && !c.sums.nilOnErr[callee][i] {
			continue // summarized in-module: this result is never a literal nil on error
		}
		id, ok := unparen(st.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := c.objOf(id); obj != nil {
			s = s.with(obj, nilFact{status: nsCond, kind: depErr, dep: errObj, src: src})
		}
	}
	return s
}

// transferDecl tracks `var m map[K]V` declarations with no initializer: the
// map is nil until something assigns it.
func (c *nilChecker) transferDecl(s nilState, st *ast.DeclStmt) nilState {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return s
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) > 0 {
			continue
		}
		for _, name := range vs.Names {
			if name.Name == "_" {
				continue
			}
			obj := c.u.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
				s = s.with(obj, nilFact{status: nsNil, kind: depMap, src: name.Name})
			}
		}
	}
	return s
}

// RefineEdge sharpens facts along branch edges using the leaf condition: a
// plain `ok` ident settles depOk facts, `x == nil` / `x != nil` settles a
// direct test of a tracked value or — when x is a dep error — every value
// bound at that error's call.
func (p *nilProblem) RefineEdge(s nilState, e *Edge) nilState {
	if e.Kind != EdgeCond || len(s) == 0 {
		return s
	}
	switch x := unparen(e.Cond).(type) {
	case *ast.Ident:
		okObj := p.c.objOf(x)
		if okObj == nil {
			return s
		}
		for obj, f := range s {
			if f.kind == depOk && f.dep == okObj {
				nf := f
				if e.Branch {
					nf.status = nsOK
				} else {
					nf.status = nsNil
				}
				s = s.with(obj, nf)
			}
		}
		return s
	case *ast.BinaryExpr:
		if x.Op != token.EQL && x.Op != token.NEQ {
			return s
		}
		var idSide ast.Expr
		switch {
		case isNilExpr(p.c.u, x.Y):
			idSide = x.X
		case isNilExpr(p.c.u, x.X):
			idSide = x.Y
		default:
			return s
		}
		id, ok := unparen(idSide).(*ast.Ident)
		if !ok {
			return s
		}
		obj := p.c.objOf(id)
		if obj == nil {
			return s
		}
		// `obj == nil` holds along this edge iff the operator is EQL and the
		// edge took the true branch, or NEQ and the false branch.
		isNilHere := (x.Op == token.EQL) == e.Branch
		if f, tracked := s[obj]; tracked {
			nf := f
			if isNilHere {
				nf.status = nsNil
			} else {
				nf.status = nsOK
			}
			s = s.with(obj, nf)
		}
		for vObj, f := range s {
			if f.kind == depErr && f.dep == obj {
				nf := f
				if isNilHere {
					nf.status = nsOK // err == nil: the call succeeded
				} else {
					nf.status = nsNil
				}
				s = s.with(vObj, nf)
			}
		}
		return s
	}
	return s
}

// reportUses scans one block node for dereferences of tracked objects in a
// flagging state: nsNil always, nsCond only for comma-ok values (use before
// the check). Error-dependent values in nsCond are not flagged — using v
// before looking at err is idiomatic when the call's contract is known.
func (c *nilChecker) reportUses(n ast.Node, s nilState) {
	if len(s) == 0 {
		return
	}
	var root ast.Node = n
	switch st := n.(type) {
	case *ast.DeferStmt:
		return // runs at exit, outside this flow state
	case *ast.RangeStmt:
		if st.X == nil {
			return
		}
		root = st.X // ranging over nil is legal; body nodes have their own blocks
	}
	walkStack(root, func(m ast.Node, stack []ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok || len(stack) == 0 {
			return true
		}
		obj := c.u.Info.Uses[id]
		if obj == nil {
			return true
		}
		f, tracked := s[obj]
		if !tracked || f.status == nsOK {
			return true
		}
		if f.status == nsCond && f.kind != depOk {
			return true
		}
		if !c.isDeref(id, stack) {
			return true
		}
		switch {
		case f.kind == depMap || (f.status == nsNil && isMapType(obj.Type())):
			c.report(id.Pos(), "write to nil map %q: it is never made on this path (make it first, or annotate '// nilcheck: <why>')", id.Name)
		case f.kind == depErr:
			c.report(id.Pos(), "%q may be nil here: %s returns a nil %s when it fails, and this path has err != nil (move the use to the success path, or annotate '// nilcheck: <why>')",
				id.Name, f.src, id.Name)
		case f.status == nsNil: // depOk on the !ok path
			c.report(id.Pos(), "%q is nil here: the comma-ok result %q is false on this path (guard the use, or annotate '// nilcheck: <why>')",
				id.Name, f.src)
		default: // depOk, unchecked
			c.report(id.Pos(), "%q is used before its comma-ok result %q is checked (test %q first, or annotate '// nilcheck: <why>')",
				id.Name, f.src, f.src)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isDeref reports whether the identifier use panics if the value is nil: a
// selector, *v, an index of a slice/array/pointer, a map write, calling a
// func value, or sending on the channel. Map reads, len/cap, range, and
// passing the value along are nil-safe.
func (c *nilChecker) isDeref(id *ast.Ident, stack []ast.Node) bool {
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return unparen(p.X) == ast.Expr(id)
	case *ast.StarExpr:
		return unparen(p.X) == ast.Expr(id)
	case *ast.IndexExpr:
		if unparen(p.X) != ast.Expr(id) {
			return false
		}
		if !isMapType(c.u.Info.Types[p.X].Type) {
			return true // slice/array/pointer index: panics on nil
		}
		// Map index: only writes panic. The index must be an assignment
		// target or an IncDecStmt operand.
		for i := len(stack) - 1; i >= 0; i-- {
			switch a := stack[i].(type) {
			case *ast.AssignStmt:
				for _, lhs := range a.Lhs {
					if containsNode(lhs, parent) {
						return true
					}
				}
				return false
			case *ast.IncDecStmt:
				return true
			case *ast.StarExpr, *ast.ParenExpr, *ast.IndexExpr, *ast.SelectorExpr:
				continue // still inside a potential lvalue chain
			default:
				return false
			}
		}
		return false
	case *ast.SendStmt:
		return unparen(p.Chan) == ast.Expr(id)
	case *ast.CallExpr:
		return unparen(p.Fun) == ast.Expr(id)
	}
	return false
}

// containsNode reports whether needle is within the subtree rooted at root.
func containsNode(root ast.Node, needle ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == needle {
			found = true
		}
		return !found
	})
	return found
}
