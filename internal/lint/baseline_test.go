package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Pass: "numcheck", File: "internal/core/model.go", Line: 10, Message: "division by x"},
		{Pass: "numcheck", File: "internal/core/model.go", Line: 99, Message: "division by x"}, // same key, different line
		{Pass: "ctxcheck", File: "internal/kvstore/net.go", Line: 3, Message: "blocking call"},
	}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (entries are keyed by pass/file/message, not line)", b.Len())
	}
	// Every original finding is suppressed — including the one on a
	// different line, which is the point of line-free keys.
	if left := b.Filter(append([]Finding(nil), findings...)); len(left) != 0 {
		t.Fatalf("Filter left %d findings, want 0: %v", len(left), left)
	}
	// A new finding is not suppressed.
	novel := Finding{Pass: "numcheck", File: "internal/core/model.go", Line: 10, Message: "something else"}
	if left := b.Filter([]Finding{novel}); len(left) != 1 {
		t.Fatalf("baseline swallowed a novel finding")
	}
}

func TestBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "does-not-exist"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("missing baseline should be empty, got %d entries", b.Len())
	}
	f := []Finding{{Pass: "p", File: "f", Message: "m"}}
	if left := b.Filter(f); len(left) != 1 {
		t.Fatal("empty baseline must suppress nothing")
	}
}

func TestBaselineStaleAndPrune(t *testing.T) {
	fixed := Finding{Pass: "numcheck", File: "a.go", Message: "old division"}
	still := Finding{Pass: "ctxcheck", File: "b.go", Message: "blocking call"}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := WriteBaseline(path, []Finding{fixed, still}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Only `still` is produced this run: `fixed` was remediated, so its
	// entry is stale.
	if left := b.Filter([]Finding{still}); len(left) != 0 {
		t.Fatalf("Filter left %d findings, want 0", len(left))
	}
	stale := b.Stale()
	if len(stale) != 1 || stale[0] != baselineKey(fixed) {
		t.Fatalf("Stale = %q, want the fixed finding's key only", stale)
	}
	dropped, err := b.Prune(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("Prune dropped %d, want 1", dropped)
	}
	b2, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Len() != 1 {
		t.Fatalf("pruned baseline has %d entries, want 1", b2.Len())
	}
	if left := b2.Filter([]Finding{still}); len(left) != 0 {
		t.Fatal("pruned baseline must keep the still-matching entry")
	}
	if len(b2.Stale()) != 0 {
		t.Fatal("pruned baseline must have no stale entries left")
	}
}

func TestBaselineNewKeys(t *testing.T) {
	old := Finding{Pass: "numcheck", File: "a.go", Message: "known"}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := WriteBaseline(path, []Finding{old}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	novel := Finding{Pass: "alloccheck", File: "c.go", Message: "fresh"}
	grown := b.NewKeys([]Finding{old, novel, novel}) // dup must collapse
	if len(grown) != 1 || grown[0] != baselineKey(novel) {
		t.Fatalf("NewKeys = %q, want the novel finding's key only", grown)
	}
	if got := b.NewKeys([]Finding{old}); len(got) != 0 {
		t.Fatalf("NewKeys on covered findings = %q, want none", got)
	}
}

func TestBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte("# comment\n\nonly-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("malformed baseline entry should be an error, not silently ignored")
	}
}
