package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Pass: "numcheck", File: "internal/core/model.go", Line: 10, Message: "division by x"},
		{Pass: "numcheck", File: "internal/core/model.go", Line: 99, Message: "division by x"}, // same key, different line
		{Pass: "ctxcheck", File: "internal/kvstore/net.go", Line: 3, Message: "blocking call"},
	}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := WriteBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (entries are keyed by pass/file/message, not line)", b.Len())
	}
	// Every original finding is suppressed — including the one on a
	// different line, which is the point of line-free keys.
	if left := b.Filter(append([]Finding(nil), findings...)); len(left) != 0 {
		t.Fatalf("Filter left %d findings, want 0: %v", len(left), left)
	}
	// A new finding is not suppressed.
	novel := Finding{Pass: "numcheck", File: "internal/core/model.go", Line: 10, Message: "something else"}
	if left := b.Filter([]Finding{novel}); len(left) != 1 {
		t.Fatalf("baseline swallowed a novel finding")
	}
}

func TestBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "does-not-exist"))
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("missing baseline should be empty, got %d entries", b.Len())
	}
	f := []Finding{{Pass: "p", File: "f", Message: "m"}}
	if left := b.Filter(f); len(left) != 1 {
		t.Fatal("empty baseline must suppress nothing")
	}
}

func TestBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte("# comment\n\nonly-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("malformed baseline entry should be an error, not silently ignored")
	}
}
