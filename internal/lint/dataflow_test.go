package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// The solver tests run a tiny syntactic liveness problem over CFGs: a call
// to acquire() sets the state live, a call to release() clears it. It is the
// skeleton of leakcheck's per-resource analysis, small enough to assert
// exact fixpoints for every structured-control shape.

type testLive struct{}

func (testLive) Bottom() bool        { return false }
func (testLive) Entry() bool         { return false }
func (testLive) Join(a, b bool) bool { return a || b }
func (testLive) Equal(a, b bool) bool {
	return a == b
}
func (testLive) Transfer(s bool, n ast.Node, _ *Block) bool {
	has := func(name string) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
	if has("release") {
		return false
	}
	if has("acquire") {
		return true
	}
	return s
}

// liveAtReturns solves the problem and renders the liveness before each
// return plus the fall-off-end state, e.g. "ret:true fall:false".
func liveAtReturns(t *testing.T, body string) string {
	t.Helper()
	g := buildTestCFG(t, body)
	p := testLive{}
	res := Solve[bool](g, p)
	var parts []string
	WalkStates[bool](g, p, res, func(n ast.Node, before bool, _ *Block) {
		if _, ok := n.(*ast.ReturnStmt); ok {
			parts = append(parts, boolStr("ret", before))
		}
	})
	for _, e := range g.FallEdges() {
		parts = append(parts, boolStr("fall", res.Out[e.From]))
	}
	return strings.Join(parts, " ")
}

func boolStr(label string, v bool) string {
	if v {
		return label + ":live"
	}
	return label + ":clear"
}

func TestSolveFixpoints(t *testing.T) {
	tests := []struct {
		name, body, want string
	}{
		{
			name: "straight line",
			body: "acquire()\nrelease()",
			want: "fall:clear",
		},
		{
			name: "branch releases one side",
			body: "acquire()\nif c() {\n\trelease()\n\treturn\n}\nreturn",
			want: "ret:clear ret:live",
		},
		{
			name: "merge joins may-live",
			body: "acquire()\nif c() {\n\trelease()\n}\nreturn",
			want: "ret:live",
		},
		{
			name: "both sides release",
			body: "acquire()\nif c() {\n\trelease()\n} else {\n\trelease()\n}\nreturn",
			want: "ret:clear",
		},
		{
			name: "loop body release is may not must",
			body: "acquire()\nfor i := 0; i < n; i++ {\n\tif c() {\n\t\trelease()\n\t}\n}\nreturn",
			want: "ret:live",
		},
		{
			name: "acquire in loop reaches exit",
			body: "for i := 0; i < n; i++ {\n\tacquire()\n}\nreturn",
			want: "ret:live",
		},
		{
			name: "loop releases every iteration",
			body: "for i := 0; i < n; i++ {\n\tacquire()\n\trelease()\n}\nreturn",
			want: "ret:clear",
		},
		{
			name: "select arm release is may",
			body: "acquire()\nselect {\ncase <-a:\n\trelease()\n\treturn\ncase <-b:\n\treturn\n}",
			want: "ret:clear ret:live",
		},
		{
			name: "switch default keeps state",
			body: "acquire()\nswitch x() {\ncase 1:\n\trelease()\ndefault:\n}\nreturn",
			want: "ret:live",
		},
		{
			name: "panic path does not mask fallthrough",
			body: "acquire()\nif c() {\n\tpanic(\"x\")\n}\nrelease()",
			want: "fall:clear",
		},
		{
			name: "dead code after return is not solved",
			body: "acquire()\nrelease()\nreturn\nacquire()",
			want: "ret:clear",
		},
		{
			name: "goto loop converges",
			body: "again:\nacquire()\nif c() {\n\tgoto again\n}\nrelease()\nreturn",
			want: "ret:clear",
		},
		{
			name: "short circuit branches solve per leaf",
			body: "acquire()\nif a() || b() {\n\trelease()\n\treturn\n}\nreturn",
			want: "ret:clear ret:live",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := liveAtReturns(t, tt.body); got != tt.want {
				t.Errorf("states = %q, want %q", got, tt.want)
			}
		})
	}
}

// testCount is an infinite-lattice problem (iteration counter) that relies
// on the widening backstop for termination.
type testCount struct{ widened *bool }

func (testCount) Bottom() int         { return 0 }
func (testCount) Entry() int          { return 0 }
func (testCount) Join(a, b int) int   { return max(a, b) }
func (testCount) Equal(a, b int) bool { return a == b }
func (testCount) Transfer(s int, n ast.Node, _ *Block) int {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "tick" {
				found = true
			}
		}
		return !found
	})
	if found {
		return s + 1
	}
	return s
}
func (c testCount) Widen(old, new int) int {
	*c.widened = true
	return 1 << 20 // top
}

func TestSolveWideningBackstop(t *testing.T) {
	g := buildTestCFG(t, "for {\n\ttick()\n\tif c() {\n\t\tbreak\n\t}\n}\nreturn")
	widened := false
	p := testCount{widened: &widened}
	res := Solve[int](g, p) // must terminate
	if !widened {
		t.Error("widening was never invoked on an infinite-chain lattice")
	}
	// The post-loop state must be the widened top, an over-approximation.
	for _, b := range g.Blocks {
		if b.Kind == KindAfter && b.Reachable {
			if res.In[b] < 1<<20 {
				t.Errorf("after-loop state %d; want widened top", res.In[b])
			}
		}
	}
}

// TestSolveHardCut proves the solver terminates even without a Widener on a
// non-stabilizing lattice (the 2*maxVisits guard).
type testGrow struct{}

func (testGrow) Bottom() int         { return 0 }
func (testGrow) Entry() int          { return 0 }
func (testGrow) Join(a, b int) int   { return max(a, b) }
func (testGrow) Equal(a, b int) bool { return a == b }
func (testGrow) Transfer(s int, n ast.Node, _ *Block) int {
	return s + 1 // grows on every node: never stabilizes on a cycle
}

func TestSolveHardCut(t *testing.T) {
	g := buildTestCFG(t, "for {\n\ttick()\n\tif c() {\n\t\tbreak\n\t}\n}\nreturn")
	_ = Solve[int](g, testGrow{}) // completing at all is the assertion
}
